"""Fig. 23 bench: EMF hashing/filtering cycle overhead."""


def test_fig23_emf_overhead(run_figure):
    result = run_figure("fig23")
    per_dataset = result.data["per_dataset"]
    # Sub-2-microsecond overheads at 1 GHz, orders below ms deadlines.
    for dataset, row in per_dataset.items():
        assert row["total_us"] < 20.0, dataset
    assert per_dataset["RD-12K"]["hashing"] > per_dataset["AIDS"]["hashing"]
