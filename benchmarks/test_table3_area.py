"""Table III bench: area/floorplan breakdown."""


def test_table3_area(run_figure):
    result = run_figure("table3")
    assert abs(result.data["total_mm2"] - 6.3) < 0.4
    shares = result.data["shares"]
    # PE logic dominates; buffer shares ordered CGC > EMF within the
    # coordination logic, as in the paper.
    assert shares["PE"]["logic_pct"] > 50
    assert shares["CGC"]["buffer_pct"] > shares["EMF"]["buffer_pct"]
