"""Robustness benches: calibration sensitivity and seed stability."""


def test_sensitivity(run_figure):
    result = run_figure("sensitivity")
    # Conclusions (CEGMA faster, less DRAM, less energy) must hold at
    # every point of the 2x-perturbation grid.
    for cell, row in result.data.items():
        assert row["holds"] == 1.0, cell


def test_seed_robustness(run_figure):
    result = run_figure("seed_robustness")
    spreads = result.data["relative_std"]
    # Anchors vary by a few percent across seeds, not qualitatively.
    assert spreads["RD-5K"] < 0.1
    assert spreads["speedup"] < 0.3
    for row in result.data["per_seed"].values():
        assert row["RD-5K"] > 0.9
        assert row["speedup"] > 1.0
