"""Fig. 22 bench: ablation DRAM accesses vs AWB-GCN.

Shares the fig21 runner (the paper splits speedup and DRAM into two
figures over the same experiment)."""


def test_fig22_ablation_dram(run_figure):
    result = run_figure("fig21")
    dram = result.data["mean_dram"]
    # Paper: EMF cuts DRAM 49%, CGC 34% on average (vs AWB-GCN).
    assert dram["CEGMA-EMF"] < 1.0
    assert dram["CEGMA-CGC"] < 1.0
    assert dram["CEGMA"] <= min(dram["CEGMA-EMF"], dram["CEGMA-CGC"]) * 1.05
