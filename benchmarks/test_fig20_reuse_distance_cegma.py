"""Fig. 20 bench: reuse distances under CEGMA."""


def test_fig20_reuse_distance_cegma(run_figure):
    result = run_figure("fig20")
    for dataset, row in result.data.items():
        assert row["cegma_hit"] > row["baseline_hit"] + 0.2, dataset
    assert result.data["AIDS"]["cegma_hit"] > 0.9
