"""Ablation bench: batch-size sensitivity."""


def test_ablation_batch_size(run_figure):
    result = run_figure("ablation_batch")
    data = result.data
    # CEGMA's per-pair latency is batch-size-insensitive (within 10%).
    cegma = [row["cegma_latency"] for row in data.values()]
    assert max(cegma) < min(cegma) * 1.1
    # The baseline's DRAM per pair grows once the batch working set
    # exceeds the 512-node buffer (AIDS: ~34 nodes/pair -> beyond ~15
    # pairs per batch).
    assert data[32]["awb_dram"] > data[1]["awb_dram"] * 1.1
