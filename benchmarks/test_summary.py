"""Headline bench: the full paper-vs-measured summary table."""


def test_summary(run_figure):
    result = run_figure("summary")
    data = result.data
    # Each headline average must land within the paper's order of
    # magnitude and on the right side of 1x.
    assert 0.3 < data["speedup vs PyG-CPU"]["measured"] / 3139 < 3
    assert 0.3 < data["speedup vs PyG-GPU"]["measured"] / 353 < 3
    assert 0.3 < data["speedup vs HyGCN"]["measured"] / 8.4 < 3
    assert 0.5 < data["speedup vs AWB-GCN"]["measured"] / 6.5 < 2
    assert data["DRAM vs HyGCN"]["measured"] < 1.0
    assert data["energy vs HyGCN"]["measured"] < 1.0
    assert data["matching removed (mean)"]["measured"] > 0.8
