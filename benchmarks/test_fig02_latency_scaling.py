"""Fig. 2 bench: GMN-Li latency per pair vs graph size (V100, AWB-GCN)."""


def test_fig02_latency_scaling(run_figure):
    result = run_figure("fig02")
    series = result.data["series"]
    sizes = sorted(series)
    # Latency grows superlinearly and the accelerator beats the GPU.
    assert series[sizes[-1]]["PyG-GPU"] > series[sizes[0]]["PyG-GPU"] * 2
    for size in sizes:
        assert series[size]["AWB-GCN"] < series[size]["PyG-GPU"]
