"""Ablation bench: DRAM bandwidth sweep."""


def test_ablation_bandwidth(run_figure):
    result = run_figure("ablation_bandwidth")
    data = result.data
    bandwidths = sorted(data)
    # CEGMA wins at every bandwidth point.
    for row in data.values():
        assert row["speedup"] > 1.0
    # Post-EMF CEGMA is memory-bound: its latency keeps dropping with
    # bandwidth while the compute-bound baseline saturates, so the
    # speedup grows monotonically.
    speedups = [data[b]["speedup"] for b in bandwidths]
    assert speedups == sorted(speedups)
    baseline_gain = data[bandwidths[0]]["awb_latency"] / data[bandwidths[-1]]["awb_latency"]
    cegma_gain = data[bandwidths[0]]["cegma_latency"] / data[bandwidths[-1]]["cegma_latency"]
    assert cegma_gain > baseline_gain
