"""Ablation bench: feature-width sweep."""


def test_ablation_feature_dim(run_figure):
    result = run_figure("ablation_feature_dim")
    data = result.data
    dims = sorted(data)
    # Redundancy is a topology property: identical at every width.
    remainings = {round(row["remaining"], 9) for row in data.values()}
    assert len(remainings) == 1
    # Wider features shift the balance toward matching -> larger gains.
    assert data[dims[-1]]["speedup"] > data[dims[0]]["speedup"]
