"""Fig. 16 bench: end-to-end speedups over PyG-CPU."""


def test_fig16_end_to_end_speedup(run_figure):
    result = run_figure("fig16")
    gains = result.data["cegma_mean_gain"]
    # Paper averages: 3139x CPU / 353x GPU / 8.4x HyGCN / 6.5x AWB-GCN.
    assert 500 < gains["PyG-CPU"] < 10000
    assert 100 < gains["PyG-GPU"] < 1000
    assert 3 < gains["HyGCN"] < 20
    assert 3 < gains["AWB-GCN"] < 15
