"""Extension bench: cross-pair EMF headroom."""


def test_future_batch_emf(run_figure):
    result = run_figure("future_batch_emf")
    for dataset, row in result.data.items():
        # Batch-scope can never keep more work than per-pair scope.
        assert row["batch_emf_remaining"] <= row["paper_emf_remaining"] + 1e-12
        assert row["headroom"] >= 0.0
    # Somewhere in the suite the batch scope finds additional redundancy.
    assert any(row["headroom"] > 0.005 for row in result.data.values())
