"""Roofline bench: boundedness classification per workload."""


def test_roofline(run_figure):
    result = run_figure("roofline")
    data = result.data
    # GMN-Li's all-layer matching + edge MLPs make it compute-bound
    # everywhere; GraphSim/SimGNN's writeback-heavy matching turns
    # memory-bound on the large datasets.
    for dataset, reports in data["GMN-Li"].items():
        assert reports["AWB-GCN"]["bound"] > 0, dataset
    assert data["SimGNN"]["RD-5K"]["AWB-GCN"]["bound"] < 0
    # Machine balance is a platform constant.
    balances = {
        reports["CEGMA"]["machine_balance"]
        for per_dataset in data.values()
        for reports in per_dataset.values()
    }
    assert len(balances) == 1
