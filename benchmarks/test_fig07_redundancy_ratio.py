"""Fig. 7 bench: redundant-to-unique matching ratios."""

import numpy as np


def test_fig07_redundancy_ratio(run_figure):
    result = run_figure("fig07")
    ratios = [r for row in result.data.values() for r in row.values()]
    # Paper: over 90% redundant matching on average (ratio ~9:1+); our
    # small-dataset substitutes drag the mean a little lower.
    assert np.mean(ratios) > 4.0
    # Large REDDIT graphs are more redundant than small AIDS molecules.
    assert min(result.data["RD-5K"].values()) > max(result.data["AIDS"].values())
