"""Ablation bench: AOE precision vs lookahead oracle (Section V-C)."""


def test_ablation_aoe_precision(run_figure):
    result = run_figure("aoe_precision")
    # Paper: ~90% of AOE decisions match the optimal choice.
    assert result.data["mean_precision"] > 0.8
    for dataset, row in result.data["per_dataset"].items():
        assert row["precision"] > 0.7, dataset
