"""Fig. 19 bench: energy normalized to HyGCN."""


def test_fig19_energy(run_figure):
    result = run_figure("fig19")
    # Paper: CEGMA consumes ~63% less energy than HyGCN on average.
    assert 0.2 < result.data["cegma_mean"] < 0.75
