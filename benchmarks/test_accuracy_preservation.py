"""Accuracy bench: EMF-filtered inference matches dense predictions."""


def test_accuracy_preservation(run_figure):
    result = run_figure("accuracy")
    for model, row in result.data.items():
        assert row["identical"], model
    # GMN-Li's interaction features solve the task well above chance.
    assert result.data["GMN-Li"]["dense"] > 0.7
