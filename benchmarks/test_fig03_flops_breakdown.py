"""Fig. 3 bench: FLOP share of aggregation/combination/matching."""


def test_fig03_flops_breakdown(run_figure):
    result = run_figure("fig03")
    data = result.data
    # Paper: matching accounts for 58%-99% of one layer's FLOPs.
    for dataset, row in data.items():
        assert row["paper_mode"]["match"] > 0.5, dataset
    # Matching share grows with graph size in both accounting modes.
    assert data["RD-5K"]["paper_mode"]["match"] > data["AIDS"]["paper_mode"]["match"]
    assert data["RD-5K"]["literal_mode"]["match"] > data["AIDS"]["literal_mode"]["match"]
