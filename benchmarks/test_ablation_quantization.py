"""Ablation bench: EMF feature-quantization sweep."""


def test_ablation_quantization(run_figure):
    result = run_figure("ablation_quantization")
    remaining = {d: row["remaining"] for d, row in result.data.items()}
    # Coarser quantization can only merge more nodes.
    decimals = sorted(remaining)
    for a, b in zip(decimals, decimals[1:]):
        assert remaining[a] <= remaining[b] + 1e-12
    # At the default (6 decimals) the deviation is numerically zero.
    assert result.data[6]["deviation"] < 1e-9
