"""Fig. 26 bench: global matching area before/after EMF."""


def test_fig26_emf_matrix(run_figure, capsys):
    result = run_figure("fig26")
    data = result.data
    assert data["after_cells"] < 0.5 * data["before_cells"]
    with capsys.disabled():
        print("\nmatching area before EMF:")
        print("\n".join(data["render_before"]))
        print("matching area after EMF:")
        print("\n".join(data["render_after"]))
