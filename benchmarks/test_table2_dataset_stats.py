"""Table II bench: synthetic dataset statistics vs the paper."""


def test_table2_dataset_stats(run_figure):
    result = run_figure("table2")
    for name, row in result.data.items():
        assert abs(row["nodes"] - row["paper_nodes"]) / row["paper_nodes"] < 0.25
