"""Fig. 25 bench: speedups on large synthetic graphs."""


def test_fig25_large_graphs(run_figure):
    result = run_figure("fig25")
    sizes = sorted(result.data)
    # Paper: speedup grows with graph size (10.8x -> 37.5x over HyGCN).
    assert result.data[sizes[-1]]["HyGCN"] >= result.data[sizes[0]]["HyGCN"] * 0.9
    for row in result.data.values():
        assert row["HyGCN"] > 1.0
        assert row["AWB-GCN"] > 1.0
