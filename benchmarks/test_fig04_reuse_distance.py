"""Fig. 4 bench: baseline node reuse-distance CDFs."""


def test_fig04_reuse_distance(run_figure):
    result = run_figure("fig04")
    # Paper: most revisits miss the 128 KB (512-node) input buffer.
    for dataset, row in result.data.items():
        assert row["hit_rate"] < 0.1, dataset
