"""Extension bench: approximate-EMF trade-off."""


def test_future_approximate_emf(run_figure):
    result = run_figure("future_approximate_emf")
    data = result.data
    exact = data["exact"]
    # Tight E2LSH buckets approach the exact filter with tiny deviation.
    tight = data["e2lsh-w0.001"]
    assert abs(tight["remaining"] - exact["remaining"]) < 0.05
    assert tight["deviation"] < 0.01
    # Wider buckets trade more reduction for more deviation.
    wide = data["e2lsh-w0.1"]
    assert wide["remaining"] < exact["remaining"]
    assert wide["deviation"] > tight["deviation"]
    # SimHash's direction-collapse failure mode: it over-merges.
    assert data["simhash-32"]["remaining"] < 0.01
