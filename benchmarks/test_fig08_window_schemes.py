"""Figs. 8/12 bench: window-scheme miss counts (incl. worked example)."""


def test_fig08_window_schemes(run_figure):
    result = run_figure("fig08")
    example = result.data["paper example"]
    # Paper: single (26) and double (25) nearly tied; joint windows win.
    assert abs(example["single"] - example["double"]) <= 3
    assert example["coordinated"] <= example["joint"] < example["single"]
    for workload, misses in result.data.items():
        assert misses["coordinated"] < misses["single"], workload
        if misses.get("oracle") != "-":
            assert misses["oracle"] <= misses["coordinated"] * 1.05, workload
