"""Profile bench: structural signatures per dataset."""


def test_dataset_profile(run_figure):
    result = run_figure("dataset_profile")
    data = result.data
    # Domain signatures: COLLAB is the clustered one; REDDIT datasets
    # are hub-dominated (max degree >> mean); AIDS is small and sparse.
    assert data["COLLAB"]["clustering"] > 0.3
    for reddit in ("RD-B", "RD-5K", "RD-12K"):
        assert data[reddit]["max_degree"] > 5 * data[reddit]["mean_degree"]
    # Duplicate structure grows with scale (WL unique fraction falls).
    assert data["RD-5K"]["wl_unique_fraction"] < data["AIDS"]["wl_unique_fraction"]
