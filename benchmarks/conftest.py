"""Shared helpers for the figure/table benchmarks.

Each benchmark regenerates one evaluation figure or table via the
experiment registry, times it with pytest-benchmark (single round — the
interesting number is the workload, not timer jitter), prints the
regenerated rows/series, and asserts the paper's qualitative shape.

Run with::

    pytest benchmarks/ --benchmark-only
"""

import pytest

from repro.experiments.registry import run_experiment


@pytest.fixture
def run_figure(benchmark, capsys):
    """Benchmark one experiment and print its regenerated table."""

    def runner(name: str, quick: bool = True, seed: int = 0):
        result = benchmark.pedantic(
            run_experiment,
            args=(name,),
            kwargs={"quick": quick, "seed": seed},
            rounds=1,
            iterations=1,
        )
        with capsys.disabled():
            print()
            print(result.render())
        return result

    return runner
