"""Fig. 24 bench: inference throughput per platform."""


def test_fig24_throughput(run_figure):
    result = run_figure("fig24")
    ratios = result.data["cegma_ratio"]
    assert ratios["PyG-GPU"] > 100
    assert ratios["HyGCN"] > 3
    assert ratios["AWB-GCN"] > 3
