"""Ablation bench: input-buffer capacity sweep."""


def test_ablation_buffer_sweep(run_figure):
    result = run_figure("ablation_buffer")
    sizes = sorted(result.data)
    # CEGMA saturates at/below the paper's 128 KB; the baseline's DRAM
    # traffic keeps dropping well past it (the Fig. 4 argument).
    assert result.data[128]["cegma_latency"] <= result.data[16]["cegma_latency"]
    cegma_gain = result.data[16]["cegma_dram"] / result.data[512]["cegma_dram"]
    awb_gain = result.data[16]["awb_dram"] / result.data[512]["awb_dram"]
    assert awb_gain > cegma_gain
