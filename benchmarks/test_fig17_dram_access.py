"""Fig. 17 bench: DRAM accesses normalized to HyGCN."""


def test_fig17_dram_access(run_figure):
    result = run_figure("fig17")
    # Paper: CEGMA at ~0.41 of HyGCN's traffic on average; GMN-Li lowest.
    assert 0.2 < result.data["cegma_mean"] < 0.8
    normalized = result.data["normalized"]
    gmn_best = min(row["CEGMA"] for row in normalized["GMN-Li"].values())
    assert gmn_best < 0.3
