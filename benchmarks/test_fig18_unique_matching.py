"""Fig. 18 bench: remaining unique matching after EMF."""

import numpy as np


def test_fig18_unique_matching(run_figure):
    result = run_figure("fig18")

    def removed(ds):
        row = result.data[ds]
        return 1 - float(np.mean(list(row.values())))

    # Paper anchors: 67% removed on AIDS, 97% on RD-5K.
    assert 0.45 < removed("AIDS") < 0.9
    assert removed("RD-5K") > 0.9
    assert removed("RD-B") > removed("AIDS")
