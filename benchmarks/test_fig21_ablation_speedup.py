"""Fig. 21 bench: CEGMA-EMF / CEGMA-CGC / CEGMA speedups over AWB-GCN."""


def test_fig21_ablation_speedup(run_figure):
    result = run_figure("fig21")
    speed = result.data["mean_speedup"]
    # Paper: EMF 3.6x, CGC 2.9x; full CEGMA above both.
    assert 1.5 < speed["CEGMA-EMF"] < 15
    assert 1.5 < speed["CEGMA-CGC"] < 10
    assert speed["CEGMA"] >= max(speed["CEGMA-EMF"], speed["CEGMA-CGC"]) * 0.95
    per_dataset = result.data["per_dataset"]
    assert (
        per_dataset["RD-5K"]["speedup"]["CEGMA-EMF"]
        > per_dataset["AIDS"]["speedup"]["CEGMA-EMF"]
    )
