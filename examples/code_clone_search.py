"""Code-clone search: one query against a candidate database.

The paper's motivating workload (Section III-A): searching a code
snippet against BigCloneBench means matching one query graph with 60,000
candidates; real-time clone search needs the answer within a second,
which milliseconds-per-pair platforms cannot deliver.

This example builds a database of function graphs (GITHUB-like
structure standing in for flow-augmented ASTs), scores one query
against every candidate with GMN-Li, ranks the clones, and asks of each
platform: how large a database can it search within the one-second
budget?

Run with::

    python examples/code_clone_search.py
"""

import numpy as np

from repro import SimilaritySearchIndex, build_model
from repro.graphs import generate_graph, substitute_edges

DATABASE_SIZE = 24
SEARCH_BUDGET_SECONDS = 1.0
PLATFORMS = ("PyG-CPU", "PyG-GPU", "AWB-GCN", "CEGMA")


def build_database(rng, size):
    """Candidate function graphs; a few are disguised clones of others."""
    database = []
    for index in range(size):
        if index % 4 == 3:
            # A clone: an earlier candidate with one edge substituted
            # (a refactored copy of the same function).
            original = database[index - 1]
            database.append(substitute_edges(original, 1, rng))
        else:
            database.append(generate_graph("GITHUB", rng))
    return database


def main() -> None:
    rng = np.random.default_rng(7)
    database = build_database(rng, DATABASE_SIZE)
    # The query is a lightly edited copy of candidate 5: a true clone.
    query = substitute_edges(database[5], 1, rng)
    model = build_model("GMN-Li", input_dim=query.feature_dim)

    index = SimilaritySearchIndex(model)
    index.add_many(database)

    print(f"Query scored against {len(index)} candidates (GMN-Li).")
    print("Top 5 matches (candidate 5 is the planted clone):")
    for rank, result in enumerate(index.query(query, top_k=5), start=1):
        marker = "  <-- planted clone" if result.index == 5 else ""
        print(
            f"  #{rank}: candidate {result.index:2d}  "
            f"score={result.score:.5f}{marker}"
        )

    # How fast can each platform search?
    report = index.plan(query, SEARCH_BUDGET_SECONDS, platforms=PLATFORMS)
    print(f"\nSearch-rate per platform (budget: {SEARCH_BUDGET_SECONDS:.0f} s):")
    print(f"  {'platform':8s} {'pairs/s':>12s} {'searchable DB size':>20s}")
    for platform in PLATFORMS:
        row = report[platform]
        throughput = 1.0 / row["per_pair_seconds"]
        print(
            f"  {platform:8s} {throughput:12.0f} "
            f"{row['max_database_size']:20,d}"
        )
    print(
        "\nOnly the accelerator-class platforms can cover a "
        "BigCloneBench-scale database (60,000 candidates) in real time."
    )


if __name__ == "__main__":
    main()
