"""Walk through the paper's worked examples with the library.

Reproduces, step by step, the running example of Sections III-IV
(Figs. 5, 8, 10, 12): a 4-node target graph and a 6-node query graph,
a 4-node input buffer.

1. Fig. 5  — duplicate node features from isomorphic neighborhoods;
2. Fig. 10 — the EMF's RecordSet/TagMap after digesting the features;
3. Figs. 8/12 — all four window schemes' step tables and miss counts.

Run with::

    python examples/paper_walkthrough.py
"""

from repro.cgc import SCHEDULERS
from repro.cgc.render import render_step_matrix, schedule_summary, schedule_table
from repro.emf import elastic_matching_filter
from repro.graphs import Graph, GraphPair
from repro.models import GraphSim


def paper_example():
    """Target G1 (nodes 1-4) and query G2 (nodes a-f)."""
    target = Graph.from_undirected_edges(4, [(0, 2), (1, 2), (2, 3)])
    query = Graph.from_undirected_edges(
        6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (1, 3)]
    )
    return GraphPair(target, query)


def main() -> None:
    pair = paper_example()

    # --- Fig. 5: duplicate features -----------------------------------
    print("Fig. 5 — duplicate node features")
    trace = GraphSim().forward_pair(pair)
    features = trace.layers[-1].target_features
    print(
        "  node_1 and node_2 share their 2-hop neighborhood, so their "
        "layer features coincide:"
    )
    print(f"  ||X_1 - X_2|| = {abs(features[0] - features[1]).max():.2e}")
    print(f"  ||X_1 - X_3|| = {abs(features[0] - features[2]).max():.2e}\n")

    # --- Fig. 10: the EMF digests the features ------------------------
    print("Fig. 10 — Elastic Matching Filter state")
    result = elastic_matching_filter(features)
    print(f"  RecordSet R_l (unique nodes):  {result.unique_indices}")
    print(f"  TagMap M_l (duplicate -> unique): {result.tag_map}")
    print(
        f"  {result.num_unique} of {result.num_nodes} target nodes are "
        "unique; the rest copy their counterpart's similarity row.\n"
    )

    # --- Figs. 8/12: window schemes -----------------------------------
    print("Figs. 8/12 — window schemes, 4-node buffer")
    for scheme in ("single", "double", "joint", "coordinated"):
        schedule = SCHEDULERS[scheme](pair, capacity=4)
        print(f"\n[{schedule_summary(schedule)}]")
        print(schedule_table(schedule, pair, max_steps=10))

    print("\nCoordinated schedule as the paper's annotated adjacency")
    print("matrix (cell = step index processing that edge/matching):\n")
    print(render_step_matrix(SCHEDULERS["coordinated"](pair, 4), pair))

    print(
        "\nThe joint window keeps one side stationary while the other "
        "streams past (property 1) and turns at the closest start point "
        "(property 2); the coordinated variant picks the direction by "
        "Approximate Outlier Estimation, retiring the side with fewer "
        "remaining edges."
    )


if __name__ == "__main__":
    main()
