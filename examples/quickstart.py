"""Quickstart: score a graph pair, filter its matching, simulate CEGMA.

Runs in a few seconds and walks through the three layers of the library:

1. build a dataset and a GMN model, score a pair;
2. apply the Elastic Matching Filter as a plain software accelerator and
   verify it is lossless;
3. simulate the full platform lineup on the same workload.

Run with::

    python examples/quickstart.py
"""

import numpy as np

from repro import (
    build_model,
    filtered_similarity_matrix,
    load_dataset,
    similarity_matrix,
    simulate_workload,
)
from repro.counters import FlopCounter


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Load a dataset and score a pair with a Graph Matching Network.
    # ------------------------------------------------------------------
    pairs = load_dataset("AIDS", seed=0, num_pairs=4)
    model = build_model("GraphSim", input_dim=pairs[0].target.feature_dim)

    print("GraphSim similarity scores (label 1 = similar, 0 = dissimilar):")
    for pair in pairs:
        trace = model.forward_pair(pair)
        print(
            f"  pair({pair.target.num_nodes}n vs {pair.query.num_nodes}n) "
            f"label={pair.label}  score={trace.score:.4f}"
        )

    # ------------------------------------------------------------------
    # 2. The EMF as a software accelerator: identical results, far fewer
    #    similarity FLOPs.
    # ------------------------------------------------------------------
    trace = model.forward_pair(pairs[0])
    layer = trace.layers[-1]
    x, y = layer.target_features, layer.query_features

    dense_flops = FlopCounter()
    dense = similarity_matrix(x, y, "cosine", dense_flops)
    filtered_flops = FlopCounter()
    filtered = filtered_similarity_matrix(x, y, "cosine", filtered_flops)

    # Lossless up to the EMF's feature quantization (1e-6; the real
    # hardware's fixed-point features make duplicates bit-identical).
    assert np.allclose(dense, filtered, atol=1e-5), "EMF must be lossless"
    saved = 1 - filtered_flops.total / dense_flops.total
    max_err = float(np.abs(dense - filtered).max())
    print(
        f"\nEMF-filtered similarity: max deviation {max_err:.2e}, "
        f"{saved:.1%} of matching FLOPs eliminated "
        f"({dense_flops.total:,} -> {filtered_flops.total:,})"
    )

    # ------------------------------------------------------------------
    # 3. Simulate all platforms on the same workload.
    # ------------------------------------------------------------------
    print("\nSimulated per-pair latency (GraphSim on GITHUB):")
    results = simulate_workload("GraphSim", "GITHUB", num_pairs=4, batch_size=4)
    baseline = results["PyG-CPU"].latency_seconds
    for platform, result in results.items():
        print(
            f"  {platform:8s} {result.latency_per_pair * 1e6:12.2f} us/pair  "
            f"({baseline / result.latency_seconds:8.1f}x vs PyG-CPU)"
        )


if __name__ == "__main__":
    main()
