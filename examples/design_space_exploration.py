"""Accelerator design-space exploration with the CEGMA simulator.

Beyond reproducing the paper's configuration, the simulator doubles as a
design tool. This example sweeps two of Table III's choices:

1. input-buffer size (the paper's Fig. 4 argues scaling buffers is not
   viable — here is the measured diminishing return);
2. the component ablation (EMF / CGC / both) across one small and one
   large dataset, showing which mechanism matters where.

Run with::

    python examples/design_space_exploration.py
"""

from repro import build_platform
from repro.experiments.common import workload_traces

BUFFER_SIZES_KB = (32, 64, 128, 256, 512)
DATASETS = ("AIDS", "RD-5K")
MODEL = "GraphSim"


def buffer_sweep(traces) -> None:
    print(f"  {'buffer':>8s} {'latency/pair':>14s} {'DRAM/pair':>12s}")
    for size_kb in BUFFER_SIZES_KB:
        simulator = build_platform(f"CEGMA@buffer_kb={size_kb}")
        result = simulator.simulate_batches(list(traces))
        print(
            f"  {size_kb:>6d}KB {result.latency_per_pair * 1e6:>11.2f} us "
            f"{result.dram_bytes / result.num_pairs / 1024:>9.1f} KB"
        )


def ablation(traces) -> None:
    for platform in ("AWB-GCN", "CEGMA-EMF", "CEGMA-CGC", "CEGMA"):
        simulator = build_platform(platform)
        result = simulator.simulate_batches(list(traces))
        print(
            f"  {platform:10s} {result.latency_per_pair * 1e6:10.2f} us/pair  "
            f"{result.dram_bytes / result.num_pairs / 1024:8.1f} KB DRAM/pair"
        )


def main() -> None:
    for dataset in DATASETS:
        traces = workload_traces(MODEL, dataset, 4, 4, 0)
        print(f"\n=== {MODEL} on {dataset} ===")
        print("Input-buffer sweep (full CEGMA):")
        buffer_sweep(traces)
        print("Component ablation:")
        ablation(traces)

    print(
        "\nTakeaways: enlarging buffers buys little once the coordinated "
        "window fits a pair (the paper's argument against brute-force "
        "buffering), and the EMF dominates on large, redundant graphs "
        "while the CGC carries the small-graph cases."
    )


if __name__ == "__main__":
    main()
