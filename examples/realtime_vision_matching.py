"""Real-time graph matching under an autonomous-driving deadline.

Section III-A: autonomous vehicles need graph-matching-class tasks
answered in ~20 ms. Vision pipelines match keypoint/segment graphs
between consecutive frames; the repeated object structure in a scene is
exactly the duplicate-subgraph property the EMF exploits ("duplicate
components within an object in point clouds").

This example builds scene graphs out of repeated object motifs, matches
consecutive frames with GraphSim, and checks which platforms meet the
20 ms deadline as scenes grow.

Run with::

    python examples/realtime_vision_matching.py
"""

import numpy as np

from repro import build_model
from repro.core import simulate_traces
from repro.graphs import GraphPair, MotifSpec, motif_soup_graph, substitute_edges
from repro.trace import profile_batches

DEADLINE_SECONDS = 20e-3
PLATFORMS = ("PyG-GPU", "HyGCN", "AWB-GCN", "CEGMA")
SCENE_SIZES = (500, 2000, 4000)


def scene_graph(num_keypoints: int, rng: np.random.Generator):
    """A frame's keypoint graph: repeated object motifs + clutter.

    Cars, pedestrians, signs: each object class contributes several
    near-identical subgraphs (wheels, limbs, poles), plus a random
    background component.
    """
    object_size = max(6, num_keypoints // 20)
    copies = max(2, num_keypoints // (3 * object_size))
    specs = [
        MotifSpec("wheel", object_size, copies=copies),
        MotifSpec("star", max(4, object_size // 2), copies=copies),
    ]
    used = sum(spec.nodes_per_copy * spec.copies for spec in specs)
    clutter = max(4, num_keypoints - used)
    return motif_soup_graph(
        specs, random_nodes=clutter, random_edges=2 * clutter, rng=rng
    )


def main() -> None:
    rng = np.random.default_rng(11)
    model = build_model("GraphSim")

    print(f"Frame-to-frame matching, {DEADLINE_SECONDS * 1e3:.0f} ms deadline\n")
    header = f"  {'keypoints':>9s} " + " ".join(f"{p:>10s}" for p in PLATFORMS)
    print(header + "   (latency per frame pair)")
    for size in SCENE_SIZES:
        frame = scene_graph(size, rng)
        # The next frame: same scene, slightly changed connectivity.
        next_frame = substitute_edges(frame, 2, rng)
        pair = GraphPair(frame, next_frame)
        traces = profile_batches(model, [pair], batch_size=1)
        results = simulate_traces(traces, PLATFORMS)
        cells = []
        for platform in PLATFORMS:
            latency = results[platform].latency_per_pair
            verdict = "ok" if latency <= DEADLINE_SECONDS else "MISS"
            cells.append(f"{latency * 1e3:7.2f}ms {verdict}")
        print(f"  {frame.num_nodes:>9d} " + " ".join(cells))

    print(
        "\nThe GPU blows the deadline as scenes grow, while CEGMA's "
        "filtered matching keeps frame latency in the microsecond range."
    )


if __name__ == "__main__":
    main()
