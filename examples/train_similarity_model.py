"""Train a Graph Matching Network end to end on the similarity task.

The performance reproduction runs frozen random weights (inference cost
does not depend on weight values), but the paper's premise is that GMNs
*learn* graph similarity. This example trains the autodiff-backed
:class:`TrainableGMN` on AIDS-like molecule pairs (similar = 1
substituted edge, dissimilar = 4) and reports held-out accuracy, the
loss curve, and the effect of layer-wise cross-graph messages.

Run with::

    python examples/train_similarity_model.py
"""

from repro.analysis.ascii_plot import line_plot
from repro.graphs import load_dataset
from repro.models import TrainableGMN

TRAIN_PAIRS = 64
TEST_PAIRS = 32
EPOCHS = 60


def main() -> None:
    pairs = load_dataset("AIDS", seed=0, num_pairs=TRAIN_PAIRS + TEST_PAIRS)
    train, test = pairs[:TRAIN_PAIRS], pairs[TRAIN_PAIRS:]
    input_dim = train[0].target.feature_dim

    print(
        f"Training on {len(train)} labeled pairs "
        f"(similar = 1 substituted edge, dissimilar = 4); "
        f"testing on {len(test)}.\n"
    )

    curves = {}
    for cross_messages in (True, False):
        label = "layer-wise (cross messages)" if cross_messages else "siamese (no matching)"
        model = TrainableGMN(
            input_dim=input_dim,
            hidden_dim=16,
            num_layers=2,
            cross_messages=cross_messages,
            seed=1,
        )
        losses = model.fit(train, epochs=EPOCHS)
        accuracy = model.accuracy(test)
        print(
            f"{label:28s} loss {losses[0]:.3f} -> {losses[-1]:.3f}   "
            f"test accuracy {accuracy:.3f}"
        )
        curves[label.split(" ")[0]] = [
            (float(epoch), loss) for epoch, loss in enumerate(losses)
        ]

    print()
    print(line_plot(curves, title="training loss (BCE) per epoch"))
    print(
        "\nBoth variants learn the task well above chance. The layer-wise "
        "accuracy advantage the paper cites requires larger-scale "
        "training than this example runs (see the module docstring of "
        "repro.models.trainable)."
    )


if __name__ == "__main__":
    main()
