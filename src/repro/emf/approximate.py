"""Approximate (near-duplicate) matching filter — an extension.

The paper's EMF only merges *exactly* equal features, which is lossless
but leaves near-duplicates (nodes whose neighborhoods differ by one
distant edge) unmerged. This extension trades bounded error for more
reduction: nodes are bucketed by a SimHash signature — signs of random
projections of their feature vectors — so nodes within a small angular
distance land in the same bucket with high probability and share one
representative's matching results.

Unlike Algorithm 1 this is *approximate*: the broadcast similarity can
deviate by the angular diameter of a bucket. The
``future_approximate_emf`` experiment measures both sides of that trade
against the exact filter. Setting ``num_bits`` high makes buckets
shrink toward exact duplicates.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from .filter import FilterResult

__all__ = [
    "simhash_signatures",
    "approximate_matching_filter",
    "e2lsh_signatures",
    "e2lsh_matching_filter",
]


def simhash_signatures(
    features: np.ndarray,
    num_bits: int = 32,
    seed: int = 0,
    center: bool = True,
) -> np.ndarray:
    """SimHash signature per row: sign pattern of random projections.

    Rows with small angular distance agree on most bits; each bit
    disagrees with probability ``theta / pi`` for angle ``theta``.

    ``center`` subtracts the mean row first. GNN features after several
    ReLU layers are nearly parallel (direction collapse), so raw angular
    hashing puts everything in one bucket; centering measures angles
    around the feature cloud's centroid, where node differences live.
    """
    features = np.asarray(features, dtype=np.float64)
    if features.ndim != 2:
        raise ValueError("features must be 2-D")
    if num_bits < 1 or num_bits > 64:
        raise ValueError("num_bits must be in [1, 64]")
    if center and features.shape[0]:
        features = features - features.mean(axis=0, keepdims=True)
    rng = np.random.default_rng(seed)
    projections = rng.normal(size=(features.shape[1], num_bits))
    bits = (features @ projections) >= 0.0
    weights = (1 << np.arange(num_bits, dtype=np.uint64))
    return (bits.astype(np.uint64) * weights).sum(axis=1)


def approximate_matching_filter(
    features: np.ndarray,
    num_bits: int = 32,
    seed: int = 0,
    center: bool = True,
) -> FilterResult:
    """Bucket nodes by SimHash signature; first of each bucket is unique.

    Returns the same :class:`FilterResult` structure as the exact
    filter, so :class:`~repro.emf.filter.MatchingPlan` and the
    simulators consume it unchanged. Exact duplicates always share a
    signature, so the approximate filter removes at least as much as
    bucketing-by-equality; with few bits it merges near-duplicates too.
    """
    signatures = simhash_signatures(features, num_bits, seed, center)
    record_set: Dict[int, int] = {}
    tag_map: Dict[int, int] = {}
    seen: Dict[int, int] = {}
    for index, signature in enumerate(signatures.tolist()):
        if signature in seen:
            tag_map[index] = seen[signature]
        else:
            seen[signature] = index
            record_set[index] = signature & 0xFFFFFFFF
    return FilterResult(record_set, tag_map, features.shape[0], 0)


def e2lsh_signatures(
    features: np.ndarray,
    num_projections: int = 8,
    bucket_width: float = 0.1,
    seed: int = 0,
) -> List[tuple]:
    """p-stable (E2LSH) signatures: quantized random projections.

    Rows within euclidean distance ~``bucket_width`` collide with high
    probability. Unlike SimHash this is *distance*-sensitive, which is
    the right family for post-ReLU GNN features: their directions
    collapse and the informative differences are magnitudes (see the
    ``future_approximate_emf`` experiment for the comparison).
    """
    features = np.asarray(features, dtype=np.float64)
    if features.ndim != 2:
        raise ValueError("features must be 2-D")
    if num_projections < 1:
        raise ValueError("num_projections must be positive")
    if bucket_width <= 0:
        raise ValueError("bucket_width must be positive")
    rng = np.random.default_rng(seed)
    projections = rng.normal(size=(features.shape[1], num_projections))
    offsets = rng.uniform(0.0, bucket_width, size=num_projections)
    buckets = np.floor((features @ projections + offsets) / bucket_width)
    return [tuple(row) for row in buckets.astype(np.int64).tolist()]


def e2lsh_matching_filter(
    features: np.ndarray,
    num_projections: int = 8,
    bucket_width: float = 0.1,
    seed: int = 0,
) -> FilterResult:
    """Approximate filter over E2LSH buckets (distance-sensitive)."""
    signatures = e2lsh_signatures(features, num_projections, bucket_width, seed)
    record_set: Dict[int, int] = {}
    tag_map: Dict[int, int] = {}
    seen: Dict[tuple, int] = {}
    for index, signature in enumerate(signatures):
        if signature in seen:
            tag_map[index] = seen[signature]
        else:
            seen[signature] = index
            record_set[index] = hash(signature) & 0xFFFFFFFF
    return FilterResult(record_set, tag_map, features.shape[0], 0)
