"""Elastic Matching Filter — Algorithm 1 of the paper.

Per layer, node features output by layer ``l-1`` are hashed into 32-bit
tags. The first node carrying a tag is a *unique node* and enters the
RecordSet; subsequent nodes with the same tag are *duplicate nodes* and
enter the TagMap, affiliated with their unique counterpart. During the
matching stage only unique nodes are matched; duplicate nodes' similarity
rows/columns are copies of their unique counterpart's results (Fig. 6).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..obs.metrics import get_metrics
from .xxhash import (
    FEATURE_QUANTIZATION_DECIMALS,
    hash_feature_matrix,
    hash_feature_vector,
    quantize_features,
)

__all__ = [
    "FilterResult",
    "elastic_matching_filter",
    "MatchingPlan",
    "PlanSummary",
]

_BACKENDS = ("auto", "vectorized", "scalar")


class FilterResult:
    """Output of Algorithm 1 for one graph's feature matrix.

    Attributes
    ----------
    record_set:
        ``{unique_node_index: tag}`` — the RecordSet ``R_l``.
    tag_map:
        ``{duplicate_node_index: unique_node_index}`` — the TagMap ``M_l``.
    num_nodes:
        Total nodes digested.
    hash_conflicts:
        Number of nodes whose tag collided with a node holding *different*
        features (counted when verification is enabled; the paper reports
        zero conflicts across all experiments and so do we).
    """

    __slots__ = ("record_set", "tag_map", "num_nodes", "hash_conflicts")

    def __init__(
        self,
        record_set: Dict[int, int],
        tag_map: Dict[int, int],
        num_nodes: int,
        hash_conflicts: int = 0,
    ) -> None:
        self.record_set = record_set
        self.tag_map = tag_map
        self.num_nodes = num_nodes
        self.hash_conflicts = hash_conflicts

    @property
    def unique_indices(self) -> List[int]:
        return sorted(self.record_set)

    @property
    def num_unique(self) -> int:
        return len(self.record_set)

    @property
    def num_duplicates(self) -> int:
        return len(self.tag_map)

    @property
    def unique_fraction(self) -> float:
        return self.num_unique / self.num_nodes if self.num_nodes else 1.0

    def representative(self, node: int) -> int:
        """The unique node whose matching results ``node`` shares."""
        return self.tag_map.get(node, node)

    def multiplicities(self) -> np.ndarray:
        """How many nodes each unique node represents (itself included),
        aligned with :attr:`unique_indices`."""
        counts = {index: 1 for index in self.record_set}
        for unique_index in self.tag_map.values():
            counts[unique_index] += 1
        return np.array(
            [counts[index] for index in self.unique_indices], dtype=np.int64
        )

    def expand_rows(self, unique_rows: np.ndarray) -> np.ndarray:
        """Broadcast per-unique-node rows back to all nodes.

        ``unique_rows`` is aligned with :attr:`unique_indices`; the
        result has one row per original node, duplicates receiving their
        unique counterpart's row.
        """
        position = {
            node: pos for pos, node in enumerate(self.unique_indices)
        }
        if unique_rows.shape[0] != len(position):
            raise ValueError(
                f"expected {len(position)} unique rows, got {unique_rows.shape[0]}"
            )
        index = np.array(
            [position[self.representative(i)] for i in range(self.num_nodes)],
            dtype=np.int64,
        )
        return unique_rows[index]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FilterResult(unique={self.num_unique}, "
            f"duplicates={self.num_duplicates})"
        )


def elastic_matching_filter(
    features: np.ndarray,
    seed: int = 0,
    decimals: int = FEATURE_QUANTIZATION_DECIMALS,
    verify_conflicts: bool = True,
    method: str = "bytes",
    backend: str = "auto",
) -> FilterResult:
    """Run Algorithm 1 over a feature matrix (one graph, one layer).

    Parameters
    ----------
    features:
        ``(num_nodes, feature_dim)`` array of node features entering the
        layer whose matching is being filtered.
    seed:
        Hash seed (a hardware constant).
    decimals:
        Feature quantization applied before hashing; see
        :func:`repro.emf.xxhash.quantize_features` (the single place
        quantization happens).
    verify_conflicts:
        (xxhash method only) When True, tag hits are verified against the
        actual quantized feature *bytes* — the same bit-stream the hash
        digests, so bit-identical rows (including NaN payloads) are
        always duplicates; a mismatch is counted as a hash conflict and
        the node is conservatively treated as unique (no accuracy loss).
        The hardware omits this check because the measured conflict rate
        is negligible; we keep it on by default to *measure* that rate.
    method:
        ``"bytes"`` (default) keys nodes by their exact quantized feature
        bytes — semantically identical to a conflict-free hash and fast
        enough for full-dataset simulation. ``"xxhash"`` runs the
        hardware-faithful XXH32 tagging (used for validation; the two
        methods produce identical RecordSet/TagMap whenever XXH32 has no
        conflicts, which is every observed case).
    backend:
        ``"vectorized"`` digests the whole matrix with batch numpy ops
        (one XXH32 pass over all rows, duplicate grouping via
        ``np.unique``); ``"scalar"`` is the original per-node reference
        loop. ``"auto"`` (default) picks per method: vectorized for
        ``"xxhash"`` (batch hashing is ~50-70x faster than the Python
        XXH32 loop) and scalar for ``"bytes"`` (the dict loop beats
        sorting void-dtype rows at every measured size). Both backends
        produce bit-identical :class:`FilterResult` contents.
    """
    features = np.asarray(features, dtype=np.float64)
    if features.ndim != 2:
        raise ValueError("features must be 2-D (nodes x feature_dim)")
    if method not in ("bytes", "xxhash"):
        raise ValueError(f"unknown method {method!r}")
    if backend not in _BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; known: {_BACKENDS}")
    # Quantize exactly once; every downstream hash/compare sees the same
    # quantized array (decimals=None below means "already quantized").
    quantized = quantize_features(features, decimals)
    if backend == "auto":
        backend = "vectorized" if method == "xxhash" else "scalar"
    if backend == "scalar":
        result = _filter_scalar(quantized, seed, verify_conflicts, method)
    else:
        result = _filter_vectorized(quantized, seed, verify_conflicts, method)
    registry = get_metrics()
    if registry is not None:
        registry.inc("emf.filter.calls")
        registry.inc("emf.filter.nodes", result.num_nodes)
        registry.inc("emf.filter.unique_nodes", result.num_unique)
        registry.inc("emf.filter.duplicate_hits", result.num_duplicates)
        registry.inc("emf.filter.hash_conflicts", result.hash_conflicts)
    return result


def _filter_scalar(
    quantized: np.ndarray, seed: int, verify_conflicts: bool, method: str
) -> FilterResult:
    """Reference per-node loop (the original Algorithm 1 digest order)."""
    record_set: Dict[int, int] = {}
    tag_map: Dict[int, int] = {}
    conflicts = 0
    if method == "bytes":
        seen_bytes: Dict[bytes, int] = {}
        for index in range(quantized.shape[0]):
            key = quantized[index].tobytes()
            if key in seen_bytes:
                tag_map[index] = seen_bytes[key]
            else:
                seen_bytes[key] = index
                # Derive a stable 32-bit tag without the full hash cost.
                record_set[index] = hash(key) & 0xFFFFFFFF
        return FilterResult(record_set, tag_map, quantized.shape[0], 0)

    seen: Dict[int, int] = {}  # tag -> unique node index
    for index in range(quantized.shape[0]):
        tag = hash_feature_vector(quantized[index], seed, decimals=None)
        if tag in seen:
            counterpart = seen[tag]
            # Bitwise comparison, matching the byte stream the hash
            # digests: value comparison would misclassify bit-identical
            # NaN rows as conflicts and diverge from the bytes method.
            if verify_conflicts and (
                quantized[index].tobytes()
                != quantized[counterpart].tobytes()
            ):
                conflicts += 1
                record_set[index] = tag
                continue
            tag_map[index] = counterpart
        else:
            seen[tag] = index
            record_set[index] = tag
    return FilterResult(record_set, tag_map, quantized.shape[0], conflicts)


def _first_occurrence_groups(keys: np.ndarray) -> np.ndarray:
    """Map every element to the index of its first equal occurrence."""
    _, first_index, inverse = np.unique(
        keys, return_index=True, return_inverse=True
    )
    return first_index[inverse.ravel()]


def _filter_vectorized(
    quantized: np.ndarray, seed: int, verify_conflicts: bool, method: str
) -> FilterResult:
    """Batch digest: one hashing pass + ``np.unique`` duplicate grouping."""
    num_nodes, feature_dim = quantized.shape
    if num_nodes == 0:
        return FilterResult({}, {}, 0, 0)

    if method == "bytes":
        if feature_dim == 0:
            # Zero-width rows all share the empty byte key.
            holders = np.zeros(num_nodes, dtype=np.int64)
        else:
            contiguous = np.ascontiguousarray(quantized)
            row_bytes = np.dtype((np.void, contiguous.dtype.itemsize * feature_dim))
            holders = _first_occurrence_groups(contiguous.view(row_bytes).ravel())
        indices = np.arange(num_nodes)
        unique_mask = holders == indices
        record_set = {
            int(index): hash(quantized[index].tobytes()) & 0xFFFFFFFF
            for index in indices[unique_mask]
        }
        tag_map = dict(
            zip(
                indices[~unique_mask].tolist(),
                holders[~unique_mask].tolist(),
            )
        )
        return FilterResult(record_set, tag_map, num_nodes, 0)

    tags = hash_feature_matrix(quantized, seed, decimals=None)
    holders = _first_occurrence_groups(tags)
    indices = np.arange(num_nodes)
    is_holder = holders == indices
    if verify_conflicts:
        # A tag hit only counts as a duplicate when the quantized
        # features match the first holder's bit for bit; otherwise it is
        # a conflict and the node conservatively stays unique. Compare
        # the raw bit patterns (as the hash does), not float values —
        # NaN != NaN would otherwise turn bit-identical rows into
        # spurious conflicts and diverge from the bytes method.
        bits = np.ascontiguousarray(quantized).view(np.uint64)
        same_features = np.all(bits == bits[holders], axis=1)
        duplicate_mask = ~is_holder & same_features
        conflict_mask = ~is_holder & ~same_features
    else:
        duplicate_mask = ~is_holder
        conflict_mask = np.zeros(num_nodes, dtype=bool)
    record_mask = is_holder | conflict_mask
    record_set = dict(
        zip(
            indices[record_mask].tolist(),
            tags[record_mask].astype(np.int64).tolist(),
        )
    )
    tag_map = dict(
        zip(
            indices[duplicate_mask].tolist(),
            holders[duplicate_mask].tolist(),
        )
    )
    return FilterResult(
        record_set, tag_map, num_nodes, int(conflict_mask.sum())
    )


class MatchingPlan:
    """EMF-filtered matching workload for one (target, query) layer.

    Wraps the two per-graph filter results and provides the reduced
    workload counts plus the broadcast step that reconstructs the full
    similarity matrix from the unique-only computation.
    """

    __slots__ = ("target_filter", "query_filter")

    def __init__(self, target_filter: FilterResult, query_filter: FilterResult) -> None:
        self.target_filter = target_filter
        self.query_filter = query_filter

    @classmethod
    def from_features(
        cls,
        target_features: np.ndarray,
        query_features: np.ndarray,
        seed: int = 0,
        method: str = "bytes",
        backend: str = "auto",
    ) -> "MatchingPlan":
        return cls(
            elastic_matching_filter(
                target_features, seed, method=method, backend=backend
            ),
            elastic_matching_filter(
                query_features, seed, method=method, backend=backend
            ),
        )

    # ------------------------------------------------------------------
    @property
    def total_matchings(self) -> int:
        return self.target_filter.num_nodes * self.query_filter.num_nodes

    @property
    def unique_matchings(self) -> int:
        return self.target_filter.num_unique * self.query_filter.num_unique

    @property
    def redundant_matchings(self) -> int:
        return self.total_matchings - self.unique_matchings

    @property
    def remaining_fraction(self) -> float:
        """Fraction of matchings still computed after filtering (Fig. 18)."""
        if self.total_matchings == 0:
            return 1.0
        return self.unique_matchings / self.total_matchings

    # ------------------------------------------------------------------
    def unique_similarity(self, full_similarity: np.ndarray) -> np.ndarray:
        """Rows/columns of the similarity matrix that must be computed."""
        rows = self.target_filter.unique_indices
        cols = self.query_filter.unique_indices
        return full_similarity[np.ix_(rows, cols)]

    def broadcast(self, unique_similarity: np.ndarray) -> np.ndarray:
        """Reconstruct the full similarity matrix from unique results.

        This is the Matching Controller's type-(a) broadcast: every
        duplicate row/column is filled from its unique counterpart.
        """
        rows = self.target_filter.unique_indices
        cols = self.query_filter.unique_indices
        if unique_similarity.shape != (len(rows), len(cols)):
            raise ValueError(
                f"expected {(len(rows), len(cols))} unique results, got "
                f"{unique_similarity.shape}"
            )
        row_position = {node: position for position, node in enumerate(rows)}
        col_position = {node: position for position, node in enumerate(cols)}
        n = self.target_filter.num_nodes
        m = self.query_filter.num_nodes
        row_index = np.array(
            [
                row_position[self.target_filter.representative(i)]
                for i in range(n)
            ],
            dtype=np.int64,
        )
        col_index = np.array(
            [
                col_position[self.query_filter.representative(j)]
                for j in range(m)
            ],
            dtype=np.int64,
        )
        return unique_similarity[np.ix_(row_index, col_index)]

    def summary(self) -> "PlanSummary":
        """The simulator-facing projection of this plan.

        Exactly the fields the cycle simulators consume — active index
        tuples, remaining fraction, unique count — with the RecordSet /
        TagMap dictionaries dropped, so it is cheap to persist in the
        trace-cache sidecar and to ship across process boundaries.
        """
        return PlanSummary(
            tuple(self.target_filter.unique_indices),
            tuple(self.query_filter.unique_indices),
            self.remaining_fraction,
            self.unique_matchings,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MatchingPlan(unique={self.unique_matchings}/"
            f"{self.total_matchings})"
        )


class PlanSummary:
    """Simulator-facing slice of a :class:`MatchingPlan`.

    Carries only what the batched engine's workload preparation reads:
    the sorted unique-node index tuples for both sides (the window
    schedulers' active sets), the remaining matching fraction, and the
    unique matching count. Values are bit-identical to reading the same
    fields off the full plan, by construction.
    """

    __slots__ = (
        "target_actives",
        "query_actives",
        "remaining_fraction",
        "unique_matchings",
    )

    def __init__(
        self,
        target_actives: tuple,
        query_actives: tuple,
        remaining_fraction: float,
        unique_matchings: int,
    ) -> None:
        self.target_actives = target_actives
        self.query_actives = query_actives
        self.remaining_fraction = remaining_fraction
        self.unique_matchings = unique_matchings

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PlanSummary):
            return NotImplemented
        return (
            self.target_actives == other.target_actives
            and self.query_actives == other.query_actives
            and self.remaining_fraction == other.remaining_fraction
            and self.unique_matchings == other.unique_matchings
        )

    __hash__ = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PlanSummary(actives={len(self.target_actives)}x"
            f"{len(self.query_actives)}, unique={self.unique_matchings})"
        )
