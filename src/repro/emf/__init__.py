"""Elastic Matching Filter: XXHash tagging, Algorithm 1, hardware model."""

from .approximate import (
    approximate_matching_filter,
    e2lsh_matching_filter,
    e2lsh_signatures,
    simhash_signatures,
)
from .batch import batch_matching_counts, cross_pair_headroom
from .filter import FilterResult, MatchingPlan, elastic_matching_filter
from .hardware import EMFCycleReport, EMFHardwareModel
from .pipeline import EMFPipelineSimulator, PipelineStats
from .signatures import node_feature_tags
from .xxhash import (
    FEATURE_QUANTIZATION_DECIMALS,
    hash_feature_matrix,
    hash_feature_vector,
    quantize_features,
    xxh32,
    xxh32_batch,
)

__all__ = [
    "xxh32",
    "xxh32_batch",
    "hash_feature_vector",
    "hash_feature_matrix",
    "quantize_features",
    "FEATURE_QUANTIZATION_DECIMALS",
    "FilterResult",
    "MatchingPlan",
    "elastic_matching_filter",
    "EMFHardwareModel",
    "EMFCycleReport",
    "batch_matching_counts",
    "cross_pair_headroom",
    "EMFPipelineSimulator",
    "PipelineStats",
    "node_feature_tags",
    "approximate_matching_filter",
    "simhash_signatures",
    "e2lsh_matching_filter",
    "e2lsh_signatures",
]
