"""Cross-pair duplicate analysis — an extension beyond the paper.

CEGMA's EMF deduplicates *within* each graph: a duplicate's similarity
row can only be copied if its unique counterpart faces the same
counterpart node set, which per-pair filtering guarantees. But batches
contain much more redundancy than that: the evaluation's batches pair
positive and negative perturbations of the *same originals*, and motif
structure repeats across independent graphs. A future EMF that
memoized *cross-pair* (unique-target, unique-query) feature
combinations could skip those matchings too.

This module measures that headroom. For each matching layer it counts:

- per-pair unique matchings (what the paper's EMF computes), and
- batch-unique matchings: distinct (target-feature, query-feature)
  value pairs across the whole batch — the lower bound any
  batch-scoped memoization could reach.

The gap is the additional reduction available to a cross-pair EMF,
reported by the ``future_batch_emf`` experiment.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from ..trace.events import PairTrace
from .filter import elastic_matching_filter
from .xxhash import FEATURE_QUANTIZATION_DECIMALS, quantize_features

__all__ = ["batch_matching_counts", "cross_pair_headroom"]


def _quantized_keys(
    features: np.ndarray, decimals: int
) -> List[bytes]:
    quantized = quantize_features(features, decimals)
    return [quantized[i].tobytes() for i in range(features.shape[0])]


def batch_matching_counts(
    traces: Sequence[PairTrace],
    decimals: int = FEATURE_QUANTIZATION_DECIMALS,
) -> Dict[str, int]:
    """Matching-workload counts at three dedup scopes over a batch.

    Returns ``total`` (all-to-all), ``per_pair_unique`` (the paper's
    EMF), and ``batch_unique`` (distinct cross-pair feature
    combinations), summed over every matching layer of every pair.
    """
    total = 0
    per_pair_unique = 0
    batch_unique = 0
    num_layers = max((len(t.layers) for t in traces), default=0)
    for layer_index in range(num_layers):
        combination_keys = set()
        for trace in traces:
            if layer_index >= len(trace.layers):
                continue
            layer = trace.layers[layer_index]
            if not layer.has_matching:
                continue
            total += layer.num_matching_pairs
            target_filter = elastic_matching_filter(
                layer.target_features, decimals=decimals
            )
            query_filter = elastic_matching_filter(
                layer.query_features, decimals=decimals
            )
            per_pair_unique += (
                target_filter.num_unique * query_filter.num_unique
            )
            target_keys = _quantized_keys(
                layer.target_features[target_filter.unique_indices], decimals
            )
            query_keys = _quantized_keys(
                layer.query_features[query_filter.unique_indices], decimals
            )
            for t_key in target_keys:
                for q_key in query_keys:
                    combination_keys.add((t_key, q_key))
        batch_unique += len(combination_keys)
    return {
        "total": total,
        "per_pair_unique": per_pair_unique,
        "batch_unique": batch_unique,
    }


def cross_pair_headroom(
    traces: Sequence[PairTrace],
    decimals: int = FEATURE_QUANTIZATION_DECIMALS,
) -> Dict[str, float]:
    """Reduction fractions at both scopes plus the additional headroom.

    ``paper_emf_remaining`` is the Fig. 18 metric; ``batch_emf_remaining``
    the cross-pair lower bound; ``headroom`` the extra fraction of the
    *original* workload a batch-scoped filter could remove on top of the
    paper's design.
    """
    counts = batch_matching_counts(traces, decimals)
    if counts["total"] == 0:
        return {
            "paper_emf_remaining": 1.0,
            "batch_emf_remaining": 1.0,
            "headroom": 0.0,
        }
    per_pair = counts["per_pair_unique"] / counts["total"]
    batch = counts["batch_unique"] / counts["total"]
    return {
        "paper_emf_remaining": per_pair,
        "batch_emf_remaining": batch,
        "headroom": per_pair - batch,
    }
