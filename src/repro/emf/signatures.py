"""Reusable EMF signature extraction.

The EMF computes a 32-bit XXH32 tag per node (Section IV-B) purely to
detect duplicate work inside one matching pair, then throws the tags
away. This module exposes the same tags as *set signatures* — the
per-graph set of node-hash values — so other subsystems (the search
sketches of :mod:`repro.search.sketch`) can reuse the paper's own
duplicate-detection machinery for candidate retrieval. Extraction
routes through :func:`~repro.emf.xxhash.hash_feature_matrix`, so the
tags here are bit-identical to the tags the filter itself records.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .xxhash import FEATURE_QUANTIZATION_DECIMALS, hash_feature_matrix

__all__ = ["node_feature_tags"]


def node_feature_tags(
    features: np.ndarray,
    seed: int = 0,
    decimals: Optional[int] = FEATURE_QUANTIZATION_DECIMALS,
) -> np.ndarray:
    """The graph's EMF tag set: sorted unique XXH32 node tags.

    One uint32 per *distinct* (quantized) feature row — duplicate rows
    collapse to one tag, exactly the population the EMF's record set
    holds after Algorithm 1. An empty or zero-node feature matrix
    yields an empty set.
    """
    features = np.asarray(features, dtype=np.float64)
    if features.ndim != 2:
        raise ValueError("features must be 2-D (nodes x feature_dim)")
    if features.shape[0] == 0:
        return np.empty(0, dtype=np.uint32)
    return np.unique(hash_feature_matrix(features, seed=seed, decimals=decimals))
