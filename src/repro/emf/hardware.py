"""EMF hardware timing model (Fig. 11 architecture, Fig. 23 overheads).

The EMF works producer-consumer with the processing engine: the MAC
array computes XXHash tags for node features (EMF-Hashing), and the
DuplicateFilter looks tags up in the TagBuffer through a bank of parallel
duplicate comparators (EMF-Filtering).

Timing model (calibrated to Fig. 23's reported cycle counts):

- Hashing: the 128-row MAC array hashes up to ``hash_parallelism`` nodes
  concurrently, streaming one feature element per cycle per node row, so
  one wave of up to 128 nodes costs ``feature_dim`` cycles.
- Filtering: tags drain from the TaskBuffer at ``filter_throughput``
  tags per cycle; the TagBuffer's loopback-FIFO subsets let the 1024
  duplicate comparators search in parallel, so a lookup completes within
  the tag's pipeline slot as long as the RecordSet fits the comparators.

For RD-12K (391 nodes, 5 layers, 64 features) this yields 1280 hashing
cycles and 655 filtering cycles per graph, against the paper's reported
1488 and 655.
"""

from __future__ import annotations

import math

__all__ = ["EMFHardwareModel", "EMFCycleReport"]


class EMFCycleReport:
    """Per-graph EMF overhead in cycles, split per component."""

    __slots__ = ("hashing_cycles", "filtering_cycles")

    def __init__(self, hashing_cycles: int, filtering_cycles: int) -> None:
        self.hashing_cycles = hashing_cycles
        self.filtering_cycles = filtering_cycles

    @property
    def total_cycles(self) -> int:
        return self.hashing_cycles + self.filtering_cycles

    def seconds(self, frequency_hz: float = 1e9) -> float:
        return self.total_cycles / frequency_hz

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"EMFCycleReport(hash={self.hashing_cycles}, "
            f"filter={self.filtering_cycles})"
        )


class EMFHardwareModel:
    """Cycle/energy model of the Elastic Matching Filter block.

    Parameters mirror Table III: 1024 32-bit identity comparators, tags
    and map entries of 64 bits each.
    """

    def __init__(
        self,
        hash_parallelism: int = 128,
        filter_throughput: int = 3,
        num_comparators: int = 1024,
        tag_buffer_entries: int = 65536,
    ) -> None:
        if min(hash_parallelism, filter_throughput, num_comparators) < 1:
            raise ValueError("hardware parameters must be positive")
        self.hash_parallelism = hash_parallelism
        self.filter_throughput = filter_throughput
        self.num_comparators = num_comparators
        self.tag_buffer_entries = tag_buffer_entries

    # ------------------------------------------------------------------
    def hashing_cycles(self, num_nodes: int, feature_dim: int) -> int:
        """Cycles to hash one graph's features for one layer."""
        waves = math.ceil(num_nodes / self.hash_parallelism)
        return waves * feature_dim

    def filtering_cycles(self, num_nodes: int, record_set_size: int = 0) -> int:
        """Cycles to filter one graph's tags for one layer.

        When the RecordSet outgrows the comparator bank, each lookup
        needs multiple comparator passes (loopback FIFO rotations).
        """
        passes = max(1, math.ceil(max(record_set_size, 1) / self.num_comparators))
        return math.ceil(num_nodes / self.filter_throughput) * passes

    def per_graph_report(
        self,
        num_nodes: int,
        feature_dim: int,
        num_layers: int,
        unique_nodes_per_layer: int = 0,
    ) -> EMFCycleReport:
        """Total EMF overhead for one graph across all matching layers."""
        hashing = num_layers * self.hashing_cycles(num_nodes, feature_dim)
        filtering = num_layers * self.filtering_cycles(
            num_nodes, unique_nodes_per_layer
        )
        return EMFCycleReport(hashing, filtering)

    # ------------------------------------------------------------------
    def tag_buffer_overflow(self, unique_nodes: int) -> bool:
        """Whether the RecordSet exceeds the on-chip TagBuffer.

        Overflowing nodes are conservatively treated as unique (their
        matchings are computed rather than copied), trading performance
        for correctness; no accuracy is ever lost.
        """
        return unique_nodes > self.tag_buffer_entries

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"EMFHardwareModel(hash_par={self.hash_parallelism}, "
            f"filter_tput={self.filter_throughput})"
        )
