"""Cycle-granular simulation of the EMF's producer-consumer pipeline.

Fig. 11: the MAC array *produces* (node index, tag) entries into the
TaskBuffer; the DuplicateFilter *consumes* them, looking each tag up in
the TagBuffer's comparator banks. The coarse model in
:mod:`repro.emf.hardware` gives closed-form cycle counts; this module
simulates the FIFO cycle by cycle, exposing occupancy, stalls, and the
end-to-end drain time, to verify the closed-form model and to size the
TaskBuffer (a full buffer back-pressures the producer).
"""

from __future__ import annotations

import math

from ..obs.metrics import get_metrics

__all__ = ["EMFPipelineSimulator", "PipelineStats"]


class PipelineStats:
    """Outcome of one pipeline run."""

    __slots__ = (
        "total_cycles",
        "producer_stall_cycles",
        "consumer_idle_cycles",
        "max_occupancy",
    )

    def __init__(
        self,
        total_cycles: int,
        producer_stall_cycles: int,
        consumer_idle_cycles: int,
        max_occupancy: int,
    ) -> None:
        self.total_cycles = total_cycles
        self.producer_stall_cycles = producer_stall_cycles
        self.consumer_idle_cycles = consumer_idle_cycles
        self.max_occupancy = max_occupancy

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PipelineStats(cycles={self.total_cycles}, "
            f"stalls={self.producer_stall_cycles}, "
            f"occupancy<={self.max_occupancy})"
        )


class EMFPipelineSimulator:
    """Cycle-by-cycle TaskBuffer simulation.

    Parameters
    ----------
    hash_parallelism:
        Nodes hashed concurrently by the MAC array (tags arrive in
        bursts of this size every ``hash_wave_cycles`` cycles).
    hash_wave_cycles:
        Cycles per hashing wave (the feature dim, in the coarse model).
    consume_per_cycle:
        Tags the DuplicateFilter retires per cycle (filter throughput).
    task_buffer_entries:
        FIFO capacity; a full FIFO back-pressures the producer, which
        is the sizing question this simulator answers.
    """

    def __init__(
        self,
        hash_parallelism: int = 128,
        hash_wave_cycles: int = 64,
        consume_per_cycle: int = 3,
        task_buffer_entries: int = 256,
    ) -> None:
        if min(
            hash_parallelism,
            hash_wave_cycles,
            consume_per_cycle,
            task_buffer_entries,
        ) < 1:
            raise ValueError("pipeline parameters must be positive")
        self.hash_parallelism = hash_parallelism
        self.hash_wave_cycles = hash_wave_cycles
        self.consume_per_cycle = consume_per_cycle
        self.task_buffer_entries = task_buffer_entries

    def run(self, num_nodes: int, method: str = "event") -> PipelineStats:
        """Drain ``num_nodes`` tags through the pipeline.

        ``method="event"`` (default) advances wave to wave in closed
        form — O(number of hashing waves) instead of O(total cycles) —
        and returns statistics identical to the cycle-accurate loop.
        ``method="cycle"`` is the original cycle-by-cycle reference,
        kept for validation (the test suite asserts both methods agree
        across randomized pipeline configurations).
        """
        if num_nodes < 0:
            raise ValueError("num_nodes must be non-negative")
        if method == "event":
            return self._record(self._run_event(num_nodes), num_nodes)
        if method != "cycle":
            raise ValueError(f"unknown method {method!r}")
        remaining_to_produce = num_nodes
        remaining_to_consume = num_nodes
        occupancy = 0
        max_occupancy = 0
        producer_stalls = 0
        consumer_idle = 0
        cycle = 0
        wave_progress = 0
        while remaining_to_consume > 0:
            cycle += 1
            # Producer: one wave of hashes completes every wave period;
            # it commits only if the FIFO has room for the whole burst.
            if remaining_to_produce > 0:
                wave_progress += 1
                if wave_progress >= self.hash_wave_cycles:
                    burst = min(self.hash_parallelism, remaining_to_produce)
                    if occupancy + burst <= self.task_buffer_entries:
                        occupancy += burst
                        remaining_to_produce -= burst
                        wave_progress = 0
                    else:
                        producer_stalls += 1
            # Consumer: retire up to the filter throughput.
            if occupancy > 0:
                consumed = min(self.consume_per_cycle, occupancy)
                occupancy -= consumed
                remaining_to_consume -= consumed
            else:
                consumer_idle += 1
            max_occupancy = max(max_occupancy, occupancy)
            if cycle > 100 * (num_nodes + self.hash_wave_cycles + 1):
                raise RuntimeError("pipeline failed to drain")  # pragma: no cover
        return self._record(
            PipelineStats(cycle, producer_stalls, consumer_idle, max_occupancy),
            num_nodes,
        )

    def run_batch(self, node_counts, method: str = "event") -> list:
        """Drain many workloads: one simulation per *unique* node count.

        The pipeline outcome is a pure function of ``num_nodes``, so a
        batch of pair workloads (which share graph sizes heavily) only
        pays for its distinct counts; results are then fanned back out
        in input order, with telemetry recorded per item exactly as a
        loop of :meth:`run` calls would record it. ``method="cycle"``
        delegates to the cycle-accurate reference per item (it exists
        for validation, not speed).
        """
        counts = [int(count) for count in node_counts]
        if method == "cycle":
            return [self.run(count, method="cycle") for count in counts]
        if method != "event":
            raise ValueError(f"unknown method {method!r}")
        if any(count < 0 for count in counts):
            raise ValueError("num_nodes must be non-negative")
        stats_by_count = {
            count: self._run_event(count) for count in set(counts)
        }
        return [
            self._record(stats_by_count[count], count) for count in counts
        ]

    # ------------------------------------------------------------------
    @staticmethod
    def _record(stats: PipelineStats, num_nodes: int) -> PipelineStats:
        """Emit pipeline telemetry (hash throughput, stalls, occupancy)."""
        registry = get_metrics()
        if registry is not None:
            registry.inc("emf.pipeline.runs")
            registry.inc("emf.pipeline.nodes", num_nodes)
            registry.inc("emf.pipeline.cycles", stats.total_cycles)
            registry.inc(
                "emf.pipeline.producer_stall_cycles",
                stats.producer_stall_cycles,
            )
            registry.inc(
                "emf.pipeline.consumer_idle_cycles",
                stats.consumer_idle_cycles,
            )
            registry.observe(
                "emf.pipeline.max_occupancy", stats.max_occupancy
            )
        return stats

    # ------------------------------------------------------------------
    @staticmethod
    def _drain(occupancy: int, cycles: int, rate: int) -> tuple:
        """Consumption-only fast forward: ``cycles`` cycles at ``rate``.

        Returns ``(new_occupancy, consumed, idle_cycles)`` — exactly
        what the cycle loop would produce for cycles with no producer
        activity.
        """
        if cycles <= 0:
            return occupancy, 0, 0
        cycles_to_empty = -(-occupancy // rate)  # ceil division
        if cycles < cycles_to_empty:
            return occupancy - cycles * rate, cycles * rate, 0
        return 0, occupancy, cycles - cycles_to_empty

    def _run_event(self, num_nodes: int) -> PipelineStats:
        """Event-driven run: jump between hashing-wave commit points.

        Between commits the consumer's drain is a closed form
        (:meth:`_drain`); only the commit/stall cycles themselves are
        stepped individually, so the cost scales with the number of
        waves plus the number of stall cycles, not with the total cycle
        count. Produces bit-identical :class:`PipelineStats` to the
        cycle-accurate reference.
        """
        burst_cap = self.hash_parallelism
        wave = self.hash_wave_cycles
        rate = self.consume_per_cycle
        capacity = self.task_buffer_entries
        remaining_to_produce = num_nodes
        remaining_to_consume = num_nodes
        occupancy = 0
        max_occupancy = 0
        producer_stalls = 0
        consumer_idle = 0
        cycle = 0
        guard = 100 * (num_nodes + wave + 1)
        while remaining_to_consume > 0:
            if remaining_to_produce > 0:
                # Fast-forward the wave-in-progress cycles (consumption
                # only), landing on the cycle whose wave completes.
                occupancy, consumed, idle = self._drain(
                    occupancy, wave - 1, rate
                )
                remaining_to_consume -= consumed
                consumer_idle += idle
                cycle += wave - 1
                # Commit-attempt cycles: the producer retries every
                # cycle until the FIFO has room for the whole burst.
                while True:
                    cycle += 1
                    burst = min(burst_cap, remaining_to_produce)
                    committed = occupancy + burst <= capacity
                    if committed:
                        occupancy += burst
                        remaining_to_produce -= burst
                    else:
                        producer_stalls += 1
                    if occupancy > 0:
                        consumed = min(rate, occupancy)
                        occupancy -= consumed
                        remaining_to_consume -= consumed
                    else:
                        consumer_idle += 1
                    max_occupancy = max(max_occupancy, occupancy)
                    if committed:
                        break
                    if cycle > guard:
                        raise RuntimeError("pipeline failed to drain")
            else:
                # Producer finished: pure drain to completion.
                cycle += -(-occupancy // rate)
                remaining_to_consume -= occupancy
                occupancy = 0
            if cycle > guard:  # pragma: no cover - mirrors cycle loop
                raise RuntimeError("pipeline failed to drain")
        return PipelineStats(
            cycle, producer_stalls, consumer_idle, max_occupancy
        )

    def minimum_buffer_entries(self, num_nodes: int) -> int:
        """Smallest TaskBuffer (in bursts) that avoids producer stalls."""
        for entries in (
            self.hash_parallelism * k
            for k in range(1, max(2, math.ceil(num_nodes / self.hash_parallelism)) + 1)
        ):
            trial = EMFPipelineSimulator(
                self.hash_parallelism,
                self.hash_wave_cycles,
                self.consume_per_cycle,
                entries,
            )
            if trial.run(num_nodes).producer_stall_cycles == 0:
                return entries
        return self.hash_parallelism  # pragma: no cover - loop always returns
