"""XXH32 implementation from scratch.

The EMF hashes each node's feature vector into a 32-bit tag using XXHash
(Section IV-B), chosen because its rotate/multiply-accumulate structure
maps directly onto the accelerator's MAC array and its conflict rate is
negligible (~3e-7% for 256-byte inputs). This is a faithful pure-Python
XXH32, validated against the reference test vectors.
"""

from __future__ import annotations

import numpy as np

__all__ = ["xxh32", "hash_feature_vector", "FEATURE_QUANTIZATION_DECIMALS"]

_PRIME1 = 2654435761
_PRIME2 = 2246822519
_PRIME3 = 3266489917
_PRIME4 = 668265263
_PRIME5 = 374761393
_MASK = 0xFFFFFFFF

# Node features are float64 in this reproduction; the accelerator's
# fixed-point arithmetic makes duplicate features bit-identical, so we
# quantize before hashing to recover that property under floating point.
FEATURE_QUANTIZATION_DECIMALS = 6


def _rotl(value: int, amount: int) -> int:
    value &= _MASK
    return ((value << amount) | (value >> (32 - amount))) & _MASK


def _round(accumulator: int, lane_input: int) -> int:
    accumulator = (accumulator + lane_input * _PRIME2) & _MASK
    return (_rotl(accumulator, 13) * _PRIME1) & _MASK


def xxh32(data: bytes, seed: int = 0) -> int:
    """XXH32 of a byte string (reference algorithm, 32-bit output)."""
    length = len(data)
    index = 0
    if length >= 16:
        v1 = (seed + _PRIME1 + _PRIME2) & _MASK
        v2 = (seed + _PRIME2) & _MASK
        v3 = seed & _MASK
        v4 = (seed - _PRIME1) & _MASK
        while index <= length - 16:
            v1 = _round(v1, int.from_bytes(data[index : index + 4], "little"))
            v2 = _round(v2, int.from_bytes(data[index + 4 : index + 8], "little"))
            v3 = _round(v3, int.from_bytes(data[index + 8 : index + 12], "little"))
            v4 = _round(v4, int.from_bytes(data[index + 12 : index + 16], "little"))
            index += 16
        acc = (_rotl(v1, 1) + _rotl(v2, 7) + _rotl(v3, 12) + _rotl(v4, 18)) & _MASK
    else:
        acc = (seed + _PRIME5) & _MASK

    acc = (acc + length) & _MASK
    while index + 4 <= length:
        lane = int.from_bytes(data[index : index + 4], "little")
        acc = (acc + lane * _PRIME3) & _MASK
        acc = (_rotl(acc, 17) * _PRIME4) & _MASK
        index += 4
    while index < length:
        acc = (acc + data[index] * _PRIME5) & _MASK
        acc = (_rotl(acc, 11) * _PRIME1) & _MASK
        index += 1

    acc ^= acc >> 15
    acc = (acc * _PRIME2) & _MASK
    acc ^= acc >> 13
    acc = (acc * _PRIME3) & _MASK
    acc ^= acc >> 16
    return acc


def hash_feature_vector(
    features: np.ndarray,
    seed: int = 0,
    decimals: int = FEATURE_QUANTIZATION_DECIMALS,
) -> int:
    """32-bit tag of one node's feature vector.

    Features are quantized to ``decimals`` decimal places before hashing
    (see :data:`FEATURE_QUANTIZATION_DECIMALS`), then serialized
    little-endian, matching the bit-stream the EMF hardware would see.
    """
    quantized = np.round(np.asarray(features, dtype=np.float64), decimals)
    # Normalize -0.0 to 0.0 so equal values hash equally.
    quantized = quantized + 0.0
    return xxh32(quantized.tobytes(), seed)
