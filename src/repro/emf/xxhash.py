"""XXH32 implementation from scratch, scalar and batch-vectorized.

The EMF hashes each node's feature vector into a 32-bit tag using XXHash
(Section IV-B), chosen because its rotate/multiply-accumulate structure
maps directly onto the accelerator's MAC array and its conflict rate is
negligible (~3e-7% for 256-byte inputs). Two implementations live here:

- :func:`xxh32` / :func:`hash_feature_vector` — a faithful pure-Python
  XXH32, validated against the reference test vectors. This is the
  reference path.
- :func:`xxh32_batch` / :func:`hash_feature_matrix` — a lane-parallel
  numpy XXH32 that hashes every row of an ``(N, L)`` byte matrix in one
  pass: each 16-byte stripe is consumed as four uint32 vector operations
  over all N rows simultaneously. Bit-identical to the scalar path (the
  equivalence is asserted by the test suite on the official vectors and
  on randomized feature matrices) but orders of magnitude faster, which
  is what makes full-dataset EMF simulation tractable.

Quantization happens in exactly one place: :func:`quantize_features`.
Every consumer (scalar hash, batch hash, Algorithm 1's byte-keyed path)
routes through it, so the tags produced by any combination of method and
backend agree bit for bit.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = [
    "xxh32",
    "xxh32_batch",
    "hash_feature_vector",
    "hash_feature_matrix",
    "quantize_features",
    "FEATURE_QUANTIZATION_DECIMALS",
]

_PRIME1 = 2654435761
_PRIME2 = 2246822519
_PRIME3 = 3266489917
_PRIME4 = 668265263
_PRIME5 = 374761393
_MASK = 0xFFFFFFFF

# Node features are float64 in this reproduction; the accelerator's
# fixed-point arithmetic makes duplicate features bit-identical, so we
# quantize before hashing to recover that property under floating point.
FEATURE_QUANTIZATION_DECIMALS = 6


def quantize_features(
    features: np.ndarray,
    decimals: Optional[int] = FEATURE_QUANTIZATION_DECIMALS,
) -> np.ndarray:
    """The single canonical feature quantizer used by every EMF path.

    Rounds to ``decimals`` decimal places and normalizes ``-0.0`` to
    ``0.0`` so equal values serialize (and therefore hash) equally.
    ``decimals=None`` skips quantization for inputs that are already
    quantized — callers use this to guarantee quantization happens
    exactly once.
    """
    array = np.asarray(features, dtype=np.float64)
    if decimals is None:
        return array
    return np.round(array, decimals) + 0.0


# ----------------------------------------------------------------------
# Scalar reference
# ----------------------------------------------------------------------
def _rotl(value: int, amount: int) -> int:
    value &= _MASK
    return ((value << amount) | (value >> (32 - amount))) & _MASK


def _round(accumulator: int, lane_input: int) -> int:
    accumulator = (accumulator + lane_input * _PRIME2) & _MASK
    return (_rotl(accumulator, 13) * _PRIME1) & _MASK


def xxh32(data: bytes, seed: int = 0) -> int:
    """XXH32 of a byte string (reference algorithm, 32-bit output)."""
    length = len(data)
    index = 0
    if length >= 16:
        v1 = (seed + _PRIME1 + _PRIME2) & _MASK
        v2 = (seed + _PRIME2) & _MASK
        v3 = seed & _MASK
        v4 = (seed - _PRIME1) & _MASK
        while index <= length - 16:
            v1 = _round(v1, int.from_bytes(data[index : index + 4], "little"))
            v2 = _round(v2, int.from_bytes(data[index + 4 : index + 8], "little"))
            v3 = _round(v3, int.from_bytes(data[index + 8 : index + 12], "little"))
            v4 = _round(v4, int.from_bytes(data[index + 12 : index + 16], "little"))
            index += 16
        acc = (_rotl(v1, 1) + _rotl(v2, 7) + _rotl(v3, 12) + _rotl(v4, 18)) & _MASK
    else:
        acc = (seed + _PRIME5) & _MASK

    acc = (acc + length) & _MASK
    while index + 4 <= length:
        lane = int.from_bytes(data[index : index + 4], "little")
        acc = (acc + lane * _PRIME3) & _MASK
        acc = (_rotl(acc, 17) * _PRIME4) & _MASK
        index += 4
    while index < length:
        acc = (acc + data[index] * _PRIME5) & _MASK
        acc = (_rotl(acc, 11) * _PRIME1) & _MASK
        index += 1

    acc ^= acc >> 15
    acc = (acc * _PRIME2) & _MASK
    acc ^= acc >> 13
    acc = (acc * _PRIME3) & _MASK
    acc ^= acc >> 16
    return acc


def hash_feature_vector(
    features: np.ndarray,
    seed: int = 0,
    decimals: Optional[int] = FEATURE_QUANTIZATION_DECIMALS,
) -> int:
    """32-bit tag of one node's feature vector (scalar reference path).

    Features are quantized via :func:`quantize_features` before hashing,
    then serialized little-endian, matching the bit-stream the EMF
    hardware would see. Pass ``decimals=None`` for pre-quantized input.
    """
    quantized = quantize_features(features, decimals)
    return xxh32(quantized.astype("<f8").tobytes(), seed)


# ----------------------------------------------------------------------
# Batch-vectorized implementation
# ----------------------------------------------------------------------
_P1 = np.uint32(_PRIME1)
_P2 = np.uint32(_PRIME2)
_P3 = np.uint32(_PRIME3)
_P4 = np.uint32(_PRIME4)
_P5 = np.uint32(_PRIME5)


def _vrotl(values: np.ndarray, amount: int) -> np.ndarray:
    shift = np.uint32(amount)
    back = np.uint32(32 - amount)
    return (values << shift) | (values >> back)


def _vround(accumulators: np.ndarray, lanes: np.ndarray) -> np.ndarray:
    return _vrotl(accumulators + lanes * _P2, 13) * _P1


def xxh32_batch(data: np.ndarray, seed: int = 0) -> np.ndarray:
    """XXH32 of every row of an ``(N, L)`` uint8 matrix, vectorized.

    All rows share the length ``L``, so the stripe loop runs ``L // 16``
    times regardless of ``N``; each iteration is four uint32 vector
    rounds over all rows at once (the lane-parallel layout of the MAC
    array in Fig. 11). Returns an ``(N,)`` uint32 tag array identical to
    calling :func:`xxh32` on each row.
    """
    data = np.ascontiguousarray(data, dtype=np.uint8)
    if data.ndim != 2:
        raise ValueError("data must be 2-D (rows x bytes)")
    num_rows, length = data.shape
    num_words = length // 4
    if num_words:
        words = np.ascontiguousarray(data[:, : num_words * 4]).view("<u4")
        words = words.reshape(num_rows, num_words)
    else:
        words = np.empty((num_rows, 0), dtype=np.uint32)

    index = 0
    if length >= 16:
        v1 = np.full(num_rows, (seed + _PRIME1 + _PRIME2) & _MASK, np.uint32)
        v2 = np.full(num_rows, (seed + _PRIME2) & _MASK, np.uint32)
        v3 = np.full(num_rows, seed & _MASK, np.uint32)
        v4 = np.full(num_rows, (seed - _PRIME1) & _MASK, np.uint32)
        while index + 16 <= length:
            word = index // 4
            v1 = _vround(v1, words[:, word])
            v2 = _vround(v2, words[:, word + 1])
            v3 = _vround(v3, words[:, word + 2])
            v4 = _vround(v4, words[:, word + 3])
            index += 16
        acc = _vrotl(v1, 1) + _vrotl(v2, 7) + _vrotl(v3, 12) + _vrotl(v4, 18)
    else:
        acc = np.full(num_rows, (seed + _PRIME5) & _MASK, np.uint32)

    acc = acc + np.uint32(length & _MASK)
    while index + 4 <= length:
        acc = _vrotl(acc + words[:, index // 4] * _P3, 17) * _P4
        index += 4
    while index < length:
        acc = _vrotl(acc + data[:, index].astype(np.uint32) * _P5, 11) * _P1
        index += 1

    acc = acc ^ (acc >> np.uint32(15))
    acc = acc * _P2
    acc = acc ^ (acc >> np.uint32(13))
    acc = acc * _P3
    acc = acc ^ (acc >> np.uint32(16))
    return acc


def hash_feature_matrix(
    features: np.ndarray,
    seed: int = 0,
    decimals: Optional[int] = FEATURE_QUANTIZATION_DECIMALS,
) -> np.ndarray:
    """32-bit tags of every node's feature vector, in one vector pass.

    Equivalent to ``[hash_feature_vector(row, seed, decimals) for row in
    features]`` but hashes the whole ``(N, D)`` matrix through the
    vectorized XXH32. Pass ``decimals=None`` for pre-quantized input.
    """
    quantized = quantize_features(features, decimals)
    if quantized.ndim != 2:
        raise ValueError("features must be 2-D (nodes x feature_dim)")
    serialized = np.ascontiguousarray(quantized.astype("<f8"))
    num_nodes, feature_dim = serialized.shape
    data = serialized.view(np.uint8).reshape(num_nodes, feature_dim * 8)
    return xxh32_batch(data, seed)
