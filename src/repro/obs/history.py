"""Append-only benchmark history: every bench run becomes a point.

The repository's headline performance numbers (``BENCH_emf.json``,
``BENCH_harness.json``, ``BENCH_search.json``) used to be single
overwritten snapshots — the perf *trajectory* was invisible, and
"did this PR get slower?" was answered by eyeballing a ratio. The
:class:`BenchHistory` store fixes that the way the paper treats its
evaluation: every :class:`~repro.perf.timing.BenchReport` is ingested
as a schema-versioned :class:`HistoryEntry` appended to
``results/obs/bench_history/<bench>.jsonl``, keyed by bench name, a
digest of the benchmark config, and the provenance stamp (git SHA +
timestamp) it was produced under.

Properties the store guarantees:

- **Append-only.** Entries are one JSONL line each; nothing is ever
  rewritten in place, so the file is also the audit log.
- **Idempotent ingestion.** An entry's ``entry_id`` is a content
  digest; re-recording the same BENCH file is a no-op, which makes the
  ``BENCH_*.json`` migration safe to re-run.
- **Honest about damage.** Truncated or malformed lines (a crashed
  writer) are skipped and counted, never crash a read; a *valid* line
  carrying an unknown (newer) schema version is rejected loudly so old
  readers never misinterpret new data.

The analytics layer (:mod:`repro.obs.analytics`) reads this store to
run noise-aware regression gates, trend series, and changepoint
detection; ``repro obs bench record|compare|trend`` is the CLI surface.
"""

from __future__ import annotations

import hashlib
import json
import logging
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

__all__ = [
    "HISTORY_SCHEMA_VERSION",
    "HISTORY_ENTRY_KIND",
    "DEFAULT_HISTORY_DIR",
    "HistoryEntry",
    "BenchHistory",
    "config_digest",
]

HISTORY_SCHEMA_VERSION = 1
HISTORY_ENTRY_KIND = "repro-bench-history-entry"

#: Default store location, relative to the working directory (the same
#: convention as ``results/obs/baselines``).
DEFAULT_HISTORY_DIR = Path("results") / "obs" / "bench_history"

logger = logging.getLogger("repro.obs.history")


def _canonical(payload: object) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def config_digest(config: Optional[Dict]) -> str:
    """Short stable digest of a benchmark config dict.

    Entries are only comparable when their benchmark parameters match
    (quick vs. full sizes, worker counts, ...); the digest is the
    grouping key the analytics layer uses to pick comparable history.
    """
    return hashlib.sha256(
        _canonical(config or {}).encode("utf-8")
    ).hexdigest()[:16]


@dataclass(frozen=True)
class HistoryEntry:
    """One benchmark run, as persisted in the history store.

    The fields mirror a :class:`~repro.perf.timing.BenchReport` payload
    (aggregate ``timings``, raw per-repeat ``samples``, derived
    ``speedups``, equivalence ``checks``) plus the identity needed to
    place the point on a timeline: the provenance stamp's ``git_sha``
    and ``created_at``, and the ``config`` digest that scopes which
    other entries it may be compared against.
    """

    bench: str
    entry_id: str
    config: Dict = field(default_factory=dict)
    timings: Dict[str, float] = field(default_factory=dict)
    samples: Dict[str, List[float]] = field(default_factory=dict)
    repeats: Optional[int] = None
    speedups: Dict[str, float] = field(default_factory=dict)
    checks: Dict = field(default_factory=dict)
    platform: Dict = field(default_factory=dict)
    git_sha: str = "unknown"
    created_at: str = ""
    generator: str = ""

    @property
    def config_key(self) -> str:
        return config_digest(self.config)

    def sample_values(self, variant: str) -> List[float]:
        """Raw repeat readings for a variant; the aggregate timing is
        the (single-sample) fallback for legacy entries recorded before
        the BenchReport schema retained samples."""
        values = self.samples.get(variant)
        if values:
            return list(values)
        if variant in self.timings:
            return [float(self.timings[variant])]
        return []

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "schema_version": HISTORY_SCHEMA_VERSION,
            "kind": HISTORY_ENTRY_KIND,
            "bench": self.bench,
            "entry_id": self.entry_id,
            "config": dict(self.config),
            "timings": dict(self.timings),
            "samples": {k: list(v) for k, v in self.samples.items()},
            "repeats": self.repeats,
            "speedups": dict(self.speedups),
            "checks": dict(self.checks),
            "platform": dict(self.platform),
            "git_sha": self.git_sha,
            "created_at": self.created_at,
            "generator": self.generator,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "HistoryEntry":
        if not isinstance(payload, dict):
            raise ValueError("history entry is not a JSON object")
        version = payload.get("schema_version")
        if version != HISTORY_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported bench-history schema version {version!r} "
                f"(this build supports version {HISTORY_SCHEMA_VERSION}; "
                "a newer version means the history was written by a newer "
                "repro — upgrade to read it)"
            )
        if payload.get("kind") != HISTORY_ENTRY_KIND:
            raise ValueError(
                f"kind is {payload.get('kind')!r}, "
                f"not {HISTORY_ENTRY_KIND!r}"
            )
        for key in ("bench", "entry_id", "timings"):
            if key not in payload:
                raise ValueError(f"history entry is missing key {key!r}")
        raw_repeats = payload.get("repeats")
        return cls(
            bench=str(payload["bench"]),
            entry_id=str(payload["entry_id"]),
            config=dict(payload.get("config") or {}),
            timings={
                str(k): float(v) for k, v in payload["timings"].items()
            },
            samples={
                str(k): [float(v) for v in values]
                for k, values in (payload.get("samples") or {}).items()
            },
            repeats=None if raw_repeats is None else int(raw_repeats),
            speedups={
                str(k): float(v)
                for k, v in (payload.get("speedups") or {}).items()
            },
            checks=dict(payload.get("checks") or {}),
            platform=dict(payload.get("platform") or {}),
            git_sha=str(payload.get("git_sha") or "unknown"),
            created_at=str(payload.get("created_at") or ""),
            generator=str(payload.get("generator") or ""),
        )

    # -- ingestion ---------------------------------------------------------
    @classmethod
    def from_bench_report(cls, payload: Dict[str, object]) -> "HistoryEntry":
        """Build an entry from a ``BENCH_*.json`` payload (v1 or v2).

        Goes through :meth:`BenchReport.from_dict
        <repro.perf.timing.BenchReport.from_dict>` so the legacy-schema
        handling (and its unknown-version error) lives in one place.
        The ``entry_id`` is a digest of the whole normalized payload:
        the same file ingests to the same id every time, which is what
        makes :meth:`BenchHistory.append` idempotent.
        """
        from ..perf.timing import BenchReport

        report = BenchReport.from_dict(payload)
        stamp = payload.get("provenance")
        stamp = stamp if isinstance(stamp, dict) else {}
        body = {
            "bench": report.name,
            "config": report.config,
            "timings": report.timings,
            "samples": report.samples,
            "repeats": report.repeats,
            "speedups": report.speedups,
            "checks": report.checks,
            "platform": payload.get("platform") or {},
            "git_sha": str(stamp.get("git_sha") or "unknown"),
            "created_at": str(stamp.get("created_at") or ""),
            "generator": str(stamp.get("generator") or ""),
        }
        entry_id = hashlib.sha256(
            _canonical(body).encode("utf-8")
        ).hexdigest()[:16]
        return cls(
            bench=body["bench"],
            entry_id=entry_id,
            config=body["config"],
            timings=body["timings"],
            samples=body["samples"],
            repeats=body["repeats"],
            speedups=body["speedups"],
            checks=body["checks"],
            platform=dict(body["platform"]),
            git_sha=body["git_sha"],
            created_at=body["created_at"],
            generator=body["generator"],
        )


class BenchHistory:
    """The on-disk append-only store: one JSONL file per bench name."""

    def __init__(self, root: Union[str, Path, None] = None) -> None:
        self.root = Path(root) if root is not None else DEFAULT_HISTORY_DIR
        #: Malformed lines skipped by the most recent :meth:`read`.
        self.last_skipped = 0

    def path_for(self, bench: str) -> Path:
        if not bench or "/" in bench or bench.startswith("."):
            raise ValueError(f"invalid bench name {bench!r}")
        return self.root / f"{bench}.jsonl"

    def benches(self) -> List[str]:
        """Bench names with recorded history, sorted."""
        if not self.root.is_dir():
            return []
        return sorted(
            path.stem
            for path in self.root.glob("*.jsonl")
            if path.is_file()
        )

    # -- reading -----------------------------------------------------------
    def read(self, bench: str) -> List[HistoryEntry]:
        """All entries for a bench, in append (chronological) order.

        Truncated/malformed JSONL lines — the residue of a crashed
        writer — are skipped and counted (``last_skipped``), with one
        warning naming the file. A syntactically valid line with an
        unknown schema version still raises: that is a version-skew
        problem, not file damage.
        """
        path = self.path_for(bench)
        self.last_skipped = 0
        if not path.is_file():
            return []
        entries: List[HistoryEntry] = []
        for line_number, line in enumerate(
            path.read_text().splitlines(), start=1
        ):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError:
                self.last_skipped += 1
                continue
            entries.append(HistoryEntry.from_dict(payload))
        if self.last_skipped:
            logger.warning(
                "skipped %d malformed line(s) in %s (truncated write?)",
                self.last_skipped,
                path,
            )
        return entries

    def latest(self, bench: str) -> Optional[HistoryEntry]:
        entries = self.read(bench)
        return entries[-1] if entries else None

    def ids(self, bench: str) -> set:
        return {entry.entry_id for entry in self.read(bench)}

    # -- writing -----------------------------------------------------------
    def append(
        self, payload: Union[HistoryEntry, Dict[str, object]]
    ) -> Tuple[HistoryEntry, bool]:
        """Append one bench run; returns ``(entry, appended)``.

        ``payload`` may be a ready :class:`HistoryEntry` or a raw
        ``BENCH_*.json`` dict (ingested via :meth:`from_bench_report`).
        Appending an entry whose ``entry_id`` is already on file is a
        no-op (``appended=False``) — the idempotency that makes the
        committed-BENCH migration and CI re-runs safe.
        """
        entry = (
            payload
            if isinstance(payload, HistoryEntry)
            else HistoryEntry.from_bench_report(payload)
        )
        if entry.entry_id in self.ids(entry.bench):
            return entry, False
        path = self.path_for(entry.bench)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "a") as handle:
            handle.write(_canonical(entry.to_dict()))
            handle.write("\n")
        return entry, True

    def record_file(self, path: Union[str, Path]) -> Tuple[HistoryEntry, bool]:
        """Ingest one ``BENCH_*.json`` file (the migration path)."""
        with open(path) as handle:
            payload = json.load(handle)
        return self.append(payload)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BenchHistory(root={self.root})"
