"""Observability: metrics registry, span tracing, RunReport artifacts.

The counted quantities behind CEGMA's claims — duplicate-node skip
rates (Fig. 18), DRAM accesses (Fig. 17), window revisits minimized by
AOE — are emitted as structured telemetry while the simulator, the EMF,
and the CGC scheduler run, instead of existing only inside the figure
scripts.

Three cooperating pieces:

- :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of counters,
  gauges, and histograms; free when disabled, mergeable across worker
  processes.
- :mod:`repro.obs.tracing` — hierarchical :func:`span` tracing exported
  as Chrome trace-event JSON (loadable in Perfetto).
- :mod:`repro.obs.report` — the schema-versioned :class:`RunReport`
  artifact combining metrics, spans, and
  :class:`~repro.perf.timing.StageTimer` data under ``results/obs/``.

Plus :func:`configure_logging` for the ``repro.*`` stdlib-logging
hierarchy used by the library in place of ``print``.
"""

from .logging import configure_logging
from .metrics import (
    Histogram,
    MetricsRegistry,
    get_metrics,
    metrics_enabled,
    set_metrics,
)
from .report import (
    RUN_REPORT_SCHEMA_VERSION,
    RunReport,
    default_report_path,
    diff_reports,
    validate_report,
)
from .tracing import Tracer, get_tracer, set_tracer, span, tracing_enabled

__all__ = [
    "Histogram",
    "MetricsRegistry",
    "get_metrics",
    "metrics_enabled",
    "set_metrics",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "span",
    "tracing_enabled",
    "RunReport",
    "RUN_REPORT_SCHEMA_VERSION",
    "default_report_path",
    "diff_reports",
    "validate_report",
    "configure_logging",
]
