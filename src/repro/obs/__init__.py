"""Observability: metrics registry, span tracing, RunReport artifacts.

The counted quantities behind CEGMA's claims — duplicate-node skip
rates (Fig. 18), DRAM accesses (Fig. 17), window revisits minimized by
AOE — are emitted as structured telemetry while the simulator, the EMF,
and the CGC scheduler run, instead of existing only inside the figure
scripts.

Three cooperating pieces:

- :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of counters,
  gauges, and histograms; free when disabled, mergeable across worker
  processes.
- :mod:`repro.obs.tracing` — hierarchical :func:`span` tracing exported
  as Chrome trace-event JSON (loadable in Perfetto).
- :mod:`repro.obs.report` — the schema-versioned :class:`RunReport`
  artifact combining metrics, spans, and
  :class:`~repro.perf.timing.StageTimer` data under ``results/obs/``.

On top of those, the **consumption layer** closes the loop — a report
is only useful if something notices when it changes:

- :mod:`repro.obs.baseline` — archives known-good RunReports under
  ``results/obs/baselines/`` keyed by RunSpec, with retention.
- :mod:`repro.obs.regress` — compares a fresh report against its
  baseline (deterministic counters exact, timings within tolerance)
  and powers ``repro obs check``.
- :mod:`repro.obs.provenance` — stamps every written artifact with
  RunSpec + git SHA + timestamp + metrics digest
  (``repro obs provenance FILE`` inspects it).
- :mod:`repro.obs.profiling` — cProfile harness stages into collapsed
  stacks for speedscope/flamegraph tools.
- :mod:`repro.obs.dashboard` — a zero-dependency static HTML view of
  metric trends across the baseline store (and, when history is
  present, the benchmark trajectory with changepoints marked).
- :mod:`repro.obs.history` — the append-only benchmark history store
  under ``results/obs/bench_history/``: every ``repro bench`` run is
  one schema-versioned JSONL entry, idempotently keyed by content
  digest.
- :mod:`repro.obs.analytics` — noise-aware analytics over that
  history: statistical timing gates (median ± k·MAD intervals),
  changepoint-annotated trends, and per-stage slowdown attribution
  against serving budget histograms.

The **request-scoped layer** serves the long-lived serving pipeline,
where run-scoped aggregates are blind:

- :mod:`repro.obs.context` — :class:`RequestContext` carried through
  every pipeline stage (and across the shm worker boundary) plus the
  :class:`RequestTracker` of per-request stage spans, whose summed
  top-level budgets equal the measured request latency.
- :mod:`repro.obs.timeseries` — :class:`TimeseriesRecorder` windowed
  snapshots: counter rates and per-window histogram p50/p99.
- :mod:`repro.obs.exemplars` — :class:`ExemplarBuffer` retaining the
  span trees of the K slowest and all deadline-expired requests.
- :mod:`repro.obs.export` — Prometheus-style text exposition and the
  ``repro obs tail`` window renderer.

Plus :func:`configure_logging` for the ``repro.*`` stdlib-logging
hierarchy used by the library in place of ``print``.
"""

from .analytics import (
    BenchComparison,
    attribute_stages,
    compare_entry,
    compare_history,
    detect_changepoints,
    render_attribution,
    render_markdown_table,
    render_trend,
    stage_budget_means,
    timing_decision,
    trend_report,
)
from .baseline import BaselineStore, spec_key
from .context import RequestContext, RequestTracker, StageSpan, render_tree
from .dashboard import render_dashboard, write_dashboard
from .exemplars import Exemplar, ExemplarBuffer
from .export import (
    read_windows,
    render_exposition,
    render_window,
    split_metric_key,
    write_exposition,
)
from .history import (
    DEFAULT_HISTORY_DIR,
    HISTORY_SCHEMA_VERSION,
    BenchHistory,
    HistoryEntry,
    config_digest,
)
from .logging import configure_logging
from .metrics import (
    LATENCY_BUCKETS,
    Histogram,
    MetricsRegistry,
    get_metrics,
    metrics_enabled,
    set_metrics,
)
from .profiling import collapsed_stacks, profiled, write_collapsed
from .provenance import (
    current_git_sha,
    make_stamp,
    metrics_digest,
    now_iso,
    read_stamp,
    stamp_payload,
    validate_stamp,
)
from .regress import (
    DETERMINISTIC_PREFIXES,
    SERVING_DETERMINISTIC_PREFIXES,
    Finding,
    RegressionPolicy,
    RegressionReport,
    compare_reports,
)
from .report import (
    RUN_REPORT_SCHEMA_VERSION,
    SUPPORTED_SCHEMA_VERSIONS,
    RunReport,
    default_report_path,
    diff_reports,
    validate_report,
)
from .timeseries import TimeseriesRecorder, Window, delta_quantile
from .tracing import Tracer, get_tracer, set_tracer, span, tracing_enabled

__all__ = [
    "Histogram",
    "LATENCY_BUCKETS",
    "MetricsRegistry",
    "get_metrics",
    "metrics_enabled",
    "set_metrics",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "span",
    "tracing_enabled",
    "RunReport",
    "RUN_REPORT_SCHEMA_VERSION",
    "SUPPORTED_SCHEMA_VERSIONS",
    "default_report_path",
    "diff_reports",
    "validate_report",
    "configure_logging",
    "BaselineStore",
    "spec_key",
    "DETERMINISTIC_PREFIXES",
    "RegressionPolicy",
    "RegressionReport",
    "Finding",
    "compare_reports",
    "current_git_sha",
    "now_iso",
    "metrics_digest",
    "make_stamp",
    "stamp_payload",
    "read_stamp",
    "validate_stamp",
    "profiled",
    "collapsed_stacks",
    "write_collapsed",
    "render_dashboard",
    "write_dashboard",
    "RequestContext",
    "RequestTracker",
    "StageSpan",
    "render_tree",
    "TimeseriesRecorder",
    "Window",
    "delta_quantile",
    "Exemplar",
    "ExemplarBuffer",
    "SERVING_DETERMINISTIC_PREFIXES",
    "render_exposition",
    "write_exposition",
    "render_window",
    "read_windows",
    "split_metric_key",
    "BenchHistory",
    "HistoryEntry",
    "config_digest",
    "DEFAULT_HISTORY_DIR",
    "HISTORY_SCHEMA_VERSION",
    "BenchComparison",
    "timing_decision",
    "compare_entry",
    "compare_history",
    "detect_changepoints",
    "trend_report",
    "render_trend",
    "render_markdown_table",
    "stage_budget_means",
    "attribute_stages",
    "render_attribution",
]
