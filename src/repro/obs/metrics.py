"""Process-local metrics registry: counters, gauges, histograms.

CEGMA's claims are counted quantities — duplicate-node skip rates
(Fig. 18), DRAM accesses (Fig. 17), window revisits minimized by AOE
(Algorithm 2) — so the simulator, the EMF, and the CGC scheduler emit
structured counters while they run instead of surfacing numbers only
through post-hoc figure scripts.

Design constraints, in order:

1. **Free when off.** Instrumentation sites call :func:`get_metrics`
   and skip everything on ``None``; the disabled cost is one module
   attribute read per site, so hot loops (per window step, per GEMM)
   can stay instrumented unconditionally.
2. **Mergeable.** Worker processes of the parallel harness each build a
   private registry and ship ``as_dict()`` payloads back over the pipe;
   :meth:`MetricsRegistry.merge` folds them into the parent. Counter
   and histogram merge is commutative and associative, so split points
   never change totals (asserted by ``tests/obs/test_metrics.py``).
3. **Keyed per run.** Registries are plain objects — activate a fresh
   one per :class:`~repro.platforms.runspec.RunSpec` via
   :func:`metrics_enabled` and snapshot it into a
   :class:`~repro.obs.report.RunReport` at the end.

Metric identity is a name plus optional labels; labels are flattened
into the stored key as ``name{key=value,...}`` with sorted keys, so the
serialized form is stable and diffable.
"""

from __future__ import annotations

from bisect import bisect_left
from contextlib import contextmanager
from typing import Dict, Iterator, Optional, Sequence, Tuple

__all__ = [
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "LATENCY_BUCKETS",
    "get_metrics",
    "set_metrics",
    "metrics_enabled",
    "metric_key",
]

# Power-of-two upper bounds: node counts, occupancies, and cycle counts
# all span several orders of magnitude, so log-spaced buckets keep the
# histogram small while still resolving the distribution's shape.
DEFAULT_BUCKETS: Tuple[float, ...] = tuple(float(2**i) for i in range(21))

# Wall-clock latency bounds in seconds: 1 µs doubling up to ~67 s. The
# default buckets start at 1.0, which would collapse every sub-second
# request latency into the first bucket; the serving pipeline passes
# these via ``observe(..., bounds=LATENCY_BUCKETS)`` so p50/p99 stay
# resolvable.
LATENCY_BUCKETS: Tuple[float, ...] = tuple(1e-6 * 2**i for i in range(27))


def metric_key(name: str, labels: Dict[str, object]) -> str:
    """Flatten ``name`` + labels into the canonical stored key."""
    if not labels:
        return name
    inner = ",".join(f"{key}={labels[key]}" for key in sorted(labels))
    return f"{name}{{{inner}}}"


class Histogram:
    """Fixed-bucket histogram with count/sum/min/max sidecars.

    Buckets are upper bounds (``value <= bound``); values above the last
    bound land in an implicit overflow bucket. Two histograms merge by
    summing bucket counts, which requires identical bounds.
    """

    __slots__ = ("bounds", "bucket_counts", "count", "total", "min", "max")

    def __init__(self, bounds: Sequence[float] = DEFAULT_BUCKETS) -> None:
        self.bounds: Tuple[float, ...] = tuple(bounds)
        if not self.bounds or list(self.bounds) != sorted(set(self.bounds)):
            raise ValueError("histogram bounds must be sorted and unique")
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> Optional[float]:
        """Estimated ``q``-quantile (0..1) from the bucket counts.

        Returns the upper bound of the bucket holding the q-th ranked
        observation, clamped to the observed min/max (so exact for the
        extremes and never outside the data); ``None`` when empty.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if not self.count:
            return None
        if q == 0.0:
            return self.min
        rank = max(1, int(-(-q * self.count // 1)))  # ceil without math
        cumulative = 0
        for index, bucket_count in enumerate(self.bucket_counts):
            cumulative += bucket_count
            if cumulative >= rank:
                if index == len(self.bounds):  # overflow bucket
                    return self.max
                return min(max(self.bounds[index], self.min), self.max)
        return self.max  # pragma: no cover - counts always sum to count

    def merge(self, other: "Histogram") -> None:
        if self.bounds != other.bounds:
            raise ValueError("cannot merge histograms with different bounds")
        for index, count in enumerate(other.bucket_counts):
            self.bucket_counts[index] += count
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    def as_dict(self) -> Dict[str, object]:
        return {
            "bounds": list(self.bounds),
            "bucket_counts": list(self.bucket_counts),
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "Histogram":
        histogram = cls(tuple(float(b) for b in payload["bounds"]))
        counts = [int(c) for c in payload["bucket_counts"]]
        if len(counts) != len(histogram.bucket_counts):
            raise ValueError("bucket count length does not match bounds")
        histogram.bucket_counts = counts
        histogram.count = int(payload["count"])
        histogram.total = float(payload["total"])
        histogram.min = (
            float(payload["min"]) if payload["min"] is not None else float("inf")
        )
        histogram.max = (
            float(payload["max"])
            if payload["max"] is not None
            else float("-inf")
        )
        return histogram

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Histogram(count={self.count}, mean={self.mean:.3f})"


class MetricsRegistry:
    """One run's counters, gauges, and histograms.

    Counters accumulate (``inc``), gauges record the latest value
    (``set_gauge``), histograms record distributions (``observe``).
    Labels are keyword arguments on every recording call.
    """

    __slots__ = ("_counters", "_gauges", "_histograms")

    def __init__(self) -> None:
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- recording -----------------------------------------------------
    def inc(self, name: str, value: float = 1.0, **labels: object) -> None:
        key = metric_key(name, labels)
        self._counters[key] = self._counters.get(key, 0.0) + value

    def set_gauge(self, name: str, value: float, **labels: object) -> None:
        self._gauges[metric_key(name, labels)] = float(value)

    def observe(
        self,
        name: str,
        value: float,
        *,
        bounds: Optional[Sequence[float]] = None,
        **labels: object,
    ) -> None:
        """Record ``value`` into the named histogram.

        ``bounds`` selects the bucket layout when the histogram is first
        created (e.g. :data:`LATENCY_BUCKETS` for sub-second wall-clock
        times); later calls reuse the existing layout.
        """
        key = metric_key(name, labels)
        histogram = self._histograms.get(key)
        if histogram is None:
            histogram = self._histograms[key] = Histogram(
                DEFAULT_BUCKETS if bounds is None else bounds
            )
        histogram.observe(value)

    # -- reading -------------------------------------------------------
    def counter(self, name: str, **labels: object) -> float:
        return self._counters.get(metric_key(name, labels), 0.0)

    def gauge(self, name: str, **labels: object) -> Optional[float]:
        return self._gauges.get(metric_key(name, labels))

    def histogram(self, name: str, **labels: object) -> Optional[Histogram]:
        return self._histograms.get(metric_key(name, labels))

    @property
    def counters(self) -> Dict[str, float]:
        return dict(self._counters)

    @property
    def gauges(self) -> Dict[str, float]:
        return dict(self._gauges)

    @property
    def histograms(self) -> Dict[str, Histogram]:
        return dict(self._histograms)

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    def clear(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    # -- merging / serialization ---------------------------------------
    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold another registry in: counters add, gauges overwrite
        (``other`` wins — its run is the more recent observation),
        histograms merge bucket-wise. Returns ``self``."""
        for key, value in other._counters.items():
            self._counters[key] = self._counters.get(key, 0.0) + value
        self._gauges.update(other._gauges)
        for key, histogram in other._histograms.items():
            mine = self._histograms.get(key)
            if mine is None:
                clone = Histogram(histogram.bounds)
                clone.merge(histogram)
                self._histograms[key] = clone
            else:
                mine.merge(histogram)
        return self

    def as_dict(self) -> Dict[str, object]:
        return {
            "counters": dict(sorted(self._counters.items())),
            "gauges": dict(sorted(self._gauges.items())),
            "histograms": {
                key: histogram.as_dict()
                for key, histogram in sorted(self._histograms.items())
            },
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "MetricsRegistry":
        registry = cls()
        registry._counters = {
            str(key): float(value)
            for key, value in payload.get("counters", {}).items()
        }
        registry._gauges = {
            str(key): float(value)
            for key, value in payload.get("gauges", {}).items()
        }
        registry._histograms = {
            str(key): Histogram.from_dict(value)
            for key, value in payload.get("histograms", {}).items()
        }
        return registry

    def render(self, prefix: str = "") -> str:
        """Human-readable dump, optionally filtered to a name prefix."""
        lines = []
        for key, value in sorted(self._counters.items()):
            if key.startswith(prefix):
                lines.append(f"{key} = {value:g}")
        for key, value in sorted(self._gauges.items()):
            if key.startswith(prefix):
                lines.append(f"{key} = {value:g} (gauge)")
        for key, histogram in sorted(self._histograms.items()):
            if key.startswith(prefix):
                lines.append(
                    f"{key}: count={histogram.count} mean={histogram.mean:.3f}"
                    f" min={histogram.min if histogram.count else '-'}"
                    f" max={histogram.max if histogram.count else '-'}"
                )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MetricsRegistry(counters={len(self._counters)}, "
            f"gauges={len(self._gauges)}, "
            f"histograms={len(self._histograms)})"
        )


# ----------------------------------------------------------------------
# The process-wide active registry. Instrumentation sites read it via
# get_metrics() and do nothing when it is None, which is the default.

_ACTIVE: Optional[MetricsRegistry] = None


def get_metrics() -> Optional[MetricsRegistry]:
    """The active registry, or None when metrics are disabled."""
    return _ACTIVE


def set_metrics(
    registry: Optional[MetricsRegistry],
) -> Optional[MetricsRegistry]:
    """Install ``registry`` as the active one; returns the previous."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = registry
    return previous


@contextmanager
def metrics_enabled(
    registry: Optional[MetricsRegistry] = None,
) -> Iterator[MetricsRegistry]:
    """Activate a registry for the duration of the block.

    Yields the registry (a fresh one unless provided) and restores the
    previous active registry on exit, so nesting is safe.
    """
    active = registry if registry is not None else MetricsRegistry()
    previous = set_metrics(active)
    try:
        yield active
    finally:
        set_metrics(previous)
