"""Schema-versioned RunReport artifacts.

One :class:`RunReport` captures everything a run observed — the metrics
registry snapshot, the span events, and the wall-clock
:class:`~repro.perf.timing.StageTimer` stages — keyed by the run's
:class:`~repro.platforms.runspec.RunSpec`. Reports are written as JSON
under ``results/obs/`` so regressions show up as a diff between two
files (``python -m repro obs diff a.json b.json``) instead of requiring
a figure-script rerun.

The schema is versioned independently of the other artifact formats:
bump :data:`RUN_REPORT_SCHEMA_VERSION` on any layout change so old
reports are rejected loudly, never misread.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Union

from .metrics import MetricsRegistry
from .provenance import current_git_sha, now_iso
from .tracing import Tracer

if TYPE_CHECKING:  # imported lazily at runtime to avoid import cycles
    from ..perf.timing import StageTimer
    from ..platforms.runspec import RunSpec

__all__ = [
    "RunReport",
    "RUN_REPORT_SCHEMA_VERSION",
    "SUPPORTED_SCHEMA_VERSIONS",
    "REPORT_KIND",
    "default_report_path",
    "diff_reports",
    "validate_report",
]

# v1: spec + metrics + spans + timings. v2 adds run identity: created_at
# (wall clock, via the REPRO_CREATED_AT env seam) and git_sha (via
# REPRO_GIT_SHA). v3 adds the serving-telemetry sections: "windows"
# (TimeseriesRecorder snapshots) and "exemplars" (ExemplarBuffer span
# trees). Older payloads still load — v1 identity fields come back as
# None, v1/v2 telemetry sections as empty lists — so pre-existing
# baselines stay readable.
RUN_REPORT_SCHEMA_VERSION = 3
SUPPORTED_SCHEMA_VERSIONS = (1, 2, 3)
REPORT_KIND = "repro-run-report"

#: Default artifact directory, relative to the working directory.
DEFAULT_REPORT_DIR = Path("results") / "obs"

#: Top-level keys every valid report payload must carry.
REQUIRED_KEYS = ("schema_version", "kind", "spec", "metrics", "spans", "timings")

#: Keys additionally required from schema v2 on.
REQUIRED_KEYS_V2 = ("created_at", "git_sha")

#: Keys additionally required from schema v3 on.
REQUIRED_KEYS_V3 = ("windows", "exemplars")


class RunReport:
    """Metrics + spans + stage timings for one run, as one artifact."""

    __slots__ = (
        "spec",
        "metrics",
        "spans",
        "timings",
        "notes",
        "created_at",
        "git_sha",
        "windows",
        "exemplars",
    )

    def __init__(
        self,
        spec: Optional[RunSpec] = None,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        timer: Optional[StageTimer] = None,
        notes: Optional[Dict[str, object]] = None,
        created_at: Optional[str] = None,
        git_sha: Optional[str] = None,
        windows: Optional[List[Dict[str, object]]] = None,
        exemplars: Optional[List[Dict[str, object]]] = None,
    ) -> None:
        self.spec = spec
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.spans: List[Dict[str, object]] = (
            list(tracer.events) if tracer is not None else []
        )
        self.timings: Dict[str, Dict[str, float]] = (
            timer.as_dict() if timer is not None else {}
        )
        self.notes: Dict[str, object] = dict(notes or {})
        # v3 serving-telemetry sections: TimeseriesRecorder window
        # snapshots and ExemplarBuffer span trees, both already plain
        # dicts (window_dicts() / as_dicts()).
        self.windows: List[Dict[str, object]] = list(windows or [])
        self.exemplars: List[Dict[str, object]] = list(exemplars or [])
        # Identity defaults go through the provenance env seams
        # (REPRO_CREATED_AT / REPRO_GIT_SHA) so tests stay deterministic.
        self.created_at: Optional[str] = (
            created_at if created_at is not None else now_iso()
        )
        self.git_sha: Optional[str] = (
            git_sha if git_sha is not None else current_git_sha()
        )

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "schema_version": RUN_REPORT_SCHEMA_VERSION,
            "kind": REPORT_KIND,
            "spec": self.spec.to_dict() if self.spec is not None else None,
            "created_at": self.created_at,
            "git_sha": self.git_sha,
            "metrics": self.metrics.as_dict(),
            "spans": list(self.spans),
            "timings": dict(self.timings),
            "notes": dict(self.notes),
            "windows": list(self.windows),
            "exemplars": list(self.exemplars),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "RunReport":
        problems = validate_report(payload)
        if problems:
            raise ValueError(
                "invalid RunReport payload: " + "; ".join(problems)
            )
        report = cls(notes=payload.get("notes") or {})
        if payload["spec"] is not None:
            from ..platforms.runspec import RunSpec  # deferred: avoids cycle

            report.spec = RunSpec.from_dict(payload["spec"])
        # v1 reports predate run identity; they load with None in both
        # fields rather than being rejected.
        raw_created = payload.get("created_at")
        raw_sha = payload.get("git_sha")
        report.created_at = None if raw_created is None else str(raw_created)
        report.git_sha = None if raw_sha is None else str(raw_sha)
        report.metrics = MetricsRegistry.from_dict(payload["metrics"])
        report.spans = list(payload["spans"])
        # v1/v2 reports predate windowed telemetry; they load with the
        # sections empty rather than being rejected.
        report.windows = list(payload.get("windows") or [])
        report.exemplars = list(payload.get("exemplars") or [])
        report.timings = {
            str(stage): {str(k): float(v) for k, v in entry.items()}
            for stage, entry in payload["timings"].items()
        }
        return report

    def write(self, path: Optional[Union[str, Path]] = None) -> Path:
        if path is None:
            path = default_report_path(self.spec)
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "RunReport":
        with open(path) as handle:
            return cls.from_dict(json.load(handle))

    # ------------------------------------------------------------------
    def render(self) -> str:
        """Human-readable summary: spec, timings, then all metrics."""
        lines = []
        header = self.spec.stem if self.spec is not None else "unkeyed run"
        lines.append(f"== RunReport: {header} ==")
        if self.created_at or self.git_sha:
            lines.append(
                f"created {self.created_at or '?'} "
                f"at commit {self.git_sha or '?'}"
            )
        if self.timings:
            lines.append("-- stage timings --")
            for stage in sorted(self.timings):
                entry = self.timings[stage]
                lines.append(
                    f"{stage}: {entry['seconds']:.4f}s"
                    f" over {int(entry['calls'])} call(s)"
                )
        if len(self.metrics):
            lines.append("-- metrics --")
            lines.append(self.metrics.render())
        lines.append(f"-- spans: {len(self.spans)} recorded --")
        if self.windows or self.exemplars:
            lines.append(
                f"-- serving telemetry: {len(self.windows)} window(s), "
                f"{len(self.exemplars)} exemplar(s) --"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RunReport(spec={self.spec}, metrics={len(self.metrics)}, "
            f"spans={len(self.spans)})"
        )


def default_report_path(spec: Optional[RunSpec]) -> Path:
    """``results/obs/<spec-stem>_report.json`` (or ``run_report.json``)."""
    stem = spec.stem if spec is not None else "run"
    return DEFAULT_REPORT_DIR / f"{stem}_report.json"


def validate_report(payload: object) -> List[str]:
    """Schema problems with a report payload; empty list means valid.

    Used by :meth:`RunReport.from_dict` and the ``repro obs validate``
    CLI / CI smoke step.
    """
    problems: List[str] = []
    if not isinstance(payload, dict):
        return ["payload is not a JSON object"]
    for key in REQUIRED_KEYS:
        if key not in payload:
            problems.append(f"missing key {key!r}")
    if problems:
        return problems
    version = payload["schema_version"]
    if version not in SUPPORTED_SCHEMA_VERSIONS:
        supported = ", ".join(str(v) for v in SUPPORTED_SCHEMA_VERSIONS)
        problems.append(
            f"unsupported schema version {version!r} (this build supports "
            f"versions {supported}; a newer version means the report was "
            "written by a newer repro — upgrade to read it)"
        )
        return problems
    if version >= 2:
        for key in REQUIRED_KEYS_V2:
            if key not in payload:
                problems.append(f"missing v{version} key {key!r}")
            elif payload[key] is not None and not isinstance(payload[key], str):
                problems.append(f"key {key!r} must be a string or null")
    if version >= 3:
        for key in REQUIRED_KEYS_V3:
            if key not in payload:
                problems.append(f"missing v{version} key {key!r}")
            elif not isinstance(payload[key], list):
                problems.append(f"key {key!r} must be a list")
    if payload["kind"] != REPORT_KIND:
        problems.append(f"kind is {payload['kind']!r}, not {REPORT_KIND!r}")
    metrics = payload["metrics"]
    if not isinstance(metrics, dict) or not all(
        section in metrics for section in ("counters", "gauges", "histograms")
    ):
        problems.append("metrics must hold counters/gauges/histograms")
    if not isinstance(payload["spans"], list):
        problems.append("spans must be a list of trace events")
    if not isinstance(payload["timings"], dict):
        problems.append("timings must be a StageTimer mapping")
    return problems


def _diff_section(
    label: str,
    old: Dict[str, float],
    new: Dict[str, float],
    lines: List[str],
) -> None:
    """One section of the diff: changed keys, then the disjoint sets.

    Keys present on only one side — the whole metric universe may be
    disjoint when reports come from different instrumentation eras — get
    their own "only in old/new" subsections instead of being interleaved
    with value changes.
    """
    changed = [
        key
        for key in sorted(set(old) & set(new))
        if old[key] != new[key]
    ]
    only_old = sorted(set(old) - set(new))
    only_new = sorted(set(new) - set(old))
    if not (changed or only_old or only_new):
        return
    if changed:
        lines.append(f"-- {label} --")
        for key in changed:
            a, b = old[key], new[key]
            ratio = f" ({b / a:+.2%} of old)" if a else ""
            lines.append(f"~ {key}: {a:g} -> {b:g}{ratio}")
    if only_old:
        lines.append(f"-- {label} (only in old) --")
        for key in only_old:
            lines.append(f"- {key} = {old[key]:g}")
    if only_new:
        lines.append(f"-- {label} (only in new) --")
        for key in only_new:
            lines.append(f"+ {key} = {new[key]:g}")


def diff_reports(old: RunReport, new: RunReport) -> str:
    """Readable field-by-field diff of two reports.

    Counters, gauges, and per-stage seconds are compared by key; equal
    values are omitted, so the output is empty-ish for identical runs.
    Disjoint metric sets render as clean "only in old/new" sections.
    """
    lines: List[str] = []
    old_stem = old.spec.stem if old.spec else "unkeyed"
    new_stem = new.spec.stem if new.spec else "unkeyed"
    lines.append(f"diff: {old_stem} -> {new_stem}")
    if old.git_sha != new.git_sha and (old.git_sha or new.git_sha):
        lines.append(f"commit: {old.git_sha or '?'} -> {new.git_sha or '?'}")
    _diff_section("counters", old.metrics.counters, new.metrics.counters, lines)
    _diff_section("gauges", old.metrics.gauges, new.metrics.gauges, lines)
    _diff_section(
        "stage seconds",
        {k: v.get("seconds", 0.0) for k, v in old.timings.items()},
        {k: v.get("seconds", 0.0) for k, v in new.timings.items()},
        lines,
    )
    if len(lines) <= 2 and not any(line.startswith("--") for line in lines):
        lines.append("(no differences in counters, gauges, or timings)")
    return "\n".join(lines)
