"""Logging configuration for the ``repro.*`` logger hierarchy.

Library modules log through ``logging.getLogger("repro.<area>")`` and
never print; entry points (the CLI, the bench runner) opt into console
output by calling :func:`configure_logging` once. Verbosity maps onto
stdlib levels:

====== =========
-1     ERROR (``--quiet``)
0      WARNING (default)
1      INFO (``--verbose``)
>=2    DEBUG (``-vv``)
====== =========
"""

from __future__ import annotations

import logging
import sys
from typing import Optional, TextIO

__all__ = ["configure_logging", "ROOT_LOGGER_NAME"]

ROOT_LOGGER_NAME = "repro"

_LEVELS = {-1: logging.ERROR, 0: logging.WARNING, 1: logging.INFO}

# Marker attribute so repeat configuration replaces our handler instead
# of stacking duplicates (tests and long-lived sessions reconfigure).
_HANDLER_FLAG = "_repro_obs_handler"


def configure_logging(
    verbosity: int = 0, stream: Optional[TextIO] = None
) -> logging.Logger:
    """Attach one stream handler to the ``repro`` logger and set levels.

    Idempotent: calling again adjusts the level and replaces the
    previously installed handler (so a changed ``stream`` takes effect)
    without duplicating output. Returns the configured root logger.
    """
    level = _LEVELS.get(verbosity, logging.DEBUG if verbosity >= 2 else logging.ERROR)
    logger = logging.getLogger(ROOT_LOGGER_NAME)
    logger.setLevel(level)
    for handler in list(logger.handlers):
        if getattr(handler, _HANDLER_FLAG, False):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(logging.Formatter("%(name)s: %(message)s"))
    setattr(handler, _HANDLER_FLAG, True)
    logger.addHandler(handler)
    # Console output is our hand-installed handler's job; letting records
    # propagate to the root logger would double-print under basicConfig.
    logger.propagate = False
    return logger
