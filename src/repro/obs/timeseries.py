"""Windowed metrics: periodic snapshots of the live registry.

The :class:`~repro.obs.metrics.MetricsRegistry` accumulates for a whole
run, which is the right artifact for batch figure reproduction but the
wrong view inside a long-lived ``repro serve``: lifetime aggregates
answer "what happened since boot", not "what is happening now". A
:class:`TimeseriesRecorder` closes that gap — it snapshots the registry
on a configurable interval (injectable clock, same contract as
:class:`~repro.search.requests.AdmissionQueue`) and turns cumulative
state into per-window deltas:

- counters become window deltas and per-second **rates**,
- gauges are sampled at the window boundary,
- histograms are differenced bucket-by-bucket, and p50/p99 are
  estimated from the *delta* buckets — the quantiles of the traffic in
  this window, not of everything since the registry was created.

Windows are plain dicts end to end (:meth:`Window.to_dict` /
:meth:`Window.from_dict`), so they serialize into RunReport schema v3,
stream as JSONL through ``repro serve --window-log``, and render via
``repro obs tail`` without any extra machinery. A bounded deque keeps
the last ``max_windows`` in memory for the rolling-quantile dashboard
panel.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

from .metrics import MetricsRegistry, get_metrics

__all__ = ["Window", "TimeseriesRecorder", "delta_quantile"]


def delta_quantile(
    bounds: Sequence[float], bucket_deltas: Sequence[int], q: float
) -> Optional[float]:
    """Estimated ``q``-quantile of one window's bucket deltas.

    The cumulative :meth:`~repro.obs.metrics.Histogram.quantile` clamps
    to the *lifetime* min/max, which is wrong for a window view; here
    the estimate is simply the upper bound of the bucket holding the
    q-th ranked delta observation (the last finite bound for overflow).
    Returns ``None`` when the window saw no observations.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError("quantile must be in [0, 1]")
    total = sum(bucket_deltas)
    if total <= 0:
        return None
    rank = max(1, int(-(-q * total // 1)))  # ceil without math
    cumulative = 0
    for index, count in enumerate(bucket_deltas):
        cumulative += count
        if cumulative >= rank:
            return float(bounds[min(index, len(bounds) - 1)])
    return float(bounds[-1])  # pragma: no cover - counts sum to total


@dataclass
class Window:
    """One interval's worth of metric movement.

    ``counters`` are deltas, ``rates`` are deltas per second,
    ``gauges`` are boundary samples, and each ``histograms`` entry is
    ``{"count", "sum", "mean", "p50", "p99"}`` computed from the delta
    buckets. ``index`` increases monotonically across the run even
    after old windows fall out of the recorder's deque.
    """

    index: int
    start: float
    end: float
    counters: Dict[str, float] = field(default_factory=dict)
    rates: Dict[str, float] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    histograms: Dict[str, Dict[str, Optional[float]]] = field(
        default_factory=dict
    )

    @property
    def duration_seconds(self) -> float:
        return max(0.0, self.end - self.start)

    def to_dict(self) -> Dict[str, object]:
        return {
            "index": self.index,
            "start": self.start,
            "end": self.end,
            "counters": dict(self.counters),
            "rates": dict(self.rates),
            "gauges": dict(self.gauges),
            "histograms": {
                key: dict(entry) for key, entry in self.histograms.items()
            },
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "Window":
        return cls(
            index=int(payload["index"]),
            start=float(payload["start"]),
            end=float(payload["end"]),
            counters={
                str(k): float(v)
                for k, v in payload.get("counters", {}).items()
            },
            rates={
                str(k): float(v) for k, v in payload.get("rates", {}).items()
            },
            gauges={
                str(k): float(v) for k, v in payload.get("gauges", {}).items()
            },
            histograms={
                str(k): {
                    str(fk): (None if fv is None else float(fv))
                    for fk, fv in entry.items()
                }
                for k, entry in payload.get("histograms", {}).items()
            },
        )


class TimeseriesRecorder:
    """Snapshot the live registry into a rolling deque of windows.

    Parameters
    ----------
    registry:
        The registry to snapshot; defaults to the active one (resolved
        at each snapshot, so the recorder can be built before
        ``metrics_enabled`` activates).
    interval_seconds:
        Minimum window length; :meth:`maybe_snapshot` is a no-op until
        the interval has elapsed, so callers can invoke it once per
        serving round unconditionally.
    max_windows:
        Rolling retention — how many windows the quantile panel can
        look back over.
    clock:
        Monotonic-seconds callable, injectable for tests.
    on_window:
        Optional sink called with each completed :class:`Window`
        (``repro serve --window-log`` streams JSONL through this).
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        interval_seconds: float = 1.0,
        max_windows: int = 120,
        clock: Callable[[], float] = time.monotonic,
        on_window: Optional[Callable[[Window], None]] = None,
    ) -> None:
        if interval_seconds <= 0:
            raise ValueError("interval_seconds must be > 0")
        if max_windows < 1:
            raise ValueError("max_windows must be >= 1")
        self.registry = registry
        self.interval_seconds = float(interval_seconds)
        self.clock = clock
        self.on_window = on_window
        self.windows: Deque[Window] = deque(maxlen=max_windows)
        self._next_index = 0
        self._window_start = clock()
        self._last_counters: Dict[str, float] = {}
        self._last_histograms: Dict[str, Tuple[Tuple[float, ...], List[int], int, float]] = {}

    def _resolve_registry(self) -> Optional[MetricsRegistry]:
        return self.registry if self.registry is not None else get_metrics()

    # -- snapshotting ------------------------------------------------------
    def maybe_snapshot(self, force: bool = False) -> Optional[Window]:
        """Close the current window if the interval has elapsed.

        ``force=True`` closes it regardless (end-of-stream flush).
        Returns the new :class:`Window`, or ``None`` when it is not yet
        time.
        """
        now = self.clock()
        if not force and now - self._window_start < self.interval_seconds:
            return None
        return self._snapshot(now)

    def _snapshot(self, now: float) -> Window:
        registry = self._resolve_registry()
        window = Window(
            index=self._next_index, start=self._window_start, end=now
        )
        duration = window.duration_seconds
        if registry is not None:
            counters = registry.counters
            for key, value in counters.items():
                delta = value - self._last_counters.get(key, 0.0)
                window.counters[key] = delta
                window.rates[key] = delta / duration if duration > 0 else 0.0
            self._last_counters = counters
            window.gauges = registry.gauges
            for key, histogram in registry.histograms.items():
                previous = self._last_histograms.get(key)
                if previous is not None and previous[0] == histogram.bounds:
                    deltas = [
                        current - past
                        for current, past in zip(
                            histogram.bucket_counts, previous[1]
                        )
                    ]
                    count = histogram.count - previous[2]
                    total = histogram.total - previous[3]
                else:
                    deltas = list(histogram.bucket_counts)
                    count = histogram.count
                    total = histogram.total
                self._last_histograms[key] = (
                    histogram.bounds,
                    list(histogram.bucket_counts),
                    histogram.count,
                    histogram.total,
                )
                if count <= 0:
                    continue
                window.histograms[key] = {
                    "count": float(count),
                    "sum": total,
                    "mean": total / count,
                    "p50": delta_quantile(histogram.bounds, deltas, 0.5),
                    "p99": delta_quantile(histogram.bounds, deltas, 0.99),
                }
        self._next_index += 1
        self._window_start = now
        self.windows.append(window)
        if self.on_window is not None:
            self.on_window(window)
        return window

    # -- reading -------------------------------------------------------------
    def latest(self) -> Optional[Window]:
        return self.windows[-1] if self.windows else None

    def window_dicts(self) -> List[Dict[str, object]]:
        """All retained windows as plain dicts (RunReport v3 payload)."""
        return [window.to_dict() for window in self.windows]

    def quantile_series(
        self, name: str, field: str = "p50"
    ) -> List[Optional[float]]:
        """One histogram field across the retained windows (rolling
        p50/p99 for the dashboard sparkline); ``None`` marks windows
        where the histogram saw no traffic."""
        series: List[Optional[float]] = []
        for window in self.windows:
            entry = window.histograms.get(name)
            series.append(None if entry is None else entry.get(field))
        return series
