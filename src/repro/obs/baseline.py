"""Archive of known-good RunReports, keyed by workload identity.

The regression watchdog needs something to compare against: this module
stores schema-versioned :class:`~repro.obs.report.RunReport` files under
``results/obs/baselines/<spec-key>/``, where the spec key is the
:class:`~repro.platforms.runspec.RunSpec` stem plus a short digest of
its canonical payload (the digest guards against stem collisions if the
stem format ever changes). Within a key directory, files sort by their
``created_at`` timestamp and carry the producing commit in the name::

    results/obs/baselines/
      GMN-Li_AIDS_p4_b4_s0_quick-1a2b3c4d/
        spec.json                       # the RunSpec payload, for listing
        20260807T120000Z_5e28449.json   # one archived RunReport each

A retention policy bounds growth: :meth:`BaselineStore.save` prunes the
oldest entries beyond ``retain`` after every write, so a CI job that
baselines every merge cannot grow the directory without bound.
"""

from __future__ import annotations

import hashlib
import json
import re
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Union

from .report import RunReport

if TYPE_CHECKING:
    from ..platforms.runspec import RunSpec

__all__ = [
    "BaselineStore",
    "DEFAULT_BASELINE_DIR",
    "DEFAULT_RETAIN",
    "spec_key",
]

DEFAULT_BASELINE_DIR = Path("results") / "obs" / "baselines"

#: Default number of baselines kept per spec key.
DEFAULT_RETAIN = 20

#: Timestamp used in file names when a report has no created_at (v1).
_EPOCH_STAMP = "00000000T000000Z"


def spec_key(spec: "RunSpec") -> str:
    """Directory name for one workload identity: stem + payload digest."""
    canonical = json.dumps(
        spec.to_dict(), sort_keys=True, separators=(",", ":")
    )
    digest = hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:8]
    return f"{spec.stem}-{digest}"


def _sortable_stamp(created_at: Optional[str]) -> str:
    """created_at compacted to a filename-safe, lexically sortable form."""
    if not created_at:
        return _EPOCH_STAMP
    compact = re.sub(r"[^0-9TZ]", "", created_at)
    return compact or _EPOCH_STAMP


class BaselineStore:
    """Filesystem-backed archive of baseline RunReports."""

    def __init__(self, root: Union[str, Path, None] = None) -> None:
        self.root = Path(root) if root is not None else DEFAULT_BASELINE_DIR

    # -- writing -------------------------------------------------------
    def save(
        self,
        report: RunReport,
        retain: int = DEFAULT_RETAIN,
    ) -> Path:
        """Archive a report as the newest baseline for its spec.

        Returns the written path. Requires a keyed report (``spec`` set)
        — an unkeyed baseline could never be matched to a fresh run.
        """
        if report.spec is None:
            raise ValueError("cannot baseline an unkeyed RunReport (spec=None)")
        if retain < 1:
            raise ValueError(f"retain must be >= 1, got {retain}")
        directory = self.root / spec_key(report.spec)
        directory.mkdir(parents=True, exist_ok=True)
        spec_path = directory / "spec.json"
        if not spec_path.exists():
            with open(spec_path, "w") as handle:
                json.dump(report.spec.to_dict(), handle, indent=2, sort_keys=True)
                handle.write("\n")
        sha = (report.git_sha or "unknown")[:10]
        stem = f"{_sortable_stamp(report.created_at)}_{sha}"
        path = directory / f"{stem}.json"
        suffix = 0
        while path.exists():
            suffix += 1
            path = directory / f"{stem}-{suffix}.json"
        report.write(path)
        self.prune(report.spec, keep=retain)
        return path

    def prune(self, spec: "RunSpec", keep: int = DEFAULT_RETAIN) -> List[Path]:
        """Delete the oldest baselines beyond ``keep``; returns removed paths."""
        history = self.history(spec)
        removed = []
        for path in history[: max(0, len(history) - keep)]:
            path.unlink()
            removed.append(path)
        return removed

    # -- reading -------------------------------------------------------
    def history(self, spec: "RunSpec") -> List[Path]:
        """All baseline files for a spec, oldest first."""
        directory = self.root / spec_key(spec)
        if not directory.is_dir():
            return []
        return sorted(
            path for path in directory.glob("*.json") if path.name != "spec.json"
        )

    def latest_path(self, spec: "RunSpec") -> Optional[Path]:
        history = self.history(spec)
        return history[-1] if history else None

    def latest(self, spec: "RunSpec") -> Optional[RunReport]:
        """The newest archived baseline for a spec, or ``None``."""
        path = self.latest_path(spec)
        return RunReport.load(path) if path is not None else None

    def specs(self) -> Dict[str, "RunSpec"]:
        """All archived workload identities, ``{spec_key: RunSpec}``.

        Key directories whose ``spec.json`` is missing or unreadable are
        skipped — a half-deleted entry should not break the dashboard.
        """
        from ..platforms.runspec import RunSpec

        found: Dict[str, RunSpec] = {}
        if not self.root.is_dir():
            return found
        for directory in sorted(self.root.iterdir()):
            spec_path = directory / "spec.json"
            if not spec_path.is_file():
                continue
            try:
                with open(spec_path) as handle:
                    found[directory.name] = RunSpec.from_dict(json.load(handle))
            except (OSError, ValueError, KeyError, json.JSONDecodeError):
                continue
        return found

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BaselineStore(root={str(self.root)!r})"
