"""Prometheus-style text exposition and the ``obs tail`` renderer.

The registry's native ``render()`` is a human-readable dump; a
long-running ``repro serve`` additionally wants a scrape-able surface.
:func:`render_exposition` writes the standard text format — counters
and gauges as single samples, histograms as cumulative ``_bucket{le=}``
series plus ``_sum``/``_count`` — with metric names sanitized to the
Prometheus grammar and the registry's ``name{key=value}`` label keys
split back into real label sets. When the latest
:class:`~repro.obs.timeseries.Window` is supplied, its per-window
histogram quantiles are exported as ``<ns>_window_*{quantile=}``
gauges, so a scraper sees current-traffic p50/p99 rather than lifetime
aggregates.

:func:`render_window` is the companion terminal view: ``repro obs
tail`` reads windows from a ``--window-log`` JSONL stream or a
RunReport v3 artifact (:func:`read_windows` handles both shapes) and
pretty-prints the most recent ones.
"""

from __future__ import annotations

import json
import logging
import re
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from .metrics import MetricsRegistry
from .timeseries import Window

__all__ = [
    "split_metric_key",
    "render_exposition",
    "write_exposition",
    "render_window",
    "read_windows",
]

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_KEY_RE = re.compile(r"[^a-zA-Z0-9_]")


def split_metric_key(key: str) -> Tuple[str, Dict[str, str]]:
    """Invert :func:`~repro.obs.metrics.metric_key`.

    ``"name{a=1,b=x}"`` → ``("name", {"a": "1", "b": "x"})``; keys
    without labels come back with an empty dict.
    """
    if not key.endswith("}") or "{" not in key:
        return key, {}
    name, _, inner = key[:-1].partition("{")
    labels: Dict[str, str] = {}
    for item in inner.split(","):
        label, _, value = item.partition("=")
        labels[label] = value
    return name, labels


def _prom_name(namespace: str, name: str) -> str:
    sanitized = _NAME_RE.sub("_", name)
    return f"{namespace}_{sanitized}" if namespace else sanitized


def _prom_labels(
    labels: Dict[str, str], extra: Optional[Dict[str, str]] = None
) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    inner = ",".join(
        f'{_LABEL_KEY_RE.sub("_", key)}="{_escape(merged[key])}"'
        for key in sorted(merged)
    )
    return "{" + inner + "}"


def _escape(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _format(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    return repr(float(value))


def render_exposition(
    registry: MetricsRegistry,
    namespace: str = "repro",
    window: Optional[Window] = None,
) -> str:
    """The registry (and optionally the latest window) as exposition text."""
    lines: List[str] = []
    typed: set = set()

    def emit_type(name: str, kind: str) -> None:
        if name not in typed:
            typed.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for key in sorted(registry.counters):
        name, labels = split_metric_key(key)
        prom = _prom_name(namespace, name)
        emit_type(prom, "counter")
        lines.append(
            f"{prom}{_prom_labels(labels)} "
            f"{_format(registry.counters[key])}"
        )
    for key in sorted(registry.gauges):
        name, labels = split_metric_key(key)
        prom = _prom_name(namespace, name)
        emit_type(prom, "gauge")
        lines.append(
            f"{prom}{_prom_labels(labels)} {_format(registry.gauges[key])}"
        )
    for key in sorted(registry.histograms):
        histogram = registry.histograms[key]
        name, labels = split_metric_key(key)
        prom = _prom_name(namespace, name)
        emit_type(prom, "histogram")
        cumulative = 0
        for bound, count in zip(histogram.bounds, histogram.bucket_counts):
            cumulative += count
            lines.append(
                f"{prom}_bucket"
                f"{_prom_labels(labels, {'le': _format(bound)})} "
                f"{cumulative}"
            )
        lines.append(
            f"{prom}_bucket{_prom_labels(labels, {'le': '+Inf'})} "
            f"{histogram.count}"
        )
        lines.append(
            f"{prom}_sum{_prom_labels(labels)} {_format(histogram.total)}"
        )
        lines.append(f"{prom}_count{_prom_labels(labels)} {histogram.count}")
    if window is not None:
        prefix = f"{namespace}_window" if namespace else "window"
        lines.append(f"# TYPE {prefix} gauge")
        lines.append(f"{prefix}{{field=\"index\"}} {window.index}")
        lines.append(
            f"{prefix}{{field=\"duration_seconds\"}} "
            f"{_format(window.duration_seconds)}"
        )
        for key in sorted(window.histograms):
            entry = window.histograms[key]
            name, labels = split_metric_key(key)
            prom = _prom_name(f"{namespace}_window" if namespace else "window", name)
            emit_type(prom, "gauge")
            for field, quantile in (("p50", "0.5"), ("p99", "0.99")):
                value = entry.get(field)
                if value is None:
                    continue
                lines.append(
                    f"{prom}"
                    f"{_prom_labels(labels, {'quantile': quantile})} "
                    f"{_format(value)}"
                )
    return "\n".join(lines) + "\n"


def write_exposition(
    registry: MetricsRegistry,
    path: Union[str, Path],
    namespace: str = "repro",
    window: Optional[Window] = None,
) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(render_exposition(registry, namespace, window))
    return path


def render_window(window: Window, prefix: str = "") -> str:
    """One window as readable terminal text (``repro obs tail``)."""
    lines = [
        f"window #{window.index}  "
        f"[{window.start:.3f}s -> {window.end:.3f}s]  "
        f"({window.duration_seconds:.3f}s)"
    ]
    rated = [
        key
        for key in sorted(window.rates)
        if key.startswith(prefix) and window.counters.get(key)
    ]
    if rated:
        lines.append("  rates:")
        for key in rated:
            lines.append(
                f"    {key}: {window.counters[key]:g} "
                f"({window.rates[key]:.2f}/s)"
            )
    gauged = [key for key in sorted(window.gauges) if key.startswith(prefix)]
    if gauged:
        lines.append("  gauges:")
        for key in gauged:
            lines.append(f"    {key} = {window.gauges[key]:g}")
    histed = [
        key for key in sorted(window.histograms) if key.startswith(prefix)
    ]
    if histed:
        lines.append("  histograms:")
        for key in histed:
            entry = window.histograms[key]

            def _ms(field: str) -> str:
                value = entry.get(field)
                return "-" if value is None else f"{1e3 * value:.3f}ms"

            lines.append(
                f"    {key}: count={entry.get('count', 0):g} "
                f"p50={_ms('p50')} p99={_ms('p99')}"
            )
    if len(lines) == 1:
        lines.append("  (no matching activity)")
    return "\n".join(lines)


def read_windows(path: Union[str, Path]) -> List[Window]:
    """Load windows from a JSONL window log or a RunReport v3 file.

    A JSONL log may end in a truncated line (the writer crashed or is
    mid-append); such lines are skipped and counted with a warning
    rather than crashing the read. A file where *no* line parses is
    still a :class:`ValueError` — that is the wrong file, not a
    damaged one.
    """
    text = Path(path).read_text()
    stripped = text.strip()
    if not stripped:
        return []
    try:
        payload = json.loads(stripped)
    except json.JSONDecodeError:
        payload = None
    if isinstance(payload, dict):
        if "windows" in payload:  # RunReport v3 (or serve outcome dump)
            return [Window.from_dict(entry) for entry in payload["windows"]]
        return [Window.from_dict(payload)]  # a single window object
    if isinstance(payload, list):
        return [Window.from_dict(entry) for entry in payload]
    windows = []
    skipped = 0
    for line in stripped.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError:
            skipped += 1
            continue
        windows.append(Window.from_dict(entry))
    if not windows:
        raise ValueError(
            f"no window snapshots could be parsed from {path}"
            + (f" ({skipped} malformed line(s))" if skipped else "")
        )
    if skipped:
        logging.getLogger("repro.obs.export").warning(
            "skipped %d malformed window line(s) in %s (truncated write?)",
            skipped,
            path,
        )
    return windows
