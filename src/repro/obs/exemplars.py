"""Tail exemplars: full span trees of the requests that hurt.

Aggregates (histograms, windows) say *that* the tail is slow; an SLO
postmortem needs *which* requests were slow and where their time went.
The :class:`ExemplarBuffer` keeps exactly the interesting evidence:

- the **K slowest** completed requests, maintained with a min-heap so a
  long stream costs O(log K) per offer and bounded memory, and
- **every deadline-expired request** (up to a generous bound —
  expirations are the SLO violations themselves, so none are sampled
  away silently; overflow is counted, not dropped quietly).

Each exemplar carries the request's full span tree from the
:class:`~repro.obs.context.RequestTracker`, so the dashboard's exemplar
panel and RunReport schema v3 can show per-stage budget attribution for
the exact requests that missed (or nearly missed) their deadlines.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional

__all__ = ["Exemplar", "ExemplarBuffer"]


@dataclass(frozen=True)
class Exemplar:
    """One retained request: identity, outcome, and its span tree."""

    request_id: int
    latency_seconds: float
    status: str
    tree: Optional[Dict[str, object]] = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "request_id": self.request_id,
            "latency_seconds": self.latency_seconds,
            "status": self.status,
            "tree": self.tree,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "Exemplar":
        return cls(
            request_id=int(payload["request_id"]),
            latency_seconds=float(payload["latency_seconds"]),
            status=str(payload["status"]),
            tree=payload.get("tree"),
        )


class ExemplarBuffer:
    """Retain the K slowest completions and all deadline expirations."""

    def __init__(self, k_slowest: int = 8, max_expired: int = 256) -> None:
        if k_slowest < 1:
            raise ValueError("k_slowest must be >= 1")
        if max_expired < 1:
            raise ValueError("max_expired must be >= 1")
        self.k_slowest = k_slowest
        self.max_expired = max_expired
        # Min-heap of (latency, sequence, exemplar): the root is the
        # fastest retained request, evicted first.
        self._slow: List[tuple] = []
        self._expired: List[Exemplar] = []
        self._sequence = 0
        self.expired_seen = 0
        self.expired_dropped = 0

    def __len__(self) -> int:
        return len(self._slow) + len(self._expired)

    def offer(
        self,
        request_id: int,
        latency_seconds: float,
        status: str,
        tree: Optional[Dict[str, object]] = None,
    ) -> bool:
        """Consider one finished request; returns True when retained."""
        exemplar = Exemplar(
            request_id=int(request_id),
            latency_seconds=float(latency_seconds),
            status=str(status),
            tree=tree,
        )
        if exemplar.status != "ok":
            self.expired_seen += 1
            if len(self._expired) >= self.max_expired:
                self.expired_dropped += 1
                return False
            self._expired.append(exemplar)
            return True
        self._sequence += 1
        entry = (exemplar.latency_seconds, self._sequence, exemplar)
        if len(self._slow) < self.k_slowest:
            heapq.heappush(self._slow, entry)
            return True
        if entry[0] <= self._slow[0][0]:
            return False
        heapq.heapreplace(self._slow, entry)
        return True

    @property
    def threshold_seconds(self) -> Optional[float]:
        """Latency a completion must exceed to enter the slow set."""
        if len(self._slow) < self.k_slowest:
            return None
        return self._slow[0][0]

    def slowest(self) -> List[Exemplar]:
        """Retained completions, slowest first."""
        return [
            entry[2]
            for entry in sorted(self._slow, key=lambda e: (-e[0], e[1]))
        ]

    def expired(self) -> List[Exemplar]:
        """Retained expirations, in arrival order."""
        return list(self._expired)

    def as_dicts(self) -> List[Dict[str, object]]:
        """Every retained exemplar as a plain dict (RunReport v3)."""
        return [exemplar.to_dict() for exemplar in self.slowest()] + [
            exemplar.to_dict() for exemplar in self.expired()
        ]
