"""Request-scoped trace context and per-request span trees.

The run-scoped obs stack (metrics registry + span tracer) answers
"what did this run do"; the serving pipeline needs "what did *this
request* do" — which stage ate its deadline budget, on which shard, in
which worker process. Two pieces provide that:

- :class:`RequestContext` — the identity that travels *with* a request:
  request id, absolute deadline, and free-form string baggage. It is
  carried explicitly through every pipeline stage (admission → schedule
  → execute → rank) and crosses the shm worker boundary in
  :mod:`repro.perf.parallel` as a plain-dict wire form inside the task
  tuple, so no process ever has to guess which request it is working
  for.
- :class:`RequestTracker` — the sink for :class:`StageSpan` records.
  Stage spans are *contiguous on the pipeline clock*: each stage's span
  starts at the previous stage's end, so summed top-level durations
  equal the measured request latency and per-stage deadline-budget
  attribution is exact (the ``search.serve.budget_seconds{stage=...}``
  histograms come straight from :meth:`RequestTracker.budgets`).

Workers build a private tracker, serialize it with
:meth:`RequestTracker.wire_spans`, and ship it back alongside their
metrics snapshot; the parent folds it in with
:meth:`RequestTracker.ingest` at join — the same merge discipline as
:class:`~repro.obs.metrics.MetricsRegistry`. The tracker is bounded:
once ``max_requests`` distinct requests are tracked, the oldest
request's spans are evicted and counted as ``obs.context.dropped_spans``
on the active metrics registry (CI asserts this stays zero for the
smoke stream).

Everything here is free when off: the pipeline only records spans when
a tracker was injected, and a ``None`` tracker costs one attribute read
per stage.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .metrics import get_metrics

__all__ = [
    "RequestContext",
    "StageSpan",
    "RequestTracker",
    "render_tree",
]


@dataclass(frozen=True)
class RequestContext:
    """The identity a request carries through every pipeline stage.

    ``deadline`` is absolute on the admission queue's clock; ``baggage``
    is a small sorted tuple of string pairs (tenant, experiment arm, …)
    that propagates verbatim — stages may read it, never mutate it.
    """

    request_id: int
    deadline: Optional[float] = None
    baggage: Tuple[Tuple[str, str], ...] = ()

    @classmethod
    def make(
        cls,
        request_id: int,
        deadline: Optional[float] = None,
        **baggage: object,
    ) -> "RequestContext":
        items = tuple(
            (str(key), str(baggage[key])) for key in sorted(baggage)
        )
        return cls(request_id=request_id, deadline=deadline, baggage=items)

    def bag(self) -> Dict[str, str]:
        return dict(self.baggage)

    def to_wire(self) -> Dict[str, object]:
        """Plain-dict form for the worker task tuple (pickle-stable)."""
        payload: Dict[str, object] = {"request_id": int(self.request_id)}
        if self.deadline is not None:
            payload["deadline"] = float(self.deadline)
        if self.baggage:
            payload["baggage"] = [list(pair) for pair in self.baggage]
        return payload

    @classmethod
    def from_wire(cls, payload: Dict[str, object]) -> "RequestContext":
        deadline = payload.get("deadline")
        return cls(
            request_id=int(payload["request_id"]),
            deadline=None if deadline is None else float(deadline),
            baggage=tuple(
                (str(k), str(v)) for k, v in payload.get("baggage", [])
            ),
        )


@dataclass(frozen=True)
class StageSpan:
    """One stage's time slice of one request.

    ``parent`` names the enclosing stage (``"execute.shard"`` spans nest
    under ``"execute"``); top-level spans have ``parent=None`` and are
    the unit of budget attribution. ``start`` is on the recording
    process's clock — comparable within a process, not across the
    worker boundary (durations are, which is what budgets use).
    """

    request_id: int
    stage: str
    start: float
    duration_seconds: float
    parent: Optional[str] = None
    attrs: Tuple[Tuple[str, str], ...] = ()

    def attr_dict(self) -> Dict[str, str]:
        return dict(self.attrs)

    def to_wire(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "request_id": int(self.request_id),
            "stage": self.stage,
            "start": float(self.start),
            "duration_seconds": float(self.duration_seconds),
        }
        if self.parent is not None:
            payload["parent"] = self.parent
        if self.attrs:
            payload["attrs"] = {key: value for key, value in self.attrs}
        return payload

    @classmethod
    def from_wire(cls, payload: Dict[str, object]) -> "StageSpan":
        attrs = payload.get("attrs") or {}
        return cls(
            request_id=int(payload["request_id"]),
            stage=str(payload["stage"]),
            start=float(payload["start"]),
            duration_seconds=float(payload["duration_seconds"]),
            parent=payload.get("parent"),
            attrs=tuple(
                (str(key), str(attrs[key])) for key in sorted(attrs)
            ),
        )


def _freeze_attrs(attrs: Dict[str, object]) -> Tuple[Tuple[str, str], ...]:
    return tuple((str(key), str(attrs[key])) for key in sorted(attrs))


@dataclass
class _RequestRecord:
    spans: List[StageSpan] = field(default_factory=list)
    annotations: Dict[str, str] = field(default_factory=dict)


class RequestTracker:
    """Bounded store of per-request stage spans and annotations.

    Parameters
    ----------
    max_requests:
        Distinct requests tracked at once. The oldest request is
        evicted when the bound is exceeded; evicted spans are counted
        as ``obs.context.dropped_spans`` on the active registry so a
        too-small tracker is visible, never silent.
    """

    def __init__(self, max_requests: int = 8192) -> None:
        if max_requests < 1:
            raise ValueError("max_requests must be >= 1")
        self.max_requests = max_requests
        self._records: "OrderedDict[int, _RequestRecord]" = OrderedDict()
        self.dropped_spans = 0

    def __len__(self) -> int:
        return len(self._records)

    def request_ids(self) -> List[int]:
        return list(self._records)

    # -- recording -------------------------------------------------------
    def _record_for(self, request_id: int) -> _RequestRecord:
        record = self._records.get(request_id)
        if record is None:
            record = self._records[request_id] = _RequestRecord()
            while len(self._records) > self.max_requests:
                _, evicted = self._records.popitem(last=False)
                self.dropped_spans += len(evicted.spans)
                metrics = get_metrics()
                if metrics is not None:
                    metrics.inc(
                        "obs.context.dropped_spans", len(evicted.spans)
                    )
        return record

    def record(
        self,
        request_id: int,
        stage: str,
        start: float,
        duration_seconds: float,
        parent: Optional[str] = None,
        **attrs: object,
    ) -> StageSpan:
        """Append one stage span for ``request_id`` and return it."""
        span = StageSpan(
            request_id=int(request_id),
            stage=stage,
            start=float(start),
            duration_seconds=max(0.0, float(duration_seconds)),
            parent=parent,
            attrs=_freeze_attrs(attrs),
        )
        self._record_for(span.request_id).spans.append(span)
        return span

    def annotate(self, request_id: int, **attrs: object) -> None:
        """Attach request-level attributes (batch id, group size, …)."""
        record = self._record_for(int(request_id))
        for key in sorted(attrs):
            record.annotations[str(key)] = str(attrs[key])

    # -- reading ----------------------------------------------------------
    def spans_for(self, request_id: int) -> List[StageSpan]:
        record = self._records.get(int(request_id))
        return list(record.spans) if record is not None else []

    def annotations_for(self, request_id: int) -> Dict[str, str]:
        record = self._records.get(int(request_id))
        return dict(record.annotations) if record is not None else {}

    def budgets(self, request_id: int) -> Dict[str, float]:
        """Per-stage wall-clock budget: top-level durations by stage.

        Stage spans are contiguous on the pipeline clock, so the summed
        values equal the request's measured latency — the contract the
        ``search.serve.budget_seconds{stage=...}`` histograms rely on.
        """
        budgets: Dict[str, float] = {}
        for span in self.spans_for(request_id):
            if span.parent is None:
                budgets[span.stage] = (
                    budgets.get(span.stage, 0.0) + span.duration_seconds
                )
        return budgets

    def tree(self, request_id: int) -> Optional[Dict[str, object]]:
        """The request's span tree as a plain nested dict (JSON-safe).

        Top-level spans (ordered by start time) carry their children
        (spans whose ``parent`` names their stage) nested underneath.
        Returns ``None`` for unknown requests.
        """
        record = self._records.get(int(request_id))
        if record is None:
            return None
        nodes = [
            {
                "stage": span.stage,
                "start": span.start,
                "duration_seconds": span.duration_seconds,
                "attrs": span.attr_dict(),
                "children": [],
            }
            for span in record.spans
            if span.parent is None
        ]
        nodes.sort(key=lambda node: node["start"])
        by_stage: Dict[str, Dict[str, object]] = {}
        for node in nodes:
            by_stage.setdefault(node["stage"], node)
        orphans = 0
        for span in record.spans:
            if span.parent is None:
                continue
            parent = by_stage.get(span.parent)
            child = {
                "stage": span.stage,
                "start": span.start,
                "duration_seconds": span.duration_seconds,
                "attrs": span.attr_dict(),
                "children": [],
            }
            if parent is None:
                orphans += 1
                nodes.append(child)
            else:
                parent["children"].append(child)
        tree: Dict[str, object] = {
            "request_id": int(request_id),
            "annotations": dict(record.annotations),
            "spans": nodes,
        }
        if orphans:
            tree["orphan_spans"] = orphans
        return tree

    # -- worker transport --------------------------------------------------
    def wire_spans(
        self, request_ids: Optional[Iterable[int]] = None
    ) -> List[Dict[str, object]]:
        """All spans (optionally filtered) as plain dicts for the pipe."""
        ids = (
            list(self._records)
            if request_ids is None
            else [int(request_id) for request_id in request_ids]
        )
        payloads: List[Dict[str, object]] = []
        for request_id in ids:
            for span in self.spans_for(request_id):
                payloads.append(span.to_wire())
        return payloads

    def ingest(
        self,
        payloads: Iterable[Dict[str, object]],
        parent: Optional[str] = None,
    ) -> int:
        """Fold wire spans from a worker in; returns the count ingested.

        ``parent`` overrides the spans' parent stage when given — the
        executor ingests worker shard spans under its own ``"execute"``
        span regardless of how the worker labelled them.
        """
        count = 0
        for payload in payloads:
            span = StageSpan.from_wire(payload)
            if parent is not None and span.parent != parent:
                span = StageSpan(
                    request_id=span.request_id,
                    stage=span.stage,
                    start=span.start,
                    duration_seconds=span.duration_seconds,
                    parent=parent,
                    attrs=span.attrs,
                )
            self._record_for(span.request_id).spans.append(span)
            count += 1
        return count

    def replicate(
        self, source_id: int, target_ids: Sequence[int]
    ) -> int:
        """Copy ``source_id``'s *child* spans onto dedup followers.

        A deduplicated group is scored once under its primary request;
        followers share the work, so they share the execution detail —
        each follower's tree shows the same per-shard spans, marked
        ``replicated_from`` so provenance stays honest.
        """
        children = [
            span
            for span in self.spans_for(int(source_id))
            if span.parent is not None
        ]
        copied = 0
        for target_id in target_ids:
            target_id = int(target_id)
            if target_id == int(source_id):
                continue
            for span in children:
                attrs = dict(span.attrs)
                attrs["replicated_from"] = str(source_id)
                self._record_for(target_id).spans.append(
                    StageSpan(
                        request_id=target_id,
                        stage=span.stage,
                        start=span.start,
                        duration_seconds=span.duration_seconds,
                        parent=span.parent,
                        attrs=_freeze_attrs(attrs),
                    )
                )
                copied += 1
        return copied

    def clear(self) -> None:
        self._records.clear()


def render_tree(tree: Dict[str, object]) -> str:
    """Readable indented rendering of a :meth:`RequestTracker.tree`."""
    lines = [f"request {tree['request_id']}"]
    annotations = tree.get("annotations") or {}
    if annotations:
        inner = " ".join(
            f"{key}={annotations[key]}" for key in sorted(annotations)
        )
        lines.append(f"  [{inner}]")

    def walk(node: Dict[str, object], depth: int) -> None:
        attrs = node.get("attrs") or {}
        suffix = (
            " {" + ", ".join(f"{k}={attrs[k]}" for k in sorted(attrs)) + "}"
            if attrs
            else ""
        )
        lines.append(
            "  " * depth
            + f"- {node['stage']}: "
            + f"{1e3 * float(node['duration_seconds']):.3f} ms"
            + suffix
        )
        for child in node.get("children", []):
            walk(child, depth + 1)

    for node in tree.get("spans", []):
        walk(node, 1)
    return "\n".join(lines)
