"""Noise-aware analytics over the benchmark history store.

Three consumers sit on top of :class:`~repro.obs.history.BenchHistory`:

- :func:`compare_entry` — the regression gate behind ``repro obs bench
  compare``. Deterministic check values (equivalence verdicts, unique
  counts, dedup totals) must match the latest comparable baseline
  **exactly**; wall-clock timings get a statistical decision
  (:func:`timing_decision`) built from the raw per-repeat samples the
  v2 :class:`~repro.perf.timing.BenchReport` retains — median ± k·MAD
  confidence intervals with a minimum-effect threshold, falling back to
  a deliberately wide ratio band when either side is a legacy
  single-number entry. Timing regressions *warn* (exit 2); check drift
  *fails* (exit 1) — the same honest/deterministic split
  :mod:`repro.obs.regress` applies to RunReports.
- :func:`trend_report` — rolling metric series (one point per history
  entry, timings as sample medians) with a sliding z-score
  :func:`detect_changepoints` pass that flags the entry — and therefore
  the commit — where a metric shifted.
- :func:`attribute_stages` — joins a bench-level slowdown to the
  per-stage ``search.serve.budget_seconds{stage=...}`` histograms of a
  serving RunReport, so "search got slower" becomes "execute got
  slower" (admission / schedule / execute / rank / respond).

Everything is plain stdlib math over plain dicts: no numpy in the
decision path, so the gate runs identically everywhere.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .history import BenchHistory, HistoryEntry
from .regress import Finding, RegressionPolicy

__all__ = [
    "COMPARISON_SCHEMA_VERSION",
    "COMPARISON_KIND",
    "median",
    "mad",
    "timing_decision",
    "BenchComparison",
    "compare_entry",
    "compare_history",
    "metric_names",
    "metric_series",
    "detect_changepoints",
    "trend_report",
    "render_trend",
    "render_markdown_table",
    "stage_budget_means",
    "attribute_stages",
    "render_attribution",
]

COMPARISON_SCHEMA_VERSION = 1
COMPARISON_KIND = "repro-bench-comparison"

#: Consistency constant relating MAD to the standard deviation of a
#: normal distribution (sigma ~= 1.4826 * MAD).
_MAD_SIGMA = 1.4826


def median(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("median of empty sequence")
    ordered = sorted(float(v) for v in values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def mad(values: Sequence[float]) -> float:
    """Median absolute deviation — the robust spread estimate."""
    center = median(values)
    return median([abs(float(v) - center) for v in values])


def _interval(values: Sequence[float], k: float) -> Tuple[float, float, float]:
    """(median, lo, hi): a median ± k·sigma_MAD/sqrt(n) interval."""
    center = median(values)
    half = k * _MAD_SIGMA * mad(values) / math.sqrt(len(values))
    return center, center - half, center + half


def timing_decision(
    baseline: Sequence[float],
    current: Sequence[float],
    policy: Optional[RegressionPolicy] = None,
) -> Dict[str, object]:
    """Statistical verdict on one timing variant.

    With enough raw samples on both sides (``policy.bench_min_samples``)
    the decision is CI-overlap: *regressed* only when the current
    median exceeds the baseline median by more than
    ``bench_min_effect`` (relative) **and** the two median±k·MAD/√n
    intervals are disjoint — so a byte-identical rerun (identical
    samples, identical intervals) can never be flagged, and ordinary
    repeat-to-repeat noise widens the intervals until it silences
    itself. *improved* is the symmetric verdict. Without samples
    (legacy single-number entries) only a ratio beyond the wide
    ``bench_fallback_rel_tol`` band is called: a 2x slowdown still
    trips, noise does not.
    """
    policy = policy if policy is not None else RegressionPolicy()
    base = [float(v) for v in baseline]
    cur = [float(v) for v in current]
    if not base or not cur:
        return {"decision": "no-data", "method": "none"}
    base_med = median(base)
    cur_med = median(cur)
    ratio = cur_med / base_med if base_med > 0 else float("inf")
    effect = ratio - 1.0 if base_med > 0 else float("inf")
    result: Dict[str, object] = {
        "baseline_median": base_med,
        "current_median": cur_med,
        "baseline_n": len(base),
        "current_n": len(cur),
        "ratio": ratio,
        "effect": effect,
    }
    if (
        len(base) >= policy.bench_min_samples
        and len(cur) >= policy.bench_min_samples
    ):
        _, base_lo, base_hi = _interval(base, policy.bench_mad_k)
        _, cur_lo, cur_hi = _interval(cur, policy.bench_mad_k)
        result["method"] = "ci-overlap"
        result["baseline_interval"] = [base_lo, base_hi]
        result["current_interval"] = [cur_lo, cur_hi]
        if effect > policy.bench_min_effect and cur_lo > base_hi:
            result["decision"] = "regressed"
        elif effect < -policy.bench_min_effect and cur_hi < base_lo:
            result["decision"] = "improved"
        else:
            result["decision"] = "ok"
    else:
        result["method"] = "ratio-fallback"
        band = policy.bench_fallback_rel_tol
        if effect > band:
            result["decision"] = "regressed"
        elif base_med > 0 and ratio < 1.0 / (1.0 + band):
            result["decision"] = "improved"
        else:
            result["decision"] = "ok"
    return result


# ---------------------------------------------------------------------------
# Regression gate


@dataclass
class BenchComparison:
    """Outcome of gating one bench entry against its history.

    ``findings`` are hard failures (deterministic check drift, exit 1);
    ``warnings`` are statistical timing regressions (exit 2, the
    "probably slower — look" band); ``infos`` are observations
    (improvements, environmental check drift). ``status`` is one of
    ``ok`` / ``regressed`` / ``warned`` / ``no-baseline``.
    """

    bench: str
    baseline_id: str = ""
    current_id: str = ""
    status: str = "ok"
    findings: List[Finding] = field(default_factory=list)
    warnings: List[Finding] = field(default_factory=list)
    infos: List[Finding] = field(default_factory=list)

    @property
    def exit_code(self) -> int:
        if self.findings:
            return 1
        if self.warnings or self.status == "no-baseline":
            return 2
        return 0

    def resolve_status(self) -> None:
        if self.status == "no-baseline":
            return
        if self.findings:
            self.status = "regressed"
        elif self.warnings:
            self.status = "warned"
        else:
            self.status = "ok"

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema_version": COMPARISON_SCHEMA_VERSION,
            "kind": COMPARISON_KIND,
            "bench": self.bench,
            "baseline_id": self.baseline_id,
            "current_id": self.current_id,
            "status": self.status,
            "exit_code": self.exit_code,
            "findings": [item.to_dict() for item in self.findings],
            "warnings": [item.to_dict() for item in self.warnings],
            "infos": [item.to_dict() for item in self.infos],
        }

    def render(self) -> str:
        lines = [
            f"== bench compare: {self.bench} "
            f"({self.current_id or 'current'} vs "
            f"{self.baseline_id or 'no baseline'}) =="
        ]
        if self.status == "no-baseline":
            lines.append(
                "NO BASELINE: no prior history entry with a matching "
                "config (record one with `repro obs bench record`)"
            )
            return "\n".join(lines)
        if self.findings:
            lines.append(f"REGRESSIONS ({len(self.findings)}):")
            lines.extend(f"  {item.render()}" for item in self.findings)
        if self.warnings:
            lines.append(f"timing warnings ({len(self.warnings)}):")
            lines.extend(f"  {item.render()}" for item in self.warnings)
        if not self.findings and not self.warnings:
            lines.append(
                "OK: deterministic checks match; timings within the "
                "statistical band"
            )
        if self.infos:
            lines.append(f"info ({len(self.infos)}):")
            lines.extend(f"  {item.render()}" for item in self.infos)
        return "\n".join(lines)


def _entry_label(entry: HistoryEntry) -> str:
    sha = (entry.git_sha or "unknown")[:12]
    return f"{entry.entry_id}@{sha}"


def _is_environmental_value(name: str, value: object, policy) -> bool:
    if policy.is_environmental_check(name):
        return True
    return not isinstance(value, (bool, int, float, str))


def compare_entry(
    history: Sequence[HistoryEntry],
    candidate: HistoryEntry,
    policy: Optional[RegressionPolicy] = None,
    explicit: bool = False,
) -> BenchComparison:
    """Gate one entry against the latest comparable history entry.

    Comparable means: same bench, same config digest (quick-mode runs
    never gate full-mode history and vice versa), and not the candidate
    itself (so gating the newest recorded entry compares it against its
    predecessor).  ``explicit`` marks a candidate supplied from outside
    the history (``--candidate``): if its content digest already exists
    in the store it is an exact duplicate of a gated entry, which
    passes rather than reporting a missing baseline.
    """
    policy = policy if policy is not None else RegressionPolicy()
    result = BenchComparison(
        bench=candidate.bench, current_id=_entry_label(candidate)
    )
    comparable = [
        entry
        for entry in history
        if entry.bench == candidate.bench
        and entry.config_key == candidate.config_key
        and entry.entry_id != candidate.entry_id
    ]
    if not comparable:
        # An explicit candidate that exactly duplicates a recorded
        # entry (same content digest) has nothing new to gate: that is
        # a pass, not a missing baseline.
        if explicit and any(
            entry.entry_id == candidate.entry_id for entry in history
        ):
            result.baseline_id = result.current_id
            result.status = "ok"
            return result
        result.status = "no-baseline"
        return result
    baseline = comparable[-1]
    result.baseline_id = _entry_label(baseline)

    # Deterministic check values: exact match, like sim.* counters in
    # `obs check`. Environmental check values (throughput, latency
    # quantiles) are info-only.
    for name in sorted(set(baseline.checks) | set(candidate.checks)):
        base_value = baseline.checks.get(name)
        cur_value = candidate.checks.get(name)
        reference = cur_value if cur_value is not None else base_value
        environmental = _is_environmental_value(name, reference, policy)
        sink = result.infos if environmental else result.findings
        if name not in candidate.checks:
            sink.append(
                Finding("check", name, base_value, None, "missing from run")
            )
        elif name not in baseline.checks:
            result.infos.append(
                Finding("check", name, None, cur_value, "not in baseline")
            )
        elif base_value != cur_value:
            sink.append(Finding("check", name, base_value, cur_value))

    # Timings: statistical decision per variant from the raw samples.
    for variant in sorted(
        set(baseline.timings) & set(candidate.timings)
    ):
        verdict = timing_decision(
            baseline.sample_values(variant),
            candidate.sample_values(variant),
            policy,
        )
        decision = verdict.get("decision")
        detail = (
            f"{verdict['method']}: ratio {verdict.get('ratio', 0.0):.3f} "
            f"(n={verdict.get('baseline_n')}->{verdict.get('current_n')})"
        )
        finding = Finding(
            "timing",
            variant,
            verdict.get("baseline_median"),
            verdict.get("current_median"),
            detail,
        )
        if decision == "regressed":
            result.warnings.append(finding)
        elif decision == "improved":
            result.infos.append(
                Finding(
                    "timing",
                    variant,
                    verdict.get("baseline_median"),
                    verdict.get("current_median"),
                    f"improved; {detail}",
                )
            )
    for variant in sorted(set(baseline.timings) - set(candidate.timings)):
        result.infos.append(
            Finding(
                "timing",
                variant,
                baseline.timings[variant],
                None,
                "variant missing from run",
            )
        )
    result.resolve_status()
    return result


def compare_history(
    history: BenchHistory,
    benches: Optional[Sequence[str]] = None,
    candidates: Optional[Dict[str, HistoryEntry]] = None,
    policy: Optional[RegressionPolicy] = None,
) -> List[BenchComparison]:
    """Gate each bench's newest (or supplied candidate) entry.

    Without explicit ``candidates`` the newest recorded entry per bench
    is gated against its predecessor — the "did the run I just appended
    regress anything" CI shape.
    """
    names = list(benches) if benches else history.benches()
    results: List[BenchComparison] = []
    for name in names:
        entries = history.read(name)
        candidate = (candidates or {}).get(name)
        explicit = candidate is not None
        if candidate is None:
            if not entries:
                comparison = BenchComparison(bench=name, status="no-baseline")
                results.append(comparison)
                continue
            candidate = entries[-1]
        results.append(
            compare_entry(entries, candidate, policy, explicit=explicit)
        )
    return results


# ---------------------------------------------------------------------------
# Trends and changepoints


def metric_names(entries: Sequence[HistoryEntry]) -> List[str]:
    """All trendable metric names: ``timing:<variant>``, ``speedup:<label>``."""
    names = set()
    for entry in entries:
        names.update(f"timing:{variant}" for variant in entry.timings)
        names.update(f"speedup:{label}" for label in entry.speedups)
    return sorted(names)


def metric_series(
    entries: Sequence[HistoryEntry], metric: str
) -> List[Optional[float]]:
    """One value per entry (``None`` where absent). Timings use the
    sample median — the robust point — rather than the stored best-of
    aggregate, so a single lucky repeat does not bend the trend."""
    kind, _, name = metric.partition(":")
    series: List[Optional[float]] = []
    for entry in entries:
        if kind == "timing":
            samples = entry.sample_values(name)
            series.append(median(samples) if samples else None)
        elif kind == "speedup":
            value = entry.speedups.get(name)
            series.append(None if value is None else float(value))
        else:
            raise ValueError(
                f"unknown metric kind {kind!r} "
                "(expected 'timing:<variant>' or 'speedup:<label>')"
            )
    return series


def detect_changepoints(
    values: Sequence[Optional[float]],
    window: int = 5,
    z_threshold: float = 3.0,
    min_rel_shift: float = 0.25,
) -> List[int]:
    """Indices where a series shifts away from its recent level.

    A simple sliding z-score detector: each point is compared against
    the mean/std of up to ``window`` preceding non-``None`` points and
    flagged when its deviation exceeds **both** ``z_threshold`` sigmas
    and ``min_rel_shift`` of the recent level. The relative floor keeps
    near-constant series (std → 0) from flagging measurement jitter,
    so only genuine level shifts — the commit where a metric moved —
    are reported.
    """
    if window < 2:
        raise ValueError("window must be >= 2")
    flagged: List[int] = []
    for index, value in enumerate(values):
        if value is None:
            continue
        prior = [
            v for v in values[max(0, index - window) : index] if v is not None
        ]
        if len(prior) < 2:
            continue
        mean = sum(prior) / len(prior)
        variance = sum((v - mean) ** 2 for v in prior) / len(prior)
        std = math.sqrt(variance)
        deviation = abs(value - mean)
        threshold = max(z_threshold * std, min_rel_shift * abs(mean), 1e-12)
        if deviation > threshold:
            flagged.append(index)
    return flagged


def trend_report(
    entries: Sequence[HistoryEntry],
    window: int = 5,
    z_threshold: float = 3.0,
    min_rel_shift: float = 0.25,
) -> Dict[str, object]:
    """Series + changepoints for every metric of one bench's history."""
    points = [
        {
            "entry_id": entry.entry_id,
            "git_sha": entry.git_sha,
            "created_at": entry.created_at,
            "config_key": entry.config_key,
        }
        for entry in entries
    ]
    metrics: Dict[str, object] = {}
    for name in metric_names(entries):
        series = metric_series(entries, name)
        metrics[name] = {
            "values": series,
            "changepoints": detect_changepoints(
                series,
                window=window,
                z_threshold=z_threshold,
                min_rel_shift=min_rel_shift,
            ),
        }
    return {
        "schema_version": 1,
        "kind": "repro-bench-trend",
        "bench": entries[0].bench if entries else "",
        "points": points,
        "metrics": metrics,
    }


def render_trend(report: Dict[str, object]) -> str:
    """Terminal view of one bench's trend report."""
    lines = [
        f"== bench trend: {report.get('bench') or '(empty)'} "
        f"({len(report.get('points', []))} entr{'y' if len(report.get('points', [])) == 1 else 'ies'}) =="
    ]
    points = report.get("points", [])
    metrics = report.get("metrics", {})
    for name in sorted(metrics):
        entry = metrics[name]
        values = entry["values"]
        changepoints = set(entry["changepoints"])
        rendered = []
        for index, value in enumerate(values):
            text = "-" if value is None else f"{value:.6g}"
            if index in changepoints:
                text += "*"
            rendered.append(text)
        lines.append(f"{name}: {' -> '.join(rendered)}")
        for index in sorted(changepoints):
            sha = str(points[index].get("git_sha", "?"))[:12]
            lines.append(
                f"  changepoint at entry {index} "
                f"(commit {sha}, {points[index].get('created_at', '?')})"
            )
    if len(lines) == 1:
        lines.append("(no recorded metrics)")
    return "\n".join(lines)


def render_markdown_table(history: BenchHistory) -> str:
    """The README performance table, generated from the history store.

    One row per speedup label of each bench's newest entry, so the
    README numbers are always traceable to a recorded, provenance-
    stamped history point instead of hand-transcribed.
    """
    lines = [
        "| bench | speedup | ratio | commit |",
        "|---|---|---|---|",
    ]
    for bench in history.benches():
        entry = history.latest(bench)
        if entry is None:
            continue
        sha = (entry.git_sha or "unknown")[:12]
        for label in sorted(entry.speedups):
            lines.append(
                f"| `{bench}` | `{label}` | "
                f"~{entry.speedups[label]:.1f}x | `{sha}` |"
            )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Stage-level slowdown attribution


def stage_budget_means(report) -> Dict[str, float]:
    """Mean seconds per serving stage from a RunReport's
    ``search.serve.budget_seconds{stage=...}`` histograms.

    Returns an empty dict for reports without serving telemetry (v1/v2
    artifacts, or batch runs that never served).
    """
    from .export import split_metric_key

    means: Dict[str, float] = {}
    for key, histogram in report.metrics.histograms.items():
        name, labels = split_metric_key(key)
        if name != "search.serve.budget_seconds" or "stage" not in labels:
            continue
        count = getattr(histogram, "count", 0)
        if count:
            means[labels["stage"]] = histogram.total / count
    return means


def attribute_stages(baseline_report, current_report) -> List[Dict[str, object]]:
    """Per-stage latency deltas between two serving RunReports.

    The answer to "the search bench got slower — *which stage*": each
    row names a stage (admission / schedule / execute / rank / ...),
    its mean per-request seconds in both reports, the delta, and the
    delta's share of the total slowdown. Rows are sorted most-guilty
    first. Empty when either report lacks budget histograms.
    """
    base = stage_budget_means(baseline_report)
    current = stage_budget_means(current_report)
    if not base or not current:
        return []
    rows = []
    total_delta = sum(
        current.get(stage, 0.0) - base.get(stage, 0.0)
        for stage in set(base) | set(current)
    )
    for stage in sorted(set(base) | set(current)):
        base_mean = base.get(stage, 0.0)
        cur_mean = current.get(stage, 0.0)
        delta = cur_mean - base_mean
        rows.append(
            {
                "stage": stage,
                "baseline_mean_seconds": base_mean,
                "current_mean_seconds": cur_mean,
                "delta_seconds": delta,
                "share_of_total_delta": (
                    delta / total_delta if total_delta else 0.0
                ),
            }
        )
    rows.sort(key=lambda row: row["delta_seconds"], reverse=True)
    return rows


def render_attribution(rows: Sequence[Dict[str, object]]) -> str:
    if not rows:
        return "(no per-stage budget histograms to attribute against)"
    lines = ["stage attribution (mean seconds/request, most-guilty first):"]
    for row in rows:
        lines.append(
            f"  {row['stage']:<12s} "
            f"{row['baseline_mean_seconds']:.6f}s -> "
            f"{row['current_mean_seconds']:.6f}s "
            f"(delta {row['delta_seconds']:+.6f}s, "
            f"{row['share_of_total_delta']:+.0%} of total)"
        )
    return "\n".join(lines)
