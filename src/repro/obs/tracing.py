"""Hierarchical span tracing with Chrome trace-event export.

Spans nest (``span("simulate") / span("batch") / ...``) and are
recorded as *complete* events (``"ph": "X"``) in the Chrome trace-event
JSON format, so a trace written by :meth:`Tracer.write` loads directly
in Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``.

Like the metrics registry, tracing is off by default and free when off:
the module-level :func:`span` helper returns a shared stateless no-op
context manager when no tracer is active, so instrumentation sites pay
one attribute read and one identity check per call. Worker processes
build private tracers and ship their event lists (plain dicts) back to
the parent, which folds them in with :meth:`Tracer.add_events`; events
carry the worker's ``pid`` so Perfetto renders one track per process.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

__all__ = [
    "Tracer",
    "get_tracer",
    "set_tracer",
    "tracing_enabled",
    "span",
]


class _NullSpan:
    """Reusable no-op context manager (stateless, hence shareable)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    """One live span; appends a complete event to the tracer on exit."""

    __slots__ = ("_tracer", "_name", "_args", "_start")

    def __init__(self, tracer: "Tracer", name: str, args: Dict[str, object]):
        self._tracer = tracer
        self._name = name
        self._args = args
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> bool:
        end = time.perf_counter()
        tracer = self._tracer
        event = {
            "name": self._name,
            "cat": "repro",
            "ph": "X",
            "ts": (self._start - tracer.origin) * 1e6,
            "dur": (end - self._start) * 1e6,
            "pid": tracer.pid,
            "tid": threading.get_ident() & 0xFFFFFFFF,
        }
        if self._args:
            event["args"] = {
                key: _json_safe(value) for key, value in self._args.items()
            }
        tracer.events.append(event)
        return False


def _json_safe(value: object) -> object:
    """Span args must survive json.dump; stringify anything exotic."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


class Tracer:
    """Collects span events; exports Chrome trace-event JSON.

    Timestamps are microseconds relative to the tracer's creation, so
    traces start at t=0 regardless of the host clock.
    """

    __slots__ = ("events", "origin", "pid")

    def __init__(self) -> None:
        self.events: List[Dict[str, object]] = []
        self.origin = time.perf_counter()
        self.pid = os.getpid()

    def span(self, name: str, **args: object) -> _Span:
        return _Span(self, name, args)

    def add_events(self, events: List[Dict[str, object]]) -> None:
        """Fold in events from another tracer (e.g. a worker process)."""
        self.events.extend(events)

    # ------------------------------------------------------------------
    def chrome_trace(self) -> Dict[str, object]:
        """The Perfetto-loadable JSON object for this trace."""
        return {
            "traceEvents": sorted(self.events, key=lambda e: e["ts"]),
            "displayTimeUnit": "ms",
        }

    def write(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        if path.parent != Path("."):
            path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w") as handle:
            json.dump(self.chrome_trace(), handle)
            handle.write("\n")
        return path

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Tracer(events={len(self.events)})"


# ----------------------------------------------------------------------
# Active tracer, mirroring the metrics registry's on/off pattern.

_ACTIVE: Optional[Tracer] = None


def get_tracer() -> Optional[Tracer]:
    """The active tracer, or None when tracing is disabled."""
    return _ACTIVE


def set_tracer(tracer: Optional[Tracer]) -> Optional[Tracer]:
    """Install ``tracer`` as the active one; returns the previous."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = tracer
    return previous


@contextmanager
def tracing_enabled(tracer: Optional[Tracer] = None) -> Iterator[Tracer]:
    """Activate a tracer for the duration of the block (nesting-safe)."""
    active = tracer if tracer is not None else Tracer()
    previous = set_tracer(active)
    try:
        yield active
    finally:
        set_tracer(previous)


def span(name: str, **args: object):
    """A span on the active tracer, or a shared no-op when tracing is off.

    Usage::

        with span("simulate", platform="CEGMA"):
            ...
    """
    tracer = _ACTIVE
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, **args)
