"""Artifact provenance: who produced a file, from what, and when.

Every JSON artifact the harness writes — RunReports, figure data from
``repro experiments --output``, ``results/`` simulation artifacts — is
stamped with a ``provenance`` object carrying the producing
:class:`~repro.platforms.runspec.RunSpec` (when one applies), the git
commit, a wall-clock timestamp, and a digest of the metrics snapshot
that was live at write time. A figure regenerated from stale inputs or
an unknown working tree is then detectable by inspection
(``python -m repro obs provenance FILE``) instead of by archaeology.

Both identity sources go through env seams so tests stay deterministic:

- ``REPRO_GIT_SHA`` overrides commit discovery (otherwise
  ``git rev-parse HEAD``; ``unknown`` when not in a checkout).
- ``REPRO_CREATED_AT`` overrides the timestamp verbatim, and
  ``SOURCE_DATE_EPOCH`` (the reproducible-builds convention) is honored
  next; otherwise the current UTC time is used.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import time
from typing import Dict, List, Optional

__all__ = [
    "PROVENANCE_SCHEMA_VERSION",
    "PROVENANCE_KEY",
    "current_git_sha",
    "now_iso",
    "metrics_digest",
    "make_stamp",
    "stamp_payload",
    "read_stamp",
    "validate_stamp",
]

PROVENANCE_SCHEMA_VERSION = 1

#: Key under which the stamp is embedded in a JSON artifact.
PROVENANCE_KEY = "provenance"

#: Stamp fields that must always be present.
REQUIRED_STAMP_KEYS = (
    "schema_version",
    "git_sha",
    "created_at",
    "metrics_digest",
    "generator",
)

_UNKNOWN_SHA = "unknown"


def current_git_sha() -> str:
    """The commit the working tree is at (``REPRO_GIT_SHA`` wins).

    Never raises: outside a git checkout (or with git missing) the
    sentinel ``"unknown"`` is returned, so artifact writing works in
    exported tarballs too.
    """
    override = os.environ.get("REPRO_GIT_SHA")
    if override:
        return override
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.TimeoutExpired):
        return _UNKNOWN_SHA
    sha = completed.stdout.strip()
    if completed.returncode != 0 or not sha:
        return _UNKNOWN_SHA
    return sha


def now_iso() -> str:
    """UTC timestamp ``YYYY-mm-ddTHH:MM:SSZ`` behind the env seams.

    ``REPRO_CREATED_AT`` is returned verbatim (tests pin it to a known
    string); ``SOURCE_DATE_EPOCH`` is interpreted as a Unix timestamp.
    """
    override = os.environ.get("REPRO_CREATED_AT")
    if override:
        return override
    epoch = os.environ.get("SOURCE_DATE_EPOCH")
    if epoch:
        try:
            stamp = float(epoch)
        except ValueError:
            stamp = time.time()
    else:
        stamp = time.time()
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime(stamp))


def metrics_digest(metrics_payload: Optional[Dict]) -> str:
    """Short stable digest of a metrics snapshot (``as_dict`` payload).

    ``None`` (metrics disabled at write time) digests the empty object,
    so the field is always comparable.
    """
    canonical = json.dumps(
        metrics_payload or {}, sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def make_stamp(
    spec: Optional[object] = None,
    metrics: Optional[Dict] = None,
    generator: str = "repro",
    extra: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """A fresh provenance stamp.

    ``spec`` may be a :class:`~repro.platforms.runspec.RunSpec` (its
    ``to_dict`` is embedded) or ``None`` for artifacts not tied to one
    workload. ``metrics`` is the live registry snapshot to digest;
    pass ``get_metrics().as_dict()`` or ``None``.
    """
    spec_payload = None
    if spec is not None:
        spec_payload = spec.to_dict() if hasattr(spec, "to_dict") else dict(spec)
    stamp: Dict[str, object] = {
        "schema_version": PROVENANCE_SCHEMA_VERSION,
        "git_sha": current_git_sha(),
        "created_at": now_iso(),
        "metrics_digest": metrics_digest(metrics),
        "generator": str(generator),
        "spec": spec_payload,
    }
    if extra:
        stamp.update({str(k): v for k, v in extra.items()})
    return stamp


def stamp_payload(
    payload: Dict[str, object],
    spec: Optional[object] = None,
    metrics: Optional[Dict] = None,
    generator: str = "repro",
    extra: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Embed a stamp into an artifact payload (mutates and returns it)."""
    payload[PROVENANCE_KEY] = make_stamp(
        spec=spec, metrics=metrics, generator=generator, extra=extra
    )
    return payload


def read_stamp(payload: object) -> Optional[Dict[str, object]]:
    """The embedded stamp of an artifact payload, or ``None``."""
    if not isinstance(payload, dict):
        return None
    stamp = payload.get(PROVENANCE_KEY)
    return stamp if isinstance(stamp, dict) else None


def validate_stamp(stamp: object) -> List[str]:
    """Schema problems with a provenance stamp; empty list means valid."""
    if not isinstance(stamp, dict):
        return ["provenance stamp is not a JSON object"]
    problems: List[str] = []
    for key in REQUIRED_STAMP_KEYS:
        if key not in stamp:
            problems.append(f"missing provenance key {key!r}")
    if problems:
        return problems
    version = stamp["schema_version"]
    if version != PROVENANCE_SCHEMA_VERSION:
        problems.append(
            f"unsupported provenance schema version {version!r} "
            f"(supported: {PROVENANCE_SCHEMA_VERSION})"
        )
    for key in ("git_sha", "created_at", "metrics_digest", "generator"):
        if not isinstance(stamp[key], str) or not stamp[key]:
            problems.append(f"provenance key {key!r} must be a non-empty string")
    spec_payload = stamp.get("spec")
    if spec_payload is not None:
        if not isinstance(spec_payload, dict):
            problems.append("provenance spec must be an object or null")
        else:
            from ..platforms.runspec import RunSpec

            try:
                RunSpec.from_dict(spec_payload)
            except (KeyError, ValueError, TypeError) as exc:
                problems.append(f"provenance spec does not load: {exc}")
    return problems


def render_stamp(stamp: Dict[str, object]) -> str:
    """Human-readable one-stamp summary for the CLI."""
    lines = [
        f"git sha:        {stamp.get('git_sha')}",
        f"created at:     {stamp.get('created_at')}",
        f"metrics digest: {stamp.get('metrics_digest')}",
        f"generator:      {stamp.get('generator')}",
    ]
    spec_payload = stamp.get("spec")
    if isinstance(spec_payload, dict):
        from ..platforms.runspec import RunSpec

        try:
            lines.append(f"run spec:       {RunSpec.from_dict(spec_payload).stem}")
        except (KeyError, ValueError, TypeError):
            lines.append(f"run spec:       {spec_payload}")
    else:
        lines.append("run spec:       (none)")
    for key in sorted(stamp):
        if key in REQUIRED_STAMP_KEYS or key == "spec":
            continue
        lines.append(f"{key + ':':<16}{stamp[key]}")
    return "\n".join(lines)
