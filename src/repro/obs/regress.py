"""Regression detection between a fresh RunReport and its baseline.

The CEGMA reproduction is deterministic where it matters: for a fixed
:class:`~repro.platforms.runspec.RunSpec`, the simulator's DRAM traffic,
MAC counts, cycle counts, EMF duplicate statistics, and CGC scheduling
decisions are pure functions of the code. A refactor that silently
changes ``sim.dram.read_bytes`` is therefore a correctness event, not
noise — those counters must match a baseline **exactly**. Wall-clock
stage timings, by contrast, are environmental; they are only flagged
when the caller opts into a relative tolerance band.

:func:`compare_reports` encodes that split and emits a schema-versioned
:class:`RegressionReport`; the ``repro obs check`` subcommand turns a
non-empty one into a non-zero exit code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .report import RunReport

__all__ = [
    "DETERMINISTIC_PREFIXES",
    "SERVING_DETERMINISTIC_PREFIXES",
    "RegressionPolicy",
    "Finding",
    "RegressionReport",
    "REGRESSION_SCHEMA_VERSION",
    "REGRESSION_KIND",
    "compare_reports",
]

REGRESSION_SCHEMA_VERSION = 1
REGRESSION_KIND = "repro-regression-report"

#: Serving counters that are pure functions of (code, stream): how many
#: requests were admitted/rejected at a given queue depth, how many the
#: scheduler deduplicated, how many candidate scorings the executor
#: broadcast, and how many batches a policy built. Deadline-dependent
#: serving metrics (``expired``, ``responses{status=}``), the live
#: ``queue_depth`` gauge, and the wall-clock latency/budget histograms
#: stay environmental — they move with the host, not the code.
SERVING_DETERMINISTIC_PREFIXES: Tuple[str, ...] = (
    "search.serve.admitted",
    "search.serve.rejected",
    "search.serve.batches",
    "search.serve.deduped_requests",
    "search.serve.candidate_dedup_hits",
)

#: Metric-name prefixes whose values are pure functions of (code, spec).
#: Everything else — memo/disk-cache hit counters, worker-failure
#: counts — depends on the environment and is reported informationally.
DETERMINISTIC_PREFIXES: Tuple[str, ...] = (
    "sim.",
    "emf.",
    "cgc.",
    "dram.",
    "pe.",
) + SERVING_DETERMINISTIC_PREFIXES


@dataclass(frozen=True)
class RegressionPolicy:
    """What counts as a regression when comparing two reports.

    ``timing_rel_tol=None`` (the default) records timing drift as
    information only — wall-clock comparisons across machines are not
    meaningful without an explicit band. Set e.g. ``0.25`` to fail runs
    whose stage seconds drift more than 25% from the baseline.

    The ``bench_*`` fields drive the *statistical* timing gate used by
    the benchmark-history analytics (:mod:`repro.obs.analytics`): when
    both sides carry at least ``bench_min_samples`` raw repeat
    readings, a timing only counts as regressed when the median shift
    exceeds ``bench_min_effect`` **and** the median±k·MAD/√n intervals
    (k = ``bench_mad_k``) do not overlap — so deterministic counters
    stay exact-match while wall-clock comparisons get a real test
    instead of a single-run ratio. Legacy entries without samples fall
    back to a deliberately wide ``bench_fallback_rel_tol`` ratio band
    (a 2x slowdown still trips; run-to-run noise does not).
    ``bench_environmental_markers`` name the check-value substrings
    (throughput, latency) that are host-dependent and therefore never
    gated exactly.
    """

    deterministic_prefixes: Tuple[str, ...] = DETERMINISTIC_PREFIXES
    timing_rel_tol: Optional[float] = None
    bench_min_effect: float = 0.10
    bench_mad_k: float = 3.0
    bench_min_samples: int = 3
    bench_fallback_rel_tol: float = 0.5
    bench_environmental_markers: Tuple[str, ...] = (
        "seconds",
        "per_second",
    )

    def is_deterministic(self, name: str) -> bool:
        return name.startswith(self.deterministic_prefixes)

    def is_environmental_check(self, name: str) -> bool:
        """Bench-report check values that move with the host, not the
        code (queries/sec, latency quantiles, per-pass averages)."""
        return any(
            marker in name for marker in self.bench_environmental_markers
        )


@dataclass(frozen=True)
class Finding:
    """One detected regression (or, in ``infos``, one observation)."""

    kind: str  # counter | gauge | histogram | timing | spec
    name: str
    baseline: object
    current: object
    detail: str = ""

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "name": self.name,
            "baseline": self.baseline,
            "current": self.current,
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "Finding":
        return cls(
            kind=str(payload["kind"]),
            name=str(payload["name"]),
            baseline=payload.get("baseline"),
            current=payload.get("current"),
            detail=str(payload.get("detail", "")),
        )

    def render(self) -> str:
        text = (
            f"[{self.kind}] {self.name}: "
            f"baseline={self.baseline} current={self.current}"
        )
        if self.detail:
            text += f" ({self.detail})"
        return text


@dataclass
class RegressionReport:
    """Outcome of one baseline comparison.

    ``findings`` fail the check; ``infos`` are non-enforced observations
    (timing drift without a tolerance, environmental counter changes).
    """

    baseline_id: str = ""
    current_id: str = ""
    findings: List[Finding] = field(default_factory=list)
    infos: List[Finding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema_version": REGRESSION_SCHEMA_VERSION,
            "kind": REGRESSION_KIND,
            "baseline_id": self.baseline_id,
            "current_id": self.current_id,
            "ok": self.ok,
            "findings": [finding.to_dict() for finding in self.findings],
            "infos": [info.to_dict() for info in self.infos],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "RegressionReport":
        version = payload.get("schema_version")
        if version != REGRESSION_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported RegressionReport schema version {version!r} "
                f"(supported: {REGRESSION_SCHEMA_VERSION})"
            )
        if payload.get("kind") != REGRESSION_KIND:
            raise ValueError(
                f"kind is {payload.get('kind')!r}, not {REGRESSION_KIND!r}"
            )
        return cls(
            baseline_id=str(payload.get("baseline_id", "")),
            current_id=str(payload.get("current_id", "")),
            findings=[
                Finding.from_dict(item) for item in payload.get("findings", [])
            ],
            infos=[Finding.from_dict(item) for item in payload.get("infos", [])],
        )

    def render(self) -> str:
        lines = [
            f"== regression check: {self.current_id or 'current'} "
            f"vs baseline {self.baseline_id or '(unnamed)'} =="
        ]
        if self.findings:
            lines.append(f"REGRESSIONS ({len(self.findings)}):")
            lines.extend(f"  {finding.render()}" for finding in self.findings)
        else:
            lines.append("OK: all deterministic metrics match the baseline")
        if self.infos:
            lines.append(f"info ({len(self.infos)}):")
            lines.extend(f"  {info.render()}" for info in self.infos)
        return "\n".join(lines)


def _histogram_fingerprint(payload: Dict[str, object]) -> Tuple:
    """The deterministic part of a serialized histogram."""
    return (
        tuple(payload.get("bucket_counts", ())),
        payload.get("count"),
        payload.get("total"),
        payload.get("min"),
        payload.get("max"),
    )


def _compare_exact(
    kind: str,
    baseline: Dict[str, object],
    current: Dict[str, object],
    policy: RegressionPolicy,
    findings: List[Finding],
    infos: List[Finding],
) -> None:
    """Exact comparison of one metric section, split by determinism."""
    for name in sorted(set(baseline) | set(current)):
        in_base = name in baseline
        in_cur = name in current
        sink = findings if policy.is_deterministic(name) else infos
        if in_base and not in_cur:
            sink.append(
                Finding(kind, name, baseline[name], None, "missing from run")
            )
        elif in_cur and not in_base:
            sink.append(
                Finding(kind, name, None, current[name], "not in baseline")
            )
        elif baseline[name] != current[name]:
            sink.append(Finding(kind, name, baseline[name], current[name]))


def compare_reports(
    baseline: RunReport,
    current: RunReport,
    policy: Optional[RegressionPolicy] = None,
) -> RegressionReport:
    """Compare a fresh report against its baseline under a policy.

    Deterministic counters, gauges, and histograms must match exactly;
    everything else lands in ``infos``. Stage timings are checked
    against ``policy.timing_rel_tol`` when set, else reported as info.
    Comparing reports for different specs is itself a finding — the
    caller matched the wrong baseline.
    """
    policy = policy if policy is not None else RegressionPolicy()
    result = RegressionReport(
        baseline_id=(
            f"{baseline.spec.stem if baseline.spec else 'unkeyed'}"
            f"@{baseline.git_sha or '?'}"
        ),
        current_id=(
            f"{current.spec.stem if current.spec else 'unkeyed'}"
            f"@{current.git_sha or '?'}"
        ),
    )
    if baseline.spec != current.spec:
        result.findings.append(
            Finding(
                "spec",
                "run_spec",
                str(baseline.spec),
                str(current.spec),
                "reports describe different workloads",
            )
        )
        return result

    _compare_exact(
        "counter",
        baseline.metrics.counters,
        current.metrics.counters,
        policy,
        result.findings,
        result.infos,
    )
    _compare_exact(
        "gauge",
        baseline.metrics.gauges,
        current.metrics.gauges,
        policy,
        result.findings,
        result.infos,
    )
    base_hists = {
        name: _histogram_fingerprint(hist.as_dict())
        for name, hist in baseline.metrics.histograms.items()
    }
    cur_hists = {
        name: _histogram_fingerprint(hist.as_dict())
        for name, hist in current.metrics.histograms.items()
    }
    _compare_exact(
        "histogram", base_hists, cur_hists, policy, result.findings, result.infos
    )

    tol = policy.timing_rel_tol
    for stage in sorted(set(baseline.timings) | set(current.timings)):
        base_entry = baseline.timings.get(stage)
        cur_entry = current.timings.get(stage)
        if base_entry is None or cur_entry is None:
            side = "baseline" if base_entry is None else "run"
            result.infos.append(
                Finding(
                    "timing",
                    stage,
                    None if base_entry is None else base_entry.get("seconds"),
                    None if cur_entry is None else cur_entry.get("seconds"),
                    f"stage missing from {side}",
                )
            )
            continue
        base_s = float(base_entry.get("seconds", 0.0))
        cur_s = float(cur_entry.get("seconds", 0.0))
        if base_s <= 0.0:
            continue
        drift = (cur_s - base_s) / base_s
        detail = f"drift {drift:+.1%}"
        if tol is not None and drift > tol:
            result.findings.append(
                Finding(
                    "timing",
                    stage,
                    base_s,
                    cur_s,
                    f"{detail} exceeds +{tol:.0%} tolerance",
                )
            )
        elif abs(drift) > 0.0:
            result.infos.append(Finding("timing", stage, base_s, cur_s, detail))
    return result
