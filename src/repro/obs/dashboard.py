"""Static HTML dashboard of metric trends across the baseline store.

``python -m repro obs dashboard`` renders every archived workload's
deterministic counters and stage timings as inline-SVG sparklines over
baseline history — one self-contained HTML file, no JavaScript, no
external assets, viewable from ``file://`` and uploadable as a CI
artifact. The newest value is compared against the previous baseline so
drifting counters stand out before ``repro obs check`` ever fails.

When the newest baseline is a schema-v3 RunReport carrying serving
telemetry, each workload section also renders the *within-run* view:
per-window ``search.serve.*`` histogram p50/p99 sparklines (one point
per window) and the tail exemplars' span trees — the K slowest plus
all deadline-expired requests.

When a benchmark history store is supplied (``--history-dir``), a
**benchmark trajectory** page precedes the workload sections: one
sparkline per bench metric over the full recorded history, with
changepoints marked on the line and listed with the commit they landed
in — and, when the baseline store holds serving reports with per-stage
``search.serve.budget_seconds{stage=}`` histograms, a stage-level
attribution table so a search-bench slowdown names the guilty stage.
"""

from __future__ import annotations

import html
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .baseline import BaselineStore
from .history import BenchHistory
from .regress import RegressionPolicy
from .report import RunReport

__all__ = ["render_dashboard", "write_dashboard", "DEFAULT_DASHBOARD_PATH"]

DEFAULT_DASHBOARD_PATH = Path("results") / "obs" / "dashboard.html"

_SPARK_W = 160
_SPARK_H = 28

_STYLE = """
body { font-family: ui-monospace, Menlo, Consolas, monospace;
       margin: 2em; color: #1a1a2e; background: #fafafc; }
h1 { font-size: 1.3em; } h2 { font-size: 1.05em; margin-top: 2em; }
table { border-collapse: collapse; margin: 0.5em 0 1.5em; }
th, td { border: 1px solid #d8d8e0; padding: 3px 10px;
         font-size: 0.85em; text-align: left; }
th { background: #eeeef4; }
td.num { text-align: right; font-variant-numeric: tabular-nums; }
.up { color: #b3261e; } .down { color: #176b37; } .flat { color: #888; }
.meta { color: #666; font-size: 0.8em; }
svg { vertical-align: middle; }
""".strip()


def _sparkline(
    values: Sequence[float], marks: Optional[Sequence[int]] = None
) -> str:
    """Inline SVG polyline over a value history (last point dotted).

    ``marks`` are indices into ``values`` drawn as hollow changepoint
    circles, so the trajectory page shows *where* a metric shifted.
    """
    if len(values) < 2:
        return '<span class="flat">&mdash;</span>'
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    points = []
    for index, value in enumerate(values):
        x = 2 + index * (_SPARK_W - 4) / (len(values) - 1)
        y = _SPARK_H - 3 - (value - lo) / span * (_SPARK_H - 6)
        points.append(f"{x:.1f},{y:.1f}")
    last_x, last_y = points[-1].split(",")
    marked = []
    for index in marks or ():
        if 0 <= index < len(points):
            mark_x, mark_y = points[index].split(",")
            marked.append(
                f'<circle cx="{mark_x}" cy="{mark_y}" r="3.5" '
                'fill="none" stroke="#b3261e" stroke-width="1.5"/>'
            )
    return (
        f'<svg width="{_SPARK_W}" height="{_SPARK_H}" '
        f'viewBox="0 0 {_SPARK_W} {_SPARK_H}">'
        f'<polyline points="{" ".join(points)}" fill="none" '
        'stroke="#4a4a8a" stroke-width="1.5"/>'
        f'<circle cx="{last_x}" cy="{last_y}" r="2.5" fill="#b3261e"/>'
        f'{"".join(marked)}'
        "</svg>"
    )


def _delta_cell(previous: Optional[float], latest: float) -> str:
    if previous is None:
        return '<td class="num flat">new</td>'
    if previous == latest:
        return '<td class="num flat">=</td>'
    if previous == 0:
        return '<td class="num up">&#8734;</td>'
    drift = (latest - previous) / previous
    css = "up" if drift > 0 else "down"
    return f'<td class="num {css}">{drift:+.2%}</td>'


def _series_rows(
    series: Dict[str, List[Optional[float]]], caption: str
) -> List[str]:
    """One <table> of metric rows: name, sparkline, latest, delta."""
    if not series:
        return []
    rows = [
        "<table>",
        f"<tr><th>{html.escape(caption)}</th><th>trend</th>"
        "<th>latest</th><th>vs prev</th></tr>",
    ]
    for name in sorted(series):
        history = [v for v in series[name] if v is not None]
        if not history:
            continue
        latest = history[-1]
        previous = history[-2] if len(history) > 1 else None
        rows.append(
            f"<tr><td>{html.escape(name)}</td>"
            f"<td>{_sparkline(history)}</td>"
            f'<td class="num">{latest:g}</td>'
            f"{_delta_cell(previous, latest)}</tr>"
        )
    rows.append("</table>")
    return rows


def _collect(
    reports: Sequence[RunReport], policy: RegressionPolicy
) -> Tuple[Dict[str, List[Optional[float]]], Dict[str, List[Optional[float]]]]:
    """(deterministic counter series, stage-seconds series) per metric."""
    counters: Dict[str, List[Optional[float]]] = {}
    timings: Dict[str, List[Optional[float]]] = {}
    names = {
        name
        for report in reports
        for name in report.metrics.counters
        if policy.is_deterministic(name)
    }
    stages = {stage for report in reports for stage in report.timings}
    for report in reports:
        report_counters = report.metrics.counters
        for name in names:
            counters.setdefault(name, []).append(report_counters.get(name))
        for stage in stages:
            entry = report.timings.get(stage)
            timings.setdefault(stage, []).append(
                None if entry is None else entry.get("seconds")
            )
    return counters, timings


def _window_quantile_series(
    windows: Sequence[dict],
) -> Dict[str, List[Optional[float]]]:
    """Per-window histogram quantiles keyed ``<metric> <field>``.

    One series point per window, so the sparkline is the quantile's
    trajectory *within* the newest run — the request-scoped view,
    versus the per-baseline trend of the other tables.
    """
    names = {
        name
        for window in windows
        for name in (window.get("histograms") or {})
    }
    series: Dict[str, List[Optional[float]]] = {}
    for name in sorted(names):
        for field in ("p50", "p99"):
            key = f"{name} {field}"
            for window in windows:
                entry = (window.get("histograms") or {}).get(name) or {}
                series.setdefault(key, []).append(entry.get(field))
    return series


def _serving_rows(report: RunReport) -> List[str]:
    """Windowed quantile sparklines + tail exemplars (newest report)."""
    from .context import render_tree

    parts: List[str] = []
    windows = list(getattr(report, "windows", []) or [])
    if windows:
        parts.append(
            f'<p class="meta">serving telemetry: {len(windows)} '
            "window(s) from the newest report; one point per window</p>"
        )
        parts.extend(
            _series_rows(
                _window_quantile_series(windows),
                "windowed quantile (seconds)",
            )
        )
    exemplars = list(getattr(report, "exemplars", []) or [])
    if exemplars:
        parts.append(
            f'<p class="meta">{len(exemplars)} tail exemplar(s): slowest '
            "requests first, then deadline-expired</p>"
        )
        for exemplar in exemplars:
            latency_ms = 1e3 * float(exemplar.get("latency_seconds", 0.0))
            header = (
                f"request {exemplar.get('request_id')} "
                f"[{html.escape(str(exemplar.get('status', '?')))}] "
                f"{latency_ms:.3f} ms"
            )
            tree = exemplar.get("tree")
            try:
                body = (
                    render_tree(tree) if tree else "(no span tree recorded)"
                )
            except (KeyError, TypeError, ValueError):
                # An exemplar from an older/foreign report whose tree
                # shape this build cannot walk — show the request line
                # anyway rather than losing the whole dashboard.
                body = "(unrenderable span tree)"
            parts.append(
                f"<pre>{html.escape(header)}\n{html.escape(body)}</pre>"
            )
    return parts


def _trajectory_rows(history: BenchHistory, max_points: int) -> List[str]:
    """The benchmark trajectory page: one sparkline per bench metric
    over the recorded history, changepoints circled on the line and
    listed with the commit they landed in."""
    from .analytics import detect_changepoints, metric_names, metric_series

    parts: List[str] = []
    for bench in history.benches():
        entries = history.read(bench)[-max_points:]
        if not entries:
            continue
        newest = entries[-1]
        parts.append(f"<h2>bench: {html.escape(bench)}</h2>")
        parts.append(
            f'<p class="meta">{len(entries)} recorded run(s) &middot; '
            f"newest commit {html.escape(newest.git_sha or '?')} "
            f"at {html.escape(newest.created_at or '?')}</p>"
        )
        rows = [
            "<table>",
            "<tr><th>metric</th><th>trend</th><th>latest</th>"
            "<th>vs prev</th><th>changepoints</th></tr>",
        ]
        for name in metric_names(entries):
            series = metric_series(entries, name)
            changepoints = detect_changepoints(series)
            # Compact out the Nones for drawing, remapping changepoint
            # indices onto the compacted line.
            compact: List[float] = []
            remap: Dict[int, int] = {}
            for index, value in enumerate(series):
                if value is None:
                    continue
                remap[index] = len(compact)
                compact.append(value)
            if not compact:
                continue
            marks = [remap[i] for i in changepoints if i in remap]
            latest = compact[-1]
            previous = compact[-2] if len(compact) > 1 else None
            if changepoints:
                shifts = ", ".join(
                    html.escape(
                        str(entries[i].git_sha or "?")[:12]
                    )
                    for i in changepoints
                )
                change_cell = f'<td class="up">{shifts}</td>'
            else:
                change_cell = '<td class="flat">&mdash;</td>'
            rows.append(
                f"<tr><td>{html.escape(name)}</td>"
                f"<td>{_sparkline(compact, marks)}</td>"
                f'<td class="num">{latest:g}</td>'
                f"{_delta_cell(previous, latest)}"
                f"{change_cell}</tr>"
            )
        rows.append("</table>")
        parts.extend(rows)
    return parts


def _attribution_rows(store: BaselineStore) -> List[str]:
    """Stage-level slowdown attribution between the two newest serving
    baselines that carry ``search.serve.budget_seconds{stage=}``
    histograms — the table that turns "the search bench got slower"
    into "the execute stage got slower"."""
    from .analytics import attribute_stages, stage_budget_means

    serving: List[RunReport] = []
    for spec in store.specs().values():
        reports = []
        for path in store.history(spec)[-2:]:
            try:
                report = RunReport.load(path)
            except (OSError, ValueError):
                continue
            if stage_budget_means(report):
                reports.append(report)
        if len(reports) >= 2:
            serving = reports
            break
    if len(serving) < 2:
        return []
    rows = attribute_stages(serving[-2], serving[-1])
    if not rows:
        return []
    parts = [
        '<p class="meta">stage attribution: newest serving baseline vs '
        "its predecessor (mean seconds/request from "
        "search.serve.budget_seconds{stage=})</p>",
        "<table>",
        "<tr><th>stage</th><th>baseline</th><th>current</th>"
        "<th>delta</th><th>share</th></tr>",
    ]
    for row in rows:
        css = "up" if row["delta_seconds"] > 0 else "down"
        parts.append(
            f"<tr><td>{html.escape(str(row['stage']))}</td>"
            f'<td class="num">{row["baseline_mean_seconds"]:.6f}s</td>'
            f'<td class="num">{row["current_mean_seconds"]:.6f}s</td>'
            f'<td class="num {css}">{row["delta_seconds"]:+.6f}s</td>'
            f'<td class="num">{row["share_of_total_delta"]:+.0%}</td>'
            "</tr>"
        )
    parts.append("</table>")
    return parts


def render_dashboard(
    store: BaselineStore,
    policy: Optional[RegressionPolicy] = None,
    max_points: int = 30,
    history: Optional[BenchHistory] = None,
) -> str:
    """The dashboard HTML for a baseline store (empty store included)."""
    policy = policy if policy is not None else RegressionPolicy()
    parts = [
        "<!doctype html>",
        '<html><head><meta charset="utf-8">',
        "<title>repro obs dashboard</title>",
        f"<style>{_STYLE}</style></head><body>",
        "<h1>repro observability dashboard</h1>",
        f'<p class="meta">baseline store: {html.escape(str(store.root))}</p>',
    ]
    if history is not None:
        trajectory = _trajectory_rows(history, max_points)
        if trajectory:
            parts.append("<h1>benchmark trajectory</h1>")
            parts.append(
                f'<p class="meta">bench history: '
                f"{html.escape(str(history.root))}</p>"
            )
            parts.extend(trajectory)
            parts.extend(_attribution_rows(store))
        else:
            parts.append(
                f'<p class="meta">no bench history recorded under '
                f"{html.escape(str(history.root))}</p>"
            )
    specs = store.specs()
    if not specs:
        parts.append(
            "<p>No baselines archived yet. Create one with "
            "<code>python -m repro obs check REPORT --update</code>.</p>"
        )
    for key, spec in specs.items():
        paths = store.history(spec)[-max_points:]
        reports = []
        for path in paths:
            try:
                reports.append(RunReport.load(path))
            except (OSError, ValueError):  # unreadable baseline: skip
                continue
        parts.append(f"<h2>{html.escape(spec.stem)}</h2>")
        parts.append(
            f'<p class="meta">{len(reports)} baseline(s) &middot; '
            f"key {html.escape(key)}"
            + (
                f" &middot; newest commit "
                f"{html.escape(reports[-1].git_sha or '?')}"
                f" at {html.escape(reports[-1].created_at or '?')}"
                if reports
                else ""
            )
            + "</p>"
        )
        if not reports:
            continue
        counters, timings = _collect(reports, policy)
        parts.extend(_series_rows(counters, "deterministic counter"))
        parts.extend(_series_rows(timings, "stage seconds"))
        parts.extend(_serving_rows(reports[-1]))
    parts.append("</body></html>")
    return "\n".join(parts)


def write_dashboard(
    store: BaselineStore,
    path: Union[str, Path, None] = None,
    policy: Optional[RegressionPolicy] = None,
    max_points: int = 30,
    history: Optional[BenchHistory] = None,
) -> Path:
    """Render and write the dashboard; returns the written path."""
    path = Path(path) if path is not None else DEFAULT_DASHBOARD_PATH
    if path.parent != Path("."):
        path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as handle:
        handle.write(
            render_dashboard(
                store, policy=policy, max_points=max_points, history=history
            )
        )
        handle.write("\n")
    return path
