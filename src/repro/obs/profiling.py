"""cProfile-based profiling of harness stages, exported as folded stacks.

The span tracer answers "where did the wall clock go between stages";
this module answers "which Python functions burned it inside a stage".
:func:`profiled` wraps a block in :class:`cProfile.Profile` and exports
the result in Brendan Gregg's collapsed-stack ("folded") text format —
one ``frame;frame;frame weight`` line per caller→callee edge, with
weights in integer microseconds of self time — which loads directly in
speedscope (https://speedscope.app), ``flamegraph.pl``, and inferno,
complementing the Perfetto span traces.

cProfile records caller→callee *edges*, not full call stacks, so the
export is a two-frame approximation: each function's self time is
attributed to ``caller;function`` pairs (exactly, per cProfile's own
per-caller accounting). That is enough to see which call sites dominate
without the overhead of a tracing profiler with full stack capture.
"""

from __future__ import annotations

import cProfile
import pstats
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator, List, Optional, Union

__all__ = [
    "profiled",
    "collapsed_stacks",
    "write_collapsed",
    "default_profile_path",
]

#: Default directory for exported profiles, next to the RunReports.
DEFAULT_PROFILE_DIR = Path("results") / "obs" / "profiles"


def default_profile_path(stem: str) -> Path:
    """``results/obs/profiles/<stem>.folded``."""
    return DEFAULT_PROFILE_DIR / f"{stem}.folded"


def _frame_label(func: tuple) -> str:
    """``file:function`` label for one cProfile function triple.

    Semicolons and spaces are structural in the folded format, so they
    are replaced; the path is reduced to its basename to keep lines
    readable in flamegraph tooling.
    """
    filename, lineno, name = func
    if filename == "~":  # built-in functions have no file
        base = "builtin"
    else:
        base = Path(filename).name
    label = f"{base}:{name}"
    return label.replace(";", ",").replace(" ", "_")


def collapsed_stacks(profile: cProfile.Profile) -> List[str]:
    """Folded-stack lines for a finished profile, sorted for stability.

    Each line is ``caller;callee microseconds`` (or ``callee
    microseconds`` for root frames), weighted by the callee's self time
    attributed to that caller.
    """
    stats = pstats.Stats(profile)
    lines: List[str] = []
    for func, (cc, nc, tt, ct, callers) in stats.stats.items():
        label = _frame_label(func)
        if not callers:
            weight = int(tt * 1e6)
            if weight > 0:
                lines.append(f"{label} {weight}")
            continue
        for caller, (c_cc, c_nc, c_tt, c_ct) in callers.items():
            weight = int(c_tt * 1e6)
            if weight > 0:
                lines.append(f"{_frame_label(caller)};{label} {weight}")
    return sorted(lines)


def write_collapsed(
    profile: cProfile.Profile, path: Union[str, Path]
) -> Path:
    """Write a profile's folded stacks to ``path``; returns the path."""
    path = Path(path)
    if path.parent != Path("."):
        path.parent.mkdir(parents=True, exist_ok=True)
    lines = collapsed_stacks(profile)
    with open(path, "w") as handle:
        handle.write("\n".join(lines))
        if lines:
            handle.write("\n")
    return path


@contextmanager
def profiled(
    path: Optional[Union[str, Path]] = None,
) -> Iterator[cProfile.Profile]:
    """Profile the block; export folded stacks to ``path`` on exit.

    With ``path=None`` the profile is still collected (callers can
    export it themselves) but nothing is written. The export happens in
    the ``finally`` so a crashing stage still leaves a profile behind.
    """
    profile = cProfile.Profile()
    profile.enable()
    try:
        yield profile
    finally:
        profile.disable()
        if path is not None:
            write_collapsed(profile, path)
