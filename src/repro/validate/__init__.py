"""Differential validation harness.

The repo deliberately keeps redundant implementation pairs — a scalar
and a vectorized XXH32, the event-driven EMF pipeline and its
cycle-accurate reference, the analytic engine and the detailed
simulator, serial and process-pool harness runs, trace-cache-on and
cache-off profiling — plus documented invariants of the CGC window
schedulers. This package machine-checks all of them: a registry of
named, independently runnable correctness checks, each either a

- **differential check**: run both implementations of a redundant pair
  on generated workloads and assert bit-identity (or the documented
  tolerance), or an
- **invariant check**: assert schedule/quantization properties on
  adversarial inputs.

``python -m repro validate [--quick] [--only NAME] [--list] [--smoke]``
runs them with ``obs check``-style exit codes (0 pass, 1 failures,
2 usage error). Every check also declares *mutators* — deliberate
single-implementation perturbations — and the mutation smoke tier
(``--smoke``, also ``tests/validate/test_mutation_smoke.py``) asserts
each check actually trips under each of them, so a check that can never
fail cannot silently rot.
"""

from .registry import (
    Check,
    CheckContext,
    CheckFailure,
    CheckResult,
    all_checks,
    get_check,
    mutation_smoke,
    register_check,
    run_checks,
)

# Importing the module registers the built-in checks.
from . import checks as _checks  # noqa: F401  (registration side effect)

__all__ = [
    "Check",
    "CheckContext",
    "CheckFailure",
    "CheckResult",
    "all_checks",
    "get_check",
    "mutation_smoke",
    "register_check",
    "run_checks",
]
