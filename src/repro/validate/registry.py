"""Check registry: registration, execution, and mutation smoke.

A check is a plain function taking a :class:`CheckContext` and raising
:class:`CheckFailure` (or ``AssertionError``) when the pair it guards
diverges or the invariant it guards is violated. Checks register
themselves with :func:`register_check`, carrying

- ``kind``: ``"differential"`` (two implementations compared) or
  ``"invariant"`` (properties of one implementation),
- ``pair``: the dotted names of the two compared implementations (for
  differential checks),
- ``mutators``: named context managers that each perturb exactly one
  implementation; :func:`mutation_smoke` asserts the check fails under
  every one of them, proving the check is able to fail at all.

:func:`run_checks` executes checks under the active
:mod:`repro.obs` registry (``validate.checks.*`` counters, one
``validate.check`` span per check) and returns structured
:class:`CheckResult` rows the CLI renders and serializes.
"""

from __future__ import annotations

import time
import traceback
from typing import Callable, ContextManager, Dict, List, Optional, Sequence, Tuple

from ..obs.metrics import get_metrics
from ..obs.tracing import span

__all__ = [
    "Check",
    "CheckContext",
    "CheckFailure",
    "CheckResult",
    "all_checks",
    "get_check",
    "mutation_smoke",
    "register_check",
    "run_checks",
]


class CheckFailure(AssertionError):
    """A divergence between redundant implementations or a violated
    invariant; the message pinpoints the disagreeing inputs/fields."""


class CheckContext:
    """Per-run knobs passed to every check.

    ``quick`` selects the deterministic tier (fixed seeds, small
    workload grid — what CI gates on); the full tier adds the
    hypothesis-driven randomized drivers on top.
    """

    __slots__ = ("quick",)

    def __init__(self, quick: bool = True) -> None:
        self.quick = quick


class Check:
    """One registered correctness check."""

    __slots__ = ("name", "kind", "pair", "fn", "mutators", "description")

    def __init__(
        self,
        name: str,
        kind: str,
        fn: Callable[[CheckContext], Optional[str]],
        pair: Optional[Tuple[str, str]] = None,
        mutators: Optional[Dict[str, Callable[[], ContextManager]]] = None,
        description: str = "",
    ) -> None:
        self.name = name
        self.kind = kind
        self.fn = fn
        self.pair = pair
        self.mutators = dict(mutators or {})
        self.description = description or (fn.__doc__ or "").strip().split("\n")[0]


class CheckResult:
    """Outcome of one check execution."""

    __slots__ = ("name", "kind", "pair", "status", "detail", "duration_s")

    def __init__(
        self,
        name: str,
        kind: str,
        pair: Optional[Tuple[str, str]],
        status: str,
        detail: str,
        duration_s: float,
    ) -> None:
        self.name = name
        self.kind = kind
        self.pair = pair
        self.status = status  # "pass" | "fail" | "error"
        self.detail = detail
        self.duration_s = duration_s

    @property
    def ok(self) -> bool:
        return self.status == "pass"

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "pair": list(self.pair) if self.pair else None,
            "status": self.status,
            "detail": self.detail,
            "duration_s": self.duration_s,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CheckResult({self.name!r}, {self.status!r})"


_CHECKS: Dict[str, Check] = {}

_KINDS = ("differential", "invariant")


def register_check(
    name: str,
    kind: str,
    pair: Optional[Tuple[str, str]] = None,
    mutators: Optional[Dict[str, Callable[[], ContextManager]]] = None,
    description: str = "",
):
    """Decorator: register ``fn`` as the named check.

    ``pair`` is required for differential checks (the two dotted
    implementation names being cross-checked); every check should carry
    at least one mutator so the mutation smoke tier can prove it
    fail-capable.
    """
    if kind not in _KINDS:
        raise ValueError(f"unknown check kind {kind!r}; known: {_KINDS}")
    if kind == "differential" and pair is None:
        raise ValueError(f"differential check {name!r} must name its pair")

    def decorator(fn: Callable[[CheckContext], Optional[str]]):
        if name in _CHECKS:
            raise ValueError(f"check {name!r} already registered")
        _CHECKS[name] = Check(
            name, kind, fn, pair=pair, mutators=mutators, description=description
        )
        return fn

    return decorator


def all_checks() -> List[Check]:
    """Registered checks in registration order."""
    return list(_CHECKS.values())


def get_check(name: str) -> Check:
    if name not in _CHECKS:
        known = ", ".join(sorted(_CHECKS))
        raise KeyError(f"unknown check {name!r}; known: {known}")
    return _CHECKS[name]


def _run_one(check: Check, context: CheckContext) -> CheckResult:
    registry = get_metrics()
    start = time.perf_counter()
    try:
        with span("validate.check", check=check.name):
            detail = check.fn(context)
        status, message = "pass", (detail or "")
    except CheckFailure as exc:
        status, message = "fail", str(exc)
    except AssertionError as exc:
        status, message = "fail", str(exc) or "assertion failed"
    except Exception as exc:  # infrastructure error, not a divergence
        status = "error"
        message = "".join(
            traceback.format_exception_only(type(exc), exc)
        ).strip()
    duration = time.perf_counter() - start
    if registry is not None:
        registry.inc("validate.checks.run")
        registry.inc(f"validate.checks.{'passed' if status == 'pass' else 'failed'}")
        registry.inc("validate.check.status", check=check.name, status=status)
        registry.observe("validate.check.duration_seconds", duration)
    return CheckResult(
        check.name, check.kind, check.pair, status, message, duration
    )


def run_checks(
    names: Optional[Sequence[str]] = None,
    quick: bool = True,
) -> List[CheckResult]:
    """Run the named checks (default: all) and return their results.

    Unknown names raise ``KeyError`` before anything runs, so a typoed
    ``--only`` cannot masquerade as a passing run.
    """
    selected = (
        [get_check(name) for name in names]
        if names is not None
        else all_checks()
    )
    context = CheckContext(quick=quick)
    return [_run_one(check, context) for check in selected]


def mutation_smoke(
    name: str, quick: bool = True
) -> Dict[str, bool]:
    """Prove the named check is able to fail.

    Runs the check once unmutated (it must pass — a broken baseline
    would make every mutation 'trip') and then once under each of its
    registered mutators, recording whether the check tripped (failed or
    errored). Returns ``{mutator_name: tripped}``; a check with no
    mutators returns ``{}`` and should be treated as unproven.
    """
    check = get_check(name)
    context = CheckContext(quick=quick)
    baseline = _run_one(check, context)
    if not baseline.ok:
        raise CheckFailure(
            f"check {name!r} fails unmutated ({baseline.detail}); "
            "fix the divergence before smoke-testing mutations"
        )
    outcomes: Dict[str, bool] = {}
    for mutator_name, mutator in check.mutators.items():
        with mutator():
            result = _run_one(check, context)
        outcomes[mutator_name] = not result.ok
    return outcomes
