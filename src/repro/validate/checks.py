"""The built-in correctness checks.

Seven differential pairs and three invariant families, mirroring the
redundant implementations the repo maintains on purpose:

====================================  =========================================
check                                 redundant pair / invariant
====================================  =========================================
``emf.hash.scalar_vs_batch``          scalar XXH32 vs. lane-parallel batch
``emf.filter.backends``               Algorithm 1 scalar loop vs. vectorized
``emf.filter.methods``                byte-keyed digest vs. XXH32 tagging
``emf.pipeline.event_vs_cycle``       event-driven fast path vs. cycle loop
``sim.engine_vs_detailed``            analytic engine vs. per-step simulator
``sim.batched_vs_serial``             batched numpy engine vs. per-pair loop
``harness.serial_vs_parallel``        serial run vs. chunked process pool
``harness.trace_cache_on_off``        cached trace replay vs. fresh profile
``search.serve_vs_direct``            flat query loop vs. serving pipeline
``search.sketch_vs_flat``             sketch-gated retrieval vs. flat scoring
``cgc.schedule_invariants``           window-schedule properties, all schemes
``cgc.degenerate_inputs``             capacity/empty-side contract
``emf.quantization_single_site``      quantize-exactly-once contract
====================================  =========================================

Each check runs a deterministic quick tier (what CI gates on) and, when
``context.quick`` is False, a hypothesis-driven randomized tier
(derandomized, so the full tier is still reproducible). Each also
registers mutators — targeted single-implementation perturbations —
that the mutation smoke tier uses to prove the check can fail.

All checks resolve the implementations they exercise late, through
module attributes, so the mutators' patches are visible to them.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from contextlib import contextmanager

import numpy as np

from .registry import CheckContext, CheckFailure, register_check
from .workloads import (
    adversarial_pairs,
    byte_matrices,
    feature_matrices,
    random_pairs,
    small_traces,
)

# Platforms exercised by the simulator-level differential checks: one
# CEGMA (EMF+CGC on) and one baseline (both off) cover every dataflow
# branch of _simulate_pair_layer.
_PLATFORMS = ("CEGMA", "HyGCN")

# Documented tolerances. Differential pairs that share every formula
# must agree bit for bit; the analytic/detailed latency models differ by
# design and are held to the same factor the simulator tests use; merged
# float accumulators may differ by association order only.
_LATENCY_FACTOR = 3.0
_MERGE_RTOL = 1e-9


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise CheckFailure(message)


@contextmanager
def _patched(obj, attr: str, value):
    """Temporarily replace ``obj.attr``, descriptor-safely for classes."""
    if isinstance(obj, type):
        original = obj.__dict__[attr]
    else:
        original = getattr(obj, attr)
    setattr(obj, attr, value)
    try:
        yield
    finally:
        setattr(obj, attr, original)


def _deep_settings(max_examples: int):
    """Derandomized hypothesis settings (reproducible full tier)."""
    from hypothesis import HealthCheck, settings

    return settings(
        max_examples=max_examples,
        deadline=None,
        database=None,
        derandomize=True,
        suppress_health_check=list(HealthCheck),
    )


def _hypothesis_available() -> bool:
    try:
        import hypothesis  # noqa: F401
    except ImportError:  # pragma: no cover - baked into the image
        return False
    return True


# ----------------------------------------------------------------------
# Pair 1: scalar vs. batch-vectorized XXH32
# ----------------------------------------------------------------------
def _mutate_batch_hash_prime():
    from ..emf import xxhash as xxhash_mod

    return _patched(
        xxhash_mod, "_P3", np.uint32(xxhash_mod._PRIME3 ^ 0x2)
    )


@register_check(
    "emf.hash.scalar_vs_batch",
    kind="differential",
    pair=("repro.emf.xxhash.xxh32", "repro.emf.xxhash.xxh32_batch"),
    mutators={"perturb_batch_prime3": _mutate_batch_hash_prime},
)
def check_hash_scalar_vs_batch(context: CheckContext):
    """Batch XXH32 is bit-identical to the scalar reference per row."""
    from ..emf import xxhash as xxhash_mod

    def compare(matrix: np.ndarray, seed: int) -> None:
        batch = xxhash_mod.xxh32_batch(matrix, seed)
        for row_index in range(matrix.shape[0]):
            reference = xxhash_mod.xxh32(bytes(matrix[row_index]), seed)
            _require(
                int(batch[row_index]) == reference,
                f"xxh32_batch diverges from xxh32 at row {row_index} of a "
                f"{matrix.shape} matrix (seed={seed}): "
                f"{int(batch[row_index]):#010x} != {reference:#010x}",
            )

    matrices = byte_matrices(seed=0)
    for seed in (0, 2654435761):
        for matrix in matrices:
            compare(matrix, seed)
    # Feature-level wrapper: matrix tags == per-row vector tags.
    for features in feature_matrices(seed=1):
        tags = xxhash_mod.hash_feature_matrix(features)
        for row_index in range(features.shape[0]):
            _require(
                int(tags[row_index])
                == xxhash_mod.hash_feature_vector(features[row_index]),
                f"hash_feature_matrix row {row_index} diverges from "
                "hash_feature_vector",
            )
    if not context.quick and _hypothesis_available():
        from hypothesis import given
        from hypothesis import strategies as st
        from hypothesis.extra.numpy import arrays

        @_deep_settings(50)
        @given(
            data=arrays(
                np.uint8,
                st.tuples(
                    st.integers(0, 8), st.integers(0, 70)
                ),
            ),
            seed=st.integers(0, 2**32 - 1),
        )
        def property_rows_match(data, seed):
            compare(data, seed)

        property_rows_match()
    return f"{len(matrices)} byte matrices x 2 seeds, bit-identical"


# ----------------------------------------------------------------------
# Pair 1b: EMF scalar vs. vectorized backends, bytes vs. xxhash methods
# ----------------------------------------------------------------------
def _filter_signature(result):
    return {
        "record_set": dict(result.record_set),
        "tag_map": dict(result.tag_map),
        "num_nodes": result.num_nodes,
        "hash_conflicts": result.hash_conflicts,
    }


def _mutate_vectorized_grouping():
    from ..emf import filter as filter_mod

    def last_occurrence_groups(keys: np.ndarray) -> np.ndarray:
        keys = np.asarray(keys)
        reversed_keys = keys[::-1]
        _, first_index, inverse = np.unique(
            reversed_keys, return_index=True, return_inverse=True
        )
        holders = first_index[inverse.ravel()]
        return (len(keys) - 1) - holders[::-1]

    return _patched(
        filter_mod, "_first_occurrence_groups", last_occurrence_groups
    )


@register_check(
    "emf.filter.backends",
    kind="differential",
    pair=(
        "repro.emf.filter._filter_scalar",
        "repro.emf.filter._filter_vectorized",
    ),
    mutators={"vectorized_groups_by_last_occurrence": _mutate_vectorized_grouping},
)
def check_filter_backends(context: CheckContext):
    """Scalar and vectorized Algorithm 1 digest identical filter results."""
    from ..emf import filter as filter_mod

    def compare(features: np.ndarray) -> None:
        for method in ("bytes", "xxhash"):
            scalar = filter_mod.elastic_matching_filter(
                features, method=method, backend="scalar"
            )
            vectorized = filter_mod.elastic_matching_filter(
                features, method=method, backend="vectorized"
            )
            left, right = (
                _filter_signature(scalar),
                _filter_signature(vectorized),
            )
            _require(
                left == right,
                f"filter backends diverge for method={method!r} on a "
                f"{features.shape} matrix: scalar={left} vectorized={right}",
            )

    matrices = feature_matrices(seed=2)
    for features in matrices:
        compare(features)
    if not context.quick and _hypothesis_available():
        from hypothesis import given
        from hypothesis import strategies as st

        @_deep_settings(40)
        @given(
            num_nodes=st.integers(0, 12),
            feature_dim=st.integers(0, 5),
            seed=st.integers(0, 2**16),
            duplicate_fraction=st.floats(0.0, 1.0),
        )
        def property_backends_match(
            num_nodes, feature_dim, seed, duplicate_fraction
        ):
            rng = np.random.default_rng(seed)
            features = rng.normal(size=(num_nodes, feature_dim))
            for row in range(1, num_nodes):
                if rng.random() < duplicate_fraction:
                    features[row] = features[rng.integers(0, row)]
            compare(features)

        property_backends_match()
    return f"{len(matrices)} matrices x 2 methods, identical results"


def _mutate_colliding_tags():
    # Patch the names inside the filter module (it imports them by
    # value), collapsing every XXH32 tag to zero.
    from contextlib import ExitStack

    from ..emf import filter as filter_mod

    def all_zero_tags(features, seed=0, decimals=None):
        features = np.asarray(features, dtype=np.float64)
        return np.zeros(features.shape[0], dtype=np.uint32)

    def zero_tag(vector, seed=0, decimals=None):
        return 0

    @contextmanager
    def mutate():
        with ExitStack() as stack:
            stack.enter_context(
                _patched(filter_mod, "hash_feature_matrix", all_zero_tags)
            )
            stack.enter_context(
                _patched(filter_mod, "hash_feature_vector", zero_tag)
            )
            yield

    return mutate()


@register_check(
    "emf.filter.methods",
    kind="differential",
    pair=("elastic_matching_filter(bytes)", "elastic_matching_filter(xxhash)"),
    mutators={"collide_all_tags": _mutate_colliding_tags},
)
def check_filter_methods(context: CheckContext):
    """Byte-keyed and XXH32-tagged digests agree, with zero conflicts.

    The paper reports zero XXH32 conflicts across all experiments; the
    reproduction asserts the same, so the two methods must produce the
    identical unique/duplicate partition on every workload.
    """
    from ..emf import filter as filter_mod

    matrices = feature_matrices(seed=3)
    for features in matrices:
        for backend in ("scalar", "vectorized"):
            by_bytes = filter_mod.elastic_matching_filter(
                features, method="bytes", backend=backend
            )
            by_hash = filter_mod.elastic_matching_filter(
                features, method="xxhash", backend=backend
            )
            _require(
                by_hash.hash_conflicts == 0,
                f"xxhash method reported {by_hash.hash_conflicts} "
                f"conflict(s) on a {features.shape} matrix "
                f"(backend={backend})",
            )
            _require(
                by_bytes.unique_indices == by_hash.unique_indices
                and dict(by_bytes.tag_map) == dict(by_hash.tag_map),
                f"bytes and xxhash methods partition a {features.shape} "
                f"matrix differently (backend={backend}): "
                f"bytes unique={by_bytes.unique_indices} "
                f"xxhash unique={by_hash.unique_indices}",
            )
    return f"{len(matrices)} matrices x 2 backends, identical partitions"


# ----------------------------------------------------------------------
# Pair 2: event-driven EMF pipeline vs. cycle-accurate reference
# ----------------------------------------------------------------------
def _pipeline_stats_tuple(stats):
    return (
        stats.total_cycles,
        stats.producer_stall_cycles,
        stats.consumer_idle_cycles,
        stats.max_occupancy,
    )


def _mutate_pipeline_drain():
    from ..emf import pipeline as pipeline_mod

    original = pipeline_mod.EMFPipelineSimulator.__dict__["_drain"]

    def drain_without_idle(occupancy, cycles, rate):
        new_occupancy, consumed, _idle = original.__func__(
            occupancy, cycles, rate
        )
        return new_occupancy, consumed, 0

    return _patched(
        pipeline_mod.EMFPipelineSimulator,
        "_drain",
        staticmethod(drain_without_idle),
    )


@register_check(
    "emf.pipeline.event_vs_cycle",
    kind="differential",
    pair=(
        "EMFPipelineSimulator.run(method='event')",
        "EMFPipelineSimulator.run(method='cycle')",
    ),
    mutators={"event_drain_drops_idle_cycles": _mutate_pipeline_drain},
)
def check_pipeline_event_vs_cycle(context: CheckContext):
    """Event-driven pipeline stats are bit-identical to the cycle loop."""
    from ..emf import pipeline as pipeline_mod

    def run_one(simulator, num_nodes, method):
        # A burst that can never fit the buffer livelocks the producer;
        # both methods must then raise the same guard error.
        try:
            return _pipeline_stats_tuple(simulator.run(num_nodes, method))
        except RuntimeError:
            return "failed to drain"

    def compare(hash_parallelism, wave, rate, capacity, num_nodes):
        simulator = pipeline_mod.EMFPipelineSimulator(
            hash_parallelism, wave, rate, capacity
        )
        event = run_one(simulator, num_nodes, "event")
        cycle = run_one(simulator, num_nodes, "cycle")
        _require(
            event == cycle,
            "pipeline methods diverge for "
            f"(parallelism={hash_parallelism}, wave={wave}, rate={rate}, "
            f"buffer={capacity}, nodes={num_nodes}): "
            f"event={event} cycle={cycle} "
            "(cycles, stalls, idle, max_occupancy)",
        )

    configs = 0
    for hash_parallelism in (1, 3, 128):
        for wave in (1, 3, 64):
            for rate in (1, 3):
                for capacity in (1, 4, 256):
                    for num_nodes in (0, 1, 5, 17, 257):
                        compare(
                            hash_parallelism, wave, rate, capacity, num_nodes
                        )
                        configs += 1
    if not context.quick and _hypothesis_available():
        from hypothesis import given
        from hypothesis import strategies as st

        @_deep_settings(60)
        @given(
            hash_parallelism=st.integers(1, 64),
            wave=st.integers(1, 32),
            rate=st.integers(1, 8),
            capacity=st.integers(1, 128),
            num_nodes=st.integers(0, 400),
        )
        def property_methods_match(
            hash_parallelism, wave, rate, capacity, num_nodes
        ):
            compare(hash_parallelism, wave, rate, capacity, num_nodes)

        property_methods_match()
    return f"{configs} pipeline configurations, bit-identical stats"


# ----------------------------------------------------------------------
# Pair 3: analytic engine vs. detailed per-step simulator
# ----------------------------------------------------------------------
def _mutate_detailed_bytes():
    from ..sim import detailed as detailed_mod

    return _patched(
        detailed_mod, "BYTES_PER_VALUE", detailed_mod.BYTES_PER_VALUE * 2
    )


@register_check(
    "sim.engine_vs_detailed",
    kind="differential",
    pair=(
        "repro.sim.engine.AcceleratorSimulator",
        "repro.sim.detailed.DetailedSimulator",
    ),
    mutators={"detailed_doubles_value_bytes": _mutate_detailed_bytes},
)
def check_engine_vs_detailed(context: CheckContext):
    """Engine and detailed simulator reconcile their counters per RunSpec.

    DRAM read/write bytes, MAC counts, and pair counts come from shared
    workload preparation and must match exactly; the latency models
    differ by design and are held to the documented small factor.
    """
    from ..platforms import REGISTRY
    from ..sim import detailed as detailed_mod

    traces = small_traces(num_pairs=4, batch_size=2)
    for platform in _PLATFORMS:
        engine = REGISTRY.build(platform)
        detailed = detailed_mod.DetailedSimulator(engine.config)
        analytic = engine.simulate_batches(traces)
        stepped = detailed.simulate_batches(traces)
        for field in ("dram_read_bytes", "dram_write_bytes", "macs"):
            left = getattr(analytic, field)
            right = getattr(stepped, field)
            _require(
                np.isclose(left, right, rtol=1e-12, atol=0.0),
                f"{platform}: engine and detailed simulator disagree on "
                f"{field}: {left} != {right}",
            )
        _require(
            analytic.num_pairs == stepped.num_pairs,
            f"{platform}: pair counts diverge "
            f"({analytic.num_pairs} != {stepped.num_pairs})",
        )
        ratio = stepped.cycles / analytic.cycles
        _require(
            1.0 / _LATENCY_FACTOR < ratio < _LATENCY_FACTOR,
            f"{platform}: detailed/engine cycle ratio {ratio:.3f} outside "
            f"the documented (1/{_LATENCY_FACTOR}, {_LATENCY_FACTOR}) band",
        )
    return f"{len(_PLATFORMS)} platforms reconciled (dram/macs exact)"


# ----------------------------------------------------------------------
# Pair 3b: batched numpy engine vs. per-pair serial reference
# ----------------------------------------------------------------------
def _mutate_batched_summary_misses():
    """Perturb the batched path's schedule summaries (serial untouched)."""
    from ..sim import engine as engine_mod

    original = engine_mod.schedule_summary_for

    def perturbed(
        pair,
        scheme,
        capacity,
        active_targets=None,
        active_queries=None,
        store=None,
    ):
        summary = original(
            pair, scheme, capacity, active_targets, active_queries, store
        )
        clone = type(summary).from_array(
            summary.scheme, summary.capacity, summary.to_array().copy()
        )
        if clone.misses.size:
            clone.misses[0] += 1
        return clone

    return _patched(engine_mod, "schedule_summary_for", perturbed)


def _mutate_gemm_batch_cycles():
    """Skew the vectorized GEMM kernel the batched tile model uses."""
    from ..sim import pe as pe_mod

    original = pe_mod.MACArray.__dict__["gemm_cycles_batch"]

    def off_by_one(self, n, k, m):
        return original(self, n, k, m) + 1

    return _patched(pe_mod.MACArray, "gemm_cycles_batch", off_by_one)


def _mutate_plan_summary_fraction():
    """Skew the cached EMF plan summary the batched engine consumes."""
    from ..emf import filter as filter_mod

    original = filter_mod.MatchingPlan.__dict__["summary"]

    def skewed(self):
        summary = original(self)
        return filter_mod.PlanSummary(
            summary.target_actives,
            summary.query_actives,
            summary.remaining_fraction * 0.5,
            summary.unique_matchings,
        )

    return _patched(filter_mod.MatchingPlan, "summary", skewed)


@register_check(
    "sim.batched_vs_serial",
    kind="differential",
    pair=(
        "AcceleratorSimulator(backend='serial')",
        "AcceleratorSimulator(backend='batched')",
    ),
    mutators={
        "batched_summary_miscounts_misses": _mutate_batched_summary_misses,
        "gemm_batch_kernel_off_by_one": _mutate_gemm_batch_cycles,
        "plan_summary_halves_match_fraction": _mutate_plan_summary_fraction,
    },
)
def check_batched_vs_serial(context: CheckContext):
    """The batched numpy backend is bit-identical to the per-pair loop.

    Covers the analytic engine and the detailed simulator (with and
    without the tile model), both metric-free — where the batched path
    may consult cached plan/schedule summaries and vectorized kernels —
    and under an active registry, where every deterministic counter
    stream (``sim.*``, ``emf.*``, ``cgc.*``, ``dram.*``, ``pe.*``) must
    match key for key. Only the batched-only batch-size histogram
    (``sim.batch.pairs_per_call``) is excluded from the comparison.
    """
    from ..obs.metrics import metrics_enabled
    from ..platforms import REGISTRY
    from ..sim import detailed as detailed_mod

    def scrub(snapshot: dict) -> dict:
        return {
            section: {
                key: value
                for key, value in entries.items()
                if not key.startswith("sim.batch.pairs_per_call")
            }
            for section, entries in snapshot.items()
        }

    def diff_keys(left: dict, right: dict) -> str:
        keys = sorted(
            key
            for key in set(left) | set(right)
            if left.get(key) != right.get(key)
        )
        return ", ".join(
            f"{key}: {left.get(key)} != {right.get(key)}" for key in keys
        )

    def configs(platform: str):
        def engine(backend: str):
            simulator = REGISTRY.build(platform)
            simulator.backend = backend
            return simulator

        yield f"{platform}/engine", engine
        config = REGISTRY.build(platform).config
        for tile in (False, True):
            def stepped(backend: str, tile=tile):
                return detailed_mod.DetailedSimulator(
                    config, tile_model=tile, backend=backend
                )

            yield f"{platform}/detailed{'_tile' if tile else ''}", stepped

    # Fresh traces per run: new pair objects, so no summary memoized by
    # an earlier (possibly unmutated) invocation can mask a divergence.
    traces = small_traces(num_pairs=4, batch_size=2)
    compared = 0
    for platform in _PLATFORMS:
        for label, build in configs(platform):
            serial = build("serial").simulate_batches(traces).to_dict()
            batched = build("batched").simulate_batches(traces).to_dict()
            _require(
                serial == batched,
                f"{label}: batched backend diverges from serial "
                f"(metric-free): {diff_keys(serial, batched)}",
            )
            with metrics_enabled() as registry:
                serial_m = build("serial").simulate_batches(traces).to_dict()
                serial_metrics = scrub(registry.as_dict())
            with metrics_enabled() as registry:
                batched_m = (
                    build("batched").simulate_batches(traces).to_dict()
                )
                batched_metrics = scrub(registry.as_dict())
            _require(
                serial_m == batched_m,
                f"{label}: batched backend diverges from serial "
                f"(metrics on): {diff_keys(serial_m, batched_m)}",
            )
            for section in sorted(set(serial_metrics) | set(batched_metrics)):
                left = serial_metrics.get(section, {})
                right = batched_metrics.get(section, {})
                _require(
                    left == right,
                    f"{label}: metric {section} diverge between backends: "
                    f"{diff_keys(left, right)}",
                )
            compared += 1
    return (
        f"{compared} simulator configs x 2 modes, results and metric "
        "streams bit-identical"
    )


# ----------------------------------------------------------------------
# Pair 4: serial harness vs. process-pool chunked harness
# ----------------------------------------------------------------------
def _mutate_chunk_bounds():
    from ..perf import parallel as parallel_mod

    original = parallel_mod._chunk_bounds

    def drop_last_chunk(num_pairs, batch_size, workers):
        bounds = original(num_pairs, batch_size, workers)
        return bounds[:-1] if len(bounds) > 1 else bounds

    return _patched(parallel_mod, "_chunk_bounds", drop_last_chunk)


@register_check(
    "harness.serial_vs_parallel",
    kind="differential",
    pair=(
        "repro.core.api.simulate_workload",
        "repro.perf.parallel.parallel_simulate_workload",
    ),
    mutators={"parallel_drops_last_chunk": _mutate_chunk_bounds},
)
def check_serial_vs_parallel(context: CheckContext):
    """Chunked process-pool simulation merges to the serial result.

    Pair counts must match exactly; float accumulators are summed in a
    different association order across chunks, so they are held to the
    documented ulp-level tolerance. The chunk/merge structure is
    validated even when the host refuses to spawn processes (the pool
    falls back to in-process execution of the same chunk tasks).
    """
    from ..core import api as api_mod
    from ..perf import parallel as parallel_mod
    from ..platforms.runspec import RunSpec

    spec = RunSpec.make("GMN-Li", "AIDS", 8, 2, 0)
    serial = api_mod.simulate_workload(
        spec.model,
        spec.dataset,
        ("CEGMA",),
        num_pairs=spec.num_pairs,
        batch_size=spec.batch_size,
        seed=spec.seed,
    )
    # Single-core hosts clamp the worker request to 1, which collapses
    # the workload to one chunk and leaves the chunk/merge path — the
    # thing this check exists for — unexercised. Force two chunks; the
    # pool still degrades to in-process execution where it must.
    with _patched(
        parallel_mod, "available_workers", lambda requested=None: 2
    ):
        chunked = parallel_mod.parallel_simulate_workload(
            spec, ("CEGMA",), workers=2
        )
    _require(
        set(serial) == set(chunked),
        f"platform sets diverge: {sorted(serial)} != {sorted(chunked)}",
    )
    for platform in serial:
        left = serial[platform].to_dict()
        right = chunked[platform].to_dict()
        _require(
            left["num_pairs"] == right["num_pairs"],
            f"{platform}: pair counts diverge "
            f"({left['num_pairs']} != {right['num_pairs']})",
        )
        for field in (
            "cycles",
            "dram_read_bytes",
            "dram_write_bytes",
            "macs",
            "sram_bytes",
            "energy_joules",
        ):
            _require(
                np.isclose(
                    left[field], right[field], rtol=_MERGE_RTOL, atol=0.0
                ),
                f"{platform}: serial and chunked runs diverge on {field} "
                f"beyond the merge tolerance: {left[field]} != "
                f"{right[field]}",
            )
    return f"{spec.stem}: serial == chunked (2 workers)"


# ----------------------------------------------------------------------
# Pair 5: trace cache replay vs. fresh profiling
# ----------------------------------------------------------------------
def _mutate_cache_load():
    from ..perf import trace_cache as trace_cache_mod

    original = trace_cache_mod.TraceCache.__dict__["load"]

    def load_truncated(self, spec):
        traces = original(self, spec)
        if traces is None or len(traces) <= 1:
            return traces
        return traces[:-1]

    return _patched(trace_cache_mod.TraceCache, "load", load_truncated)


@register_check(
    "harness.trace_cache_on_off",
    kind="differential",
    pair=(
        "repro.perf.trace_cache.TraceCache.load",
        "repro.trace.profiler.profile_batches",
    ),
    mutators={"cache_drops_last_batch": _mutate_cache_load},
)
def check_trace_cache_on_off(context: CheckContext):
    """Traces replayed from the disk cache simulate bit-identically to a
    fresh profiling run of the same RunSpec."""
    from ..core import api as api_mod
    from ..experiments import common as common_mod
    from ..platforms.runspec import RunSpec

    spec = RunSpec.make("GMN-Li", "AIDS", 4, 2, 123)
    cache_dir = tempfile.mkdtemp(prefix="repro_validate_cache_")
    previous = os.environ.get("REPRO_TRACE_CACHE")
    try:
        os.environ["REPRO_TRACE_CACHE"] = cache_dir
        common_mod.clear_workload_caches()
        fresh = common_mod.traces_for(spec)  # profiles, fills the cache
        common_mod.clear_workload_caches()
        cached = common_mod.traces_for(spec)  # must hit the disk cache
        _require(
            len(fresh) == len(cached),
            f"cache round-trip changed the batch count: "
            f"{len(fresh)} != {len(cached)}",
        )
        left = api_mod.simulate_traces(fresh, ("CEGMA",))["CEGMA"].to_dict()
        right = api_mod.simulate_traces(cached, ("CEGMA",))["CEGMA"].to_dict()
        _require(
            left == right,
            "cache-on and cache-off runs diverge: "
            + ", ".join(
                f"{key}: {left[key]} != {right[key]}"
                for key in left
                if left[key] != right[key]
            ),
        )
    finally:
        common_mod.clear_workload_caches()
        if previous is None:
            os.environ.pop("REPRO_TRACE_CACHE", None)
        else:
            os.environ["REPRO_TRACE_CACHE"] = previous
        shutil.rmtree(cache_dir, ignore_errors=True)
    return f"{spec.stem}: cached replay bit-identical to fresh profile"


# ----------------------------------------------------------------------
# Invariants: CGC window schedules
# ----------------------------------------------------------------------
def _assert_schedule_invariants(schedule, pair, capacity, scheme, label):
    expected_matchings = pair.target.num_nodes * pair.query.num_nodes
    expected_edges = len(pair.target.src) + len(pair.query.src)
    for index, step in enumerate(schedule.steps):
        _require(
            len(step.input_nodes) <= capacity,
            f"[{label}/{scheme} cap={capacity}] step {index} holds "
            f"{len(step.input_nodes)} nodes, exceeding the buffer",
        )
        if step.kind == "cleanup":
            _require(
                step.num_matchings == 0,
                f"[{label}/{scheme} cap={capacity}] cleanup step {index} "
                "claims matchings",
            )
    _require(
        schedule.total_matchings == expected_matchings,
        f"[{label}/{scheme} cap={capacity}] matchings executed "
        f"{schedule.total_matchings} times, expected {expected_matchings} "
        "(every matching must execute exactly once)",
    )
    _require(
        schedule.total_edges == expected_edges,
        f"[{label}/{scheme} cap={capacity}] {schedule.total_edges} edges "
        f"processed, expected {expected_edges} "
        "(cleanup must cover all remaining edges)",
    )
    previous = frozenset()
    recomputed_total = 0
    for index, step in enumerate(schedule.steps):
        expected_misses = len(step.input_nodes - previous)
        _require(
            step.misses == expected_misses,
            f"[{label}/{scheme} cap={capacity}] step {index} records "
            f"{step.misses} misses, recomputation gives {expected_misses}",
        )
        recomputed_total += expected_misses
        previous = step.input_nodes
    _require(
        schedule.total_misses == recomputed_total,
        f"[{label}/{scheme} cap={capacity}] total_misses "
        f"{schedule.total_misses} != independently recomputed "
        f"{recomputed_total}",
    )


def _mutate_skip_cleanup():
    from ..cgc import window as window_mod

    def no_cleanup(self, capacity):
        return []

    return _patched(window_mod._EdgeTracker, "cleanup_steps", no_cleanup)


def _mutate_oversized_chunks():
    from ..cgc import window as window_mod

    original = window_mod._chunks

    def oversized(items, size):
        return original(items, size + 1)

    return _patched(window_mod, "_chunks", oversized)


@register_check(
    "cgc.schedule_invariants",
    kind="invariant",
    mutators={
        "cleanup_drops_remaining_edges": _mutate_skip_cleanup,
        "blocks_overflow_capacity": _mutate_oversized_chunks,
    },
)
def check_schedule_invariants(context: CheckContext):
    """Every scheme, on every adversarial pair: capacity respected, every
    matching exactly once, all edges covered, miss accounting consistent."""
    from ..cgc import window as window_mod

    capacities = (2, 3, 5, 8, 64)
    cases = list(adversarial_pairs())
    for seed in (0, 1):
        cases.extend(
            (f"random_{seed}_{index}", pair)
            for index, pair in enumerate(random_pairs(seed))
        )
    checked = 0
    for label, pair in cases:
        for capacity in capacities:
            for scheme, scheduler in window_mod.SCHEDULERS.items():
                schedule = scheduler(pair, capacity)
                _assert_schedule_invariants(
                    schedule, pair, capacity, scheme, label
                )
                checked += 1
    # Active-set variant: EMF-filtered matchings must also run once each.
    label, pair = cases[0]
    active_targets = list(range(0, pair.target.num_nodes, 2))
    active_queries = list(range(0, pair.query.num_nodes, 2))
    for scheme, scheduler in window_mod.SCHEDULERS.items():
        schedule = scheduler(
            pair, 4, active_targets=active_targets, active_queries=active_queries
        )
        _require(
            schedule.total_matchings
            == len(active_targets) * len(active_queries),
            f"[{label}/{scheme}] active-set matchings "
            f"{schedule.total_matchings} != "
            f"{len(active_targets) * len(active_queries)}",
        )
    if not context.quick and _hypothesis_available():
        from hypothesis import given
        from hypothesis import strategies as st

        @_deep_settings(30)
        @given(seed=st.integers(0, 2**16), capacity=st.integers(2, 16))
        def property_invariants_hold(seed, capacity):
            for index, pair in enumerate(random_pairs(seed, count=2)):
                for scheme, scheduler in window_mod.SCHEDULERS.items():
                    _assert_schedule_invariants(
                        scheduler(pair, capacity),
                        pair,
                        capacity,
                        scheme,
                        f"hypothesis_{seed}_{index}",
                    )

        property_invariants_hold()
    return f"{checked} (pair, capacity, scheme) schedules validated"


def _mutate_accept_any_capacity():
    from ..cgc import window as window_mod

    return _patched(window_mod, "_validate_capacity", lambda capacity: capacity)


@register_check(
    "cgc.degenerate_inputs",
    kind="invariant",
    mutators={"capacity_validation_disabled": _mutate_accept_any_capacity},
)
def check_degenerate_inputs(context: CheckContext):
    """Degenerate scheduler inputs either raise a clear ValueError
    (capacity < 2) or produce a fully valid schedule (odd capacity,
    undersized sides, empty sides, disconnected graphs)."""
    from ..cgc import window as window_mod

    cases = dict(adversarial_pairs())
    reference = cases["paper_like"]
    for scheme, scheduler in window_mod.SCHEDULERS.items():
        for capacity in (-3, 0, 1):
            try:
                schedule = scheduler(reference, capacity)
            except ValueError:
                continue
            # No error: the schedule must then actually fit the buffer —
            # which a sub-2 window never can while matching.
            _assert_schedule_invariants(
                schedule, reference, capacity, scheme, "undersized_capacity"
            )
            raise CheckFailure(
                f"{scheme} accepted capacity={capacity} without raising "
                "ValueError or producing a valid schedule"
            )
        for capacity in (3, 5, 7):  # odd split: spare slot stays unused
            for label in ("paper_like", "smaller_than_half_window"):
                _assert_schedule_invariants(
                    scheduler(cases[label], capacity),
                    cases[label],
                    capacity,
                    scheme,
                    f"odd_{label}",
                )
        for label in ("empty_query", "empty_target", "both_empty", "edgeless"):
            _assert_schedule_invariants(
                scheduler(cases[label], 4), cases[label], 4, scheme, label
            )
    return (
        f"{len(window_mod.SCHEDULERS)} schemes: capacity<2 raises, "
        "degenerate pairs schedule cleanly"
    )


# ----------------------------------------------------------------------
# Invariant: quantization happens at exactly one site
# ----------------------------------------------------------------------
def _mutate_unnormalized_zero():
    from ..emf import xxhash as xxhash_mod

    def quantize_without_zero_normalization(features, decimals=6):
        array = np.asarray(features, dtype=np.float64)
        if decimals is None:
            return array
        return np.round(array, decimals)  # keeps -0.0

    return _patched(
        xxhash_mod, "quantize_features", quantize_without_zero_normalization
    )


@register_check(
    "emf.quantization_single_site",
    kind="invariant",
    mutators={"quantizer_keeps_negative_zero": _mutate_unnormalized_zero},
)
def check_quantization_single_site(context: CheckContext):
    """quantize_features is idempotent, normalizes -0.0, and the
    decimals=None pre-quantized contract yields identical tags and
    filter results (no path quantizes twice)."""
    from ..emf import filter as filter_mod
    from ..emf import xxhash as xxhash_mod

    for features in feature_matrices(seed=4):
        quantized = xxhash_mod.quantize_features(features)
        twice = xxhash_mod.quantize_features(quantized)
        _require(
            quantized.tobytes() == twice.tobytes(),
            f"quantize_features is not idempotent on a {features.shape} "
            "matrix: re-quantizing changed the bit pattern",
        )
        _require(
            not np.signbit(quantized[quantized == 0.0]).any(),
            f"quantize_features left a -0.0 in a {features.shape} matrix",
        )
        # Pre-quantized consumers (decimals=None) must see the same tags
        # as the one-shot path — quantization happens exactly once.
        one_shot = xxhash_mod.hash_feature_matrix(features)
        pre_quantized = xxhash_mod.hash_feature_matrix(
            quantized, decimals=None
        )
        _require(
            np.array_equal(one_shot, pre_quantized),
            f"tags diverge between one-shot and pre-quantized hashing on "
            f"a {features.shape} matrix",
        )
        left = _filter_signature(
            filter_mod.elastic_matching_filter(features, method="xxhash")
        )
        right = _filter_signature(
            filter_mod.elastic_matching_filter(quantized, method="xxhash")
        )
        _require(
            left == right,
            "filtering raw vs. pre-quantized features diverges on a "
            f"{features.shape} matrix: {left} != {right}",
        )
    # Signed zeros must collapse to one duplicate group.
    zeros = np.array([[-0.0, 1.0], [0.0, 1.0]])
    tags = xxhash_mod.hash_feature_matrix(zeros)
    _require(
        int(tags[0]) == int(tags[1]),
        "-0.0 and 0.0 rows hash to different tags after quantization",
    )
    return "idempotent, -0.0-normalized, decimals=None contract holds"


# ----------------------------------------------------------------------
# Pair 7: flat query loop vs. staged serving pipeline
# ----------------------------------------------------------------------
def _mutate_shard_bounds():
    from ..search import executor as executor_mod

    original = executor_mod.shard_bounds

    def drop_last_shard(database_size, num_shards):
        bounds = original(database_size, num_shards)
        return bounds[:-1] if len(bounds) > 1 else bounds

    return _patched(executor_mod, "shard_bounds", drop_last_shard)


def _mutate_merge_order():
    from ..search import results as results_mod

    original = results_mod.merge_topk

    def skip_best(partials, top_k):
        merged = original(partials, top_k + 1)
        return merged[1:] if len(merged) > 1 else merged

    return _patched(results_mod, "merge_topk", skip_best)


def _mutate_request_signatures():
    from ..search import scheduler as scheduler_mod

    return _patched(
        scheduler_mod, "graph_signature", lambda graph: b"everything-collides"
    )


@register_check(
    "search.serve_vs_direct",
    kind="differential",
    pair=(
        "repro.search.index.SimilaritySearchIndex._query_flat",
        "repro.search.pipeline.ServingPipeline.serve",
    ),
    mutators={
        "executor_drops_last_shard": _mutate_shard_bounds,
        "merge_skips_best_result": _mutate_merge_order,
        "scheduler_collides_all_requests": _mutate_request_signatures,
    },
)
def check_serve_vs_direct(context: CheckContext):
    """The staged serving pipeline returns exactly the flat rankings.

    The pipeline reshapes execution four ways — request dedup in the
    scheduler, database sharding, candidate dedup inside each shard,
    and a k-way top-k merge — and every one of them must be invisible
    in the results: same indices, bit-identical scores, ties broken by
    ascending database index. The request stream contains duplicate
    queries (dedup sharing), the database contains duplicate and
    empty-graph entries (candidate broadcast, PR 5 degenerate shapes),
    and shards deliberately don't divide the database evenly.
    """
    from ..graphs.datasets import generate_graph
    from ..graphs.graph import Graph
    from ..graphs.pairs import substitute_edges
    from ..models import build_model
    from ..search import index as index_mod
    from ..search.scheduler import SchedulingPolicy

    rng = np.random.default_rng(7)
    base = [generate_graph("AIDS", rng) for _ in range(6)]
    feature_dim = base[0].feature_dim
    database = (
        base
        + base[:2]  # exact duplicate candidates
        + [Graph(0, [], np.zeros((0, feature_dim))), base[0]]
    )
    model = build_model("GMN-Li", input_dim=feature_dim, seed=0)
    index = index_mod.SimilaritySearchIndex(model)
    index.add_many(database)

    distinct = [base[0], substitute_edges(base[1], 2, rng), base[3]]
    stream = [distinct[0], distinct[1], distinct[0], distinct[2], distinct[0]]
    top_k = 4
    # The flat reference ignores scheduling, so compute it once per
    # distinct query and reuse across policies.
    flat = {id(graph): index._query_flat(graph, top_k) for graph in distinct}

    policies = (
        tuple(SchedulingPolicy)
        if not context.quick
        else (SchedulingPolicy.FIFO, SchedulingPolicy.SIZE_BUCKETED)
    )
    compared = 0
    for policy in policies:
        pipeline = index.pipeline(
            policy=policy, max_batch_queries=2, num_shards=3, workers=1
        )
        responses = pipeline.serve(stream, top_k=top_k)
        for graph, response in zip(stream, responses):
            _require(
                response is not None and response.ok,
                f"[{policy.value}] request was not served: {response}",
            )
            served = list(response.results)
            expected = flat[id(graph)]
            _require(
                served == expected,
                f"[{policy.value}] served top-k diverges from the flat "
                f"path: {served} != {expected}",
            )
            compared += 1

    # Deadline shedding is part of the response contract: with an
    # injected clock, an expired request must come back empty and
    # marked, never half-served.
    clock_now = [0.0]
    pipeline = index.pipeline(clock=lambda: clock_now[0])
    expired_request = pipeline.submit(distinct[0], top_k, timeout_seconds=1.0)
    live_request = pipeline.submit(distinct[2], top_k)
    clock_now[0] = 5.0
    responses = {
        response.request_id: response
        for response in pipeline.run_until_drained()
    }
    expired = responses[expired_request.request_id]
    _require(
        expired.status == "expired" and not expired.results,
        f"expired request not shed cleanly: {expired}",
    )
    served = responses[live_request.request_id]
    _require(
        list(served.results) == flat[id(distinct[2])],
        "live request served wrong results alongside an expired one",
    )
    return (
        f"{compared} served requests x {len(policies)} policies "
        "bit-identical to the flat path; deadline shedding clean"
    )


# ----------------------------------------------------------------------
# Pair 8: sketch-gated candidate retrieval vs. flat scoring
# ----------------------------------------------------------------------
def _mutate_retriever_drop_first():
    from ..search import sketch as sketch_mod

    original = sketch_mod.CandidateRetriever.retrieve_batch

    def drop_first(self, queries):
        candidates = original(self, queries)
        return candidates[1:] if len(candidates) > 1 else candidates

    return _patched(
        sketch_mod.CandidateRetriever, "retrieve_batch", drop_first
    )


def _mutate_recall_floor_off():
    from ..search import sketch as sketch_mod

    def no_pruning(self, top_k, database_size):
        return database_size

    return _patched(sketch_mod.SketchConfig, "candidate_floor", no_pruning)


@register_check(
    "search.sketch_vs_flat",
    kind="differential",
    pair=(
        "repro.search.index.SimilaritySearchIndex._query_flat",
        "repro.search.sketch.CandidateRetriever",
    ),
    mutators={
        "retriever_drops_first_candidate": _mutate_retriever_drop_first,
        "retriever_ignores_recall_floor": _mutate_recall_floor_off,
    },
)
def check_sketch_vs_flat(context: CheckContext):
    """Sketch retrieval returns the flat top-k while scoring fewer candidates.

    Two sides of the contract, both gated: (1) every served ranking
    under ``retrieval="sketch"`` is bit-identical to the flat reference
    (same indices, same scores, ties by ascending database index) on a
    database mixing clones, empty graphs, and bit-identical-NaN
    features; (2) retrieval actually prunes — the total candidate count
    stays strictly below ``queries x database`` (the sublinearity the
    index exists for). The first mutator corrupts the candidate set,
    the second disables pruning; each must trip one side.
    """
    from ..graphs.datasets import generate_graph
    from ..graphs.graph import Graph
    from ..graphs.pairs import substitute_edges
    from ..models import build_model
    from ..search import index as index_mod
    from ..search.sketch import SketchConfig

    rng = np.random.default_rng(11)
    base = [generate_graph("AIDS", rng) for _ in range(6)]
    feature_dim = base[0].feature_dim
    empty = Graph(0, [], np.zeros((0, feature_dim)))
    nan_graph = Graph(2, [(0, 1)], np.full((2, feature_dim), np.nan))
    database = base + base[:2] + [empty, base[0], nan_graph]
    model = build_model("GMN-Li", input_dim=feature_dim, seed=0)
    index = index_mod.SimilaritySearchIndex(model)
    index.add_many(database)

    queries = [
        base[0],
        substitute_edges(base[1], 2, rng),
        base[3],
        empty,
        nan_graph,
    ]
    top_k = 4
    flat = [index._query_flat(graph, top_k) for graph in queries]

    config = SketchConfig(min_candidates=top_k, recall_floor=0.75)
    pipeline = index.pipeline(
        retrieval="sketch",
        sketch_config=config,
        max_batch_queries=2,
        num_shards=3,
        workers=1,
    )
    responses = pipeline.serve(queries, top_k=top_k)
    for position, (expected, response) in enumerate(zip(flat, responses)):
        _require(
            response is not None and response.ok,
            f"sketch-gated request {position} was not served: {response}",
        )
        served = list(response.results)
        _require(
            served == expected,
            f"sketch-gated top-k diverges from the flat path for query "
            f"{position}: {served} != {expected}",
        )
    retriever = pipeline.retriever
    scanned = len(queries) * len(database)
    _require(
        0 < retriever.candidates_retrieved < scanned,
        "sketch retrieval did not prune: "
        f"{retriever.candidates_retrieved} candidates retrieved for "
        f"{len(queries)} queries over {len(database)} graphs "
        f"(flat would scan {scanned})",
    )

    # Incremental maintenance: grow the database after serving and the
    # retriever must cover the new graphs (exact clone of the addition
    # must surface at its new index; sketch stays flat-identical).
    fresh = generate_graph("AIDS", rng)
    new_id = index.add(fresh)
    pipeline = index.pipeline(
        retrieval="sketch", sketch_config=config, workers=1
    )
    grown = pipeline.serve([fresh], top_k=top_k)[0]
    _require(
        grown is not None
        and list(grown.results) == index._query_flat(fresh, top_k),
        "sketch retrieval diverges from flat after growing the database",
    )
    _require(
        any(result.index == new_id for result in grown.results),
        f"freshly added graph {new_id} missing from its own top-k",
    )

    compared = len(queries) + 1
    if not context.quick:
        # Randomized tier: seeded ER databases and member/perturbed
        # queries, same bit-identical expectation.
        for sweep_seed in range(3):
            sweep_rng = np.random.default_rng(100 + sweep_seed)
            pool = [
                pair.target for pair in random_pairs(sweep_seed, count=6)
            ] + [pair.query for pair in random_pairs(sweep_seed + 50, count=6)]
            sweep_index = index_mod.SimilaritySearchIndex(
                build_model("GMN-Li", input_dim=pool[0].feature_dim, seed=0)
            )
            sweep_index.add_many(pool)
            sweep_queries = [
                pool[0],
                substitute_edges(pool[1], 1, sweep_rng),
                pool[len(pool) // 2],
            ]
            sweep_flat = [
                sweep_index._query_flat(graph, 3) for graph in sweep_queries
            ]
            # ER pools carry near-uniform features, so the EMF token
            # layer degenerates and MinHash agreement leans on the WL
            # layers alone — a higher floor buys the agreement back
            # while still pruning (the sweep scores 99 of 108 pairs).
            sweep_config = SketchConfig(
                min_candidates=config.min_candidates,
                recall_floor=0.85,
            )
            sweep_pipeline = sweep_index.pipeline(
                retrieval="sketch", sketch_config=sweep_config, workers=1
            )
            for expected, response in zip(
                sweep_flat, sweep_pipeline.serve(sweep_queries, top_k=3)
            ):
                _require(
                    response is not None
                    and list(response.results) == expected,
                    f"sketch diverges from flat on ER sweep seed "
                    f"{sweep_seed}",
                )
                compared += 1

    return (
        f"{compared} sketch-gated rankings bit-identical to flat; "
        f"{retriever.candidates_retrieved}/{scanned} candidates scored"
    )
