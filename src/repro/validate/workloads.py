"""Deterministic workload generators shared by the validation checks.

Everything here is a pure function of its seed arguments, so the quick
tier of ``repro validate`` is bit-reproducible across runs and machines
— the property the CI gate relies on. The hypothesis-driven deep tier
layers randomized inputs on top of these, it does not replace them.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..graphs.graph import Graph
from ..graphs.pairs import GraphPair

__all__ = [
    "byte_matrices",
    "feature_matrices",
    "adversarial_pairs",
    "random_pairs",
    "small_traces",
]


def byte_matrices(seed: int = 0) -> List[np.ndarray]:
    """Byte matrices covering the XXH32 length regimes.

    Lengths straddle the 16-byte stripe and 4-byte word boundaries
    (0, tails of 1-3 bytes, exact multiples) and row counts include the
    empty matrix; one strided view exercises non-contiguous input.
    """
    rng = np.random.default_rng(seed)
    matrices = []
    for rows in (0, 1, 5):
        for length in (0, 1, 3, 4, 5, 15, 16, 17, 19, 32, 35, 64):
            matrices.append(
                rng.integers(0, 256, size=(rows, length), dtype=np.uint8)
            )
    base = rng.integers(0, 256, size=(12, 48), dtype=np.uint8)
    matrices.append(base[::2, 1:41])  # non-contiguous strided view
    matrices.append(base[::3, ::2])  # strided in both axes
    return matrices


def feature_matrices(seed: int = 0) -> List[np.ndarray]:
    """Feature matrices with planted duplicates and adversarial values.

    Includes exact duplicate rows, rows equal only after quantization,
    signed zeros, all-identical matrices (the paper's unlabelled-graph
    setting), empty matrices along both axes, and bit-identical NaN
    rows (the case that separates bitwise from value comparison).
    """
    rng = np.random.default_rng(seed)
    dense = rng.normal(size=(10, 4))
    dense[3] = dense[0]  # exact duplicate
    dense[7] = dense[1] + 1e-9  # duplicate only after quantization
    signed_zero = np.array([[-0.0, 1.0], [0.0, 1.0], [0.5, -0.0]])
    nan_rows = np.array([[np.nan, 1.0], [np.nan, 1.0], [2.0, 3.0]])
    return [
        dense,
        signed_zero,
        nan_rows,
        np.ones((6, 3)),  # all duplicates
        np.empty((0, 4)),  # no nodes
        np.empty((5, 0)),  # zero-width features
        rng.normal(size=(1, 8)),  # single node
    ]


def _pair(n_t: int, n_q: int, target_edges, query_edges) -> GraphPair:
    return GraphPair(Graph(n_t, target_edges), Graph(n_q, query_edges))


def adversarial_pairs() -> List[Tuple[str, GraphPair]]:
    """Named graph pairs probing the schedulers' documented edge cases."""
    ring6 = [(i, (i + 1) % 6) for i in range(6)] + [
        ((i + 1) % 6, i) for i in range(6)
    ]
    return [
        ("paper_like", _pair(6, 5, ring6, [(0, 1), (1, 0), (2, 4), (4, 2)])),
        ("empty_query", _pair(4, 0, [(0, 1), (1, 0)], [])),
        ("empty_target", _pair(0, 4, [], [(0, 1), (1, 0)])),
        ("both_empty", _pair(0, 0, [], [])),
        ("single_nodes", _pair(1, 1, [], [])),
        ("smaller_than_half_window", _pair(2, 9, [(0, 1), (1, 0)], ring6[:6])),
        (
            "disconnected_components",
            _pair(6, 6, [(0, 1), (1, 0)], [(4, 5), (5, 4)]),
        ),
        ("self_loops", _pair(3, 3, [(0, 0), (1, 2), (2, 1)], [(2, 2)])),
        ("edgeless", _pair(5, 4, [], [])),
    ]


def random_pairs(seed: int, count: int = 4) -> List[GraphPair]:
    """Seeded Erdős–Rényi-style pairs for randomized invariant sweeps."""
    rng = np.random.default_rng(seed)
    pairs = []
    for _ in range(count):
        n_t = int(rng.integers(1, 12))
        n_q = int(rng.integers(1, 12))

        def edges(n):
            out = []
            for u in range(n):
                for v in range(u + 1, n):
                    if rng.random() < 0.3:
                        out.extend([(u, v), (v, u)])
            return out

        pairs.append(_pair(n_t, n_q, edges(n_t), edges(n_q)))
    return pairs


def small_traces(
    model: str = "GMN-Li",
    dataset: str = "AIDS",
    num_pairs: int = 4,
    batch_size: int = 2,
    seed: int = 0,
):
    """Profile one small workload directly (no caches involved)."""
    from ..graphs.datasets import load_dataset
    from ..models import build_model
    from ..trace.profiler import profile_batches

    pairs = load_dataset(dataset, seed=seed, num_pairs=num_pairs)
    built = build_model(
        model, input_dim=pairs[0].target.feature_dim, seed=seed
    )
    return profile_batches(built, pairs, batch_size=batch_size)
