"""Cycle-level accelerator simulation: CEGMA, ablations, HyGCN, AWB-GCN."""

from .area import AreaReport, cegma_area_report
from .config import (
    BYTES_PER_VALUE,
    HardwareConfig,
    awbgcn_config,
    cegma_cgc_only_config,
    cegma_config,
    cegma_emf_only_config,
    hygcn_config,
)
from .detailed import DetailedSimulator
from .energy import EnergyModel
from .memory import DRAMModel
from .pe import MACArray
from .engine import RESULT_SCHEMA_VERSION, AcceleratorSimulator, PlatformResult

__all__ = [
    "HardwareConfig",
    "cegma_config",
    "cegma_emf_only_config",
    "cegma_cgc_only_config",
    "hygcn_config",
    "awbgcn_config",
    "BYTES_PER_VALUE",
    "EnergyModel",
    "DRAMModel",
    "MACArray",
    "AcceleratorSimulator",
    "DetailedSimulator",
    "PlatformResult",
    "RESULT_SCHEMA_VERSION",
    "AreaReport",
    "cegma_area_report",
]
