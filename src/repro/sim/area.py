"""Area model reproducing Table III's floorplan breakdown.

The paper synthesizes CEGMA on TSMC 14 nm (6.3 mm^2) and reports the
split: EMF 0.18% logic + 6.66% buffer, CGC 0.01% logic + 11.79% buffer,
PE 53.58% logic + 27.78% buffer. We reproduce it with per-structure
area constants derived from those numbers (they land in the range the
14 nm literature reports):

- SRAM: ~0.42 mm^2 per MB (Table III's 46.2% buffer share over ~6.9 MB
  of total on-chip SRAM);
- fp32 MAC incl. pipeline registers: ~820 um^2 (PE logic over 4096 MACs);
- 32-bit identity comparator: ~11 um^2; 8-input parallel counter /
  8-bit magnitude comparator: ~10 um^2.

Buffer capacity assignments follow Table III's module rows: the PE owns
the 128 KB T/Q input buffers plus weight/output/map storage; the EMF's
TaskBuffer/TagBuffer/MapBuffer FIFOs hold ~1 MB; the CGC's edge buffer
and index caches hold ~1.75 MB.
"""

from __future__ import annotations

from typing import Dict

__all__ = ["AreaReport", "cegma_area_report", "PAPER_TOTAL_MM2"]

PAPER_TOTAL_MM2 = 6.3

SRAM_MM2_PER_MB = 0.42
MAC_MM2 = 8.2e-4
COMPARATOR_32B_MM2 = 1.1e-5
SMALL_LOGIC_MM2 = 1.0e-5  # parallel counters, magnitude comparators

# Table III structure counts.
NUM_MACS = 128 * 32
NUM_EMF_COMPARATORS = 1024
NUM_CGC_COUNTERS = 34
NUM_CGC_COMPARATORS = 33

# Buffer capacity per module (MB), summing to the ~6.9 MB the paper
# provisions (128 KB input + 6.8 MB others).
EMF_BUFFER_MB = 1.00
CGC_BUFFER_MB = 1.75
PE_BUFFER_MB = 0.125 + 4.05


class AreaReport:
    """Per-component logic/buffer areas with Table III-style shares."""

    __slots__ = ("components",)

    def __init__(self, components: Dict[str, Dict[str, float]]) -> None:
        self.components = components

    @property
    def total_mm2(self) -> float:
        return sum(
            part["logic"] + part["buffer"] for part in self.components.values()
        )

    def share(self, component: str, kind: str) -> float:
        """Fraction of total area in a component's logic or buffer."""
        return self.components[component][kind] / self.total_mm2

    def table(self) -> Dict[str, Dict[str, float]]:
        """Percentages per component, Table III layout."""
        return {
            name: {
                "logic_pct": 100 * self.share(name, "logic"),
                "buffer_pct": 100 * self.share(name, "buffer"),
            }
            for name in self.components
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AreaReport(total={self.total_mm2:.2f} mm^2)"


def cegma_area_report() -> AreaReport:
    """Estimate CEGMA's floorplan from structure counts (Table III)."""
    components = {
        "EMF": {
            "logic": NUM_EMF_COMPARATORS * COMPARATOR_32B_MM2,
            "buffer": EMF_BUFFER_MB * SRAM_MM2_PER_MB,
        },
        "CGC": {
            "logic": (NUM_CGC_COUNTERS + NUM_CGC_COMPARATORS) * SMALL_LOGIC_MM2,
            "buffer": CGC_BUFFER_MB * SRAM_MM2_PER_MB,
        },
        "PE": {
            "logic": NUM_MACS * MAC_MM2,
            "buffer": PE_BUFFER_MB * SRAM_MM2_PER_MB,
        },
    }
    return AreaReport(components)
