"""Tile-level MAC-array timing (the Fig. 14 processing engine).

The coarse models charge ``MACs / array_size`` cycles, which assumes
perfect utilization. A real 128x32 array processes GEMMs in tiles: a
matmul ``(n x k) @ (k x m)`` occupies ``ceil(n/rows) * ceil(m/cols)``
tiles of ``k + fill`` cycles each, so small operands strand most of the
array — a 16-node AIDS graph uses 16 of 128 rows. This module provides
that accounting plus utilization reports; the detailed simulator uses it
for the matching GEMMs when ``tile_model=True``.
"""

from __future__ import annotations

import math
from typing import Dict

import numpy as np

from ..obs.metrics import get_metrics

__all__ = ["MACArray"]


class MACArray:
    """A ``rows x cols`` systolic MAC array."""

    def __init__(self, rows: int = 128, cols: int = 32, fill_cycles: int = 0) -> None:
        if rows < 1 or cols < 1 or fill_cycles < 0:
            raise ValueError("invalid array shape")
        self.rows = rows
        self.cols = cols
        self.fill_cycles = fill_cycles

    @property
    def num_macs(self) -> int:
        return self.rows * self.cols

    # ------------------------------------------------------------------
    def gemm_cycles(self, n: int, k: int, m: int) -> int:
        """Cycles for ``(n x k) @ (k x m)`` with output-stationary tiling.

        Each ``rows x cols`` output tile streams the ``k`` reduction
        dimension through the array (one MAC per cell per cycle), plus
        the pipeline fill.
        """
        if min(n, k, m) < 0:
            raise ValueError("dimensions must be non-negative")
        if n == 0 or k == 0 or m == 0:
            return 0
        tiles = math.ceil(n / self.rows) * math.ceil(m / self.cols)
        cycles = tiles * (k + self.fill_cycles)
        registry = get_metrics()
        if registry is not None:
            # Busy = cycles the array would need at 100% utilization;
            # the rest of the tile time is stranded-cell stall.
            ideal = n * k * m / self.num_macs
            registry.inc("pe.gemm.calls")
            registry.inc("pe.gemm.tiles", tiles)
            registry.inc("pe.gemm.cycles", cycles)
            registry.inc("pe.gemm.busy_cycles", ideal)
            registry.inc("pe.gemm.stall_cycles", cycles - ideal)
        return cycles

    def gemm_cycles_batch(self, n, k, m) -> np.ndarray:
        """Vectorized :meth:`gemm_cycles` over arrays of GEMM shapes.

        ``n``, ``k``, ``m`` broadcast against each other; returns int64
        cycles per shape, value-identical to calling :meth:`gemm_cycles`
        elementwise. Deliberately metric-free: the batched simulator
        uses it only when no registry is active, and falls back to the
        scalar method (which emits ``pe.gemm.*``) under metrics so
        counter streams stay bit-identical to the serial path.
        """
        n = np.asarray(n, dtype=np.int64)
        k = np.asarray(k, dtype=np.int64)
        m = np.asarray(m, dtype=np.int64)
        if (n < 0).any() or (k < 0).any() or (m < 0).any():
            raise ValueError("dimensions must be non-negative")
        n, k, m = np.broadcast_arrays(n, k, m)
        tiles = -(-n // self.rows) * -(-m // self.cols)
        cycles = tiles * (k + self.fill_cycles)
        empty = (n == 0) | (k == 0) | (m == 0)
        if empty.any():
            cycles = np.where(empty, 0, cycles)
        return cycles

    def ideal_cycles(self, n: int, k: int, m: int) -> float:
        """Lower bound at 100% utilization: MACs / array size."""
        return n * k * m / self.num_macs

    def utilization(self, n: int, k: int, m: int) -> float:
        """Achieved fraction of peak for this GEMM shape."""
        actual = self.gemm_cycles(n, k, m)
        if actual == 0:
            return 1.0
        return self.ideal_cycles(n, k, m) / actual

    def report(self, n: int, k: int, m: int) -> Dict[str, float]:
        return {
            "cycles": float(self.gemm_cycles(n, k, m)),
            "ideal_cycles": self.ideal_cycles(n, k, m),
            "utilization": self.utilization(n, k, m),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MACArray({self.rows}x{self.cols})"
