"""Detailed per-window-step simulation mode.

The analytical engine (:mod:`repro.sim.engine`) models each layer as one
compute block overlapped with one memory block. This mode walks the
window schedule step by step with double buffering: while the PE
computes step *k*'s edges and matchings, the memory controller prefetches
step *k+1*'s missing nodes. The layer latency is

``load(step 1) + sum_k max(compute_k, load_{k+1}) + compute(last)``

plus the layer's bulk traffic (feature writebacks and similarity-matrix
transfers) serialized behind the pipeline when the platform does not
overlap memory.

Per-step work assignment:

- matching MACs: the step's matching count times the feature dim (one
  MAC per feature per pair), at the platform's matching utilization;
- edge MACs: the layer's aggregation work divided over edges, applied
  to the step's edge count;
- combination MACs: per-node work, charged when a node is first loaded
  (its update completes before eviction).

This finer model is validated against the analytical engine in
``tests/sim/test_detailed.py``: totals agree within a small factor and
all platform orderings are preserved.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..obs.metrics import get_metrics
from ..trace.events import PairTrace
from .config import BYTES_PER_VALUE
from .engine import AcceleratorSimulator
from .pe import MACArray

__all__ = ["DetailedSimulator"]


class DetailedSimulator(AcceleratorSimulator):
    """Per-window-step variant of the accelerator simulator.

    ``tile_model=True`` times the per-step matching GEMMs on a tiled
    :class:`MACArray` (shape-aware utilization: small windows strand
    array rows) instead of the flat MACs/units rate.
    """

    def __init__(
        self,
        config,
        energy_model=None,
        tile_model: bool = False,
        backend: str = "batched",
    ):
        super().__init__(config, energy_model, backend=backend)
        self.tile_model = tile_model
        rows = 128 if config.mac_units % 128 == 0 else config.mac_units
        self._array = MACArray(rows, max(1, config.mac_units // rows))

    def _simulate_batch_serial(self, batch_trace):
        """As the base simulator, but per-pair layer stats already embed
        the memory pipeline, so layers sum compute directly instead of
        re-overlapping with a batch-level memory term."""
        config = self.config
        from .engine import _SRAM_BYTES_PER_MAC, PlatformResult

        result = PlatformResult(config.name, config.frequency_hz)
        result.num_pairs = batch_trace.batch.batch_size
        for layer_index in range(batch_trace.num_layers):
            layer_cycles = 0.0
            layer_dram = 0.0
            layer_macs = 0.0
            emf_overhead_cycles = 0.0
            batch_working_set = sum(
                trace.pair.total_nodes for trace in batch_trace.pair_traces
            )
            layer_dram_read = 0.0
            layer_dram_write = 0.0
            for pair_trace in batch_trace.pair_traces:
                stats = self._simulate_pair_layer(
                    pair_trace, layer_index, batch_working_set
                )
                layer_cycles += stats["compute_cycles"]
                result.dram_read_bytes += stats["dram_read"]
                result.dram_write_bytes += stats["dram_write"]
                layer_dram_read += stats["dram_read"]
                layer_dram_write += stats["dram_write"]
                layer_dram += stats["dram_read"] + stats["dram_write"]
                result.macs += stats["macs"]
                layer_macs += stats["macs"]
                emf_overhead_cycles += stats["emf_cycles"]
            result.cycles += max(layer_cycles, emf_overhead_cycles)
            result.layer_stats.append(
                {
                    "cycles": max(layer_cycles, emf_overhead_cycles),
                    "dram_bytes": layer_dram,
                    "macs": layer_macs,
                }
            )
            registry = get_metrics()
            if registry is not None:
                platform = config.name
                registry.inc(
                    "sim.dram.read_bytes", layer_dram_read, platform=platform
                )
                registry.inc(
                    "sim.dram.write_bytes", layer_dram_write, platform=platform
                )
                registry.inc("sim.macs", layer_macs, platform=platform)
                registry.inc(
                    "sim.cycles",
                    max(layer_cycles, emf_overhead_cycles),
                    platform=platform,
                )
                registry.inc("sim.layers", 1, platform=platform)
        for pair_trace in batch_trace.pair_traces:
            readout_macs = pair_trace.readout_flops.total / 2.0
            result.macs += readout_macs
            result.cycles += readout_macs / config.mac_units
        result.sram_bytes = result.macs * _SRAM_BYTES_PER_MAC + result.dram_bytes
        result.energy_components = self.energy_model.energy_breakdown(
            result.dram_bytes,
            result.sram_bytes,
            result.macs,
            result.latency_seconds,
        )
        result.energy_joules = sum(result.energy_components.values())
        registry = get_metrics()
        if registry is not None:
            registry.inc("sim.pairs", result.num_pairs, platform=config.name)
            registry.inc("sim.batches", 1, platform=config.name)
        return result

    # ------------------------------------------------------------------
    def _simulate_batch_batched(self, batch_trace):
        """Batched detailed mode: per-pair step pipelines as array math.

        Each pair's window-step walk becomes vectorized expressions over
        its schedule-summary arrays (:meth:`_pair_layer_stats_batched`);
        the batch accumulation below replays the serial loop's exact
        interleaved ``+=`` order over those per-pair values, so every
        accumulated float matches ``backend="serial"`` bit for bit.
        """
        config = self.config
        from .engine import _SRAM_BYTES_PER_MAC, PlatformResult

        result = PlatformResult(config.name, config.frequency_hz)
        result.num_pairs = batch_trace.batch.batch_size
        traces = batch_trace.pair_traces
        for layer_index in range(batch_trace.num_layers):
            layer_cycles = 0.0
            layer_dram = 0.0
            layer_macs = 0.0
            emf_overhead_cycles = 0.0
            batch_working_set = sum(
                trace.pair.total_nodes for trace in traces
            )
            layer_dram_read = 0.0
            layer_dram_write = 0.0
            for pair_trace in traces:
                stats = self._pair_layer_stats_batched(
                    pair_trace, layer_index, batch_working_set
                )
                layer_cycles += stats["compute_cycles"]
                result.dram_read_bytes += stats["dram_read"]
                result.dram_write_bytes += stats["dram_write"]
                layer_dram_read += stats["dram_read"]
                layer_dram_write += stats["dram_write"]
                layer_dram += stats["dram_read"] + stats["dram_write"]
                result.macs += stats["macs"]
                layer_macs += stats["macs"]
                emf_overhead_cycles += stats["emf_cycles"]
            result.cycles += max(layer_cycles, emf_overhead_cycles)
            result.layer_stats.append(
                {
                    "cycles": max(layer_cycles, emf_overhead_cycles),
                    "dram_bytes": layer_dram,
                    "macs": layer_macs,
                }
            )
            registry = get_metrics()
            if registry is not None:
                platform = config.name
                registry.inc(
                    "sim.dram.read_bytes", layer_dram_read, platform=platform
                )
                registry.inc(
                    "sim.dram.write_bytes", layer_dram_write, platform=platform
                )
                registry.inc("sim.macs", layer_macs, platform=platform)
                registry.inc(
                    "sim.cycles",
                    max(layer_cycles, emf_overhead_cycles),
                    platform=platform,
                )
                registry.inc("sim.layers", 1, platform=platform)
        for pair_trace in traces:
            readout_macs = pair_trace.readout_flops.total / 2.0
            result.macs += readout_macs
            result.cycles += readout_macs / config.mac_units
        result.sram_bytes = result.macs * _SRAM_BYTES_PER_MAC + result.dram_bytes
        result.energy_components = self.energy_model.energy_breakdown(
            result.dram_bytes,
            result.sram_bytes,
            result.macs,
            result.latency_seconds,
        )
        result.energy_joules = sum(result.energy_components.values())
        registry = get_metrics()
        if registry is not None:
            registry.inc("sim.pairs", result.num_pairs, platform=config.name)
            registry.inc("sim.batches", 1, platform=config.name)
            registry.observe("sim.batch.pairs_per_call", len(traces))
        return result

    def _pair_layer_stats_batched(
        self,
        pair_trace: PairTrace,
        layer_index: int,
        batch_working_set: int,
    ) -> Dict[str, float]:
        """Array twin of :meth:`_simulate_pair_layer`.

        Every per-step quantity is the same expression evaluated over
        the schedule summary's int64 step arrays; the double-buffer
        pipeline reduction replays the serial fold. With a metrics
        registry active and ``tile_model`` on, the per-step matching
        GEMMs still go through :meth:`MACArray.gemm_cycles` one step at
        a time (in schedule order) so ``pe.gemm.*`` counters accumulate
        identically; metric-free runs use the closed-form batch variant.
        """
        config = self.config
        layer = pair_trace.layers[layer_index]
        pair = pair_trace.pair
        prepared = self._prepare_pair_layer_summary(pair_trace, layer_index)
        summary = prepared["summary"]
        match_fraction = prepared["match_fraction"]
        unique_matchings = prepared["unique_matchings"]
        emf_cycles = prepared["emf_cycles"]
        feature_dim = prepared["feature_dim"]
        node_bytes = feature_dim * BYTES_PER_VALUE

        total_edges = max(1, summary.total_edges)
        total_nodes = max(1, pair.total_nodes)
        agg_macs = layer.flops.counts["aggregate"] / 2.0
        combine_macs = layer.flops.counts["combine"] / 2.0
        macs_per_edge = agg_macs / total_edges
        macs_per_node = combine_macs / total_nodes
        match_units = config.mac_units * config.matching_utilization

        thrashing = self._thrashing(batch_working_set, feature_dim)
        loads = summary.occupancy if thrashing else summary.misses
        step_bytes = loads * node_bytes
        dram_read = 0.0 + float(step_bytes.sum())
        load_cycles = step_bytes / config.dram_bandwidth_bytes_per_cycle
        if layer.has_matching:
            step_match_macs = (
                summary.matchings * feature_dim
            ).astype(np.float64) * match_fraction
        else:
            step_match_macs = np.zeros(summary.num_steps, dtype=np.float64)

        match_cycles = step_match_macs / match_units
        if self.tile_model:
            tiled = step_match_macs != 0.0
            if tiled.any():
                registry = get_metrics()
                if registry is not None:
                    # pe.gemm.* counters are deterministic-prefixed:
                    # call per step, in order, exactly like serial.
                    values = match_cycles.tolist()
                    matchings = summary.matchings.tolist()
                    for k in np.flatnonzero(tiled).tolist():
                        side = max(1, int(round(matchings[k] ** 0.5)))
                        values[k] = (
                            self._array.gemm_cycles(side, feature_dim, side)
                            * match_fraction
                            / config.matching_utilization
                        )
                    match_cycles = np.array(values, dtype=np.float64)
                else:
                    sides = np.maximum(
                        1,
                        np.round(
                            np.power(
                                summary.matchings[tiled].astype(np.float64),
                                0.5,
                            )
                        ).astype(np.int64),
                    )
                    gemm = self._array.gemm_cycles_batch(
                        sides, feature_dim, sides
                    )
                    match_cycles[tiled] = (
                        gemm.astype(np.float64)
                        * match_fraction
                        / config.matching_utilization
                    )
        step_dense = match_cycles + (loads * macs_per_node) / config.mac_units
        step_agg_macs = summary.edges * macs_per_edge
        if config.shared_compute:
            step_cycles = step_dense + step_agg_macs / config.mac_units
        else:
            step_cycles = np.maximum(
                step_agg_macs / config.aggregation_lanes, step_dense
            )

        load_list = load_cycles.tolist()
        compute_list = step_cycles.tolist()
        pipeline = load_list[0] if load_list else 0.0
        num_steps = len(compute_list)
        for k in range(num_steps):
            next_load = load_list[k + 1] if k + 1 < num_steps else 0.0
            pipeline += max(compute_list[k], next_load)

        dram_write = pair.total_nodes * node_bytes
        sim_read, sim_write = self._similarity_traffic(
            pair_trace, layer_index, unique_matchings
        )
        dram_read += sim_read
        dram_write += sim_write
        bulk_bytes = dram_write + sim_read
        bulk_cycles = bulk_bytes / config.dram_bandwidth_bytes_per_cycle
        if config.overlaps_memory:
            total_cycles = max(pipeline, bulk_cycles)
        else:
            total_cycles = pipeline + bulk_cycles

        match_macs = (layer.flops.counts["match"] / 2.0) * match_fraction
        return {
            "compute_cycles": total_cycles,
            "dram_read": dram_read,
            "dram_write": dram_write,
            "macs": agg_macs + combine_macs + match_macs,
            "emf_cycles": emf_cycles,
        }

    def _simulate_pair_layer(
        self,
        pair_trace: PairTrace,
        layer_index: int,
        batch_working_set: Optional[int] = None,
    ) -> Dict[str, float]:
        config = self.config
        layer = pair_trace.layers[layer_index]
        pair = pair_trace.pair
        if batch_working_set is None:
            batch_working_set = pair.total_nodes
        prepared = self._prepare_pair_layer(pair_trace, layer_index)
        schedule = prepared["schedule"]
        match_fraction = prepared["match_fraction"]
        unique_matchings = prepared["unique_matchings"]
        emf_cycles = prepared["emf_cycles"]
        feature_dim = prepared["feature_dim"]
        node_bytes = feature_dim * BYTES_PER_VALUE

        # Per-unit work rates derived from the layer totals.
        total_edges = max(1, schedule.total_edges)
        total_nodes = max(1, pair.total_nodes)
        agg_macs = layer.flops.counts["aggregate"] / 2.0
        combine_macs = layer.flops.counts["combine"] / 2.0
        macs_per_edge = agg_macs / total_edges
        macs_per_node = combine_macs / total_nodes
        match_units = config.mac_units * config.matching_utilization

        # Walk the schedule with double buffering.
        load_cycles = []
        compute_cycles = []
        dram_read = 0.0
        thrashing = self._thrashing(batch_working_set, feature_dim)
        for step in schedule.steps:
            loads = len(step.input_nodes) if thrashing else step.misses
            step_bytes = loads * node_bytes
            dram_read += step_bytes
            load_cycles.append(
                step_bytes / config.dram_bandwidth_bytes_per_cycle
            )
            step_match_macs = (
                step.num_matchings * feature_dim * match_fraction
                if layer.has_matching
                else 0.0
            )
            if self.tile_model and step_match_macs:
                # Active side streams vertically, stationary side
                # horizontally (Fig. 14): a GEMM of roughly
                # sqrt(matchings) x f x sqrt(matchings), scaled by the
                # platform's sustained matching utilization.
                side = max(1, int(round(step.num_matchings**0.5)))
                match_cycles = self._array.gemm_cycles(
                    side, feature_dim, side
                ) * match_fraction / config.matching_utilization
            else:
                match_cycles = step_match_macs / match_units
            step_dense = (
                match_cycles
                + (loads * macs_per_node) / config.mac_units
            )
            step_agg_macs = step.num_edges * macs_per_edge
            if config.shared_compute:
                step_cycles = step_dense + step_agg_macs / config.mac_units
            else:
                step_cycles = max(
                    step_agg_macs / config.aggregation_lanes, step_dense
                )
            compute_cycles.append(step_cycles)

        pipeline = load_cycles[0] if load_cycles else 0.0
        for k in range(len(schedule.steps)):
            next_load = load_cycles[k + 1] if k + 1 < len(load_cycles) else 0.0
            pipeline += max(compute_cycles[k], next_load)

        # Bulk traffic outside the step pipeline.
        dram_write = pair.total_nodes * node_bytes
        sim_read, sim_write = self._similarity_traffic(
            pair_trace, layer_index, unique_matchings
        )
        dram_read += sim_read
        dram_write += sim_write
        bulk_bytes = dram_write + sim_read
        bulk_cycles = bulk_bytes / config.dram_bandwidth_bytes_per_cycle
        if config.overlaps_memory:
            total_cycles = max(pipeline, bulk_cycles)
        else:
            total_cycles = pipeline + bulk_cycles

        match_macs = (layer.flops.counts["match"] / 2.0) * match_fraction
        return {
            "compute_cycles": total_cycles,
            "dram_read": dram_read,
            "dram_write": dram_write,
            "macs": agg_macs + combine_macs + match_macs,
            "emf_cycles": emf_cycles,
        }
