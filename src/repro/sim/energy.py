"""Event-count energy model.

The paper estimates buffer power with CACTI and synthesizes logic on a
TSMC 14 nm process; absolute joules are testbed-specific, and Fig. 19
reports *normalized* energy. We therefore use a simple per-event model
with constants in the range the architecture literature reports for
14 nm-class designs:

- DRAM (HBM) access: ~7 pJ/byte
- On-chip SRAM access: ~0.6 pJ/byte
- fp32 MAC (including operand movement within the array): ~1.5 pJ
- Static (leakage + clock tree) power: ~1.5 W — charged for the whole
  runtime, so platforms that take longer burn proportionally more.

Normalized ratios depend on the *event counts* (which our simulators
measure) far more than on the absolute constants.
"""

from __future__ import annotations

__all__ = ["EnergyModel"]


class EnergyModel:
    """Converts simulator event counts into energy estimates."""

    def __init__(
        self,
        dram_pj_per_byte: float = 7.0,
        sram_pj_per_byte: float = 0.6,
        mac_pj: float = 1.5,
        static_watts: float = 1.5,
    ) -> None:
        if min(dram_pj_per_byte, sram_pj_per_byte, mac_pj, static_watts) < 0:
            raise ValueError("energy constants must be non-negative")
        self.dram_pj_per_byte = dram_pj_per_byte
        self.sram_pj_per_byte = sram_pj_per_byte
        self.mac_pj = mac_pj
        self.static_watts = static_watts

    def energy_breakdown(
        self,
        dram_bytes: float,
        sram_bytes: float,
        macs: float,
        runtime_seconds: float = 0.0,
    ) -> dict:
        """Per-component energy in joules: dram / sram / compute / static."""
        return {
            "dram": dram_bytes * self.dram_pj_per_byte * 1e-12,
            "sram": sram_bytes * self.sram_pj_per_byte * 1e-12,
            "compute": macs * self.mac_pj * 1e-12,
            "static": self.static_watts * runtime_seconds,
        }

    def energy_joules(
        self,
        dram_bytes: float,
        sram_bytes: float,
        macs: float,
        runtime_seconds: float = 0.0,
    ) -> float:
        """Total energy in joules for the given event counts."""
        return sum(
            self.energy_breakdown(
                dram_bytes, sram_bytes, macs, runtime_seconds
            ).values()
        )
