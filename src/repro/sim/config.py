"""Hardware configurations (Table III).

``HardwareConfig`` captures the knobs the cycle model needs: compute
array shape and split, buffer sizes, DRAM bandwidth, and which of
CEGMA's two mechanisms (EMF, CGC) are enabled. Factory functions build
the Table III platforms plus the two ablation variants of Section V-C.
"""

from __future__ import annotations

from typing import Optional

from ..emf.hardware import EMFHardwareModel

__all__ = [
    "HardwareConfig",
    "cegma_config",
    "cegma_emf_only_config",
    "cegma_cgc_only_config",
    "hygcn_config",
    "awbgcn_config",
    "BYTES_PER_VALUE",
]

# The accelerator operates on fp32 features, as do HyGCN and AWB-GCN.
BYTES_PER_VALUE = 4


class HardwareConfig:
    """One accelerator platform's hardware parameters.

    Parameters
    ----------
    name:
        Platform label used in result tables.
    mac_units:
        MACs available for dense work (combination + matching).
    aggregation_lanes:
        MACs available for sparse aggregation. For homogeneous designs
        (AWB-GCN, CEGMA) this equals ``mac_units`` — aggregation and
        dense work share the array. HyGCN's heterogeneous design gives
        aggregation its own (smaller) SIMD cores; its systolic array
        cannot help with aggregation, which is the throughput-imbalance
        limitation Section VI discusses.
    shared_compute:
        True when aggregation shares ``mac_units`` (homogeneous array);
        False when aggregation runs on separate lanes, concurrently.
    input_buffer_bytes:
        On-chip input node-feature buffer (the locality-critical buffer;
        128 KB on every platform, split T/Q on CEGMA).
    dram_bandwidth_bytes_per_cycle:
        HBM bandwidth per cycle (256 GB/s at 1 GHz = 256 B/cycle).
    frequency_hz:
        Clock frequency.
    emf:
        The EMF hardware model, or None when the platform lacks it.
    cgc_enabled:
        Whether the joint coordinated window drives the schedule; when
        False the platform uses the baseline single-window dataflow.
    matching_buffer_bytes:
        On-chip storage available for caching unique matching results
        (type-b reuse, GMN-Li); drawn from the "Others" SRAM pool.
    matching_utilization:
        PE-array utilization on the dense all-to-all matching workload.
        CEGMA's MAC array is purpose-built for the matching dataflow
        (active features streamed vertically, stationary features
        horizontally — Section IV-D) and sustains full utilization. The
        baseline GNN accelerators execute matching through dataflows
        designed for sparse intra-graph aggregation/combination (AWB-GCN
        column-wise SpMM balancing, HyGCN's weight-stationary combiner),
        which the paper identifies as a structural mismatch (Section VI:
        "the dense comparison could potentially congest the combination
        engine"); their sustained matching utilization is accordingly a
        small fraction of peak. The default values are calibrated so the
        end-to-end speedup ratios land in the paper's reported range.
    batch_interleaved:
        Baseline accelerators process the batched global adjacency
        stage-by-stage across all 32 pairs, so the 128 KB input buffer
        thrashes across the whole batch working set: Fig. 4 measures
        that under this regime "most of the revisits are missed". When
        True, every window reference is charged as a miss. CEGMA (and
        its ablations) schedule pair-coherently via per-pair task
        queues, so their windows retain inter-step reuse.
    overlaps_memory:
        Whether DRAM traffic overlaps with compute
        (``max(compute, memory)`` vs. ``compute + memory``). CGC's
        stage fusion is precisely what enables hiding matching-stage
        memory behind embedding compute; staged baselines serialize the
        stages ("Hiding its DRAM accesses into node embedding",
        Section V-C).
    """

    def __init__(
        self,
        name: str,
        mac_units: int,
        aggregation_lanes: int,
        shared_compute: bool,
        input_buffer_bytes: int,
        dram_bandwidth_bytes_per_cycle: float,
        frequency_hz: float = 1e9,
        emf: Optional[EMFHardwareModel] = None,
        cgc_enabled: bool = False,
        matching_buffer_bytes: int = 0,
        matching_utilization: float = 1.0,
        overlaps_memory: Optional[bool] = None,
        batch_interleaved: bool = False,
    ) -> None:
        if mac_units < 1 or aggregation_lanes < 1:
            raise ValueError("compute resources must be positive")
        if input_buffer_bytes < BYTES_PER_VALUE:
            raise ValueError("input buffer too small")
        if not 0.0 < matching_utilization <= 1.0:
            raise ValueError("matching_utilization must be in (0, 1]")
        self.name = name
        self.mac_units = mac_units
        self.aggregation_lanes = aggregation_lanes
        self.shared_compute = shared_compute
        self.input_buffer_bytes = input_buffer_bytes
        self.dram_bandwidth_bytes_per_cycle = dram_bandwidth_bytes_per_cycle
        self.frequency_hz = frequency_hz
        self.emf = emf
        self.cgc_enabled = cgc_enabled
        self.matching_buffer_bytes = matching_buffer_bytes
        self.matching_utilization = matching_utilization
        self.batch_interleaved = batch_interleaved
        # Memory overlap comes with CGC's stage fusion unless overridden.
        self.overlaps_memory = (
            cgc_enabled if overlaps_memory is None else overlaps_memory
        )

    @property
    def emf_enabled(self) -> bool:
        return self.emf is not None

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-serializable representation (for config files/sweeps)."""
        return {
            "name": self.name,
            "mac_units": self.mac_units,
            "aggregation_lanes": self.aggregation_lanes,
            "shared_compute": self.shared_compute,
            "input_buffer_bytes": self.input_buffer_bytes,
            "dram_bandwidth_bytes_per_cycle": self.dram_bandwidth_bytes_per_cycle,
            "frequency_hz": self.frequency_hz,
            "emf": None
            if self.emf is None
            else {
                "hash_parallelism": self.emf.hash_parallelism,
                "filter_throughput": self.emf.filter_throughput,
                "num_comparators": self.emf.num_comparators,
                "tag_buffer_entries": self.emf.tag_buffer_entries,
            },
            "cgc_enabled": self.cgc_enabled,
            "matching_buffer_bytes": self.matching_buffer_bytes,
            "matching_utilization": self.matching_utilization,
            "overlaps_memory": self.overlaps_memory,
            "batch_interleaved": self.batch_interleaved,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "HardwareConfig":
        """Inverse of :meth:`to_dict`."""
        payload = dict(payload)
        emf_payload = payload.pop("emf", None)
        emf = None if emf_payload is None else EMFHardwareModel(**emf_payload)
        return cls(emf=emf, **payload)

    def __eq__(self, other: object) -> bool:
        """Value equality over every simulated parameter.

        Compares the :meth:`to_dict` payloads, so two configs are equal
        exactly when they would simulate identically (the EMF hardware
        model is compared field-by-field through its serialized form).
        """
        if not isinstance(other, HardwareConfig):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    __hash__ = None  # mutable value type: not hashable

    def buffer_capacity_nodes(self, feature_dim: int) -> int:
        """How many node-feature vectors the input buffer holds."""
        node_bytes = max(1, feature_dim) * BYTES_PER_VALUE
        return max(2, self.input_buffer_bytes // node_bytes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"HardwareConfig({self.name!r}, macs={self.mac_units}, "
            f"emf={self.emf_enabled}, cgc={self.cgc_enabled})"
        )


def cegma_config() -> HardwareConfig:
    """Full CEGMA (Table III): 128x32 MAC array, EMF + CGC, HBM 1.0."""
    return HardwareConfig(
        name="CEGMA",
        mac_units=128 * 32,
        aggregation_lanes=128 * 32,
        shared_compute=True,
        input_buffer_bytes=128 * 1024,
        dram_bandwidth_bytes_per_cycle=256.0,
        emf=EMFHardwareModel(),
        cgc_enabled=True,
        matching_buffer_bytes=int(4 * 1024 * 1024),
    )


def cegma_emf_only_config() -> HardwareConfig:
    """Ablation CEGMA-EMF: filter enabled, baseline dataflow (Fig. 21).

    Without CGC the stages stay serialized, so memory does not overlap
    compute (``overlaps_memory`` follows ``cgc_enabled``)."""
    return HardwareConfig(
        name="CEGMA-EMF",
        mac_units=128 * 32,
        aggregation_lanes=128 * 32,
        shared_compute=True,
        input_buffer_bytes=128 * 1024,
        dram_bandwidth_bytes_per_cycle=256.0,
        emf=EMFHardwareModel(),
        cgc_enabled=False,
        matching_buffer_bytes=int(4 * 1024 * 1024),
    )


def cegma_cgc_only_config() -> HardwareConfig:
    """Ablation CEGMA-CGC: coordinated window, no filtering (Fig. 21)."""
    return HardwareConfig(
        name="CEGMA-CGC",
        mac_units=128 * 32,
        aggregation_lanes=128 * 32,
        shared_compute=True,
        input_buffer_bytes=128 * 1024,
        dram_bandwidth_bytes_per_cycle=256.0,
        emf=None,
        cgc_enabled=True,
        matching_buffer_bytes=int(4 * 1024 * 1024),
    )


def hygcn_config() -> HardwareConfig:
    """HyGCN: heterogeneous — 32 SIMD16 aggregation cores plus a 32x128
    systolic combination array. Matching runs on the systolic array while
    the aggregation cores idle (the imbalance the paper identifies)."""
    return HardwareConfig(
        name="HyGCN",
        mac_units=32 * 128,
        aggregation_lanes=32 * 16,
        shared_compute=False,
        input_buffer_bytes=128 * 1024,
        dram_bandwidth_bytes_per_cycle=256.0,
        matching_utilization=0.05,
        batch_interleaved=True,
    )


def awbgcn_config() -> HardwareConfig:
    """AWB-GCN: 4096 homogeneous PEs; everything shares the array."""
    return HardwareConfig(
        name="AWB-GCN",
        mac_units=4096,
        aggregation_lanes=4096,
        shared_compute=True,
        input_buffer_bytes=128 * 1024,
        dram_bandwidth_bytes_per_cycle=256.0,
        matching_utilization=0.06,
        batch_interleaved=True,
    )
