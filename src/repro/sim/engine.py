"""Cycle-level accelerator simulator.

One simulator class serves CEGMA, its two ablation variants, HyGCN, and
AWB-GCN: the :class:`~repro.sim.config.HardwareConfig` selects the
dataflow (baseline single window vs. CGC's coordinated joint window),
whether the EMF filters redundant matchings, and the compute-array split.

Per GMN layer the simulator:

1. runs the EMF over the layer's node features (when enabled) to obtain
   the unique-node sets and the reduced matching workload;
2. builds the window schedule for the layer, whose input-buffer misses
   determine DRAM feature reads;
3. accounts MACs (aggregation, combination, matching — matching scaled
   by the EMF's unique fraction), DRAM traffic (feature loads, output
   writes, similarity-matrix traffic), and takes
   ``max(compute_cycles, memory_cycles)`` as the layer latency
   (double-buffered overlap), plus the EMF pipeline overhead.

Similarity-matrix traffic follows Section IV-D's two usage types:
type (a) models (SimGNN, GraphSim) write the *full* matrix back to DRAM
(unique results are broadcast to duplicate positions) and later read it;
type (b) models (GMN-Li) consume matching results within the layer, so
CEGMA keeps the unique results on-chip when they fit the matching
buffer. Platforms without EMF/CGC always write and read the full matrix
(HyGCN computes similarity in its combiner and "writes back the matching
results to memory").
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple
from weakref import WeakKeyDictionary

import numpy as np

from ..cgc.summary import schedule_summary_for
from ..cgc.window import (
    coordinated_window_schedule,
    single_window_schedule,
)
from ..obs.metrics import get_metrics
from ..obs.tracing import span
from ..trace.events import PairTrace
from ..trace.profiler import BatchTrace
from .config import BYTES_PER_VALUE, HardwareConfig
from .energy import EnergyModel

__all__ = [
    "PlatformResult",
    "AcceleratorSimulator",
    "RESULT_SCHEMA_VERSION",
    "SIM_BACKENDS",
]

#: Selectable simulation backends. "batched" (default) runs one numpy
#: program over all pairs per layer; "serial" is the original per-pair
#: reference loop, kept as the differential baseline. The serial backend
#: is deprecated as a production path and will become validation-only in
#: the next release cycle — select it explicitly where needed.
SIM_BACKENDS = ("batched", "serial")

# Version of the PlatformResult.to_dict JSON layout; bump on any field
# change so persisted artifacts are never silently misread.
RESULT_SCHEMA_VERSION = 1

# Window schedules depend only on (pair, scheme, capacity, active sets),
# not on the platform, so simulating several platforms/variants over the
# same trace rebuilds identical schedules. Memoize them per pair; the
# weak keying drops a pair's schedules as soon as the trace is released.
_SCHEDULE_MEMO: "WeakKeyDictionary" = WeakKeyDictionary()
_SCHEDULE_MEMO_PER_PAIR = 64


def _window_schedule(pair, scheme, capacity, active_targets, active_queries):
    key = (
        scheme,
        capacity,
        None if active_targets is None else tuple(active_targets),
        None if active_queries is None else tuple(active_queries),
    )
    per_pair = _SCHEDULE_MEMO.get(pair)
    if per_pair is None:
        per_pair = {}
        _SCHEDULE_MEMO[pair] = per_pair
    schedule = per_pair.get(key)
    if schedule is None:
        builder = (
            coordinated_window_schedule
            if scheme == "coordinated"
            else single_window_schedule
        )
        schedule = builder(pair, capacity, active_targets, active_queries)
        if len(per_pair) >= _SCHEDULE_MEMO_PER_PAIR:
            per_pair.clear()
        per_pair[key] = schedule
    return schedule

# Amortized SRAM operand traffic per MAC after array-level reuse, in
# bytes; a second-order term in the energy model.
_SRAM_BYTES_PER_MAC = 0.5


class PlatformResult:
    """Aggregated simulation outcome for one platform over a workload."""

    __slots__ = (
        "platform",
        "cycles",
        "dram_read_bytes",
        "dram_write_bytes",
        "macs",
        "sram_bytes",
        "num_pairs",
        "frequency_hz",
        "energy_joules",
        "energy_components",
        "layer_stats",
    )

    def __init__(self, platform: str, frequency_hz: float) -> None:
        self.platform = platform
        self.frequency_hz = frequency_hz
        self.cycles = 0.0
        self.dram_read_bytes = 0.0
        self.dram_write_bytes = 0.0
        self.macs = 0.0
        self.sram_bytes = 0.0
        self.num_pairs = 0
        self.energy_joules = 0.0
        # Per-component energy: dram / sram / compute / static joules.
        self.energy_components: Dict[str, float] = {}
        # Per-GMN-layer breakdown: list of dicts with "cycles",
        # "dram_bytes", "macs" (readout work is not a layer and is
        # excluded). Populated by the simulators; summed on merge.
        self.layer_stats: List[Dict[str, float]] = []

    # ------------------------------------------------------------------
    @property
    def dram_bytes(self) -> float:
        return self.dram_read_bytes + self.dram_write_bytes

    @property
    def latency_seconds(self) -> float:
        return self.cycles / self.frequency_hz

    @property
    def latency_per_pair(self) -> float:
        return self.latency_seconds / self.num_pairs if self.num_pairs else 0.0

    @property
    def throughput_pairs_per_second(self) -> float:
        latency = self.latency_seconds
        return self.num_pairs / latency if latency > 0 else 0.0

    def merge(self, other: "PlatformResult") -> None:
        """Accumulate another result (e.g. the next batch) in place."""
        if other.platform != self.platform:
            raise ValueError("cannot merge results from different platforms")
        self.cycles += other.cycles
        self.dram_read_bytes += other.dram_read_bytes
        self.dram_write_bytes += other.dram_write_bytes
        self.macs += other.macs
        self.sram_bytes += other.sram_bytes
        self.num_pairs += other.num_pairs
        self.energy_joules += other.energy_joules
        for key, value in other.energy_components.items():
            self.energy_components[key] = (
                self.energy_components.get(key, 0.0) + value
            )
        for index, stats in enumerate(other.layer_stats):
            if index < len(self.layer_stats):
                for key, value in stats.items():
                    self.layer_stats[index][key] += value
            else:
                self.layer_stats.append(dict(stats))

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable representation (schema-versioned).

        Round-trips through :meth:`from_dict`, including merged results:
        every accumulated field is stored, derived metrics (latency,
        throughput) are recomputed on load.
        """
        return {
            "schema_version": RESULT_SCHEMA_VERSION,
            "platform": self.platform,
            "frequency_hz": self.frequency_hz,
            "cycles": self.cycles,
            "dram_read_bytes": self.dram_read_bytes,
            "dram_write_bytes": self.dram_write_bytes,
            "macs": self.macs,
            "sram_bytes": self.sram_bytes,
            "num_pairs": self.num_pairs,
            "energy_joules": self.energy_joules,
            "energy_components": dict(self.energy_components),
            "layer_stats": [dict(stats) for stats in self.layer_stats],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "PlatformResult":
        """Inverse of :meth:`to_dict`; rejects unknown schema versions."""
        version = payload.get("schema_version")
        if version != RESULT_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported PlatformResult schema version {version!r} "
                f"(expected {RESULT_SCHEMA_VERSION})"
            )
        result = cls(str(payload["platform"]), float(payload["frequency_hz"]))
        result.cycles = float(payload["cycles"])
        result.dram_read_bytes = float(payload["dram_read_bytes"])
        result.dram_write_bytes = float(payload["dram_write_bytes"])
        result.macs = float(payload["macs"])
        result.sram_bytes = float(payload["sram_bytes"])
        result.num_pairs = int(payload["num_pairs"])
        result.energy_joules = float(payload["energy_joules"])
        result.energy_components = {
            str(key): float(value)
            for key, value in payload["energy_components"].items()
        }
        result.layer_stats = [
            {str(key): float(value) for key, value in stats.items()}
            for stats in payload["layer_stats"]
        ]
        return result

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PlatformResult({self.platform!r}, pairs={self.num_pairs}, "
            f"latency={self.latency_seconds:.6f}s, "
            f"dram={self.dram_bytes / 1e6:.2f}MB)"
        )


def _left_fold(values) -> float:
    """Serial-order float accumulation: ``((0.0 + v0) + v1) + ...``.

    The batched backend computes per-pair values as one numpy program
    but must reduce them exactly as the serial loop's ``+=`` does —
    a left fold, not numpy's pairwise ``sum`` — for bit-identity.
    """
    total = 0.0
    for value in values:
        total += value
    return total


class AcceleratorSimulator:
    """Trace-driven cycle simulator parameterized by a HardwareConfig.

    ``backend`` selects the per-batch strategy: ``"batched"`` (default)
    stacks all pairs of a batch into flat arrays and evaluates each
    layer as one numpy program; ``"serial"`` is the original per-pair
    Python loop. Both produce bit-identical results and metrics — the
    ``sim.batched_vs_serial`` validation check enforces this.

    .. deprecated::
        The ``"serial"`` backend is retained for one release cycle as
        the differential reference and for old callers; new code should
        not select it.
    """

    def __init__(
        self,
        config: HardwareConfig,
        energy_model: Optional[EnergyModel] = None,
        backend: str = "batched",
    ) -> None:
        if backend not in SIM_BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; known: {SIM_BACKENDS}"
            )
        self.config = config
        self.energy_model = energy_model or EnergyModel()
        self.backend = backend
        # Per-simulator memo for EMF overhead reports: the report is a
        # pure function of (total_nodes, feature_dim), shared by every
        # pair with the same shape.
        self._emf_report_memo: Dict[Tuple[int, int], float] = {}

    # ------------------------------------------------------------------
    def simulate_batch(self, batch_trace: BatchTrace) -> PlatformResult:
        """Simulate one batch of graph pairs end to end."""
        if self.backend == "serial":
            return self._simulate_batch_serial(batch_trace)
        return self._simulate_batch_batched(batch_trace)

    def _simulate_batch_serial(self, batch_trace: BatchTrace) -> PlatformResult:
        """Reference per-pair loop (``backend="serial"``)."""
        config = self.config
        result = PlatformResult(config.name, config.frequency_hz)
        result.num_pairs = batch_trace.batch.batch_size

        num_layers = batch_trace.num_layers
        for layer_index in range(num_layers):
            layer_compute_cycles = 0.0
            layer_dram_read = 0.0
            layer_dram_write = 0.0
            layer_macs = 0.0
            emf_overhead_cycles = 0.0

            batch_working_set = sum(
                trace.pair.total_nodes for trace in batch_trace.pair_traces
            )
            for pair_trace in batch_trace.pair_traces:
                stats = self._simulate_pair_layer(
                    pair_trace, layer_index, batch_working_set
                )
                layer_compute_cycles += stats["compute_cycles"]
                layer_dram_read += stats["dram_read"]
                layer_dram_write += stats["dram_write"]
                layer_macs += stats["macs"]
                emf_overhead_cycles += stats["emf_cycles"]

            memory_cycles = (
                layer_dram_read + layer_dram_write
            ) / config.dram_bandwidth_bytes_per_cycle
            if config.overlaps_memory:
                layer_cycles = max(layer_compute_cycles, memory_cycles)
            else:
                layer_cycles = layer_compute_cycles + memory_cycles
            # EMF hashing/filtering is pipelined with the PE (Fig. 11's
            # producer-consumer design); the paper measures the overhead
            # as ignorable, so it only surfaces when it exceeds the
            # layer's own critical path.
            result.cycles += max(layer_cycles, emf_overhead_cycles)
            result.dram_read_bytes += layer_dram_read
            result.dram_write_bytes += layer_dram_write
            result.macs += layer_macs
            result.layer_stats.append(
                {
                    "cycles": max(layer_cycles, emf_overhead_cycles),
                    "dram_bytes": layer_dram_read + layer_dram_write,
                    "macs": layer_macs,
                }
            )
            registry = get_metrics()
            if registry is not None:
                platform = config.name
                registry.inc(
                    "sim.dram.read_bytes", layer_dram_read, platform=platform
                )
                registry.inc(
                    "sim.dram.write_bytes", layer_dram_write, platform=platform
                )
                registry.inc("sim.macs", layer_macs, platform=platform)
                registry.inc(
                    "sim.cycles",
                    max(layer_cycles, emf_overhead_cycles),
                    platform=platform,
                )
                # PE busy = cycles the compute array is doing MACs; the
                # rest of the layer's critical path is memory stall.
                busy = min(layer_compute_cycles, layer_cycles)
                registry.inc("sim.pe.busy_cycles", busy, platform=platform)
                registry.inc(
                    "sim.pe.stall_cycles",
                    max(layer_cycles, emf_overhead_cycles) - busy,
                    platform=platform,
                )
                registry.inc(
                    "sim.memory_cycles", memory_cycles, platform=platform
                )
                registry.inc("sim.layers", 1, platform=platform)

        # Readout / prediction heads (identical across platforms).
        for pair_trace in batch_trace.pair_traces:
            readout_macs = pair_trace.readout_flops.total / 2.0
            result.macs += readout_macs
            result.cycles += readout_macs / config.mac_units

        result.sram_bytes = (
            result.macs * _SRAM_BYTES_PER_MAC + result.dram_bytes
        )
        result.energy_components = self.energy_model.energy_breakdown(
            result.dram_bytes,
            result.sram_bytes,
            result.macs,
            result.latency_seconds,
        )
        result.energy_joules = sum(result.energy_components.values())
        registry = get_metrics()
        if registry is not None:
            registry.inc(
                "sim.pairs", result.num_pairs, platform=config.name
            )
            registry.inc("sim.batches", 1, platform=config.name)
        return result

    # ------------------------------------------------------------------
    def _simulate_batch_batched(self, batch_trace: BatchTrace) -> PlatformResult:
        """One numpy program over all pairs per layer.

        Per-pair workload preparation still iterates (plans and window
        summaries are per-pair objects, heavily memoized), but all layer
        arithmetic — feature loads, DRAM traffic, MAC/cycle accounting —
        runs elementwise over stacked per-pair arrays, preserving the
        serial code's exact operation order and association so every
        float is bit-identical to ``backend="serial"``.
        """
        config = self.config
        result = PlatformResult(config.name, config.frequency_hz)
        result.num_pairs = batch_trace.batch.batch_size
        traces = batch_trace.pair_traces
        registry = get_metrics()

        num_layers = batch_trace.num_layers
        for layer_index in range(num_layers):
            batch_working_set = sum(
                trace.pair.total_nodes for trace in traces
            )
            stats = self._simulate_layer_batched(
                traces, layer_index, batch_working_set
            )
            layer_compute_cycles = _left_fold(stats["compute_cycles"])
            layer_dram_read = _left_fold(stats["dram_read"])
            layer_dram_write = _left_fold(stats["dram_write"])
            layer_macs = _left_fold(stats["macs"])
            emf_overhead_cycles = _left_fold(stats["emf_cycles"])

            memory_cycles = (
                layer_dram_read + layer_dram_write
            ) / config.dram_bandwidth_bytes_per_cycle
            if config.overlaps_memory:
                layer_cycles = max(layer_compute_cycles, memory_cycles)
            else:
                layer_cycles = layer_compute_cycles + memory_cycles
            result.cycles += max(layer_cycles, emf_overhead_cycles)
            result.dram_read_bytes += layer_dram_read
            result.dram_write_bytes += layer_dram_write
            result.macs += layer_macs
            result.layer_stats.append(
                {
                    "cycles": max(layer_cycles, emf_overhead_cycles),
                    "dram_bytes": layer_dram_read + layer_dram_write,
                    "macs": layer_macs,
                }
            )
            if registry is not None:
                platform = config.name
                registry.inc(
                    "sim.dram.read_bytes", layer_dram_read, platform=platform
                )
                registry.inc(
                    "sim.dram.write_bytes", layer_dram_write, platform=platform
                )
                registry.inc("sim.macs", layer_macs, platform=platform)
                registry.inc(
                    "sim.cycles",
                    max(layer_cycles, emf_overhead_cycles),
                    platform=platform,
                )
                busy = min(layer_compute_cycles, layer_cycles)
                registry.inc("sim.pe.busy_cycles", busy, platform=platform)
                registry.inc(
                    "sim.pe.stall_cycles",
                    max(layer_cycles, emf_overhead_cycles) - busy,
                    platform=platform,
                )
                registry.inc(
                    "sim.memory_cycles", memory_cycles, platform=platform
                )
                registry.inc("sim.layers", 1, platform=platform)

        for pair_trace in traces:
            readout_macs = pair_trace.readout_flops.total / 2.0
            result.macs += readout_macs
            result.cycles += readout_macs / config.mac_units

        result.sram_bytes = (
            result.macs * _SRAM_BYTES_PER_MAC + result.dram_bytes
        )
        result.energy_components = self.energy_model.energy_breakdown(
            result.dram_bytes,
            result.sram_bytes,
            result.macs,
            result.latency_seconds,
        )
        result.energy_joules = sum(result.energy_components.values())
        registry = get_metrics()
        if registry is not None:
            registry.inc(
                "sim.pairs", result.num_pairs, platform=config.name
            )
            registry.inc("sim.batches", 1, platform=config.name)
            registry.observe("sim.batch.pairs_per_call", len(traces))
        return result

    def _simulate_layer_batched(
        self,
        traces: Sequence[PairTrace],
        layer_index: int,
        batch_working_set: int,
    ) -> Dict[str, list]:
        """Per-pair layer stats for the whole batch, as parallel lists.

        The numpy twin of :meth:`_simulate_pair_layer`: every formula is
        the same expression, evaluated elementwise over all pairs at
        once. Integer inputs (< 2^53) convert to float64 exactly and the
        elementwise IEEE operations match the scalar path's, so each
        per-pair value is bit-identical to its serial counterpart.
        """
        config = self.config
        prepared = [
            self._prepare_pair_layer_summary(trace, layer_index)
            for trace in traces
        ]
        summaries = [p["summary"] for p in prepared]
        feature_dims = [p["feature_dim"] for p in prepared]

        feature_loads = np.array(
            [
                summary.total_occupancy
                if self._thrashing(batch_working_set, feature_dims[i])
                else summary.total_misses
                for i, summary in enumerate(summaries)
            ],
            dtype=np.float64,
        )
        node_bytes = np.array(
            [dim * BYTES_PER_VALUE for dim in feature_dims], dtype=np.float64
        )
        total_nodes = np.array(
            [trace.pair.total_nodes for trace in traces], dtype=np.float64
        )
        sim_traffic = np.array(
            [
                self._similarity_traffic(
                    trace, layer_index, prepared[i]["unique_matchings"]
                )
                for i, trace in enumerate(traces)
            ],
            dtype=np.float64,
        ).reshape(len(traces), 2)
        dram_read = feature_loads * node_bytes + sim_traffic[:, 0]
        dram_write = total_nodes * node_bytes + sim_traffic[:, 1]

        counts = [trace.layers[layer_index].flops.counts for trace in traces]
        agg_macs = (
            np.array([c["aggregate"] for c in counts], dtype=np.float64) / 2.0
        )
        combine_macs = (
            np.array([c["combine"] for c in counts], dtype=np.float64) / 2.0
        )
        match_fraction = np.array(
            [p["match_fraction"] for p in prepared], dtype=np.float64
        )
        match_macs = (
            np.array([c["match"] for c in counts], dtype=np.float64) / 2.0
        ) * match_fraction
        match_cycles = match_macs / (
            config.mac_units * config.matching_utilization
        )
        combine_cycles = combine_macs / config.mac_units
        if config.shared_compute:
            compute_cycles = (
                agg_macs / config.mac_units + combine_cycles + match_cycles
            )
        else:
            compute_cycles = np.maximum(
                agg_macs / config.aggregation_lanes,
                combine_cycles + match_cycles,
            )

        return {
            "compute_cycles": compute_cycles.tolist(),
            "dram_read": dram_read.tolist(),
            "dram_write": dram_write.tolist(),
            "macs": (agg_macs + (combine_macs + match_macs)).tolist(),
            "emf_cycles": [p["emf_cycles"] for p in prepared],
        }

    def _prepare_pair_layer_summary(
        self, pair_trace: PairTrace, layer_index: int
    ) -> Dict[str, object]:
        """Summary-form twin of :meth:`_prepare_pair_layer`.

        Returns a :class:`~repro.cgc.summary.ScheduleSummary` instead of
        a full :class:`~repro.cgc.window.WindowSchedule`. When a metrics
        registry is active, the full matching plan is still computed and
        the schedule store is bypassed, so ``emf.*`` / ``cgc.*``
        counters are emitted exactly as the serial path emits them; the
        sidecar fast path is metric-free runs only.
        """
        config = self.config
        layer = pair_trace.layers[layer_index]
        pair = pair_trace.pair
        feature_dim = max(1, layer.target_features.shape[1])
        registry = get_metrics()

        active_targets = None
        active_queries = None
        match_fraction = 1.0
        unique_matchings = layer.num_matching_pairs
        emf_cycles = 0.0
        plan = None
        if config.emf_enabled and layer.has_matching:
            plan_summary = layer._plan_summary
            if registry is not None or plan_summary is None:
                plan = layer.matching_plan()
                if plan_summary is None:
                    plan_summary = plan.summary()
                    layer._plan_summary = plan_summary
            active_targets = plan_summary.target_actives
            active_queries = plan_summary.query_actives
            match_fraction = plan_summary.remaining_fraction
            unique_matchings = plan_summary.unique_matchings
            emf_cycles = self._emf_cycles_for(pair.total_nodes, feature_dim)

        capacity = config.buffer_capacity_nodes(feature_dim)
        store = None if registry is not None else pair_trace._sched_store
        summary = schedule_summary_for(
            pair,
            "coordinated" if config.cgc_enabled else "single",
            capacity,
            active_targets,
            active_queries,
            store,
        )
        if registry is not None:
            self._record_layer_metrics_summary(
                registry, config, plan, emf_cycles, summary
            )
        return {
            "summary": summary,
            "match_fraction": match_fraction,
            "unique_matchings": unique_matchings,
            "emf_cycles": emf_cycles,
            "feature_dim": feature_dim,
        }

    def _emf_cycles_for(self, total_nodes: int, feature_dim: int) -> float:
        """Memoized ``config.emf.per_graph_report(...).total_cycles``."""
        key = (total_nodes, feature_dim)
        cycles = self._emf_report_memo.get(key)
        if cycles is None:
            report = self.config.emf.per_graph_report(
                total_nodes, feature_dim, 1
            )
            cycles = report.total_cycles
            self._emf_report_memo[key] = cycles
        return cycles

    @staticmethod
    def _record_layer_metrics_summary(
        registry, config, plan, emf_cycles, summary
    ) -> None:
        """Summary-form twin of :meth:`_record_layer_metrics`.

        Emits the identical per-key increment sequence from a
        :class:`~repro.cgc.summary.ScheduleSummary`, so per-key float
        accumulation in the registry is bit-identical to the serial
        path's.
        """
        platform = config.name
        if plan is not None:
            registry.inc(
                "emf.matchings.total", plan.total_matchings, platform=platform
            )
            registry.inc(
                "emf.matchings.unique",
                plan.unique_matchings,
                platform=platform,
            )
            registry.inc(
                "emf.matchings.skipped",
                plan.redundant_matchings,
                platform=platform,
            )
            target, query = plan.target_filter, plan.query_filter
            registry.inc(
                "emf.rows.total", target.num_nodes, platform=platform
            )
            registry.inc(
                "emf.rows.skipped", target.num_duplicates, platform=platform
            )
            registry.inc(
                "emf.cols.total", query.num_nodes, platform=platform
            )
            registry.inc(
                "emf.cols.skipped", query.num_duplicates, platform=platform
            )
            registry.inc(
                "emf.overhead_cycles", emf_cycles, platform=platform
            )
        registry.inc(
            "cgc.window.advances", summary.num_steps, platform=platform
        )
        registry.inc(
            "cgc.window.misses", summary.total_misses, platform=platform
        )
        cleanup_steps = 0
        revisited = 0
        occupancy = summary.occupancy.tolist()
        misses = summary.misses.tolist()
        is_cleanup = summary.is_cleanup.tolist()
        for index, occ in enumerate(occupancy):
            registry.observe(
                "cgc.window.occupancy", occ, platform=platform
            )
            if is_cleanup[index]:
                cleanup_steps += 1
                revisited += misses[index]
        registry.inc(
            "cgc.cleanup.steps", cleanup_steps, platform=platform
        )
        registry.inc(
            "cgc.revisits.nodes", revisited, platform=platform
        )

    def simulate_batches(
        self, batch_traces: Sequence[BatchTrace]
    ) -> PlatformResult:
        """Simulate a sequence of batches and accumulate the totals."""
        if not batch_traces:
            raise ValueError("need at least one batch")
        with span("sim.batch", platform=self.config.name, batch=0):
            total = self.simulate_batch(batch_traces[0])
        for index, batch_trace in enumerate(batch_traces[1:], start=1):
            with span("sim.batch", platform=self.config.name, batch=index):
                total.merge(self.simulate_batch(batch_trace))
        return total

    # ------------------------------------------------------------------
    def _prepare_pair_layer(
        self, pair_trace: PairTrace, layer_index: int
    ) -> Dict[str, object]:
        """Shared workload preparation: EMF filtering + window schedule.

        Used by both the analytical layer model below and the detailed
        per-step simulator (:mod:`repro.sim.detailed`).
        """
        config = self.config
        layer = pair_trace.layers[layer_index]
        pair = pair_trace.pair
        feature_dim = max(1, layer.target_features.shape[1])

        active_targets = None
        active_queries = None
        match_fraction = 1.0
        unique_matchings = layer.num_matching_pairs
        emf_cycles = 0.0
        plan = None
        if config.emf_enabled and layer.has_matching:
            plan = layer.matching_plan()
            active_targets = plan.target_filter.unique_indices
            active_queries = plan.query_filter.unique_indices
            match_fraction = plan.remaining_fraction
            unique_matchings = plan.unique_matchings
            report = config.emf.per_graph_report(
                pair.total_nodes, feature_dim, 1
            )
            emf_cycles = report.total_cycles

        capacity = config.buffer_capacity_nodes(feature_dim)
        schedule = _window_schedule(
            pair,
            "coordinated" if config.cgc_enabled else "single",
            capacity,
            active_targets,
            active_queries,
        )
        registry = get_metrics()
        if registry is not None:
            self._record_layer_metrics(
                registry, config, plan, emf_cycles, schedule
            )
        return {
            "schedule": schedule,
            "match_fraction": match_fraction,
            "unique_matchings": unique_matchings,
            "emf_cycles": emf_cycles,
            "feature_dim": feature_dim,
        }

    @staticmethod
    def _record_layer_metrics(
        registry, config, plan, emf_cycles, schedule
    ) -> None:
        """Per-(pair, layer) EMF and CGC counters, labeled by platform.

        The EMF counters reproduce the Fig. 18 skip-rate inputs
        (``unique / total`` over matching layers); the window counters
        reproduce the miss/revisit accounting behind Figs. 8/12.
        """
        platform = config.name
        if plan is not None:
            registry.inc(
                "emf.matchings.total", plan.total_matchings, platform=platform
            )
            registry.inc(
                "emf.matchings.unique",
                plan.unique_matchings,
                platform=platform,
            )
            registry.inc(
                "emf.matchings.skipped",
                plan.redundant_matchings,
                platform=platform,
            )
            target, query = plan.target_filter, plan.query_filter
            registry.inc(
                "emf.rows.total", target.num_nodes, platform=platform
            )
            registry.inc(
                "emf.rows.skipped", target.num_duplicates, platform=platform
            )
            registry.inc(
                "emf.cols.total", query.num_nodes, platform=platform
            )
            registry.inc(
                "emf.cols.skipped", query.num_duplicates, platform=platform
            )
            registry.inc(
                "emf.overhead_cycles", emf_cycles, platform=platform
            )
        registry.inc(
            "cgc.window.advances", schedule.num_steps, platform=platform
        )
        registry.inc(
            "cgc.window.misses", schedule.total_misses, platform=platform
        )
        cleanup_steps = 0
        revisited = 0
        for step in schedule.steps:
            registry.observe(
                "cgc.window.occupancy",
                len(step.input_nodes),
                platform=platform,
            )
            if step.kind == "cleanup":
                cleanup_steps += 1
                revisited += step.misses
        registry.inc(
            "cgc.cleanup.steps", cleanup_steps, platform=platform
        )
        # Node features re-fetched because their edges were left to the
        # cleanup sweep — exactly the revisits AOE minimizes.
        registry.inc(
            "cgc.revisits.nodes", revisited, platform=platform
        )

    def _similarity_traffic(
        self, pair_trace: PairTrace, layer_index: int, unique_matchings: int
    ) -> Tuple[float, float]:
        """Similarity-matrix DRAM (read, write) bytes for one layer."""
        config = self.config
        layer = pair_trace.layers[layer_index]
        if not layer.has_matching:
            return 0.0, 0.0
        full_entries = layer.num_matching_pairs
        if not (config.emf_enabled or config.cgc_enabled):
            # Baseline accelerators write results back and re-read them
            # for the downstream consumer.
            return full_entries * BYTES_PER_VALUE, full_entries * BYTES_PER_VALUE
        if pair_trace.matching_usage == "writeback":
            # Type (a): broadcast unique results to every duplicate
            # position in DRAM; the consumer reads the full matrix.
            return full_entries * BYTES_PER_VALUE, full_entries * BYTES_PER_VALUE
        # Type (b): unique results cached on-chip when they fit.
        unique_bytes = unique_matchings * BYTES_PER_VALUE
        if unique_bytes > config.matching_buffer_bytes:
            return unique_bytes, unique_bytes
        return 0.0, 0.0

    def _thrashing(self, batch_working_set: int, feature_dim: int) -> bool:
        """Whether stage-wise batch processing thrashes the input buffer.

        Fig. 4's regime: the batch's whole node working set cycles
        through the buffer between a node's embedding-stage access and
        its matching-stage reuse. With a single small pair (or batch 1
        that fits on-chip) the buffer retains it and no thrashing
        occurs.
        """
        if not self.config.batch_interleaved:
            return False
        capacity = self.config.buffer_capacity_nodes(feature_dim)
        return batch_working_set > capacity

    def _simulate_pair_layer(
        self,
        pair_trace: PairTrace,
        layer_index: int,
        batch_working_set: Optional[int] = None,
    ) -> Dict[str, float]:
        config = self.config
        layer = pair_trace.layers[layer_index]
        pair = pair_trace.pair
        if batch_working_set is None:
            batch_working_set = pair.total_nodes
        prepared = self._prepare_pair_layer(pair_trace, layer_index)
        schedule = prepared["schedule"]
        match_fraction = prepared["match_fraction"]
        unique_matchings = prepared["unique_matchings"]
        emf_cycles = prepared["emf_cycles"]
        node_bytes = prepared["feature_dim"] * BYTES_PER_VALUE

        if self._thrashing(batch_working_set, prepared["feature_dim"]):
            # Stage-wise batch processing thrashes the input buffer
            # across the whole batch working set (Fig. 4): every window
            # reference misses.
            feature_loads = sum(
                len(step.input_nodes) for step in schedule.steps
            )
        else:
            feature_loads = schedule.total_misses
        dram_read = feature_loads * node_bytes
        # Updated node features written back each layer.
        dram_write = pair.total_nodes * node_bytes

        # --- Compute ----------------------------------------------------
        agg_macs = layer.flops.counts["aggregate"] / 2.0
        combine_macs = layer.flops.counts["combine"] / 2.0
        match_macs = (layer.flops.counts["match"] / 2.0) * match_fraction
        dense_macs = combine_macs + match_macs
        # Matching runs at the platform's sustained matching utilization;
        # embedding work runs at full utilization on every platform.
        match_cycles = match_macs / (
            config.mac_units * config.matching_utilization
        )
        combine_cycles = combine_macs / config.mac_units
        if config.shared_compute:
            compute_cycles = (
                agg_macs / config.mac_units + combine_cycles + match_cycles
            )
        else:
            # Heterogeneous (HyGCN): aggregation engine and combination
            # engine run cooperatively; the slower one bounds the layer.
            compute_cycles = max(
                agg_macs / config.aggregation_lanes,
                combine_cycles + match_cycles,
            )

        sim_read, sim_write = self._similarity_traffic(
            pair_trace, layer_index, unique_matchings
        )
        dram_read += sim_read
        dram_write += sim_write

        return {
            "compute_cycles": compute_cycles,
            "dram_read": dram_read,
            "dram_write": dram_write,
            "macs": agg_macs + dense_macs,
            "emf_cycles": emf_cycles,
        }
