"""Cycle-level accelerator simulator.

One simulator class serves CEGMA, its two ablation variants, HyGCN, and
AWB-GCN: the :class:`~repro.sim.config.HardwareConfig` selects the
dataflow (baseline single window vs. CGC's coordinated joint window),
whether the EMF filters redundant matchings, and the compute-array split.

Per GMN layer the simulator:

1. runs the EMF over the layer's node features (when enabled) to obtain
   the unique-node sets and the reduced matching workload;
2. builds the window schedule for the layer, whose input-buffer misses
   determine DRAM feature reads;
3. accounts MACs (aggregation, combination, matching — matching scaled
   by the EMF's unique fraction), DRAM traffic (feature loads, output
   writes, similarity-matrix traffic), and takes
   ``max(compute_cycles, memory_cycles)`` as the layer latency
   (double-buffered overlap), plus the EMF pipeline overhead.

Similarity-matrix traffic follows Section IV-D's two usage types:
type (a) models (SimGNN, GraphSim) write the *full* matrix back to DRAM
(unique results are broadcast to duplicate positions) and later read it;
type (b) models (GMN-Li) consume matching results within the layer, so
CEGMA keeps the unique results on-chip when they fit the matching
buffer. Platforms without EMF/CGC always write and read the full matrix
(HyGCN computes similarity in its combiner and "writes back the matching
results to memory").
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple
from weakref import WeakKeyDictionary

from ..cgc.window import (
    coordinated_window_schedule,
    single_window_schedule,
)
from ..obs.metrics import get_metrics
from ..obs.tracing import span
from ..trace.events import PairTrace
from ..trace.profiler import BatchTrace
from .config import BYTES_PER_VALUE, HardwareConfig
from .energy import EnergyModel

__all__ = [
    "PlatformResult",
    "AcceleratorSimulator",
    "RESULT_SCHEMA_VERSION",
]

# Version of the PlatformResult.to_dict JSON layout; bump on any field
# change so persisted artifacts are never silently misread.
RESULT_SCHEMA_VERSION = 1

# Window schedules depend only on (pair, scheme, capacity, active sets),
# not on the platform, so simulating several platforms/variants over the
# same trace rebuilds identical schedules. Memoize them per pair; the
# weak keying drops a pair's schedules as soon as the trace is released.
_SCHEDULE_MEMO: "WeakKeyDictionary" = WeakKeyDictionary()
_SCHEDULE_MEMO_PER_PAIR = 64


def _window_schedule(pair, scheme, capacity, active_targets, active_queries):
    key = (
        scheme,
        capacity,
        None if active_targets is None else tuple(active_targets),
        None if active_queries is None else tuple(active_queries),
    )
    per_pair = _SCHEDULE_MEMO.get(pair)
    if per_pair is None:
        per_pair = {}
        _SCHEDULE_MEMO[pair] = per_pair
    schedule = per_pair.get(key)
    if schedule is None:
        builder = (
            coordinated_window_schedule
            if scheme == "coordinated"
            else single_window_schedule
        )
        schedule = builder(pair, capacity, active_targets, active_queries)
        if len(per_pair) >= _SCHEDULE_MEMO_PER_PAIR:
            per_pair.clear()
        per_pair[key] = schedule
    return schedule

# Amortized SRAM operand traffic per MAC after array-level reuse, in
# bytes; a second-order term in the energy model.
_SRAM_BYTES_PER_MAC = 0.5


class PlatformResult:
    """Aggregated simulation outcome for one platform over a workload."""

    __slots__ = (
        "platform",
        "cycles",
        "dram_read_bytes",
        "dram_write_bytes",
        "macs",
        "sram_bytes",
        "num_pairs",
        "frequency_hz",
        "energy_joules",
        "energy_components",
        "layer_stats",
    )

    def __init__(self, platform: str, frequency_hz: float) -> None:
        self.platform = platform
        self.frequency_hz = frequency_hz
        self.cycles = 0.0
        self.dram_read_bytes = 0.0
        self.dram_write_bytes = 0.0
        self.macs = 0.0
        self.sram_bytes = 0.0
        self.num_pairs = 0
        self.energy_joules = 0.0
        # Per-component energy: dram / sram / compute / static joules.
        self.energy_components: Dict[str, float] = {}
        # Per-GMN-layer breakdown: list of dicts with "cycles",
        # "dram_bytes", "macs" (readout work is not a layer and is
        # excluded). Populated by the simulators; summed on merge.
        self.layer_stats: List[Dict[str, float]] = []

    # ------------------------------------------------------------------
    @property
    def dram_bytes(self) -> float:
        return self.dram_read_bytes + self.dram_write_bytes

    @property
    def latency_seconds(self) -> float:
        return self.cycles / self.frequency_hz

    @property
    def latency_per_pair(self) -> float:
        return self.latency_seconds / self.num_pairs if self.num_pairs else 0.0

    @property
    def throughput_pairs_per_second(self) -> float:
        latency = self.latency_seconds
        return self.num_pairs / latency if latency > 0 else 0.0

    def merge(self, other: "PlatformResult") -> None:
        """Accumulate another result (e.g. the next batch) in place."""
        if other.platform != self.platform:
            raise ValueError("cannot merge results from different platforms")
        self.cycles += other.cycles
        self.dram_read_bytes += other.dram_read_bytes
        self.dram_write_bytes += other.dram_write_bytes
        self.macs += other.macs
        self.sram_bytes += other.sram_bytes
        self.num_pairs += other.num_pairs
        self.energy_joules += other.energy_joules
        for key, value in other.energy_components.items():
            self.energy_components[key] = (
                self.energy_components.get(key, 0.0) + value
            )
        for index, stats in enumerate(other.layer_stats):
            if index < len(self.layer_stats):
                for key, value in stats.items():
                    self.layer_stats[index][key] += value
            else:
                self.layer_stats.append(dict(stats))

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable representation (schema-versioned).

        Round-trips through :meth:`from_dict`, including merged results:
        every accumulated field is stored, derived metrics (latency,
        throughput) are recomputed on load.
        """
        return {
            "schema_version": RESULT_SCHEMA_VERSION,
            "platform": self.platform,
            "frequency_hz": self.frequency_hz,
            "cycles": self.cycles,
            "dram_read_bytes": self.dram_read_bytes,
            "dram_write_bytes": self.dram_write_bytes,
            "macs": self.macs,
            "sram_bytes": self.sram_bytes,
            "num_pairs": self.num_pairs,
            "energy_joules": self.energy_joules,
            "energy_components": dict(self.energy_components),
            "layer_stats": [dict(stats) for stats in self.layer_stats],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "PlatformResult":
        """Inverse of :meth:`to_dict`; rejects unknown schema versions."""
        version = payload.get("schema_version")
        if version != RESULT_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported PlatformResult schema version {version!r} "
                f"(expected {RESULT_SCHEMA_VERSION})"
            )
        result = cls(str(payload["platform"]), float(payload["frequency_hz"]))
        result.cycles = float(payload["cycles"])
        result.dram_read_bytes = float(payload["dram_read_bytes"])
        result.dram_write_bytes = float(payload["dram_write_bytes"])
        result.macs = float(payload["macs"])
        result.sram_bytes = float(payload["sram_bytes"])
        result.num_pairs = int(payload["num_pairs"])
        result.energy_joules = float(payload["energy_joules"])
        result.energy_components = {
            str(key): float(value)
            for key, value in payload["energy_components"].items()
        }
        result.layer_stats = [
            {str(key): float(value) for key, value in stats.items()}
            for stats in payload["layer_stats"]
        ]
        return result

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PlatformResult({self.platform!r}, pairs={self.num_pairs}, "
            f"latency={self.latency_seconds:.6f}s, "
            f"dram={self.dram_bytes / 1e6:.2f}MB)"
        )


class AcceleratorSimulator:
    """Trace-driven cycle simulator parameterized by a HardwareConfig."""

    def __init__(
        self,
        config: HardwareConfig,
        energy_model: Optional[EnergyModel] = None,
    ) -> None:
        self.config = config
        self.energy_model = energy_model or EnergyModel()

    # ------------------------------------------------------------------
    def simulate_batch(self, batch_trace: BatchTrace) -> PlatformResult:
        """Simulate one batch of graph pairs end to end."""
        config = self.config
        result = PlatformResult(config.name, config.frequency_hz)
        result.num_pairs = batch_trace.batch.batch_size

        num_layers = batch_trace.num_layers
        for layer_index in range(num_layers):
            layer_compute_cycles = 0.0
            layer_dram_read = 0.0
            layer_dram_write = 0.0
            layer_macs = 0.0
            emf_overhead_cycles = 0.0

            batch_working_set = sum(
                trace.pair.total_nodes for trace in batch_trace.pair_traces
            )
            for pair_trace in batch_trace.pair_traces:
                stats = self._simulate_pair_layer(
                    pair_trace, layer_index, batch_working_set
                )
                layer_compute_cycles += stats["compute_cycles"]
                layer_dram_read += stats["dram_read"]
                layer_dram_write += stats["dram_write"]
                layer_macs += stats["macs"]
                emf_overhead_cycles += stats["emf_cycles"]

            memory_cycles = (
                layer_dram_read + layer_dram_write
            ) / config.dram_bandwidth_bytes_per_cycle
            if config.overlaps_memory:
                layer_cycles = max(layer_compute_cycles, memory_cycles)
            else:
                layer_cycles = layer_compute_cycles + memory_cycles
            # EMF hashing/filtering is pipelined with the PE (Fig. 11's
            # producer-consumer design); the paper measures the overhead
            # as ignorable, so it only surfaces when it exceeds the
            # layer's own critical path.
            result.cycles += max(layer_cycles, emf_overhead_cycles)
            result.dram_read_bytes += layer_dram_read
            result.dram_write_bytes += layer_dram_write
            result.macs += layer_macs
            result.layer_stats.append(
                {
                    "cycles": max(layer_cycles, emf_overhead_cycles),
                    "dram_bytes": layer_dram_read + layer_dram_write,
                    "macs": layer_macs,
                }
            )
            registry = get_metrics()
            if registry is not None:
                platform = config.name
                registry.inc(
                    "sim.dram.read_bytes", layer_dram_read, platform=platform
                )
                registry.inc(
                    "sim.dram.write_bytes", layer_dram_write, platform=platform
                )
                registry.inc("sim.macs", layer_macs, platform=platform)
                registry.inc(
                    "sim.cycles",
                    max(layer_cycles, emf_overhead_cycles),
                    platform=platform,
                )
                # PE busy = cycles the compute array is doing MACs; the
                # rest of the layer's critical path is memory stall.
                busy = min(layer_compute_cycles, layer_cycles)
                registry.inc("sim.pe.busy_cycles", busy, platform=platform)
                registry.inc(
                    "sim.pe.stall_cycles",
                    max(layer_cycles, emf_overhead_cycles) - busy,
                    platform=platform,
                )
                registry.inc(
                    "sim.memory_cycles", memory_cycles, platform=platform
                )
                registry.inc("sim.layers", 1, platform=platform)

        # Readout / prediction heads (identical across platforms).
        for pair_trace in batch_trace.pair_traces:
            readout_macs = pair_trace.readout_flops.total / 2.0
            result.macs += readout_macs
            result.cycles += readout_macs / config.mac_units

        result.sram_bytes = (
            result.macs * _SRAM_BYTES_PER_MAC + result.dram_bytes
        )
        result.energy_components = self.energy_model.energy_breakdown(
            result.dram_bytes,
            result.sram_bytes,
            result.macs,
            result.latency_seconds,
        )
        result.energy_joules = sum(result.energy_components.values())
        registry = get_metrics()
        if registry is not None:
            registry.inc(
                "sim.pairs", result.num_pairs, platform=config.name
            )
            registry.inc("sim.batches", 1, platform=config.name)
        return result

    def simulate_batches(
        self, batch_traces: Sequence[BatchTrace]
    ) -> PlatformResult:
        """Simulate a sequence of batches and accumulate the totals."""
        if not batch_traces:
            raise ValueError("need at least one batch")
        with span("sim.batch", platform=self.config.name, batch=0):
            total = self.simulate_batch(batch_traces[0])
        for index, batch_trace in enumerate(batch_traces[1:], start=1):
            with span("sim.batch", platform=self.config.name, batch=index):
                total.merge(self.simulate_batch(batch_trace))
        return total

    # ------------------------------------------------------------------
    def _prepare_pair_layer(
        self, pair_trace: PairTrace, layer_index: int
    ) -> Dict[str, object]:
        """Shared workload preparation: EMF filtering + window schedule.

        Used by both the analytical layer model below and the detailed
        per-step simulator (:mod:`repro.sim.detailed`).
        """
        config = self.config
        layer = pair_trace.layers[layer_index]
        pair = pair_trace.pair
        feature_dim = max(1, layer.target_features.shape[1])

        active_targets = None
        active_queries = None
        match_fraction = 1.0
        unique_matchings = layer.num_matching_pairs
        emf_cycles = 0.0
        plan = None
        if config.emf_enabled and layer.has_matching:
            plan = layer.matching_plan()
            active_targets = plan.target_filter.unique_indices
            active_queries = plan.query_filter.unique_indices
            match_fraction = plan.remaining_fraction
            unique_matchings = plan.unique_matchings
            report = config.emf.per_graph_report(
                pair.total_nodes, feature_dim, 1
            )
            emf_cycles = report.total_cycles

        capacity = config.buffer_capacity_nodes(feature_dim)
        schedule = _window_schedule(
            pair,
            "coordinated" if config.cgc_enabled else "single",
            capacity,
            active_targets,
            active_queries,
        )
        registry = get_metrics()
        if registry is not None:
            self._record_layer_metrics(
                registry, config, plan, emf_cycles, schedule
            )
        return {
            "schedule": schedule,
            "match_fraction": match_fraction,
            "unique_matchings": unique_matchings,
            "emf_cycles": emf_cycles,
            "feature_dim": feature_dim,
        }

    @staticmethod
    def _record_layer_metrics(
        registry, config, plan, emf_cycles, schedule
    ) -> None:
        """Per-(pair, layer) EMF and CGC counters, labeled by platform.

        The EMF counters reproduce the Fig. 18 skip-rate inputs
        (``unique / total`` over matching layers); the window counters
        reproduce the miss/revisit accounting behind Figs. 8/12.
        """
        platform = config.name
        if plan is not None:
            registry.inc(
                "emf.matchings.total", plan.total_matchings, platform=platform
            )
            registry.inc(
                "emf.matchings.unique",
                plan.unique_matchings,
                platform=platform,
            )
            registry.inc(
                "emf.matchings.skipped",
                plan.redundant_matchings,
                platform=platform,
            )
            target, query = plan.target_filter, plan.query_filter
            registry.inc(
                "emf.rows.total", target.num_nodes, platform=platform
            )
            registry.inc(
                "emf.rows.skipped", target.num_duplicates, platform=platform
            )
            registry.inc(
                "emf.cols.total", query.num_nodes, platform=platform
            )
            registry.inc(
                "emf.cols.skipped", query.num_duplicates, platform=platform
            )
            registry.inc(
                "emf.overhead_cycles", emf_cycles, platform=platform
            )
        registry.inc(
            "cgc.window.advances", schedule.num_steps, platform=platform
        )
        registry.inc(
            "cgc.window.misses", schedule.total_misses, platform=platform
        )
        cleanup_steps = 0
        revisited = 0
        for step in schedule.steps:
            registry.observe(
                "cgc.window.occupancy",
                len(step.input_nodes),
                platform=platform,
            )
            if step.kind == "cleanup":
                cleanup_steps += 1
                revisited += step.misses
        registry.inc(
            "cgc.cleanup.steps", cleanup_steps, platform=platform
        )
        # Node features re-fetched because their edges were left to the
        # cleanup sweep — exactly the revisits AOE minimizes.
        registry.inc(
            "cgc.revisits.nodes", revisited, platform=platform
        )

    def _similarity_traffic(
        self, pair_trace: PairTrace, layer_index: int, unique_matchings: int
    ) -> Tuple[float, float]:
        """Similarity-matrix DRAM (read, write) bytes for one layer."""
        config = self.config
        layer = pair_trace.layers[layer_index]
        if not layer.has_matching:
            return 0.0, 0.0
        full_entries = layer.num_matching_pairs
        if not (config.emf_enabled or config.cgc_enabled):
            # Baseline accelerators write results back and re-read them
            # for the downstream consumer.
            return full_entries * BYTES_PER_VALUE, full_entries * BYTES_PER_VALUE
        if pair_trace.matching_usage == "writeback":
            # Type (a): broadcast unique results to every duplicate
            # position in DRAM; the consumer reads the full matrix.
            return full_entries * BYTES_PER_VALUE, full_entries * BYTES_PER_VALUE
        # Type (b): unique results cached on-chip when they fit.
        unique_bytes = unique_matchings * BYTES_PER_VALUE
        if unique_bytes > config.matching_buffer_bytes:
            return unique_bytes, unique_bytes
        return 0.0, 0.0

    def _thrashing(self, batch_working_set: int, feature_dim: int) -> bool:
        """Whether stage-wise batch processing thrashes the input buffer.

        Fig. 4's regime: the batch's whole node working set cycles
        through the buffer between a node's embedding-stage access and
        its matching-stage reuse. With a single small pair (or batch 1
        that fits on-chip) the buffer retains it and no thrashing
        occurs.
        """
        if not self.config.batch_interleaved:
            return False
        capacity = self.config.buffer_capacity_nodes(feature_dim)
        return batch_working_set > capacity

    def _simulate_pair_layer(
        self,
        pair_trace: PairTrace,
        layer_index: int,
        batch_working_set: Optional[int] = None,
    ) -> Dict[str, float]:
        config = self.config
        layer = pair_trace.layers[layer_index]
        pair = pair_trace.pair
        if batch_working_set is None:
            batch_working_set = pair.total_nodes
        prepared = self._prepare_pair_layer(pair_trace, layer_index)
        schedule = prepared["schedule"]
        match_fraction = prepared["match_fraction"]
        unique_matchings = prepared["unique_matchings"]
        emf_cycles = prepared["emf_cycles"]
        node_bytes = prepared["feature_dim"] * BYTES_PER_VALUE

        if self._thrashing(batch_working_set, prepared["feature_dim"]):
            # Stage-wise batch processing thrashes the input buffer
            # across the whole batch working set (Fig. 4): every window
            # reference misses.
            feature_loads = sum(
                len(step.input_nodes) for step in schedule.steps
            )
        else:
            feature_loads = schedule.total_misses
        dram_read = feature_loads * node_bytes
        # Updated node features written back each layer.
        dram_write = pair.total_nodes * node_bytes

        # --- Compute ----------------------------------------------------
        agg_macs = layer.flops.counts["aggregate"] / 2.0
        combine_macs = layer.flops.counts["combine"] / 2.0
        match_macs = (layer.flops.counts["match"] / 2.0) * match_fraction
        dense_macs = combine_macs + match_macs
        # Matching runs at the platform's sustained matching utilization;
        # embedding work runs at full utilization on every platform.
        match_cycles = match_macs / (
            config.mac_units * config.matching_utilization
        )
        combine_cycles = combine_macs / config.mac_units
        if config.shared_compute:
            compute_cycles = (
                agg_macs / config.mac_units + combine_cycles + match_cycles
            )
        else:
            # Heterogeneous (HyGCN): aggregation engine and combination
            # engine run cooperatively; the slower one bounds the layer.
            compute_cycles = max(
                agg_macs / config.aggregation_lanes,
                combine_cycles + match_cycles,
            )

        sim_read, sim_write = self._similarity_traffic(
            pair_trace, layer_index, unique_matchings
        )
        dram_read += sim_read
        dram_write += sim_write

        return {
            "compute_cycles": compute_cycles,
            "dram_read": dram_read,
            "dram_write": dram_write,
            "macs": agg_macs + dense_macs,
            "emf_cycles": emf_cycles,
        }
