"""HBM DRAM timing model.

The engine's default memory model is pure bandwidth (256 B/cycle for
HBM 1.0 at 1 GHz). This refinement adds transaction granularity and
row-buffer behaviour for studies that care about access *patterns*:

- traffic moves in fixed-size transactions (32 B bursts); small or
  misaligned requests round up;
- sequential streams activate one row per ``row_bytes``; random access
  pays an activation per transaction with probability
  ``random_row_miss_rate``.

Activation latency is charged as occupancy (cycles the channel cannot
transfer data), which is how it erodes effective bandwidth in steady
state.
"""

from __future__ import annotations

import math

import numpy as np

from ..obs.metrics import get_metrics

__all__ = ["DRAMModel"]


class DRAMModel:
    """Bandwidth + row-buffer occupancy model of one HBM channel group."""

    def __init__(
        self,
        bandwidth_bytes_per_cycle: float = 256.0,
        transaction_bytes: int = 32,
        row_bytes: int = 1024,
        row_activation_cycles: float = 14.0,
        random_row_miss_rate: float = 0.5,
    ) -> None:
        if bandwidth_bytes_per_cycle <= 0:
            raise ValueError("bandwidth must be positive")
        if transaction_bytes < 1 or row_bytes < transaction_bytes:
            raise ValueError("row must hold at least one transaction")
        if not 0.0 <= random_row_miss_rate <= 1.0:
            raise ValueError("miss rate must be a probability")
        self.bandwidth_bytes_per_cycle = bandwidth_bytes_per_cycle
        self.transaction_bytes = transaction_bytes
        self.row_bytes = row_bytes
        self.row_activation_cycles = row_activation_cycles
        self.random_row_miss_rate = random_row_miss_rate

    # ------------------------------------------------------------------
    def transactions(self, num_bytes: float) -> int:
        """How many burst transactions a request of this size needs."""
        if num_bytes < 0:
            raise ValueError("negative request size")
        return math.ceil(num_bytes / self.transaction_bytes)

    def access_cycles(self, num_bytes: float, sequential: bool = True) -> float:
        """Channel-occupancy cycles to move ``num_bytes``.

        ``sequential`` requests stream through rows (one activation per
        row); random requests (scattered node-feature gathers) pay the
        configured activation miss rate per transaction.
        """
        if num_bytes <= 0:
            return 0.0
        transactions = self.transactions(num_bytes)
        transfers = (
            transactions * self.transaction_bytes
        ) / self.bandwidth_bytes_per_cycle
        if sequential:
            activations = math.ceil(num_bytes / self.row_bytes)
        else:
            activations = transactions * self.random_row_miss_rate
        registry = get_metrics()
        if registry is not None:
            pattern = "sequential" if sequential else "random"
            registry.inc("dram.requests", 1, pattern=pattern)
            registry.inc("dram.bytes", num_bytes, pattern=pattern)
            registry.inc("dram.transactions", transactions, pattern=pattern)
            registry.inc(
                "dram.activation_cycles",
                activations * self.row_activation_cycles,
                pattern=pattern,
            )
        return transfers + activations * self.row_activation_cycles

    def access_cycles_batch(self, num_bytes, sequential: bool = True) -> np.ndarray:
        """Vectorized :meth:`access_cycles` over an array of requests.

        Value-identical to the scalar method elementwise (the ceil and
        IEEE arithmetic are the same operations). Metric-free by design:
        batched callers that need ``dram.*`` telemetry must use the
        scalar method per request.
        """
        sizes = np.asarray(num_bytes, dtype=np.float64)
        if (sizes < 0).any():
            raise ValueError("negative request size")
        transactions = np.ceil(sizes / self.transaction_bytes)
        transfers = (
            transactions * self.transaction_bytes
        ) / self.bandwidth_bytes_per_cycle
        if sequential:
            activations = np.ceil(sizes / self.row_bytes)
        else:
            activations = transactions * self.random_row_miss_rate
        cycles = transfers + activations * self.row_activation_cycles
        return np.where(sizes <= 0, 0.0, cycles)

    def effective_bandwidth(self, num_bytes: float, sequential: bool = True) -> float:
        """Achieved bytes/cycle for a request of the given shape."""
        cycles = self.access_cycles(num_bytes, sequential)
        return num_bytes / cycles if cycles else 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DRAMModel(bw={self.bandwidth_bytes_per_cycle}B/cyc, "
            f"burst={self.transaction_bytes}B)"
        )
