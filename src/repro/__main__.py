"""Command-line interface.

Subcommands::

    python -m repro simulate --model GMN-Li --dataset RD-5K \
        --platforms CEGMA AWB-GCN --pairs 8
    python -m repro simulate --model GraphSim --dataset RD-B \
        --platforms "CEGMA@bandwidth_gbps=512" CEGMA
    python -m repro profile --model GraphSim --dataset AIDS \
        --pairs 16 --output traces.npz
    python -m repro replay --input traces.npz --platforms CEGMA HyGCN
    python -m repro platforms
    python -m repro serve --quick --metrics --json-out serve.json
    python -m repro serve --queries 64 --database 128 \
        --policy deadline --timeout 2.0
    python -m repro serve --quick --request-trace \
        --window-seconds 0.25 --expo serve.prom --window-log windows.jsonl
    python -m repro obs tail windows.jsonl --prefix search.serve.
    python -m repro experiments fig16 [--full] [--jobs N]
    python -m repro bench [--quick]
    python -m repro simulate --quick --model GMN-Li --dataset AIDS \
        --metrics --trace trace.json
    python -m repro obs show results/obs/..._report.json
    python -m repro obs diff old_report.json new_report.json
    python -m repro obs check results/obs/..._report.json [--update]
    python -m repro obs provenance results/experiments.json
    python -m repro obs dashboard --output dashboard.html
    python -m repro obs baselines
    python -m repro obs bench record BENCH_emf.json BENCH_search.json
    python -m repro obs bench compare [--bench NAME] [--json-out FILE]
    python -m repro obs bench trend [--bench NAME] [--markdown]
    python -m repro validate [--quick] [--only NAME] [--list] [--smoke]

``profile`` + ``replay`` implement the paper's trace-file methodology:
profile a workload once, then simulate any platform from the file.
``--platforms`` accepts registry spec strings — a registered name plus
optional ``@key=value`` overrides (``repro platforms`` lists both).

``--metrics`` / ``--trace`` turn on the :mod:`repro.obs` layer for one
run: counters and spans recorded by the simulator, EMF, and CGC are
written as a schema-versioned RunReport under ``results/obs/`` and a
Perfetto-loadable Chrome trace. ``repro obs`` pretty-prints, validates,
and diffs those reports; ``obs check`` compares a fresh report against
the baseline store and fails on deterministic-counter drift, ``obs
provenance`` validates artifact stamps, and ``obs dashboard`` renders
metric trends as static HTML. ``repro bench`` appends every run to the
append-only history under ``results/obs/bench_history/``; ``obs bench
record|compare|trend`` ingests legacy BENCH files, gates the newest
entry (deterministic checks exactly, timings statistically), and
renders changepoint-annotated trends. ``serve --request-trace`` joins every
response to a per-stage span tree with SLO budget attribution and tail
exemplars; ``--window-seconds`` adds windowed rates/quantiles that
``obs tail`` replays from a RunReport or ``--window-log`` JSONL file,
and ``--expo`` writes a Prometheus-style text exposition. ``--profile``
(on ``simulate`` and
``experiments``) cProfiles the run into collapsed stacks loadable in
speedscope or flamegraph tooling.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .analysis.metrics import ResultTable
from .core.api import simulate_traces
from .graphs.datasets import DATASET_NAMES, load_dataset
from .models import MODEL_NAMES, build_model
from .platforms import DEFAULT_PLATFORMS, REGISTRY
from .sim.detailed import DetailedSimulator
from .trace.io import load_traces, save_traces
from .trace.profiler import profile_batches

__all__ = ["main"]


def _check_platforms(parser: argparse.ArgumentParser, platforms) -> None:
    """Validate every platform spec up front with a helpful error."""
    for spec in platforms:
        try:
            REGISTRY.parse(spec)
        except (KeyError, ValueError) as exc:
            parser.error(
                f"invalid platform spec {spec!r}: {exc}\n"
                f"known platforms: {', '.join(REGISTRY.names())} "
                "(append @key=value,... to override config fields; "
                "run 'python -m repro platforms' for the field list)"
            )


def _print_results(results: dict) -> None:
    table = ResultTable(
        ["platform", "latency/pair (us)", "pairs/s", "DRAM/pair (KB)", "energy/pair (uJ)"]
    )
    for name, result in results.items():
        table.add_row(
            name,
            result.latency_per_pair * 1e6,
            result.throughput_pairs_per_second,
            result.dram_bytes / max(1, result.num_pairs) / 1024,
            result.energy_joules / max(1, result.num_pairs) * 1e6,
        )
    print(table.render())


def _add_workload_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--model", choices=MODEL_NAMES, required=True)
    parser.add_argument("--dataset", choices=DATASET_NAMES, required=True)
    parser.add_argument("--pairs", type=int, default=8)
    parser.add_argument("--batch", type=int, default=8)
    parser.add_argument("--seed", type=int, default=0)


def _profile(args) -> List:
    pairs = load_dataset(args.dataset, seed=args.seed, num_pairs=args.pairs)
    model = build_model(
        args.model, input_dim=pairs[0].target.feature_dim, seed=args.seed
    )
    return profile_batches(model, pairs, batch_size=args.batch)


def _cmd_simulate(args) -> int:
    from contextlib import ExitStack

    if args.quick:
        from .platforms.runspec import QUICK_BATCH, QUICK_PAIRS

        args.pairs = QUICK_PAIRS
        args.batch = QUICK_BATCH
    if not (args.metrics or args.trace):
        return _run_simulate(args, timer=None)

    from .obs import RunReport, metrics_enabled, tracing_enabled
    from .perf.timing import StageTimer
    from .platforms import RunSpec

    timer = StageTimer()
    with ExitStack() as stack:
        registry = stack.enter_context(metrics_enabled())
        tracer = (
            stack.enter_context(tracing_enabled()) if args.trace else None
        )
        with timer.stage("simulate_cli"):
            status = _run_simulate(args, timer=timer)
        if status != 0:  # pragma: no cover - argparse exits before this
            return status
    if tracer is not None:
        trace_path = tracer.write(args.trace)
        print(f"wrote Chrome trace ({len(tracer)} events) to {trace_path}")
    spec = RunSpec.make(
        args.model, args.dataset, args.pairs, args.batch, args.seed
    )
    report = RunReport(
        spec=spec, metrics=registry, tracer=tracer, timer=timer
    )
    report_path = report.write()
    print(f"wrote RunReport to {report_path}")
    if args.metrics:
        print()
        print(report.render())
    return 0


def _run_simulate(args, timer) -> int:
    from .perf.timing import time_stage

    if getattr(args, "jobs", None) not in (None, 1) and not (
        args.detailed or args.config
    ):
        from .core.api import simulate_workload

        results = simulate_workload(
            args.model,
            args.dataset,
            args.platforms,
            num_pairs=args.pairs,
            batch_size=args.batch,
            seed=args.seed,
            jobs=args.jobs,
            backend=getattr(args, "backend", None),
        )
        print(
            f"{args.model} on {args.dataset} "
            f"({args.pairs} pairs, batch {args.batch}) [{args.jobs} jobs]"
        )
        _print_results(results)
        if getattr(args, "save", False):
            _save_artifact(args, results)
        return 0
    with time_stage(timer, "profile"):
        traces = _profile(args)
    with time_stage(timer, "simulate"):
        if args.detailed:
            results = {}
            for platform in args.platforms:
                simulator = REGISTRY.build(platform)
                if hasattr(simulator, "config"):
                    simulator = DetailedSimulator(simulator.config)
                results[platform] = simulator.simulate_batches(traces)
        else:
            results = simulate_traces(
                traces, args.platforms, backend=getattr(args, "backend", None)
            )
    if args.config:
        import json

        from .sim.config import HardwareConfig
        from .sim.engine import AcceleratorSimulator

        with open(args.config) as handle:
            custom = HardwareConfig.from_dict(json.load(handle))
        results[custom.name] = AcceleratorSimulator(custom).simulate_batches(
            traces
        )
    print(
        f"{args.model} on {args.dataset} "
        f"({args.pairs} pairs, batch {args.batch})"
        + (" [detailed mode]" if args.detailed else "")
    )
    _print_results(results)
    if getattr(args, "save", False):
        _save_artifact(args, results)
    return 0


def _save_artifact(args, results) -> None:
    from .platforms import RunSpec, default_artifact_path, save_results

    spec = RunSpec.make(
        args.model, args.dataset, args.pairs, args.batch, args.seed
    )
    path = default_artifact_path(spec)
    save_results(results, path, spec=spec)
    print(f"wrote results artifact to {path}")


def _cmd_profile(args) -> int:
    traces = _profile(args)
    save_traces(traces, args.output)
    total_pairs = sum(t.batch.batch_size for t in traces)
    print(f"wrote {len(traces)} batch traces ({total_pairs} pairs) to {args.output}")
    return 0


def _cmd_replay(args) -> int:
    traces = load_traces(args.input)
    results = simulate_traces(traces, args.platforms)
    print(f"replayed {args.input}")
    _print_results(results)
    return 0


def _cmd_describe(args) -> int:
    from .trace.summary import workload_summary

    traces = (
        load_traces(args.input) if args.input else _profile(args)
    )
    summary = workload_summary(traces)
    table = ResultTable(["property", "value"])
    for key, value in summary.items():
        table.add_row(key, value)
    print(table.render())
    return 0


def _cmd_render_schedule(args) -> int:
    from .cgc import SCHEDULERS
    from .cgc.render import render_step_matrix, schedule_summary, schedule_table

    pairs = load_dataset(args.dataset, seed=args.seed, num_pairs=1)
    pair = pairs[0]
    schedule = SCHEDULERS[args.scheme](pair, capacity=args.capacity)
    print(schedule_summary(schedule))
    print()
    print(schedule_table(schedule, pair, max_steps=args.max_steps))
    if args.matrix:
        print()
        print(render_step_matrix(schedule, pair))
    return 0


def _cmd_experiments(args) -> int:
    from .experiments.registry import EXPERIMENTS, run_experiment

    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    if getattr(args, "jobs", None) not in (None, 1):
        # Pre-warm the shared (model, dataset) workloads across worker
        # processes; the experiment runners then hit the memo/disk cache.
        from .experiments.common import (
            DATASET_ORDER,
            MODEL_ORDER,
            prewarm_workloads,
        )

        # Per-dataset sizes: quick mode is uniform, full mode follows the
        # Table II test-set size of each dataset.
        prewarm_workloads(
            [(m, d) for m in MODEL_ORDER for d in DATASET_ORDER],
            DEFAULT_PLATFORMS,
            seed=args.seed,
            workers=args.jobs,
            quick=not args.full,
        )
    collected = {}
    for name in names:
        result = run_experiment(name, quick=not args.full, seed=args.seed)
        print(result.render())
        if getattr(args, "plot", False):
            from .experiments.plots import render_plots

            chart = render_plots(result)
            if chart:
                print()
                print(chart)
        print()
        # write_experiment_data JSON-sanitizes (numpy scalars/arrays)
        # at its single choke point, so raw data passes through here.
        collected[name] = {
            "description": result.description,
            "data": result.data,
        }
    if args.output:
        from .experiments.common import write_experiment_data

        path = write_experiment_data(
            collected, args.output, quick=not args.full, seed=args.seed
        )
        print(f"wrote raw data for {len(collected)} experiment(s) to {path}")
    return 0


def _cmd_platforms(args) -> int:
    """List registered platforms and their spec-overridable fields."""
    table = ResultTable(["platform", "kind", "overridable fields"])
    for name in REGISTRY.names():
        entry = REGISTRY.entry(name)
        if entry.configurable:
            fields = ", ".join(REGISTRY.spec_fields(name))
            kind = "accelerator"
        else:
            fields = "-"
            kind = "fixed"
        table.add_row(name, kind, fields)
    print(table.render())
    print(
        "\nSpec strings: NAME or NAME@key=value[,key=value...], e.g. "
        '"CEGMA@bandwidth_gbps=512,num_pes=1024".'
    )
    return 0


def _cmd_obs(args) -> int:
    """Inspect RunReport artifacts: show, validate, or diff."""
    import json

    from .obs import RunReport, diff_reports, validate_report

    if args.obs_command == "show":
        print(RunReport.load(args.report).render())
        return 0
    if args.obs_command == "validate":
        with open(args.report) as handle:
            payload = json.load(handle)
        problems = validate_report(payload)
        if problems:
            for problem in problems:
                print(f"INVALID: {problem}")
            return 1
        print(
            f"{args.report}: valid RunReport "
            f"(schema v{payload['schema_version']})"
        )
        return 0
    print(diff_reports(RunReport.load(args.old), RunReport.load(args.new)))
    return 0


def _cmd_obs_check(args) -> int:
    """Compare a fresh RunReport against its archived baseline.

    Exit codes: 0 clean (or baseline created with ``--update``),
    1 regressions found, 2 no baseline to compare against.
    """
    import json

    from .obs import BaselineStore, RegressionPolicy, RunReport, compare_reports

    current = RunReport.load(args.report)
    store = BaselineStore(args.baseline_dir)
    if args.baseline:
        baseline = RunReport.load(args.baseline)
        baseline_name = args.baseline
    else:
        if current.spec is None:
            print("cannot check an unkeyed report (no RunSpec) against a store")
            return 2
        baseline = store.latest(current.spec)
        baseline_name = str(store.latest_path(current.spec))
    if baseline is None:
        if args.update:
            path = store.save(current, retain=args.retain)
            print(f"no prior baseline; archived this run as {path}")
            return 0
        print(
            f"no baseline for {current.spec.stem} under {store.root} "
            "(run with --update to create one)"
        )
        return 2
    policy = RegressionPolicy(timing_rel_tol=args.timing_tol)
    result = compare_reports(baseline, current, policy)
    print(f"baseline: {baseline_name}")
    print(result.render())
    if args.json_out:
        with open(args.json_out, "w") as handle:
            json.dump(result.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote RegressionReport to {args.json_out}")
    if not result.ok:
        return 1
    if args.update:
        path = store.save(current, retain=args.retain)
        print(f"archived clean run as new baseline {path}")
    return 0


def _cmd_obs_provenance(args) -> int:
    """Inspect and validate the provenance stamp of an artifact."""
    import json

    from .obs import read_stamp, validate_stamp
    from .obs.provenance import render_stamp

    with open(args.artifact) as handle:
        payload = json.load(handle)
    stamp = read_stamp(payload)
    if stamp is None:
        print(f"INVALID: {args.artifact} carries no provenance stamp")
        return 1
    problems = validate_stamp(stamp)
    if problems:
        for problem in problems:
            print(f"INVALID: {problem}")
        return 1
    print(f"{args.artifact}: valid provenance")
    print(render_stamp(stamp))
    return 0


def _cmd_obs_dashboard(args) -> int:
    """Render the static HTML dashboard over the baseline store."""
    from .obs import BaselineStore, BenchHistory, write_dashboard

    store = BaselineStore(args.baseline_dir)
    history = BenchHistory(args.history_dir)
    path = write_dashboard(
        store, args.output, max_points=args.max_points, history=history
    )
    print(
        f"wrote dashboard ({len(store.specs())} workload(s), "
        f"{len(history.benches())} bench histor"
        f"{'y' if len(history.benches()) == 1 else 'ies'}) to {path}"
    )
    return 0


def _cmd_obs_baselines(args) -> int:
    """List archived baselines per workload identity."""
    from .obs import BaselineStore

    store = BaselineStore(args.baseline_dir)
    specs = store.specs()
    if not specs:
        print(f"no baselines under {store.root}")
        return 0
    table = ResultTable(["workload", "baselines", "newest"])
    for key in sorted(specs):
        history = store.history(specs[key])
        table.add_row(
            specs[key].stem,
            len(history),
            history[-1].name if history else "-",
        )
    print(table.render())
    return 0


def _cmd_obs_tail(args) -> int:
    """Render windowed serving telemetry from a file.

    Accepts a RunReport v3 (``--metrics`` + ``--window-seconds``), a
    ``--window-log`` JSONL file, or a JSON list of window snapshots.
    """
    from .obs import read_windows, render_window

    try:
        windows = read_windows(args.source)
    except (OSError, ValueError) as exc:
        print(f"cannot read windows from {args.source}: {exc}")
        return 1
    if not windows:
        # An empty (or zero-window) log is a normal outcome of a short
        # run — e.g. `serve --window-seconds` larger than the run — not
        # an error.
        print(
            f"no windows recorded in {args.source} "
            "(run serve with --window-seconds shorter than the stream?)"
        )
        return 0
    shown = windows if args.windows <= 0 else windows[-args.windows :]
    skipped = len(windows) - len(shown)
    if skipped:
        print(f"... {skipped} older window(s) not shown ...")
    prefix = args.prefix or ""
    for window in shown:
        print(render_window(window, prefix=prefix))
    return 0


def _cmd_bench(args) -> int:
    from .perf.bench import main as bench_main

    forwarded = []
    if args.quick:
        forwarded.append("--quick")
    if args.only:
        forwarded.extend(["--only", args.only])
    if args.workers is not None:
        forwarded.extend(["--workers", str(args.workers)])
    forwarded.extend(["--repeats", str(args.repeats)])
    forwarded.extend(["--output-dir", args.output_dir])
    if args.history_dir:
        forwarded.extend(["--history-dir", args.history_dir])
    if args.no_history:
        forwarded.append("--no-history")
    return bench_main(forwarded)


def _bench_history(args):
    from .obs import BenchHistory

    return BenchHistory(args.history_dir)


def _cmd_obs_bench(args) -> int:
    """The benchmark-history surface: record, compare, trend.

    ``record`` ingests BENCH_*.json files (idempotent — re-recording
    the same payload is a no-op). ``compare`` gates the newest (or a
    supplied candidate) entry per bench against its latest
    config-matching predecessor; exit codes follow ``obs check``:
    0 clean, 1 deterministic check drift, 2 statistical timing
    regression or no comparable baseline. ``trend`` prints each
    metric's history with changepoints marked.
    """
    import json

    from .obs import compare_history, render_markdown_table, trend_report
    from .obs.analytics import render_trend
    from .obs.history import HistoryEntry

    history = _bench_history(args)
    if args.bench_command == "record":
        status = 0
        for path in args.files:
            try:
                entry, appended = history.record_file(path)
            except (OSError, ValueError, json.JSONDecodeError) as exc:
                print(f"cannot record {path}: {exc}")
                status = 1
                continue
            verb = "recorded" if appended else "already recorded"
            print(
                f"{verb} {path} as {entry.bench}/{entry.entry_id} "
                f"under {history.root}"
            )
        return status

    if args.bench_command == "compare":
        candidates = None
        if args.candidate:
            with open(args.candidate) as handle:
                entry = HistoryEntry.from_bench_report(json.load(handle))
            candidates = {entry.bench: entry}
            benches = [entry.bench]
        else:
            benches = [args.bench] if args.bench else None
        comparisons = compare_history(
            history, benches=benches, candidates=candidates
        )
        if not comparisons:
            print(f"no bench history under {history.root}")
            return 2
        for comparison in comparisons:
            print(comparison.render())
            print()
        if args.json_out:
            payload = {
                "schema_version": 1,
                "kind": "repro-bench-compare-report",
                "comparisons": [c.to_dict() for c in comparisons],
            }
            with open(args.json_out, "w") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
                handle.write("\n")
            print(f"wrote comparison report to {args.json_out}")
        return max(comparison.exit_code for comparison in comparisons)

    # trend
    if args.markdown:
        print(render_markdown_table(history))
        return 0
    benches = [args.bench] if args.bench else history.benches()
    if not benches:
        print(f"no bench history under {history.root}")
        return 2
    reports = []
    for name in benches:
        entries = history.read(name)
        report = trend_report(entries, window=args.window)
        reports.append(report)
        print(render_trend(report))
        print()
    if args.json_out:
        payload = {
            "schema_version": 1,
            "kind": "repro-bench-trend-report",
            "trends": reports,
        }
        with open(args.json_out, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote trend report to {args.json_out}")
    return 0


def _cmd_validate(args) -> int:
    """Run the differential/invariant validation checks.

    Exit codes follow ``obs check``: 0 all pass, 1 divergences found,
    2 usage error (unknown check name).
    """
    import json

    from .obs.metrics import metrics_enabled
    from .validate import all_checks, get_check, mutation_smoke, run_checks

    if args.list:
        for check in all_checks():
            pair = f"  [{check.pair[0]} vs {check.pair[1]}]" if check.pair else ""
            print(f"{check.name:32s} {check.kind:12s} {check.description}{pair}")
        return 0
    names = args.only if args.only else None
    if names is not None:
        try:
            for name in names:
                get_check(name)
        except KeyError as exc:
            print(exc.args[0])
            return 2
    exit_status = 0
    with metrics_enabled() as registry:
        if args.smoke:
            # Mutation smoke: prove every selected check can fail.
            smoke_rows = []
            for check in [get_check(n) for n in names] if names else all_checks():
                outcomes = mutation_smoke(check.name, quick=args.quick)
                if not outcomes:
                    print(f"UNPROVEN {check.name}: no mutators registered")
                    exit_status = 1
                for mutator, tripped in outcomes.items():
                    verdict = "tripped" if tripped else "MISSED"
                    print(f"{verdict:8s} {check.name} :: {mutator}")
                    smoke_rows.append(
                        {
                            "check": check.name,
                            "mutator": mutator,
                            "tripped": tripped,
                        }
                    )
                    if not tripped:
                        exit_status = 1
            payload = {
                "schema_version": 1,
                "kind": "validate_smoke_report",
                "quick": args.quick,
                "mutations": smoke_rows,
            }
        else:
            results = run_checks(names, quick=args.quick)
            for result in results:
                print(
                    f"{result.status.upper():5s} {result.name} "
                    f"({result.duration_s:.2f}s): {result.detail}"
                )
                if not result.ok:
                    exit_status = 1
            passed = sum(1 for result in results if result.ok)
            print(f"{passed}/{len(results)} checks passed")
            payload = {
                "schema_version": 1,
                "kind": "validate_report",
                "quick": args.quick,
                "results": [result.to_dict() for result in results],
            }
        payload["counters"] = {
            name: value
            for name, value in registry.as_dict().get("counters", {}).items()
            if name.startswith("validate.")
        }
    if args.json_out:
        with open(args.json_out, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote validation report to {args.json_out}")
    return exit_status


def _cmd_serve(args) -> int:
    """Drive a synthetic query stream through the serving pipeline.

    The Section III-A workload end to end: admission queue, batch
    scheduler, sharded execution, ranking — with serving counters and
    p50/p99 latency surfaced through :mod:`repro.obs`.
    """
    import json
    from contextlib import ExitStack

    from .core.api import serve_query_stream
    from .obs import (
        RunReport,
        metrics_enabled,
        render_tree,
        tracing_enabled,
        write_exposition,
    )
    from .obs.provenance import stamp_payload
    from .perf.timing import StageTimer
    from .platforms import RunSpec

    if args.quick:
        args.queries = 8
        args.database = 16
        args.batch = 4

    window_sink = None
    window_log_handle = None
    if args.window_log:
        window_log_handle = open(args.window_log, "w")

        def window_sink(window):  # noqa: F811 - deliberate rebind
            json.dump(window.to_dict(), window_log_handle, sort_keys=True)
            window_log_handle.write("\n")
            window_log_handle.flush()

    timer = StageTimer()
    try:
        with ExitStack() as stack:
            # Metrics stay on unconditionally: the latency histogram
            # behind the p50/p99 stats lives in the registry.
            # --metrics controls whether a RunReport artifact is
            # written.
            registry = stack.enter_context(metrics_enabled())
            tracer = (
                stack.enter_context(tracing_enabled()) if args.trace else None
            )
            with timer.stage("serve_cli"):
                outcome = serve_query_stream(
                    args.model,
                    args.dataset,
                    num_queries=args.queries,
                    database_size=args.database,
                    database_unique=args.database_unique,
                    distinct_queries=args.distinct,
                    top_k=args.top_k,
                    policy=args.policy,
                    max_batch_queries=args.batch,
                    num_shards=args.shards,
                    workers=args.workers,
                    retrieval=args.retrieval,
                    max_queue_depth=args.queue_depth,
                    timeout_seconds=args.timeout,
                    seed=args.seed,
                    request_tracing=args.request_trace,
                    window_seconds=args.window_seconds,
                    on_window=window_sink,
                )
    finally:
        if window_log_handle is not None:
            window_log_handle.close()
    stats = outcome["stats"]
    config = outcome["config"]
    print(
        f"{config['model']} on {config['dataset']}: served "
        f"{int(stats['served'])}/{config['num_queries']} queries over a "
        f"{config['database_size']}-graph database "
        f"[policy={config['policy']}, retrieval={config['retrieval']}]"
    )
    table = ResultTable(["stat", "value"])
    for key in sorted(stats):
        table.add_row(key, stats[key])
    print(table.render())
    if tracer is not None:
        trace_path = tracer.write(args.trace)
        print(f"wrote Chrome trace ({len(tracer)} events) to {trace_path}")
    recorder = outcome.get("recorder")
    exemplars = outcome.get("exemplars")
    windows = list(outcome.get("windows") or [])
    exemplar_dicts = exemplars.as_dicts() if exemplars is not None else []
    if args.request_trace and exemplars is not None:
        slowest = exemplars.slowest()
        if slowest:
            worst = slowest[0]
            print(
                f"slowest request {worst.request_id}: "
                f"{worst.latency_seconds * 1e3:.3f} ms"
            )
            if worst.tree is not None:
                print(render_tree(worst.tree))
    if args.window_log and recorder is not None:
        print(
            f"wrote {len(windows)} window snapshot(s) to {args.window_log}"
        )
    if args.expo:
        window = recorder.latest() if recorder is not None else None
        write_exposition(registry, args.expo, window=window)
        print(f"wrote Prometheus exposition to {args.expo}")
    report_path = None
    spec = RunSpec.make(
        args.model, args.dataset, args.queries, args.batch, args.seed
    )
    if args.metrics:
        report = RunReport(
            spec=spec,
            metrics=registry,
            tracer=tracer,
            timer=timer,
            windows=windows,
            exemplars=exemplar_dicts,
        )
        report_path = report.write()
        print(f"wrote RunReport to {report_path}")
    if args.json_out:
        payload = {
            "schema_version": 1,
            "kind": "serve_report",
            "config": config,
            "stats": stats,
            "report_path": None if report_path is None else str(report_path),
        }
        stamp_payload(
            payload,
            spec=spec,
            metrics=registry.as_dict(),
            generator="repro serve",
        )
        with open(args.json_out, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote serve stats to {args.json_out}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="CEGMA reproduction: simulate GMN workloads and "
        "regenerate the paper's evaluation.",
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="more logging from repro.* loggers (-v INFO, -vv DEBUG)",
    )
    parser.add_argument(
        "-q",
        "--quiet",
        action="store_true",
        help="only log errors (overrides --verbose)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    simulate = subparsers.add_parser(
        "simulate", help="profile a workload and simulate platforms"
    )
    _add_workload_arguments(simulate)
    simulate.add_argument(
        "--platforms",
        nargs="+",
        default=list(DEFAULT_PLATFORMS),
        metavar="SPEC",
        help="platform names or spec strings such as "
        '"CEGMA@bandwidth_gbps=512" (see: python -m repro platforms)',
    )
    simulate.add_argument(
        "--save",
        action="store_true",
        help="also write the results as a JSON artifact under results/",
    )
    simulate.add_argument(
        "--detailed",
        action="store_true",
        help="per-window-step simulation for accelerator platforms",
    )
    simulate.add_argument(
        "--config",
        help="JSON HardwareConfig file to simulate as an extra platform",
    )
    simulate.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for batch-aligned chunked simulation",
    )
    simulate.add_argument(
        "--backend",
        choices=("batched", "serial"),
        default=None,
        help="simulation engine backend (serial = deprecated per-pair "
        "reference loop, kept one more release cycle)",
    )
    simulate.add_argument(
        "--quick",
        action="store_true",
        help="smoke-test workload size (overrides --pairs/--batch)",
    )
    simulate.add_argument(
        "--metrics",
        action="store_true",
        help="collect obs counters and print + save a RunReport",
    )
    simulate.add_argument(
        "--trace",
        metavar="FILE",
        help="write a Perfetto-loadable Chrome trace of the run",
    )
    simulate.add_argument(
        "--profile",
        metavar="FILE",
        help="cProfile the run; write collapsed stacks (speedscope/"
        "flamegraph format) to FILE",
    )
    simulate.set_defaults(handler=_cmd_simulate)

    serve = subparsers.add_parser(
        "serve",
        help="drive a synthetic query stream through the serving pipeline",
    )
    serve.add_argument("--model", choices=MODEL_NAMES, default="GMN-Li")
    serve.add_argument("--dataset", choices=DATASET_NAMES, default="AIDS")
    serve.add_argument(
        "--queries", type=int, default=16, help="stream length"
    )
    serve.add_argument(
        "--database", type=int, default=32, help="database size (graphs)"
    )
    serve.add_argument(
        "--database-unique",
        type=int,
        default=None,
        help="distinct graphs in the database; byte-identical clones "
        "fill the rest (default: all distinct)",
    )
    serve.add_argument(
        "--distinct",
        type=int,
        default=None,
        help="distinct query graphs in the stream (repeats model hot "
        "queries; default min(queries, 8))",
    )
    serve.add_argument("--top-k", type=int, default=5)
    serve.add_argument(
        "--policy",
        choices=("fifo", "deadline", "size_bucketed"),
        default="fifo",
        help="batch scheduling policy",
    )
    serve.add_argument(
        "--retrieval",
        choices=("flat", "sketch"),
        default="flat",
        help="candidate retrieval: flat scores the whole database per "
        "batch; sketch prunes to an EMF/WL MinHash candidate set first "
        "and reranks it exactly",
    )
    serve.add_argument(
        "--batch",
        type=int,
        default=8,
        help="max distinct queries per execution batch",
    )
    serve.add_argument(
        "--shards",
        type=int,
        default=None,
        help="database shards per query (default: worker count)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=None,
        help="executor worker processes (clamped to CPU count)",
    )
    serve.add_argument("--queue-depth", type=int, default=1024)
    serve.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-request deadline in seconds",
    )
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--quick",
        action="store_true",
        help="smoke-test stream size (8 queries, 16-graph database)",
    )
    serve.add_argument(
        "--metrics",
        action="store_true",
        help="also write a RunReport artifact with serving counters",
    )
    serve.add_argument(
        "--trace",
        metavar="FILE",
        help="write a Perfetto-loadable Chrome trace of the run",
    )
    serve.add_argument(
        "--json-out",
        metavar="FILE",
        help="write stream config + serving stats as JSON (CI smoke)",
    )
    serve.add_argument(
        "--request-trace",
        action="store_true",
        help="per-request span trees + stage budget attribution + "
        "tail exemplars (the slowest request's tree is printed)",
    )
    serve.add_argument(
        "--window-seconds",
        type=float,
        default=None,
        metavar="SEC",
        help="record windowed counter rates and latency quantiles on "
        "this interval (see: repro obs tail)",
    )
    serve.add_argument(
        "--window-log",
        metavar="FILE",
        help="append each closed window as a JSONL line (needs "
        "--window-seconds)",
    )
    serve.add_argument(
        "--expo",
        metavar="FILE",
        help="write a Prometheus-style text exposition of the final "
        "registry (plus the latest window's quantiles)",
    )
    serve.set_defaults(handler=_cmd_serve)

    profile = subparsers.add_parser(
        "profile", help="profile a workload into a trace file"
    )
    _add_workload_arguments(profile)
    profile.add_argument("--output", required=True)
    profile.set_defaults(handler=_cmd_profile)

    replay = subparsers.add_parser(
        "replay", help="simulate platforms from a trace file"
    )
    replay.add_argument("--input", required=True)
    replay.add_argument(
        "--platforms",
        nargs="+",
        default=list(DEFAULT_PLATFORMS),
        metavar="SPEC",
        help="platform names or spec strings such as "
        '"CEGMA@bandwidth_gbps=512" (see: python -m repro platforms)',
    )
    replay.set_defaults(handler=_cmd_replay)

    platforms = subparsers.add_parser(
        "platforms",
        help="list registered platforms and their spec-string fields",
    )
    platforms.set_defaults(handler=_cmd_platforms)

    describe = subparsers.add_parser(
        "describe", help="summarize a workload (profiled or from a trace file)"
    )
    describe.add_argument("--model", choices=MODEL_NAMES)
    describe.add_argument("--dataset", choices=DATASET_NAMES)
    describe.add_argument("--pairs", type=int, default=8)
    describe.add_argument("--batch", type=int, default=8)
    describe.add_argument("--seed", type=int, default=0)
    describe.add_argument("--input", help="trace file instead of profiling")
    describe.set_defaults(handler=_cmd_describe)

    render = subparsers.add_parser(
        "render-schedule",
        help="print a window schedule's step table (Fig. 8 style)",
    )
    render.add_argument("--dataset", choices=DATASET_NAMES, default="AIDS")
    render.add_argument(
        "--scheme",
        choices=("single", "double", "joint", "coordinated"),
        default="coordinated",
    )
    render.add_argument("--capacity", type=int, default=8)
    render.add_argument("--max-steps", type=int, default=20)
    render.add_argument(
        "--matrix",
        action="store_true",
        help="also print the annotated adjacency matrix (Fig. 12 style)",
    )
    render.add_argument("--seed", type=int, default=0)
    render.set_defaults(handler=_cmd_render_schedule)

    experiments = subparsers.add_parser(
        "experiments", help="regenerate evaluation figures/tables"
    )
    experiments.add_argument("experiment")
    experiments.add_argument("--full", action="store_true")
    experiments.add_argument("--plot", action="store_true",
                             help="render ASCII charts where available")
    experiments.add_argument(
        "--output", help="write the experiments' raw data as JSON"
    )
    experiments.add_argument("--seed", type=int, default=0)
    experiments.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="pre-warm shared workloads across this many worker processes",
    )
    experiments.add_argument(
        "--profile",
        metavar="FILE",
        help="cProfile the harness; write collapsed stacks to FILE",
    )
    experiments.set_defaults(handler=_cmd_experiments)

    bench = subparsers.add_parser(
        "bench",
        help="run the EMF/harness/search microbenchmarks "
        "(writes BENCH_*.json and appends to the bench history)",
    )
    bench.add_argument("--quick", action="store_true")
    bench.add_argument("--repeats", type=int, default=3)
    bench.add_argument("--workers", type=int, default=None)
    bench.add_argument("--output-dir", default=".")
    bench.add_argument(
        "--only", choices=("emf", "harness", "search"), default=None
    )
    bench.add_argument(
        "--history-dir",
        default=None,
        metavar="DIR",
        help="bench history root (default: results/obs/bench_history, "
        "or the REPRO_BENCH_HISTORY env var; 'off' disables)",
    )
    bench.add_argument(
        "--no-history",
        action="store_true",
        help="do not append this run to the bench history",
    )
    bench.set_defaults(handler=_cmd_bench)

    obs = subparsers.add_parser(
        "obs", help="inspect, validate, and diff RunReport artifacts"
    )
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    obs_show = obs_sub.add_parser(
        "show", help="pretty-print one RunReport JSON file"
    )
    obs_show.add_argument("report")
    obs_show.set_defaults(handler=_cmd_obs)
    obs_validate = obs_sub.add_parser(
        "validate",
        help="schema-check a RunReport (exit 1 on problems; CI smoke)",
    )
    obs_validate.add_argument("report")
    obs_validate.set_defaults(handler=_cmd_obs)
    obs_diff = obs_sub.add_parser(
        "diff", help="field-by-field diff of two RunReports"
    )
    obs_diff.add_argument("old")
    obs_diff.add_argument("new")
    obs_diff.set_defaults(handler=_cmd_obs)

    def _add_store_argument(sub_parser) -> None:
        sub_parser.add_argument(
            "--baseline-dir",
            default=None,
            metavar="DIR",
            help="baseline store root (default: results/obs/baselines)",
        )

    obs_check = obs_sub.add_parser(
        "check",
        help="compare a RunReport against its baseline; exit 1 on "
        "regressions (deterministic counters exact, timings in band)",
    )
    obs_check.add_argument("report")
    _add_store_argument(obs_check)
    obs_check.add_argument(
        "--baseline",
        metavar="FILE",
        help="explicit baseline RunReport (skips the store lookup)",
    )
    obs_check.add_argument(
        "--timing-tol",
        type=float,
        default=None,
        metavar="FRAC",
        help="fail stages slower than baseline by more than FRAC "
        "(e.g. 0.25 = +25%%); default: timings reported as info only",
    )
    obs_check.add_argument(
        "--update",
        action="store_true",
        help="archive the report as the new baseline (after a clean "
        "check, or as the first baseline for its spec)",
    )
    obs_check.add_argument(
        "--retain",
        type=int,
        default=20,
        help="baselines kept per workload when archiving (default 20)",
    )
    obs_check.add_argument(
        "--json-out",
        metavar="FILE",
        help="also write the RegressionReport as JSON",
    )
    obs_check.set_defaults(handler=_cmd_obs_check)

    obs_prov = obs_sub.add_parser(
        "provenance",
        help="inspect/validate the provenance stamp of a JSON artifact",
    )
    obs_prov.add_argument("artifact")
    obs_prov.set_defaults(handler=_cmd_obs_provenance)

    obs_dash = obs_sub.add_parser(
        "dashboard",
        help="render a static HTML dashboard of baseline metric trends",
    )
    _add_store_argument(obs_dash)
    obs_dash.add_argument(
        "--output",
        default=None,
        metavar="FILE",
        help="output path (default: results/obs/dashboard.html)",
    )
    obs_dash.add_argument(
        "--max-points",
        type=int,
        default=30,
        help="baselines per workload shown in trend lines",
    )
    obs_dash.add_argument(
        "--history-dir",
        default=None,
        metavar="DIR",
        help="bench history root for the trajectory page "
        "(default: results/obs/bench_history)",
    )
    obs_dash.set_defaults(handler=_cmd_obs_dashboard)

    obs_baselines = obs_sub.add_parser(
        "baselines", help="list archived baselines per workload"
    )
    _add_store_argument(obs_baselines)
    obs_baselines.set_defaults(handler=_cmd_obs_baselines)

    obs_bench = obs_sub.add_parser(
        "bench",
        help="benchmark history: record runs, gate regressions, "
        "render trends",
    )
    obs_bench_sub = obs_bench.add_subparsers(
        dest="bench_command", required=True
    )

    def _add_history_argument(sub_parser) -> None:
        sub_parser.add_argument(
            "--history-dir",
            default=None,
            metavar="DIR",
            help="bench history root "
            "(default: results/obs/bench_history)",
        )

    obs_bench_record = obs_bench_sub.add_parser(
        "record",
        help="ingest BENCH_*.json files into the history "
        "(idempotent; exit 1 on unreadable files)",
    )
    obs_bench_record.add_argument(
        "files", nargs="+", help="BENCH_*.json payloads to ingest"
    )
    _add_history_argument(obs_bench_record)
    obs_bench_record.set_defaults(handler=_cmd_obs_bench)

    obs_bench_compare = obs_bench_sub.add_parser(
        "compare",
        help="gate the newest history entry per bench against its "
        "config-matching predecessor (exit 1: check drift, "
        "exit 2: timing regression or no baseline)",
    )
    obs_bench_compare.add_argument(
        "--bench",
        default=None,
        metavar="NAME",
        help="gate only this bench (default: all recorded benches)",
    )
    obs_bench_compare.add_argument(
        "--candidate",
        default=None,
        metavar="FILE",
        help="gate this BENCH_*.json payload instead of the newest "
        "recorded entry (the file is not appended)",
    )
    obs_bench_compare.add_argument(
        "--json-out",
        metavar="FILE",
        help="also write the comparison report as JSON",
    )
    _add_history_argument(obs_bench_compare)
    obs_bench_compare.set_defaults(handler=_cmd_obs_bench)

    obs_bench_trend = obs_bench_sub.add_parser(
        "trend",
        help="print each metric's history with changepoints marked",
    )
    obs_bench_trend.add_argument(
        "--bench",
        default=None,
        metavar="NAME",
        help="only this bench (default: all recorded benches)",
    )
    obs_bench_trend.add_argument(
        "--window",
        type=int,
        default=5,
        help="sliding changepoint window (default 5 entries)",
    )
    obs_bench_trend.add_argument(
        "--markdown",
        action="store_true",
        help="print the README speedup table generated from the "
        "newest entries instead",
    )
    obs_bench_trend.add_argument(
        "--json-out",
        metavar="FILE",
        help="also write the trend report as JSON",
    )
    _add_history_argument(obs_bench_trend)
    obs_bench_trend.set_defaults(handler=_cmd_obs_bench)

    obs_tail = obs_sub.add_parser(
        "tail",
        help="render windowed serving telemetry (RunReport v3, a "
        "--window-log JSONL file, or a JSON window list)",
    )
    obs_tail.add_argument("source", help="file holding window snapshots")
    obs_tail.add_argument(
        "--windows",
        type=int,
        default=5,
        metavar="N",
        help="newest windows shown (default 5; 0 = all)",
    )
    obs_tail.add_argument(
        "--prefix",
        default=None,
        metavar="P",
        help="only metrics whose name starts with P "
        "(e.g. search.serve.)",
    )
    obs_tail.set_defaults(handler=_cmd_obs_tail)

    validate = subparsers.add_parser(
        "validate",
        help="cross-check redundant implementation pairs and invariants",
    )
    validate.add_argument(
        "--quick",
        action="store_true",
        help="deterministic tier only (fixed seeds; what CI gates on) — "
        "default also runs the derandomized hypothesis drivers",
    )
    validate.add_argument(
        "--only",
        action="append",
        metavar="NAME",
        help="run only the named check (repeatable; see --list)",
    )
    validate.add_argument(
        "--list",
        action="store_true",
        help="list registered checks and exit",
    )
    validate.add_argument(
        "--smoke",
        action="store_true",
        help="mutation smoke: perturb each implementation and assert "
        "the guarding check trips",
    )
    validate.add_argument(
        "--json-out",
        default=None,
        metavar="FILE",
        help="also write the results as a JSON report",
    )
    validate.set_defaults(handler=_cmd_validate)

    args = parser.parse_args(argv)
    from .obs.logging import configure_logging

    configure_logging(-1 if args.quiet else args.verbose)
    if getattr(args, "platforms", None):
        _check_platforms(parser, args.platforms)
    profile_path = getattr(args, "profile", None)
    if profile_path:
        from .obs.profiling import profiled

        with profiled(profile_path):
            status = args.handler(args)
        print(f"wrote collapsed-stack profile to {profile_path}")
        return status
    return args.handler(args)


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # e.g. piping long output into `head`
        import os

        # Reopen stdout on /dev/null so the interpreter's shutdown
        # flush doesn't raise a second time.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(0)
