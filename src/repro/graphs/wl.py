"""Weisfeiler-Lehman color refinement.

The EMF's duplicate nodes are exactly the nodes that share a
Weisfeiler-Lehman color: sum-aggregation GNN layers refine node features
the way WL refines colors, so two nodes hold identical features at layer
``l`` iff they hold the same WL color after ``l`` refinement rounds
(given identical initial features/colors). This module provides the
graph-theoretic side of that equivalence:

- :func:`wl_colors` — per-round color assignments;
- :func:`wl_color_hashes` — the same refinement with canonical hash
  values instead of graph-local palette integers, comparable *across*
  graphs (the token stream behind the search sketches);
- :func:`unique_color_fraction` — the EMF's unique-node fraction,
  predicted purely from topology (used to calibrate the dataset
  generators without running any model);
- :func:`predicted_remaining_matching` — the Fig. 18 metric for a pair.

``tests/graphs/test_wl.py`` verifies the equivalence against measured
GNN-feature duplicates.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from .graph import Graph
from .pairs import GraphPair

__all__ = [
    "wl_colors",
    "wl_color_hashes",
    "unique_color_fraction",
    "predicted_remaining_matching",
]


def _initial_colors(graph: Graph) -> np.ndarray:
    """Distinct-feature-row coloring, compared bitwise.

    Rows are keyed by their raw bytes — the same comparison the EMF's
    ``bytes`` method uses — so bit-identical rows (including NaN rows,
    which compare unequal under ``==``) share a color.
    """
    features = np.ascontiguousarray(graph.node_features)
    palette: Dict[bytes, int] = {}
    return np.array(
        [palette.setdefault(row.tobytes(), len(palette)) for row in features],
        dtype=np.int64,
    )


def wl_colors(graph: Graph, rounds: int) -> List[np.ndarray]:
    """WL color refinement from the graph's initial features.

    Initial colors are the distinct node-feature rows. Each round, a
    node's color becomes the (old color, multiset of in-neighbor colors)
    signature, canonicalized to small integers. Returns one color array
    per round (``rounds`` entries), excluding the initial coloring.
    """
    if rounds < 0:
        raise ValueError("rounds must be non-negative")
    colors = _initial_colors(graph)
    history: List[np.ndarray] = []
    for _ in range(rounds):
        palette = {}
        refined = []
        for node in range(graph.num_nodes):
            neighborhood = tuple(
                sorted(colors[graph.in_neighbors(node)].tolist())
            )
            refined.append(
                palette.setdefault((int(colors[node]), neighborhood), len(palette))
            )
        colors = np.asarray(refined, dtype=np.int64)
        history.append(colors)
    return history


def wl_color_hashes(
    graph: Graph, rounds: int, seed: int = 0
) -> List[np.ndarray]:
    """WL refinement with canonical hashes instead of palette integers.

    :func:`wl_colors` canonicalizes each round's colors to graph-local
    small integers, so color ``3`` in one graph and color ``3`` in
    another are unrelated. This variant keeps the refinement canonical
    *across* graphs: round 0 is the EMF's XXH32 node tag (the quantized
    feature-row hash of :func:`repro.emf.xxhash.hash_feature_matrix`),
    and each later round hashes the (own hash, sorted in-neighbor
    hashes) signature, so two nodes in different graphs share a hash
    iff they share initial features and refined neighborhoods (up to
    XXH32 collisions, ~1e-9 per pair). Returns ``rounds + 1`` uint64
    arrays including the round-0 tags — the token stream the search
    sketches are built from.
    """
    if rounds < 0:
        raise ValueError("rounds must be non-negative")
    # Lazy import: graphs is a lower layer than emf, and only this
    # function needs the hash.
    from ..emf.xxhash import hash_feature_matrix, xxh32

    hashes = hash_feature_matrix(graph.node_features, seed=seed).astype(
        np.uint64
    )
    history: List[np.ndarray] = [hashes]
    for round_index in range(1, rounds + 1):
        refined = np.empty(graph.num_nodes, dtype=np.uint64)
        round_seed = (seed + round_index) & 0xFFFFFFFF
        for node in range(graph.num_nodes):
            neighborhood = np.sort(hashes[graph.in_neighbors(node)])
            payload = (
                int(hashes[node]).to_bytes(8, "little")
                + neighborhood.astype("<u8").tobytes()
            )
            refined[node] = xxh32(payload, round_seed)
        hashes = refined
        history.append(hashes)
    return history


def unique_color_fraction(graph: Graph, rounds: int = 3) -> float:
    """Fraction of nodes holding a unique WL color after refinement.

    This predicts the EMF's per-graph unique-node fraction at layer
    ``rounds`` without running a model. ``rounds=0`` reports the
    pre-refinement fraction — distinct feature rows — not a degenerate
    single color.
    """
    if graph.num_nodes == 0:
        return 1.0
    history = wl_colors(graph, rounds)
    colors = history[-1] if history else _initial_colors(graph)
    return len(set(colors.tolist())) / graph.num_nodes


def predicted_remaining_matching(pair: GraphPair, rounds: int = 3) -> float:
    """Predicted Fig. 18 metric: u_target * u_query / (n_t * n_q)."""
    if pair.num_matching_pairs == 0:
        return 1.0
    u_t = unique_color_fraction(pair.target, rounds) * pair.target.num_nodes
    u_q = unique_color_fraction(pair.query, rounds) * pair.query.num_nodes
    return (u_t * u_q) / pair.num_matching_pairs
