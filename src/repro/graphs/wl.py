"""Weisfeiler-Lehman color refinement.

The EMF's duplicate nodes are exactly the nodes that share a
Weisfeiler-Lehman color: sum-aggregation GNN layers refine node features
the way WL refines colors, so two nodes hold identical features at layer
``l`` iff they hold the same WL color after ``l`` refinement rounds
(given identical initial features/colors). This module provides the
graph-theoretic side of that equivalence:

- :func:`wl_colors` — per-round color assignments;
- :func:`unique_color_fraction` — the EMF's unique-node fraction,
  predicted purely from topology (used to calibrate the dataset
  generators without running any model);
- :func:`predicted_remaining_matching` — the Fig. 18 metric for a pair.

``tests/graphs/test_wl.py`` verifies the equivalence against measured
GNN-feature duplicates.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from .graph import Graph
from .pairs import GraphPair

__all__ = [
    "wl_colors",
    "unique_color_fraction",
    "predicted_remaining_matching",
]


def wl_colors(graph: Graph, rounds: int) -> List[np.ndarray]:
    """WL color refinement from the graph's initial features.

    Initial colors are the distinct node-feature rows. Each round, a
    node's color becomes the (old color, multiset of in-neighbor colors)
    signature, canonicalized to small integers. Returns one color array
    per round (``rounds`` entries), excluding the initial coloring.
    """
    if rounds < 0:
        raise ValueError("rounds must be non-negative")
    signatures = [tuple(row) for row in graph.node_features]
    palette: Dict[object, int] = {}
    colors = np.array(
        [palette.setdefault(s, len(palette)) for s in signatures],
        dtype=np.int64,
    )
    history: List[np.ndarray] = []
    for _ in range(rounds):
        palette = {}
        refined = []
        for node in range(graph.num_nodes):
            neighborhood = tuple(
                sorted(colors[graph.in_neighbors(node)].tolist())
            )
            refined.append(
                palette.setdefault((int(colors[node]), neighborhood), len(palette))
            )
        colors = np.asarray(refined, dtype=np.int64)
        history.append(colors)
    return history


def unique_color_fraction(graph: Graph, rounds: int = 3) -> float:
    """Fraction of nodes holding a unique WL color after refinement.

    This predicts the EMF's per-graph unique-node fraction at layer
    ``rounds`` without running a model.
    """
    if graph.num_nodes == 0:
        return 1.0
    history = wl_colors(graph, rounds)
    colors = history[-1] if history else np.zeros(graph.num_nodes)
    return len(set(colors.tolist())) / graph.num_nodes


def predicted_remaining_matching(pair: GraphPair, rounds: int = 3) -> float:
    """Predicted Fig. 18 metric: u_target * u_query / (n_t * n_q)."""
    if pair.num_matching_pairs == 0:
        return 1.0
    u_t = unique_color_fraction(pair.target, rounds) * pair.target.num_nodes
    u_q = unique_color_fraction(pair.query, rounds) * pair.query.num_nodes
    return (u_t * u_q) / pair.num_matching_pairs
