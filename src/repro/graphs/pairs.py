"""Graph-pair construction for similarity tasks.

The paper follows GMN-Li's classification setting (Section V-A): given an
original graph, substitute ``n_positive = 1`` edges to produce a *similar*
counterpart and ``n_negative = 4`` edges to produce a *dissimilar* one.
Edge substitution removes an existing undirected edge and inserts a new
one between a previously unconnected node pair.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .graph import Graph

__all__ = ["GraphPair", "substitute_edges", "make_pair", "make_positive_negative_pairs"]

N_POSITIVE = 1
N_NEGATIVE = 4


class GraphPair:
    """A (target, query) graph pair with a similarity label.

    ``label`` is 1 for similar pairs, 0 for dissimilar pairs; ``None``
    when the pair is unlabeled (e.g. raw scaling workloads).
    """

    # __weakref__ lets simulators attach weakly-keyed caches (e.g. the
    # window-schedule memo in repro.sim.engine) without leaking pairs.
    __slots__ = ("target", "query", "label", "__weakref__")

    def __init__(self, target: Graph, query: Graph, label: Optional[int] = None) -> None:
        self.target = target
        self.query = query
        self.label = label

    @property
    def total_nodes(self) -> int:
        return self.target.num_nodes + self.query.num_nodes

    @property
    def num_matching_pairs(self) -> int:
        """All-to-all cross-graph comparisons, |V1| * |V2|."""
        return self.target.num_nodes * self.query.num_nodes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GraphPair(target={self.target.num_nodes}n, "
            f"query={self.query.num_nodes}n, label={self.label})"
        )


def substitute_edges(graph: Graph, num_substitutions: int, rng: np.random.Generator) -> Graph:
    """Replace ``num_substitutions`` undirected edges with fresh ones.

    Each substitution removes one existing edge uniformly at random and
    adds an edge between a uniformly chosen non-adjacent node pair. Node
    features are preserved.
    """
    if num_substitutions < 0:
        raise ValueError("num_substitutions must be non-negative")
    edge_set = graph.undirected_edge_set()
    num_substitutions = min(num_substitutions, len(edge_set))
    n = graph.num_nodes
    max_edges = n * (n - 1) // 2
    edges = list(edge_set)
    for _ in range(num_substitutions):
        if not edges or len(edges) >= max_edges:
            break
        remove_index = int(rng.integers(0, len(edges)))
        edges.pop(remove_index)
        existing = set(edges)
        while True:
            u = int(rng.integers(0, n))
            v = int(rng.integers(0, n))
            if u == v:
                continue
            candidate = (min(u, v), max(u, v))
            if candidate not in existing:
                edges.append(candidate)
                break
    return Graph.from_undirected_edges(n, edges, graph.node_features.copy())


def make_pair(
    original: Graph,
    rng: np.random.Generator,
    similar: bool,
    n_positive: int = N_POSITIVE,
    n_negative: int = N_NEGATIVE,
) -> GraphPair:
    """Build a labeled pair from an original graph by edge substitution."""
    num_subs = n_positive if similar else n_negative
    counterpart = substitute_edges(original, num_subs, rng)
    return GraphPair(original, counterpart, label=1 if similar else 0)


def make_positive_negative_pairs(
    original: Graph,
    rng: np.random.Generator,
    n_positive: int = N_POSITIVE,
    n_negative: int = N_NEGATIVE,
) -> Tuple[GraphPair, GraphPair]:
    """Produce the (similar, dissimilar) pair for one original graph."""
    positive = make_pair(original, rng, similar=True, n_positive=n_positive)
    negative = make_pair(original, rng, similar=False, n_negative=n_negative)
    return positive, negative
