"""Graph substrate: data structures, generators, datasets, batching."""

from .batch import GraphPairBatch, make_batches
from .datasets import (
    DATASET_NAMES,
    DATASETS,
    DatasetSpec,
    generate_graph,
    load_dataset,
    register_dataset,
)
from .generators import (
    MotifSpec,
    barabasi_albert_graph,
    erdos_renyi_graph,
    motif_soup_graph,
    random_graph,
)
from .graph import Graph
from .interop import (
    from_networkx,
    sparse_adjacency,
    sparse_normalized_adjacency,
    to_networkx,
)
from .motifs import MOTIF_BUILDERS, motif_edges
from .stats import dataset_profile, graph_profile
from .wl import (
    predicted_remaining_matching,
    unique_color_fraction,
    wl_color_hashes,
    wl_colors,
)
from .pairs import GraphPair, make_pair, make_positive_negative_pairs, substitute_edges

__all__ = [
    "Graph",
    "GraphPair",
    "GraphPairBatch",
    "MotifSpec",
    "DatasetSpec",
    "DATASETS",
    "DATASET_NAMES",
    "MOTIF_BUILDERS",
    "motif_edges",
    "motif_soup_graph",
    "erdos_renyi_graph",
    "barabasi_albert_graph",
    "random_graph",
    "generate_graph",
    "load_dataset",
    "make_pair",
    "make_positive_negative_pairs",
    "substitute_edges",
    "make_batches",
    "to_networkx",
    "from_networkx",
    "sparse_adjacency",
    "sparse_normalized_adjacency",
    "wl_colors",
    "wl_color_hashes",
    "unique_color_fraction",
    "predicted_remaining_matching",
    "register_dataset",
    "graph_profile",
    "dataset_profile",
]
