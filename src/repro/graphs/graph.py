"""Core graph data structure used throughout the CEGMA reproduction.

Graphs are stored in a compact CSR-like representation backed by numpy
arrays. The representation is intentionally framework-free: the same
``Graph`` object feeds the numpy GMN models, the trace profiler, and the
cycle-level simulators.

Nodes are indexed ``0..num_nodes-1``. Edges are directed internally; an
undirected input graph stores each edge in both directions, which mirrors
how GNN frameworks (and the paper's adjacency-matrix formulation) treat
message passing over undirected graphs.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

__all__ = ["Graph"]


class Graph:
    """An attributed graph with CSR adjacency and dense node features.

    Parameters
    ----------
    num_nodes:
        Number of nodes in the graph.
    edges:
        Iterable of ``(src, dst)`` pairs. Duplicate edges and self loops
        are preserved as given (callers that need canonical undirected
        graphs should use :meth:`from_undirected_edges`).
    node_features:
        Optional ``(num_nodes, feature_dim)`` float array. When omitted,
        every node receives the constant feature ``[1.0]`` which matches
        the "unlabelled graphs, identical initial features" setting used
        in the paper's motivation (Section III-C).
    """

    __slots__ = (
        "num_nodes",
        "src",
        "dst",
        "indptr",
        "neighbors",
        "node_features",
    )

    def __init__(
        self,
        num_nodes: int,
        edges: Iterable[Tuple[int, int]],
        node_features: Optional[np.ndarray] = None,
    ) -> None:
        if num_nodes < 0:
            raise ValueError(f"num_nodes must be non-negative, got {num_nodes}")
        if isinstance(edges, np.ndarray):
            # Fast path for loaders that already hold an (E, 2) array;
            # validation and destination sorting below apply unchanged.
            edge_array = np.asarray(edges, dtype=np.int64)
        else:
            edge_array = np.asarray(list(edges), dtype=np.int64)
        if edge_array.size == 0:
            edge_array = edge_array.reshape(0, 2)
        if edge_array.ndim != 2 or edge_array.shape[1] != 2:
            raise ValueError("edges must be pairs of (src, dst)")
        if edge_array.size and (
            edge_array.min() < 0 or edge_array.max() >= num_nodes
        ):
            raise ValueError("edge endpoints out of range")

        self.num_nodes = int(num_nodes)
        # Sort edges by destination so that CSR rows group incoming
        # messages per destination node (aggregation order).
        order = np.lexsort((edge_array[:, 0], edge_array[:, 1])) if edge_array.size else np.array([], dtype=np.int64)
        edge_array = edge_array[order] if edge_array.size else edge_array
        self.src = np.ascontiguousarray(edge_array[:, 0])
        self.dst = np.ascontiguousarray(edge_array[:, 1])

        # indptr[v]..indptr[v+1] delimits incoming edges of node v.
        counts = np.bincount(self.dst, minlength=num_nodes) if self.num_edges else np.zeros(num_nodes, dtype=np.int64)
        self.indptr = np.concatenate(([0], np.cumsum(counts))).astype(np.int64)
        self.neighbors = self.src  # sources of incoming edges, CSR-ordered

        if node_features is None:
            node_features = np.ones((num_nodes, 1), dtype=np.float64)
        node_features = np.asarray(node_features, dtype=np.float64)
        if node_features.ndim != 2 or node_features.shape[0] != num_nodes:
            raise ValueError(
                "node_features must have shape (num_nodes, feature_dim), got "
                f"{node_features.shape} for {num_nodes} nodes"
            )
        self.node_features = node_features

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_undirected_edges(
        cls,
        num_nodes: int,
        edges: Iterable[Tuple[int, int]],
        node_features: Optional[np.ndarray] = None,
    ) -> "Graph":
        """Build a graph from undirected edges, storing both directions.

        Duplicate undirected edges and self loops are removed.
        """
        canonical = set()
        for u, v in edges:
            if u == v:
                continue
            canonical.add((min(u, v), max(u, v)))
        directed = []
        for u, v in sorted(canonical):
            directed.append((u, v))
            directed.append((v, u))
        return cls(num_nodes, directed, node_features)

    @classmethod
    def from_dense_adjacency(
        cls,
        adjacency: np.ndarray,
        node_features: Optional[np.ndarray] = None,
    ) -> "Graph":
        """Build a graph from a dense 0/1 adjacency matrix."""
        adjacency = np.asarray(adjacency)
        if adjacency.ndim != 2 or adjacency.shape[0] != adjacency.shape[1]:
            raise ValueError("adjacency must be square")
        srcs, dsts = np.nonzero(adjacency)
        return cls(adjacency.shape[0], zip(srcs.tolist(), dsts.tolist()), node_features)

    # ------------------------------------------------------------------
    # Properties and views
    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        """Number of directed edges."""
        return int(self.src.shape[0])

    @property
    def num_undirected_edges(self) -> int:
        """Number of undirected edges, assuming a symmetric edge list."""
        self_loops = int(np.count_nonzero(self.src == self.dst))
        return (self.num_edges - self_loops) // 2 + self_loops

    @property
    def feature_dim(self) -> int:
        return int(self.node_features.shape[1])

    def in_degree(self) -> np.ndarray:
        """Incoming degree per node."""
        return np.diff(self.indptr)

    def out_degree(self) -> np.ndarray:
        """Outgoing degree per node."""
        return np.bincount(self.src, minlength=self.num_nodes)

    def in_neighbors(self, node: int) -> np.ndarray:
        """Sources of the edges incoming to ``node``."""
        return self.neighbors[self.indptr[node] : self.indptr[node + 1]]

    def edge_list(self) -> np.ndarray:
        """Directed edges as an ``(E, 2)`` array of ``(src, dst)``."""
        return np.stack([self.src, self.dst], axis=1)

    def dense_adjacency(self) -> np.ndarray:
        """Dense ``(N, N)`` 0/1 adjacency matrix, ``A[src, dst] = 1``."""
        adjacency = np.zeros((self.num_nodes, self.num_nodes), dtype=np.float64)
        if self.num_edges:
            adjacency[self.src, self.dst] = 1.0
        return adjacency

    def normalized_adjacency(self, add_self_loops: bool = True) -> np.ndarray:
        """Symmetric-normalized adjacency ``D^-1/2 (A + I) D^-1/2``.

        This is the propagation matrix of a standard GCN layer (Kipf &
        Welling), which the paper's GraphSim/SimGNN embeddings use.
        """
        adjacency = self.dense_adjacency()
        if add_self_loops:
            adjacency = adjacency + np.eye(self.num_nodes)
        degree = adjacency.sum(axis=1)
        with np.errstate(divide="ignore"):
            inv_sqrt = 1.0 / np.sqrt(degree)
        inv_sqrt[~np.isfinite(inv_sqrt)] = 0.0
        return adjacency * inv_sqrt[:, None] * inv_sqrt[None, :]

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def with_features(self, node_features: np.ndarray) -> "Graph":
        """Return a copy of this graph with different node features."""
        return Graph(self.num_nodes, zip(self.src.tolist(), self.dst.tolist()), node_features)

    def undirected_edge_set(self) -> set:
        """Canonical set of undirected edges (u < v), excluding loops."""
        pairs = set()
        for u, v in zip(self.src.tolist(), self.dst.tolist()):
            if u != v:
                pairs.add((min(u, v), max(u, v)))
        return pairs

    def copy(self) -> "Graph":
        return Graph(
            self.num_nodes,
            zip(self.src.tolist(), self.dst.tolist()),
            self.node_features.copy(),
        )

    # ------------------------------------------------------------------
    # Dunder methods
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Graph(num_nodes={self.num_nodes}, num_edges={self.num_edges}, "
            f"feature_dim={self.feature_dim})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return (
            self.num_nodes == other.num_nodes
            and np.array_equal(self.src, other.src)
            and np.array_equal(self.dst, other.dst)
            and np.array_equal(self.node_features, other.node_features)
        )

    def __hash__(self) -> int:
        return hash(
            (
                self.num_nodes,
                self.src.tobytes(),
                self.dst.tobytes(),
                self.node_features.tobytes(),
            )
        )
