"""Synthetic graph generators.

The paper evaluates on six public graph-classification datasets (Table II).
Those datasets are not bundled here, so we substitute generators that match
the published statistics (average node/edge counts) *and* the structural
property CEGMA exploits: repeated isomorphic subgraphs. Each generator
composes repeated motif copies (high WL-color duplication) with a random
component (high WL-color diversity), so the duplicate-node rate is
controllable per dataset.

The ``random_graph`` generator follows the protocol of GMN-Li (Li et al.,
ICML'19), used by the paper for the large-graph study (Figs. 2 and 25):
Erdos-Renyi graphs with an expected degree, paired by edge substitution.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from .graph import Graph
from .motifs import MOTIF_BUILDERS, motif_edges

__all__ = [
    "erdos_renyi_graph",
    "barabasi_albert_graph",
    "random_graph",
    "motif_soup_graph",
    "MotifSpec",
]

Edge = Tuple[int, int]


class MotifSpec:
    """A motif type to replicate inside a motif-soup graph.

    Parameters
    ----------
    name:
        Motif family name from :data:`repro.graphs.motifs.MOTIF_BUILDERS`.
    parameter:
        Size parameter passed to the motif builder.
    copies:
        How many identical copies to instantiate. Copies beyond the first
        contribute only duplicate WL colors, i.e. duplicate node features
        in a GNN over unlabelled nodes.
    """

    __slots__ = ("name", "parameter", "copies")

    def __init__(self, name: str, parameter: int, copies: int) -> None:
        if name not in MOTIF_BUILDERS:
            raise KeyError(f"unknown motif {name!r}")
        if copies < 1:
            raise ValueError("copies must be >= 1")
        self.name = name
        self.parameter = parameter
        self.copies = copies

    @property
    def nodes_per_copy(self) -> int:
        num_nodes, _ = motif_edges(self.name, self.parameter)
        return num_nodes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MotifSpec({self.name!r}, {self.parameter}, copies={self.copies})"


def erdos_renyi_graph(
    num_nodes: int,
    num_edges: int,
    rng: np.random.Generator,
) -> Graph:
    """G(n, m) random graph with exactly ``num_edges`` undirected edges."""
    max_edges = num_nodes * (num_nodes - 1) // 2
    num_edges = min(num_edges, max_edges)
    chosen: set = set()
    # Rejection sampling is fast for the sparse graphs we generate.
    while len(chosen) < num_edges:
        need = num_edges - len(chosen)
        us = rng.integers(0, num_nodes, size=2 * need + 8)
        vs = rng.integers(0, num_nodes, size=2 * need + 8)
        for u, v in zip(us.tolist(), vs.tolist()):
            if u == v:
                continue
            chosen.add((min(u, v), max(u, v)))
            if len(chosen) == num_edges:
                break
    return Graph.from_undirected_edges(num_nodes, sorted(chosen))


def barabasi_albert_graph(
    num_nodes: int,
    attach: int,
    rng: np.random.Generator,
) -> Graph:
    """Preferential-attachment graph: each new node attaches to ``attach``
    existing nodes chosen proportionally to degree."""
    if num_nodes < attach + 1:
        raise ValueError("num_nodes must exceed attach")
    edges: List[Edge] = []
    targets = list(range(attach))
    repeated: List[int] = list(range(attach))
    for new_node in range(attach, num_nodes):
        chosen = set()
        while len(chosen) < attach:
            pick = repeated[rng.integers(0, len(repeated))]
            chosen.add(pick)
        for t in chosen:
            edges.append((t, new_node))
            repeated.append(t)
            repeated.append(new_node)
    return Graph.from_undirected_edges(num_nodes, edges)


def random_graph(
    num_nodes: int,
    expected_degree: float,
    rng: np.random.Generator,
) -> Graph:
    """Random graph generation following GMN-Li's protocol.

    Li et al. generate Erdos-Renyi graphs with ``p = expected_degree / n``
    for their synthetic similarity experiments; the CEGMA paper reuses the
    recipe for its large-graph scaling study.
    """
    num_edges = int(round(expected_degree * num_nodes / 2.0))
    return erdos_renyi_graph(num_nodes, num_edges, rng)


def motif_soup_graph(
    motif_specs: Sequence[MotifSpec],
    random_nodes: int,
    random_edges: int,
    rng: np.random.Generator,
    bridge_fraction: float = 0.0,
    num_labels: int = 1,
) -> Graph:
    """Compose repeated motif copies with a random component.

    Parameters
    ----------
    motif_specs:
        Motif types and copy counts. Copies are structurally identical,
        so their nodes carry duplicate WL colors at every GNN layer.
    random_nodes, random_edges:
        Size of the Erdos-Renyi component providing WL-color diversity
        (its nodes are unlikely to be duplicates).
    bridge_fraction:
        Fraction of motif copies attached to the random component with a
        single bridge edge (0 keeps them disjoint, preserving exact
        duplication; >0 trades duplication for connectivity).
    num_labels:
        Number of node label classes. Labels are one-hot initial features
        assigned per *motif position*, so copies of the same motif still
        duplicate exactly; labels only diversify across motif positions
        (this models small-molecule atom types in AIDS).
    """
    edges: List[Edge] = []
    labels: List[int] = []
    offset = 0
    copy_ports: List[int] = []
    for spec in motif_specs:
        num_motif_nodes, motif_edge_list = motif_edges(spec.name, spec.parameter)
        # One deterministic label per position within the motif, shared by
        # all copies so that copies remain exact duplicates.
        position_labels = rng.integers(0, num_labels, size=num_motif_nodes)
        for _ in range(spec.copies):
            edges.extend((offset + u, offset + v) for u, v in motif_edge_list)
            labels.extend(position_labels.tolist())
            copy_ports.append(offset)
            offset += num_motif_nodes

    random_offset = offset
    if random_nodes:
        random_component = erdos_renyi_graph(random_nodes, random_edges, rng)
        for u, v in random_component.undirected_edge_set():
            edges.append((random_offset + u, random_offset + v))
        labels.extend(rng.integers(0, num_labels, size=random_nodes).tolist())
        offset += random_nodes

    if bridge_fraction > 0.0 and random_nodes:
        num_bridges = int(round(bridge_fraction * len(copy_ports)))
        for port in rng.permutation(copy_ports)[:num_bridges].tolist():
            anchor = random_offset + int(rng.integers(0, random_nodes))
            edges.append((port, anchor))

    features = np.zeros((offset, max(num_labels, 1)), dtype=np.float64)
    if offset:
        features[np.arange(offset), np.asarray(labels, dtype=np.int64)] = 1.0
    return Graph.from_undirected_edges(offset, edges, features)
