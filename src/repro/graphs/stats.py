"""Graph statistics: profiles of datasets and generated graphs.

Quantifies what the synthetic datasets look like beyond Table II's
node/edge averages: degree distribution, clustering, connectivity, and
the duplicate structure (WL unique fraction). Used by the
``dataset_profile`` experiment and available for users validating their
own registered datasets.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import networkx as nx
import numpy as np

from .graph import Graph
from .interop import to_networkx
from .wl import unique_color_fraction

__all__ = ["graph_profile", "dataset_profile"]


def graph_profile(graph: Graph, wl_rounds: int = 3) -> Dict[str, float]:
    """Structural summary of one graph."""
    degrees = graph.in_degree()
    nx_graph = to_networkx(graph)
    num_components = (
        nx.number_connected_components(nx_graph) if graph.num_nodes else 0
    )
    clustering = (
        float(nx.average_clustering(nx_graph)) if graph.num_nodes else 0.0
    )
    return {
        "num_nodes": float(graph.num_nodes),
        "num_edges": float(graph.num_undirected_edges),
        "mean_degree": float(degrees.mean()) if graph.num_nodes else 0.0,
        "max_degree": float(degrees.max()) if graph.num_nodes else 0.0,
        "degree_std": float(degrees.std()) if graph.num_nodes else 0.0,
        "clustering": clustering,
        "num_components": float(num_components),
        "wl_unique_fraction": unique_color_fraction(graph, wl_rounds),
    }


def dataset_profile(
    graphs: Sequence[Graph], wl_rounds: int = 3
) -> Dict[str, float]:
    """Mean structural summary over a sample of graphs."""
    if not graphs:
        raise ValueError("need at least one graph")
    profiles: List[Dict[str, float]] = [
        graph_profile(graph, wl_rounds) for graph in graphs
    ]
    return {
        key: float(np.mean([profile[key] for profile in profiles]))
        for key in profiles[0]
    }
