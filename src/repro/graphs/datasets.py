"""Dataset registry mirroring Table II of the paper.

The six public datasets (AIDS, COLLAB, GITHUB, RD-B, RD-5K, RD-12K) are
substituted by synthetic generators calibrated to the published statistics
(average nodes/edges, number of test pairs) and to the duplicate-node
rates the paper measures (Fig. 18: ~67% of matchings removed on AIDS,
rising to ~97% on RD-5K). See DESIGN.md for the substitution rationale.

Each recipe composes repeated motifs (exact duplicate subgraphs, the
structure EMF exploits) with an Erdos-Renyi component (unique structure).
Per-dataset recipes reflect the domain: molecule-like rings/paths with a
small atom-label alphabet for AIDS, dense replicated communities for
COLLAB, hub-and-spoke stars for GITHUB and the Reddit datasets.

COLLAB deviation: the real COLLAB averages ~2458 edges on ~74 nodes
(near-complete graphs). Disjoint duplicate communities cannot reach that
density, so our COLLAB-like graphs keep the node count and community
structure but are ~3x sparser; the matching stage (which depends on node
counts, not edge counts) is unaffected, and the embedding stage remains
the densest of the six datasets, preserving the FLOP ordering of Fig. 3.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from .generators import MotifSpec, erdos_renyi_graph, motif_soup_graph
from .graph import Graph
from .pairs import GraphPair, make_positive_negative_pairs

__all__ = [
    "DatasetSpec",
    "DATASETS",
    "DATASET_NAMES",
    "load_dataset",
    "generate_graph",
    "register_dataset",
]


def _scaled(value: int, scale: float, minimum: int = 1) -> int:
    return max(minimum, int(round(value * scale)))


def _aids_graph(rng: np.random.Generator, scale: float) -> Graph:
    """Small molecule-like graphs: rings and short chains, 4 atom labels."""
    specs = [
        MotifSpec("ring", max(3, _scaled(5, scale)), copies=2),
        MotifSpec("path", max(2, _scaled(3, scale)), copies=2),
    ]
    return motif_soup_graph(
        specs,
        random_nodes=1,
        random_edges=0,
        rng=rng,
        num_labels=2,
    )


def _collab_graph(rng: np.random.Generator, scale: float) -> Graph:
    """Replicated dense ego-communities.

    Several dense Erdos-Renyi communities, each replicated a few times.
    Replication produces the duplicate-node structure; keeping the
    communities small and disjoint localizes the damage a single edge
    substitution does to WL colors (a perturbation recolors at most one
    community copy, not the whole graph).
    """
    community_plan = (
        # (community size, intra edges, copies)
        (_scaled(14, scale, minimum=4), _scaled(60, scale, minimum=4), 3),
        (_scaled(12, scale, minimum=4), _scaled(45, scale, minimum=4), 2),
        (_scaled(8, scale, minimum=4), _scaled(20, scale, minimum=4), 1),
    )
    edges = []
    offset = 0
    for size, intra_edges, copies in community_plan:
        intra_edges = min(intra_edges, size * (size - 1) // 2)
        base = erdos_renyi_graph(size, intra_edges, rng)
        base_edges = sorted(base.undirected_edge_set())
        for _ in range(copies):
            edges.extend((offset + u, offset + v) for u, v in base_edges)
            offset += size
    return Graph.from_undirected_edges(offset, edges)


def _github_graph(rng: np.random.Generator, scale: float) -> Graph:
    """Hub-and-spoke stars plus rings, as in developer-follower graphs."""
    specs = [
        MotifSpec("star", max(3, _scaled(15, scale)), copies=3),
        MotifSpec("star", max(3, _scaled(9, scale)), copies=2),
        MotifSpec("wheel", max(4, _scaled(10, scale)), copies=2),
    ]
    return motif_soup_graph(
        specs,
        random_nodes=_scaled(30, scale),
        random_edges=_scaled(130, scale),
        rng=rng,
    )


def _reddit_graph(
    rng: np.random.Generator,
    scale: float,
    star_sizes: Sequence[int],
    star_copies: Sequence[int],
    tree_copies: int,
    path_copies: int,
    random_nodes: int,
    random_edges: int,
) -> Graph:
    specs = [
        MotifSpec("star", max(3, _scaled(size, scale)), copies=copies)
        for size, copies in zip(star_sizes, star_copies)
    ]
    if tree_copies:
        specs.append(MotifSpec("binary_tree", 4, copies=tree_copies))
    if path_copies:
        specs.append(MotifSpec("path", max(2, _scaled(6, scale)), copies=path_copies))
    return motif_soup_graph(
        specs,
        random_nodes=_scaled(random_nodes, scale),
        random_edges=_scaled(random_edges, scale),
        rng=rng,
    )


def _rdb_graph(rng: np.random.Generator, scale: float) -> Graph:
    return _reddit_graph(rng, scale, (40, 25), (4, 4), 2, 3, 90, 140)


def _rd5k_graph(rng: np.random.Generator, scale: float) -> Graph:
    return _reddit_graph(rng, scale, (45, 30), (5, 4), 3, 0, 45, 100)


def _rd12k_graph(rng: np.random.Generator, scale: float) -> Graph:
    return _reddit_graph(rng, scale, (35, 22), (4, 4), 2, 3, 80, 150)


class DatasetSpec:
    """One dataset row of Table II plus its synthetic recipe."""

    __slots__ = (
        "name",
        "avg_nodes",
        "avg_edges",
        "num_pairs",
        "scale_class",
        "builder",
    )

    def __init__(
        self,
        name: str,
        avg_nodes: float,
        avg_edges: float,
        num_pairs: int,
        scale_class: str,
        builder: Callable[[np.random.Generator, float], Graph],
    ) -> None:
        self.name = name
        self.avg_nodes = avg_nodes
        self.avg_edges = avg_edges
        self.num_pairs = num_pairs
        self.scale_class = scale_class
        self.builder = builder

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DatasetSpec({self.name!r}, avg_nodes={self.avg_nodes})"


DATASETS: Dict[str, DatasetSpec] = {
    "AIDS": DatasetSpec("AIDS", 15.69, 16.20, 200, "small", _aids_graph),
    "COLLAB": DatasetSpec("COLLAB", 74.49, 2457.78, 500, "small", _collab_graph),
    "GITHUB": DatasetSpec("GITHUB", 113.79, 234.64, 1273, "middle", _github_graph),
    "RD-B": DatasetSpec("RD-B", 429.63, 497.75, 200, "middle", _rdb_graph),
    "RD-5K": DatasetSpec("RD-5K", 508.52, 594.87, 500, "large", _rd5k_graph),
    "RD-12K": DatasetSpec("RD-12K", 391.41, 456.89, 1193, "large", _rd12k_graph),
}

DATASET_NAMES: List[str] = list(DATASETS)


def register_dataset(spec: DatasetSpec, overwrite: bool = False) -> None:
    """Register a custom dataset for use throughout the library.

    After registration the dataset works everywhere a built-in name
    does: ``load_dataset``, ``simulate_workload``, the CLI, and the
    experiment runners. ``overwrite=False`` protects the six Table II
    datasets from accidental shadowing.
    """
    if not isinstance(spec, DatasetSpec):
        raise TypeError("spec must be a DatasetSpec")
    if spec.name in DATASETS and not overwrite:
        raise ValueError(
            f"dataset {spec.name!r} already registered; pass overwrite=True"
        )
    DATASETS[spec.name] = spec
    if spec.name not in DATASET_NAMES:
        DATASET_NAMES.append(spec.name)


def generate_graph(name: str, rng: np.random.Generator, scale_jitter: float = 0.15) -> Graph:
    """Sample one graph from a dataset's recipe.

    ``scale_jitter`` controls the size variation around the dataset's
    average (uniform in ``[1 - jitter, 1 + jitter]``).
    """
    spec = DATASETS[name]
    scale = float(rng.uniform(1.0 - scale_jitter, 1.0 + scale_jitter))
    return spec.builder(rng, scale)


def load_dataset(
    name: str,
    seed: int = 0,
    num_pairs: Optional[int] = None,
    scale_jitter: float = 0.15,
) -> List[GraphPair]:
    """Generate the test split of a dataset as labeled graph pairs.

    Pairs alternate similar/dissimilar, following the paper's protocol of
    producing one positive (1 edge substituted) and one negative (4 edges
    substituted) counterpart per original graph.

    ``num_pairs`` defaults to the Table II test-set size; callers running
    quick experiments can request fewer pairs.
    """
    if name not in DATASETS:
        raise KeyError(f"unknown dataset {name!r}; known: {DATASET_NAMES}")
    spec = DATASETS[name]
    total = spec.num_pairs if num_pairs is None else num_pairs
    rng = np.random.default_rng(seed)
    pairs: List[GraphPair] = []
    while len(pairs) < total:
        original = generate_graph(name, rng, scale_jitter)
        positive, negative = make_positive_negative_pairs(original, rng)
        pairs.append(positive)
        if len(pairs) < total:
            pairs.append(negative)
    return pairs
