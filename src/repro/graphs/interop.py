"""Interoperability with networkx and scipy.sparse.

- networkx conversion lets users bring their own graphs (and lets the
  test-suite verify motif copies are genuinely isomorphic);
- the scipy CSR propagation matrix keeps the numpy GMN models usable on
  the multi-thousand-node graphs of the large-graph study (Fig. 25),
  where a dense (n x n) adjacency would be wasteful.
"""

from __future__ import annotations

from typing import Optional

import networkx as nx
import numpy as np
import scipy.sparse as sp

from .graph import Graph

__all__ = [
    "propagation_matrix",
    "to_networkx",
    "from_networkx",
    "sparse_adjacency",
    "sparse_normalized_adjacency",
]


def to_networkx(graph: Graph) -> nx.Graph:
    """Convert to an undirected networkx graph (features as 'x' attrs).

    Assumes the Graph stores each undirected edge in both directions
    (the :meth:`Graph.from_undirected_edges` convention).
    """
    result = nx.Graph()
    for node in range(graph.num_nodes):
        result.add_node(node, x=graph.node_features[node].tolist())
    result.add_edges_from(graph.undirected_edge_set())
    return result


def from_networkx(
    graph: nx.Graph, feature_key: Optional[str] = "x"
) -> Graph:
    """Build a Graph from a networkx graph.

    Node labels must be hashable; they are relabeled to ``0..n-1`` in
    sorted order. Features come from the ``feature_key`` node attribute
    when every node carries it, else default to ones.
    """
    nodes = sorted(graph.nodes)
    index = {node: i for i, node in enumerate(nodes)}
    edges = [(index[u], index[v]) for u, v in graph.edges]
    features = None
    if feature_key is not None and all(
        feature_key in graph.nodes[node] for node in nodes
    ):
        features = np.asarray(
            [np.atleast_1d(graph.nodes[node][feature_key]) for node in nodes],
            dtype=np.float64,
        )
    return Graph.from_undirected_edges(len(nodes), edges, features)


def sparse_adjacency(graph: Graph) -> sp.csr_matrix:
    """Directed adjacency as a scipy CSR matrix, ``A[src, dst] = 1``."""
    data = np.ones(graph.num_edges)
    return sp.csr_matrix(
        (data, (graph.src, graph.dst)),
        shape=(graph.num_nodes, graph.num_nodes),
    )


def sparse_normalized_adjacency(
    graph: Graph, add_self_loops: bool = True
) -> sp.csr_matrix:
    """Sparse ``D^-1/2 (A + I) D^-1/2``; equals the dense version."""
    adjacency = sparse_adjacency(graph)
    if add_self_loops:
        adjacency = adjacency + sp.eye(graph.num_nodes, format="csr")
    degree = np.asarray(adjacency.sum(axis=1)).ravel()
    with np.errstate(divide="ignore"):
        inv_sqrt = 1.0 / np.sqrt(degree)
    inv_sqrt[~np.isfinite(inv_sqrt)] = 0.0
    scaling = sp.diags(inv_sqrt)
    return (scaling @ adjacency @ scaling).tocsr()


# Above this node count the dense (n x n) propagation matrix becomes
# wasteful; GCN-style models switch to the sparse path.
SPARSE_THRESHOLD = 1024


def propagation_matrix(graph: Graph, add_self_loops: bool = True):
    """Normalized propagation matrix, dense or sparse by graph size.

    Returns the dense ``numpy`` matrix for small graphs and the scipy
    CSR equivalent beyond :data:`SPARSE_THRESHOLD` nodes; both support
    the ``@ features`` product the GCN layers perform.
    """
    if graph.num_nodes > SPARSE_THRESHOLD:
        return sparse_normalized_adjacency(graph, add_self_loops)
    return graph.normalized_adjacency(add_self_loops)
