"""Batched graph pairs and the global adjacency matrix (Fig. 15).

CEGMA processes batches of graph pairs against a single *global adjacency
matrix*: all target-graph adjacencies are packed into the top-left block,
all query-graph adjacencies into the bottom-right block, and the
cross-graph matching pairs occupy the top-right block (block-diagonal,
one block per pair, since nodes are only matched within their own pair).
"""

from __future__ import annotations

from typing import Iterator, List, Sequence, Tuple

import numpy as np

from .graph import Graph
from .pairs import GraphPair

__all__ = ["GraphPairBatch", "make_batches"]


class GraphPairBatch:
    """A batch of graph pairs with global-index bookkeeping.

    Global node indexing follows Fig. 15: target nodes of all pairs come
    first (pair order), then query nodes of all pairs. ``target_offsets``
    and ``query_offsets`` give each pair's starting global index.
    """

    __slots__ = (
        "pairs",
        "target_offsets",
        "query_offsets",
        "num_target_nodes",
        "num_query_nodes",
    )

    def __init__(self, pairs: Sequence[GraphPair]) -> None:
        if not pairs:
            raise ValueError("batch must contain at least one pair")
        self.pairs: List[GraphPair] = list(pairs)
        self.target_offsets: List[int] = []
        self.query_offsets: List[int] = []
        offset = 0
        for pair in self.pairs:
            self.target_offsets.append(offset)
            offset += pair.target.num_nodes
        self.num_target_nodes = offset
        for pair in self.pairs:
            self.query_offsets.append(offset)
            offset += pair.query.num_nodes
        self.num_query_nodes = offset - self.num_target_nodes

    # ------------------------------------------------------------------
    @property
    def batch_size(self) -> int:
        return len(self.pairs)

    @property
    def total_nodes(self) -> int:
        return self.num_target_nodes + self.num_query_nodes

    @property
    def num_matching_pairs(self) -> int:
        """All-to-all cross-graph comparisons summed over the batch."""
        return sum(pair.num_matching_pairs for pair in self.pairs)

    @property
    def num_intra_edges(self) -> int:
        """Directed intra-graph edges summed over targets and queries."""
        return sum(
            pair.target.num_edges + pair.query.num_edges for pair in self.pairs
        )

    # ------------------------------------------------------------------
    def iter_with_offsets(self) -> Iterator[Tuple[GraphPair, int, int]]:
        """Yield ``(pair, target_offset, query_offset)`` per pair."""
        for pair, t_off, q_off in zip(
            self.pairs, self.target_offsets, self.query_offsets
        ):
            yield pair, t_off, q_off

    def global_adjacency(self) -> np.ndarray:
        """Dense global adjacency matrix per Fig. 15.

        ``A[i, j] = 1`` for intra-graph edges (target block top-left,
        query block bottom-right) and ``A[i, j] = 2`` for cross-graph
        matching pairs (top-right block), so callers can distinguish the
        two workloads visually and programmatically.
        """
        n = self.total_nodes
        matrix = np.zeros((n, n), dtype=np.int8)
        for pair, t_off, q_off in self.iter_with_offsets():
            target, query = pair.target, pair.query
            matrix[t_off + target.src, t_off + target.dst] = 1
            matrix[q_off + query.src, q_off + query.dst] = 1
            matrix[
                t_off : t_off + target.num_nodes, q_off : q_off + query.num_nodes
            ] = 2
        return matrix

    def global_matching_mask(self) -> np.ndarray:
        """Boolean mask over (target node, query node) global indices."""
        mask = np.zeros(
            (self.num_target_nodes, self.num_query_nodes), dtype=bool
        )
        for pair, t_off, q_off in self.iter_with_offsets():
            q_local = q_off - self.num_target_nodes
            mask[
                t_off : t_off + pair.target.num_nodes,
                q_local : q_local + pair.query.num_nodes,
            ] = True
        return mask

    def stacked_target_features(self) -> np.ndarray:
        return np.vstack([pair.target.node_features for pair in self.pairs])

    def stacked_query_features(self) -> np.ndarray:
        return np.vstack([pair.query.node_features for pair in self.pairs])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GraphPairBatch(batch_size={self.batch_size}, "
            f"total_nodes={self.total_nodes})"
        )


def make_batches(
    pairs: Sequence[GraphPair], batch_size: int
) -> List[GraphPairBatch]:
    """Split pairs into batches of ``batch_size`` (last batch may be short)."""
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    return [
        GraphPairBatch(pairs[i : i + batch_size])
        for i in range(0, len(pairs), batch_size)
    ]
