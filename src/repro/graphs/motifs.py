"""Motif construction helpers.

The CEGMA paper observes (Section III-C) that duplicate node features arise
from isomorphic l-hop subgraphs -- "the same molecular within a
macromolecule or the duplicate components within an object". Our synthetic
datasets therefore build graphs out of repeated *motifs*: small structured
subgraphs (rings, stars, cliques, paths, trees) whose repeated copies
produce exactly the duplicate-feature structure the Elastic Matching
Filter exploits.

Every function returns a list of undirected edges over nodes
``0..size-1``; callers offset node ids when stitching motifs together.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

__all__ = [
    "ring",
    "star",
    "clique",
    "path",
    "binary_tree",
    "wheel",
    "ladder",
    "grid",
    "complete_bipartite",
    "caterpillar",
    "MOTIF_BUILDERS",
    "motif_edges",
]

Edge = Tuple[int, int]


def ring(size: int) -> List[Edge]:
    """Cycle graph C_size. All nodes are WL-equivalent (one color class)."""
    if size < 3:
        raise ValueError(f"ring needs >= 3 nodes, got {size}")
    return [(i, (i + 1) % size) for i in range(size)]


def star(size: int) -> List[Edge]:
    """Star S_{size-1}: node 0 is the hub. Two WL color classes."""
    if size < 2:
        raise ValueError(f"star needs >= 2 nodes, got {size}")
    return [(0, i) for i in range(1, size)]


def clique(size: int) -> List[Edge]:
    """Complete graph K_size. One WL color class."""
    if size < 2:
        raise ValueError(f"clique needs >= 2 nodes, got {size}")
    return [(i, j) for i in range(size) for j in range(i + 1, size)]


def path(size: int) -> List[Edge]:
    """Path P_size. ceil(size/2) WL color classes (mirror symmetry)."""
    if size < 2:
        raise ValueError(f"path needs >= 2 nodes, got {size}")
    return [(i, i + 1) for i in range(size - 1)]


def binary_tree(depth: int) -> List[Edge]:
    """Complete binary tree of the given depth (depth 0 = single node).

    Nodes at the same depth share a WL color class.
    """
    if depth < 1:
        raise ValueError(f"binary_tree needs depth >= 1, got {depth}")
    edges: List[Edge] = []
    num_nodes = 2 ** (depth + 1) - 1
    for child in range(1, num_nodes):
        edges.append(((child - 1) // 2, child))
    return edges


def wheel(size: int) -> List[Edge]:
    """Wheel W_{size-1}: hub node 0 connected to a ring of size-1 nodes."""
    if size < 4:
        raise ValueError(f"wheel needs >= 4 nodes, got {size}")
    rim = size - 1
    edges = [(0, i) for i in range(1, size)]
    edges += [(1 + i, 1 + (i + 1) % rim) for i in range(rim)]
    return edges


def ladder(rungs: int) -> List[Edge]:
    """Ladder graph with ``rungs`` rungs (2*rungs nodes)."""
    if rungs < 2:
        raise ValueError(f"ladder needs >= 2 rungs, got {rungs}")
    edges: List[Edge] = []
    for i in range(rungs):
        edges.append((2 * i, 2 * i + 1))
        if i + 1 < rungs:
            edges.append((2 * i, 2 * (i + 1)))
            edges.append((2 * i + 1, 2 * (i + 1) + 1))
    return edges


def grid(side: int) -> List[Edge]:
    """Square grid graph with ``side`` x ``side`` nodes.

    Interior nodes share WL colors by symmetry class (center, edges,
    corners), modelling lattice-like point-cloud structure.
    """
    if side < 2:
        raise ValueError(f"grid needs side >= 2, got {side}")
    edges: List[Edge] = []
    for row in range(side):
        for col in range(side):
            node = row * side + col
            if col + 1 < side:
                edges.append((node, node + 1))
            if row + 1 < side:
                edges.append((node, node + side))
    return edges


def complete_bipartite(half: int) -> List[Edge]:
    """K_{half,half}: two WL color classes collapse to one (symmetry)."""
    if half < 1:
        raise ValueError(f"complete_bipartite needs half >= 1, got {half}")
    return [(i, half + j) for i in range(half) for j in range(half)]


def caterpillar(spine: int) -> List[Edge]:
    """Caterpillar: a path of ``spine`` nodes, one leaf per spine node.

    2*spine nodes; the REDDIT thread shape (discussion chain with
    replies hanging off it).
    """
    if spine < 2:
        raise ValueError(f"caterpillar needs spine >= 2, got {spine}")
    edges: List[Edge] = [(i, i + 1) for i in range(spine - 1)]
    edges += [(i, spine + i) for i in range(spine)]
    return edges


def motif_size(name: str, parameter: int) -> int:
    """Number of nodes a motif with the given parameter spans."""
    if name == "binary_tree":
        return 2 ** (parameter + 1) - 1
    if name == "ladder":
        return 2 * parameter
    if name == "grid":
        return parameter * parameter
    if name == "complete_bipartite":
        return 2 * parameter
    if name == "caterpillar":
        return 2 * parameter
    return parameter


MOTIF_BUILDERS: Dict[str, Callable[[int], List[Edge]]] = {
    "ring": ring,
    "star": star,
    "clique": clique,
    "path": path,
    "binary_tree": binary_tree,
    "wheel": wheel,
    "ladder": ladder,
    "grid": grid,
    "complete_bipartite": complete_bipartite,
    "caterpillar": caterpillar,
}


def motif_edges(name: str, parameter: int) -> Tuple[int, List[Edge]]:
    """Return ``(num_nodes, edges)`` for a named motif.

    ``parameter`` is the node count for most motifs, the depth for
    ``binary_tree``, and the rung count for ``ladder``.
    """
    if name not in MOTIF_BUILDERS:
        raise KeyError(f"unknown motif {name!r}; known: {sorted(MOTIF_BUILDERS)}")
    return motif_size(name, parameter), MOTIF_BUILDERS[name](parameter)
