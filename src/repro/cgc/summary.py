"""Array-form window-schedule summaries for the batched simulator.

The cycle simulators never look at *which* nodes a window holds — only
at per-step occupancy, miss, matching, and edge counts plus a few
totals. :class:`ScheduleSummary` captures exactly that as flat int64
arrays, which is what the batched engine stacks across pairs and what
the trace-cache sidecar persists so warm runs skip scheduling entirely.

Two ways to obtain one:

- :meth:`ScheduleSummary.from_schedule` converts a full
  :class:`~repro.cgc.window.WindowSchedule` (the serial reference).
- :func:`schedule_summary_for` builds one directly through the fast
  builders below, which replicate ``single_window_schedule`` and
  ``coordinated_window_schedule`` *exactly* — same windows, same order,
  same tie-breaks — without materializing ``WindowStep`` objects.

Exactness notes (the serial schedulers are the specification, bit for
bit, and ``repro validate --only sim.batched_vs_serial`` enforces it):

- The serial ``_EdgeTracker`` iterates ``remaining`` (a set of edge
  tuples) whose order CPython fixes at construction: deletions leave
  dummy slots and never reorder survivors, and no edges are ever added
  after ``set(edges)``. The fast tracker therefore canonicalizes edges
  as ``list(set(edges))`` once — the iteration order of ``remaining``
  at *any* later point is this list filtered to still-alive edges.
- The cleanup seed ``max({u for edge in remaining for u in edge},
  key=node_remains)`` tie-breaks on int-set iteration order. The fast
  path rebuilds that set with the identical insertion sequence (same
  CPython table layout) and takes ``np.argmax`` — first maximum — over
  the set's own iteration order, matching ``max`` exactly.
- ``remaining_degree`` counts every edge *occurrence* (duplicates
  included), while processing only retires canonical edges; the fast
  tracker replicates this asymmetry via one ``np.bincount`` over the
  raw endpoint list.
- The coordinated scheme's jump ``min(unmatched, key=manhattan)``
  iterates a set built by one comprehension and shrunk only by
  ``discard`` — replicated verbatim, so ties resolve identically.

AOE decisions go through the real
:func:`~repro.cgc.aoe.approximate_outlier_estimation`, so its
``cgc.aoe.*`` metrics are emitted exactly as the serial builder would.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple
from weakref import WeakKeyDictionary

import numpy as np

from ..graphs.pairs import GraphPair
from .aoe import SLIDE_COLUMN_WISE, approximate_outlier_estimation
from .window import (
    WindowSchedule,
    _active_sets,
    _chunks,
    _pair_edges,
    _validate_capacity,
)

__all__ = [
    "ScheduleSummary",
    "schedule_summary_for",
    "summary_key",
    "summarize_single",
    "summarize_coordinated",
    "memoized_summaries",
]


class ScheduleSummary:
    """Per-step counts of one window schedule, in array form."""

    __slots__ = (
        "scheme",
        "capacity",
        "occupancy",
        "misses",
        "matchings",
        "edges",
        "is_cleanup",
    )

    def __init__(
        self,
        scheme: str,
        capacity: int,
        occupancy: np.ndarray,
        misses: np.ndarray,
        matchings: np.ndarray,
        edges: np.ndarray,
        is_cleanup: np.ndarray,
    ) -> None:
        self.scheme = scheme
        self.capacity = capacity
        self.occupancy = occupancy
        self.misses = misses
        self.matchings = matchings
        self.edges = edges
        self.is_cleanup = is_cleanup

    # ------------------------------------------------------------------
    @classmethod
    def from_schedule(cls, schedule: WindowSchedule) -> "ScheduleSummary":
        steps = schedule.steps
        return cls(
            schedule.scheme,
            schedule.capacity,
            np.array([len(s.input_nodes) for s in steps], dtype=np.int64),
            np.array([s.misses for s in steps], dtype=np.int64),
            np.array([s.num_matchings for s in steps], dtype=np.int64),
            np.array([s.num_edges for s in steps], dtype=np.int64),
            np.array(
                [s.kind == "cleanup" for s in steps], dtype=np.int64
            ),
        )

    # ------------------------------------------------------------------
    @property
    def num_steps(self) -> int:
        return int(self.occupancy.shape[0])

    @property
    def total_misses(self) -> int:
        return int(self.misses.sum())

    @property
    def total_matchings(self) -> int:
        return int(self.matchings.sum())

    @property
    def total_edges(self) -> int:
        return int(self.edges.sum())

    @property
    def total_occupancy(self) -> int:
        """Sum of window sizes — the thrashing-mode feature-load count."""
        return int(self.occupancy.sum())

    @property
    def cleanup_steps(self) -> int:
        return int(self.is_cleanup.sum())

    @property
    def cleanup_misses(self) -> int:
        """Nodes re-fetched by cleanup windows (``cgc.revisits.nodes``)."""
        return int(self.misses[self.is_cleanup != 0].sum())

    # ------------------------------------------------------------------
    def to_array(self) -> np.ndarray:
        """One ``(5, num_steps)`` int64 array (sidecar serialization)."""
        return np.stack(
            [self.occupancy, self.misses, self.matchings, self.edges, self.is_cleanup]
        )

    @classmethod
    def from_array(
        cls, scheme: str, capacity: int, packed: np.ndarray
    ) -> "ScheduleSummary":
        packed = np.ascontiguousarray(packed, dtype=np.int64)
        if packed.ndim != 2 or packed.shape[0] != 5:
            raise ValueError(
                f"expected a (5, steps) summary array, got {packed.shape}"
            )
        return cls(scheme, capacity, *[packed[i] for i in range(5)])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ScheduleSummary):
            return NotImplemented
        return (
            self.scheme == other.scheme
            and self.capacity == other.capacity
            and all(
                np.array_equal(getattr(self, name), getattr(other, name))
                for name in (
                    "occupancy",
                    "misses",
                    "matchings",
                    "edges",
                    "is_cleanup",
                )
            )
        )

    __hash__ = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ScheduleSummary({self.scheme!r}, steps={self.num_steps}, "
            f"misses={self.total_misses})"
        )


# ----------------------------------------------------------------------
# Fast exact builders
# ----------------------------------------------------------------------
class _ArrayTracker:
    """Array twin of :class:`~repro.cgc.window._EdgeTracker`.

    Canonical edge order is the iteration order of ``set(edges)`` (see
    module docstring); aliveness and remaining degrees live in numpy
    arrays, and co-residency processing is one boolean pass over the
    canonical edge list per window instead of per-node set algebra.
    """

    __slots__ = (
        "src_list",
        "dst_list",
        "src",
        "dst",
        "alive",
        "remains",
        "_mark",
        "_gen",
    )

    def __init__(self, pair: GraphPair) -> None:
        edges = _pair_edges(pair)
        canonical = list(set(edges))
        self.src_list = [edge[0] for edge in canonical]
        self.dst_list = [edge[1] for edge in canonical]
        self.src = np.array(self.src_list, dtype=np.int64)
        self.dst = np.array(self.dst_list, dtype=np.int64)
        self.alive = np.ones(len(canonical), dtype=bool)
        num_nodes = pair.total_nodes
        if edges:
            endpoints = np.array(edges, dtype=np.int64).ravel()
            self.remains = np.bincount(endpoints, minlength=num_nodes)
        else:
            self.remains = np.zeros(num_nodes, dtype=np.int64)
        self._mark = np.zeros(num_nodes, dtype=np.int64)
        self._gen = 0

    def process(self, window: np.ndarray) -> int:
        """Retire every alive edge with both endpoints in ``window``."""
        if not self.alive.any():
            return 0
        self._gen += 1
        self._mark[window] = self._gen
        done = (
            self.alive
            & (self._mark[self.src] == self._gen)
            & (self._mark[self.dst] == self._gen)
        )
        count = int(np.count_nonzero(done))
        if count:
            self.alive[done] = False
            np.subtract.at(self.remains, self.src[done], 1)
            np.subtract.at(self.remains, self.dst[done], 1)
        return count


class _StepRecorder:
    """Accumulates per-step counts with serial miss accounting.

    A step's misses are its nodes absent from the *previous recorded*
    step's window (``WindowSchedule.__init__`` semantics) — windows the
    single scheme drops for processing nothing never enter the chain.
    """

    __slots__ = ("_last", "_step", "occ", "miss", "match", "edges", "cleanup")

    def __init__(self, num_nodes: int) -> None:
        self._last = np.full(num_nodes, -1, dtype=np.int64)
        self._step = 0
        self.occ: List[int] = []
        self.miss: List[int] = []
        self.match: List[int] = []
        self.edges: List[int] = []
        self.cleanup: List[int] = []

    def append(
        self, window: np.ndarray, matchings: int, edges: int, cleanup: bool
    ) -> None:
        self._step += 1
        misses = int(np.count_nonzero(self._last[window] != self._step - 1))
        self._last[window] = self._step
        self.occ.append(int(window.shape[0]))
        self.miss.append(misses)
        self.match.append(matchings)
        self.edges.append(edges)
        self.cleanup.append(1 if cleanup else 0)

    def build(self, scheme: str, capacity: int) -> ScheduleSummary:
        return ScheduleSummary(
            scheme,
            capacity,
            np.array(self.occ, dtype=np.int64),
            np.array(self.miss, dtype=np.int64),
            np.array(self.match, dtype=np.int64),
            np.array(self.edges, dtype=np.int64),
            np.array(self.cleanup, dtype=np.int64),
        )


def _cleanup_rounds(
    tracker: _ArrayTracker, recorder: _StepRecorder, capacity: int
) -> None:
    """Replicates ``_EdgeTracker.cleanup_steps`` over the array state."""
    if not tracker.alive.any():
        return
    src_list, dst_list = tracker.src_list, tracker.dst_list
    # One lexicographic sort up front (= sorted(remaining)); each round
    # keeps the still-sorted alive suffix.
    order = np.lexsort((tracker.dst, tracker.src))
    pending = order[tracker.alive[order]]
    while True:
        alive_index = np.flatnonzero(tracker.alive)
        if alive_index.size == 0:
            break
        # Same insertion sequence as the serial seed set comprehension,
        # so the int set's iteration order (the max() tie-break) matches.
        nodes_set: set = set()
        add = nodes_set.add
        for index in alive_index.tolist():
            add(src_list[index])
            add(dst_list[index])
        nodes = np.fromiter(nodes_set, dtype=np.int64, count=len(nodes_set))
        seed = int(nodes[np.argmax(tracker.remains[nodes])])
        chosen = {seed}
        for index in pending.tolist():
            if len(chosen) >= capacity:
                break
            u = src_list[index]
            v = dst_list[index]
            if u in chosen:
                if v not in chosen:
                    chosen.add(v)
            elif v in chosen:
                chosen.add(u)
        window = np.fromiter(chosen, dtype=np.int64, count=len(chosen))
        processed = tracker.process(window)
        if processed == 0:  # pragma: no cover - safety net
            raise RuntimeError("cleanup failed to make progress")
        recorder.append(window, 0, processed, cleanup=True)
        pending = pending[tracker.alive[pending]]


def summarize_single(
    pair: GraphPair,
    capacity: int,
    active_targets: Optional[Iterable[int]] = None,
    active_queries: Optional[Iterable[int]] = None,
) -> ScheduleSummary:
    """Exact summary of ``single_window_schedule`` (Fig. 8a)."""
    capacity = _validate_capacity(capacity)
    half = max(1, capacity // 2)
    targets, queries = _active_sets(pair, active_targets, active_queries)
    tracker = _ArrayTracker(pair)
    recorder = _StepRecorder(pair.total_nodes)

    n_t = pair.target.num_nodes
    for node_list in (
        list(range(n_t)),
        [n_t + j for j in range(pair.query.num_nodes)],
    ):
        blocks = [
            np.asarray(block, dtype=np.int64)
            for block in _chunks(node_list, half)
        ]
        for i, dst_block in enumerate(blocks):
            for j, src_block in enumerate(blocks):
                window = (
                    dst_block
                    if i == j
                    else np.concatenate([dst_block, src_block])
                )
                processed = tracker.process(window)
                if processed:
                    recorder.append(window, 0, processed, cleanup=False)

    for t_block in _chunks(targets, half):
        t_array = np.asarray(t_block, dtype=np.int64)
        for q_block in _chunks(queries, half):
            window = np.concatenate(
                [t_array, np.asarray(q_block, dtype=np.int64)]
            )
            recorder.append(
                window, len(t_block) * len(q_block), 0, cleanup=False
            )

    _cleanup_rounds(tracker, recorder, capacity)
    return recorder.build("single", capacity)


def summarize_coordinated(
    pair: GraphPair,
    capacity: int,
    active_targets: Optional[Iterable[int]] = None,
    active_queries: Optional[Iterable[int]] = None,
) -> ScheduleSummary:
    """Exact summary of ``coordinated_window_schedule`` (Fig. 12b)."""
    capacity = _validate_capacity(capacity)
    half = max(1, capacity // 2)
    targets, queries = _active_sets(pair, active_targets, active_queries)
    tracker = _ArrayTracker(pair)
    recorder = _StepRecorder(pair.total_nodes)
    if not targets or not queries:
        _cleanup_rounds(tracker, recorder, capacity)
        return recorder.build("coordinated", capacity)

    t_blocks = _chunks(targets, half)
    q_blocks = _chunks(queries, half)
    t_arrays = [np.asarray(block, dtype=np.int64) for block in t_blocks]
    q_arrays = [np.asarray(block, dtype=np.int64) for block in q_blocks]
    unmatched = {
        (ti, qi) for ti in range(len(t_blocks)) for qi in range(len(q_blocks))
    }
    ti, qi = 0, 0
    while True:
        window = np.concatenate([t_arrays[ti], q_arrays[qi]])
        edges = tracker.process(window)
        matchings = 0
        if (ti, qi) in unmatched:
            unmatched.discard((ti, qi))
            matchings = len(t_blocks[ti]) * len(q_blocks[qi])
        recorder.append(window, matchings, edges, cleanup=False)
        if not unmatched:
            break

        q_moves = sorted(
            (abs(qj - qi), qj) for (tj, qj) in unmatched if tj == ti
        )
        t_moves = sorted(
            (abs(tj - ti), tj) for (tj, qj) in unmatched if qj == qi
        )
        if q_moves and t_moves:
            direction = approximate_outlier_estimation(
                tracker.remains[t_arrays[ti]].tolist(),
                tracker.remains[q_arrays[qi]].tolist(),
            )
            if direction == SLIDE_COLUMN_WISE:
                qi = q_moves[0][1]
            else:
                ti = t_moves[0][1]
        elif q_moves:
            qi = q_moves[0][1]
        elif t_moves:
            ti = t_moves[0][1]
        else:
            ti, qi = min(
                unmatched, key=lambda cell: abs(cell[0] - ti) + abs(cell[1] - qi)
            )

    _cleanup_rounds(tracker, recorder, capacity)
    return recorder.build("coordinated", capacity)


_BUILDERS = {
    "single": summarize_single,
    "coordinated": summarize_coordinated,
}

# Mirrors engine._SCHEDULE_MEMO (same keying, capacity, and eviction):
# summaries depend only on (pair, scheme, capacity, active sets), never
# on the platform, so all platforms simulated over one trace share them.
_SUMMARY_MEMO: "WeakKeyDictionary" = WeakKeyDictionary()
_SUMMARY_MEMO_PER_PAIR = 64


def summary_key(
    scheme: str,
    capacity: int,
    active_targets: Optional[Iterable[int]],
    active_queries: Optional[Iterable[int]],
) -> str:
    """Stable string key for one schedule (sidecar manifest key)."""

    def side(values: Optional[Iterable[int]]) -> str:
        if values is None:
            return "*"
        return ",".join(str(v) for v in values)

    return f"{scheme}|{capacity}|{side(active_targets)}|{side(active_queries)}"


def memoized_summaries(pair: GraphPair) -> Dict[Tuple, ScheduleSummary]:
    """Snapshot of one pair's summary memo.

    Used by the trace-cache sidecar to persist whatever schedules a
    simulation run actually built, keyed by the same
    ``(scheme, capacity, actives, actives)`` tuples the memo uses.
    """
    per_pair = _SUMMARY_MEMO.get(pair)
    return dict(per_pair) if per_pair else {}


def schedule_summary_for(
    pair: GraphPair,
    scheme: str,
    capacity: int,
    active_targets: Optional[Iterable[int]] = None,
    active_queries: Optional[Iterable[int]] = None,
    store: Optional[Dict[str, ScheduleSummary]] = None,
) -> ScheduleSummary:
    """Memoized schedule summary for one (pair, layer) workload.

    Lookup order: per-pair memo, then the optional ``store`` (the
    trace-cache sidecar, keyed by :func:`summary_key`), then a fresh
    fast build. The caller decides whether to pass a store — metric
    runs must not, so schedule-construction counters (``cgc.aoe.*``)
    are emitted exactly as the serial path would.
    """
    if scheme not in _BUILDERS:
        raise KeyError(
            f"unknown batched scheme {scheme!r}; known: {sorted(_BUILDERS)}"
        )
    key: Tuple = (
        scheme,
        capacity,
        None if active_targets is None else tuple(active_targets),
        None if active_queries is None else tuple(active_queries),
    )
    per_pair = _SUMMARY_MEMO.get(pair)
    if per_pair is None:
        per_pair = {}
        _SUMMARY_MEMO[pair] = per_pair
    summary = per_pair.get(key)
    if summary is None and store is not None:
        summary = store.get(summary_key(scheme, capacity, key[2], key[3]))
    if summary is None:
        summary = _BUILDERS[scheme](pair, capacity, key[2], key[3])
    if len(per_pair) >= _SUMMARY_MEMO_PER_PAIR:
        per_pair.clear()
    per_pair[key] = summary
    return summary
