"""Sliding-window schedulers over the global adjacency matrix.

Four schemes are implemented, mirroring the paper's progression:

- ``single_window_schedule`` (Fig. 8a): the baseline GNN-accelerator
  dataflow — embedding windows per graph first, then matching windows.
- ``double_window_schedule`` (Fig. 8b): two independent windows with a
  statically split input buffer; suffers *incomplete comparison*.
- ``joint_window_schedule`` (Fig. 12a): CEGMA's joint window serpentining
  over the cross-graph matching area, fusing intra-graph edges with
  matching; turns at the closest start point.
- ``coordinated_window_schedule`` (Fig. 12b): the joint window steered by
  Approximate Outlier Estimation (Algorithm 2).

Scheduling semantics (documented model, consistent across schemes):

- The input buffer holds exactly one window's nodes (``capacity`` nodes;
  joint windows split it evenly between the target and query sides).
- A cross-graph matching (i, j) executes when both nodes are on-chip in
  the same step.
- A directed intra-graph edge (u, v) executes when both endpoints are
  on-chip in the same step (windowed SpMM with co-resident row/column
  tiles). Edges whose endpoints never share a window during the matching
  sweep are handled by *cleanup* steps afterwards — these are exactly
  the "remaining edges" Algorithm 2 minimizes.
- A step's miss count is the number of its nodes absent from the
  previous step's window; the total across steps is the metric of
  Figs. 8/12, and the per-step node reference stream feeds the
  reuse-distance analysis of Figs. 4/20.

Degenerate inputs (defined behavior, locked by ``repro.validate`` and
the regression tests):

- ``capacity < 2`` raises :class:`ValueError` — a window must co-locate
  at least one node from each side to perform a matching.
- Odd ``capacity``: the joint window's even split gives each side
  ``capacity // 2`` slots and leaves the spare slot unused, so every
  window holds at most ``capacity`` nodes.
- A side smaller than its half-window simply yields one undersized
  block; a side with no (active) nodes has no cross-graph matchings, so
  the schedule degenerates to the cleanup sweep over the remaining
  intra-graph edges.

Node identifiers are global: target nodes ``0..n_t-1``, query nodes
``n_t..n_t+n_q-1``.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..graphs.pairs import GraphPair
from .aoe import SLIDE_COLUMN_WISE, approximate_outlier_estimation

__all__ = [
    "WindowStep",
    "WindowSchedule",
    "single_window_schedule",
    "double_window_schedule",
    "joint_window_schedule",
    "coordinated_window_schedule",
    "SCHEDULERS",
]


class WindowStep:
    """One window position: its on-chip nodes and the work it performs."""

    __slots__ = ("input_nodes", "num_matchings", "num_edges", "misses", "kind")

    def __init__(
        self,
        input_nodes: FrozenSet[int],
        num_matchings: int,
        num_edges: int,
        kind: str,
    ) -> None:
        self.input_nodes = input_nodes
        self.num_matchings = num_matchings
        self.num_edges = num_edges
        self.kind = kind  # "embed" | "match" | "joint" | "cleanup"
        self.misses = 0  # filled in by WindowSchedule

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"WindowStep({sorted(self.input_nodes)}, match={self.num_matchings}, "
            f"edges={self.num_edges}, miss={self.misses}, kind={self.kind!r})"
        )


class WindowSchedule:
    """A full window schedule with miss accounting."""

    __slots__ = ("steps", "capacity", "scheme")

    def __init__(self, steps: List[WindowStep], capacity: int, scheme: str) -> None:
        self.steps = steps
        self.capacity = capacity
        self.scheme = scheme
        previous: FrozenSet[int] = frozenset()
        for step in steps:
            step.misses = len(step.input_nodes - previous)
            previous = step.input_nodes

    @property
    def total_misses(self) -> int:
        return sum(step.misses for step in self.steps)

    @property
    def total_matchings(self) -> int:
        return sum(step.num_matchings for step in self.steps)

    @property
    def total_edges(self) -> int:
        return sum(step.num_edges for step in self.steps)

    @property
    def num_steps(self) -> int:
        return len(self.steps)

    def node_reference_stream(self) -> List[int]:
        """Flat stream of node references, one entry per node per step."""
        stream: List[int] = []
        for step in self.steps:
            stream.extend(sorted(step.input_nodes))
        return stream

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"WindowSchedule({self.scheme!r}, steps={self.num_steps}, "
            f"misses={self.total_misses})"
        )


# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------
def _chunks(items: Sequence[int], size: int) -> List[Tuple[int, ...]]:
    if size < 1:
        raise ValueError("chunk size must be >= 1")
    return [tuple(items[i : i + size]) for i in range(0, len(items), size)]


def _pair_edges(pair: GraphPair) -> List[Tuple[int, int]]:
    """All directed intra-graph edges of a pair in global node ids."""
    offset = pair.target.num_nodes
    edges = list(zip(pair.target.src.tolist(), pair.target.dst.tolist()))
    edges += [
        (offset + u, offset + v)
        for u, v in zip(pair.query.src.tolist(), pair.query.dst.tolist())
    ]
    return edges


def _active_sets(
    pair: GraphPair,
    active_targets: Optional[Iterable[int]],
    active_queries: Optional[Iterable[int]],
) -> Tuple[List[int], List[int]]:
    """Global-id lists of the matchable (EMF-unique) nodes per side."""
    n_t = pair.target.num_nodes
    if active_targets is None:
        targets = list(range(n_t))
    else:
        targets = sorted(active_targets)
    if active_queries is None:
        queries = [n_t + j for j in range(pair.query.num_nodes)]
    else:
        queries = [n_t + j for j in sorted(active_queries)]
    return targets, queries


def _validate_capacity(capacity: int) -> int:
    if capacity < 2:
        raise ValueError(
            f"window capacity must hold at least 2 nodes, got {capacity}"
        )
    return capacity


def _cleanup_only_schedule(
    tracker: "_EdgeTracker", capacity: int, scheme: str
) -> WindowSchedule:
    """Schedule for a pair with an empty side: no matchings exist, so
    only the cleanup sweep over the remaining intra-graph edges runs."""
    return WindowSchedule(tracker.cleanup_steps(capacity), capacity, scheme)


class _EdgeTracker:
    """Tracks which directed edges remain unprocessed.

    ``remaining`` is the source of truth; ``out_edges`` indexes it by
    source node so a window step only scans its own nodes' adjacency
    instead of every remaining edge (the scheduler's former hot loop).
    """

    def __init__(self, edges: List[Tuple[int, int]]) -> None:
        self.remaining: Set[Tuple[int, int]] = set(edges)
        self.remaining_degree: Dict[int, int] = {}
        for u, v in edges:
            self.remaining_degree[u] = self.remaining_degree.get(u, 0) + 1
            self.remaining_degree[v] = self.remaining_degree.get(v, 0) + 1
        self.out_edges: Dict[int, Set[int]] = {}
        for u, v in self.remaining:
            self.out_edges.setdefault(u, set()).add(v)

    def copy(self) -> "_EdgeTracker":
        clone = _EdgeTracker([])
        clone.remaining = set(self.remaining)
        clone.remaining_degree = dict(self.remaining_degree)
        clone.out_edges = {u: set(vs) for u, vs in self.out_edges.items()}
        return clone

    def process_coresident(self, nodes: FrozenSet[int]) -> int:
        """Consume every remaining edge with both endpoints in ``nodes``."""
        done = []
        for u in nodes:
            outgoing = self.out_edges.get(u)
            if outgoing:
                for v in outgoing & nodes:
                    done.append((u, v))
        for u, v in done:
            self.remaining.discard((u, v))
            self.out_edges[u].discard(v)
            self.remaining_degree[u] -= 1
            self.remaining_degree[v] -= 1
        return len(done)

    def node_remains(self, node: int) -> int:
        return self.remaining_degree.get(node, 0)

    def cleanup_steps(self, capacity: int) -> List[WindowStep]:
        """Greedy cleanup: load highest-remaining-degree neighborhoods."""
        steps: List[WindowStep] = []
        # One sort up front; each round keeps the (still sorted) suffix
        # of unprocessed edges instead of re-sorting the whole set.
        pending: List[Tuple[int, int]] = sorted(self.remaining)
        while self.remaining:
            seed = max(
                {u for edge in self.remaining for u in edge},
                key=self.node_remains,
            )
            chosen: Set[int] = {seed}
            # Prefer partners of already-chosen nodes so each step is
            # guaranteed to make progress.
            for u, v in pending:
                if len(chosen) >= capacity:
                    break
                if u in chosen and v not in chosen:
                    chosen.add(v)
                elif v in chosen and u not in chosen:
                    chosen.add(u)
            window = frozenset(chosen)
            processed = self.process_coresident(window)
            if processed == 0:  # pragma: no cover - safety net
                raise RuntimeError("cleanup failed to make progress")
            steps.append(WindowStep(window, 0, processed, "cleanup"))
            pending = [edge for edge in pending if edge in self.remaining]
        return steps


# ----------------------------------------------------------------------
# Scheme 1: single intra-graph window (baseline, Fig. 8a)
# ----------------------------------------------------------------------
def single_window_schedule(
    pair: GraphPair,
    capacity: int,
    active_targets: Optional[Iterable[int]] = None,
    active_queries: Optional[Iterable[int]] = None,
) -> WindowSchedule:
    """Embedding windows per graph, then matching windows (Fig. 8a).

    This is how a single-graph GNN accelerator (HyGCN-style) executes a
    GMN layer: the node-embedding stage visits every node, and the
    matching stage must reload them all because the embedding evictions
    destroyed locality.
    """
    capacity = _validate_capacity(capacity)
    half = max(1, capacity // 2)
    targets, queries = _active_sets(pair, active_targets, active_queries)
    tracker = _EdgeTracker(_pair_edges(pair))
    steps: List[WindowStep] = []

    # Stage 1: embedding. Co-residency windows over each graph's blocks.
    n_t = pair.target.num_nodes
    for node_list in (
        list(range(n_t)),
        [n_t + j for j in range(pair.query.num_nodes)],
    ):
        blocks = _chunks(node_list, half)
        for i, dst_block in enumerate(blocks):
            for j, src_block in enumerate(blocks):
                window = frozenset(dst_block) | frozenset(src_block)
                processed = tracker.process_coresident(window)
                if processed:
                    steps.append(WindowStep(window, 0, processed, "embed"))

    # Stage 2: matching windows (half target nodes + half query nodes).
    for t_block in _chunks(targets, half):
        for q_block in _chunks(queries, half):
            window = frozenset(t_block) | frozenset(q_block)
            steps.append(
                WindowStep(window, len(t_block) * len(q_block), 0, "match")
            )

    steps.extend(tracker.cleanup_steps(capacity))
    return WindowSchedule(steps, capacity, "single")


# ----------------------------------------------------------------------
# Scheme 2: double independent windows (Fig. 8b)
# ----------------------------------------------------------------------
def double_window_schedule(
    pair: GraphPair,
    capacity: int,
    active_targets: Optional[Iterable[int]] = None,
    active_queries: Optional[Iterable[int]] = None,
) -> WindowSchedule:
    """Two independent windows over a statically split buffer (Fig. 8b).

    Each graph receives half the buffer; the two windows slide in
    lockstep and matching happens opportunistically between co-resident
    blocks. Blocks are evicted before meeting every counterpart block
    (*incomplete comparison*), so most matchings fall into revisit steps
    — the paper's motivation for the joint window.
    """
    capacity = _validate_capacity(capacity)
    half = max(1, capacity // 2)
    targets, queries = _active_sets(pair, active_targets, active_queries)
    tracker = _EdgeTracker(_pair_edges(pair))
    if not targets or not queries:
        return _cleanup_only_schedule(tracker, capacity, "double")
    steps: List[WindowStep] = []

    t_blocks = _chunks(targets, half)
    q_blocks = _chunks(queries, half)
    matched: Set[Tuple[int, int]] = set()
    for k in range(max(len(t_blocks), len(q_blocks))):
        ti = min(k, len(t_blocks) - 1)
        qi = min(k, len(q_blocks) - 1)
        window = frozenset(t_blocks[ti]) | frozenset(q_blocks[qi])
        edges = tracker.process_coresident(window)
        matchings = 0
        if (ti, qi) not in matched:
            matched.add((ti, qi))
            matchings = len(t_blocks[ti]) * len(q_blocks[qi])
        steps.append(WindowStep(window, matchings, edges, "joint"))

    # Revisit steps: the incomplete comparisons.
    for ti, t_block in enumerate(t_blocks):
        for qi, q_block in enumerate(q_blocks):
            if (ti, qi) in matched:
                continue
            window = frozenset(t_block) | frozenset(q_block)
            edges = tracker.process_coresident(window)
            steps.append(
                WindowStep(window, len(t_block) * len(q_block), edges, "match")
            )

    steps.extend(tracker.cleanup_steps(capacity))
    return WindowSchedule(steps, capacity, "double")


# ----------------------------------------------------------------------
# Scheme 3: joint window, serpentine (Fig. 12a)
# ----------------------------------------------------------------------
def joint_window_schedule(
    pair: GraphPair,
    capacity: int,
    active_targets: Optional[Iterable[int]] = None,
    active_queries: Optional[Iterable[int]] = None,
) -> WindowSchedule:
    """Joint window serpentining row-major over the matching area.

    Property (1): only one side changes per step, so the stationary side
    is fully reused. Property (2): at the end of a stripe the window
    turns and continues from the *closest* start point instead of
    rewinding to index zero.
    """
    capacity = _validate_capacity(capacity)
    half = max(1, capacity // 2)
    targets, queries = _active_sets(pair, active_targets, active_queries)
    tracker = _EdgeTracker(_pair_edges(pair))
    steps: List[WindowStep] = []

    t_blocks = _chunks(targets, half)
    q_blocks = _chunks(queries, half)
    forward = True
    for ti, t_block in enumerate(t_blocks):
        q_order = range(len(q_blocks)) if forward else range(len(q_blocks) - 1, -1, -1)
        for qi in q_order:
            window = frozenset(t_block) | frozenset(q_blocks[qi])
            edges = tracker.process_coresident(window)
            steps.append(
                WindowStep(
                    window, len(t_block) * len(q_blocks[qi]), edges, "joint"
                )
            )
        forward = not forward

    steps.extend(tracker.cleanup_steps(capacity))
    return WindowSchedule(steps, capacity, "joint")


# ----------------------------------------------------------------------
# Scheme 4: coordinated joint window with AOE (Fig. 12b)
# ----------------------------------------------------------------------
def coordinated_window_schedule(
    pair: GraphPair,
    capacity: int,
    active_targets: Optional[Iterable[int]] = None,
    active_queries: Optional[Iterable[int]] = None,
) -> WindowSchedule:
    """Joint window whose sliding direction is chosen by AOE (Alg. 2)."""
    capacity = _validate_capacity(capacity)
    half = max(1, capacity // 2)
    targets, queries = _active_sets(pair, active_targets, active_queries)
    tracker = _EdgeTracker(_pair_edges(pair))
    if not targets or not queries:
        return _cleanup_only_schedule(tracker, capacity, "coordinated")
    steps: List[WindowStep] = []

    t_blocks = _chunks(targets, half)
    q_blocks = _chunks(queries, half)
    unmatched: Set[Tuple[int, int]] = {
        (ti, qi) for ti in range(len(t_blocks)) for qi in range(len(q_blocks))
    }
    ti, qi = 0, 0
    while True:
        window = frozenset(t_blocks[ti]) | frozenset(q_blocks[qi])
        edges = tracker.process_coresident(window)
        matchings = 0
        if (ti, qi) in unmatched:
            unmatched.discard((ti, qi))
            matchings = len(t_blocks[ti]) * len(q_blocks[qi])
        steps.append(WindowStep(window, matchings, edges, "joint"))
        if not unmatched:
            break

        # Candidate moves that keep one side stationary.
        q_moves = sorted(
            (abs(qj - qi), qj) for (tj, qj) in unmatched if tj == ti
        )
        t_moves = sorted(
            (abs(tj - ti), tj) for (tj, qj) in unmatched if qj == qi
        )
        if q_moves and t_moves:
            direction = approximate_outlier_estimation(
                [tracker.node_remains(u) for u in t_blocks[ti]],
                [tracker.node_remains(u) for u in q_blocks[qi]],
            )
            if direction == SLIDE_COLUMN_WISE:
                qi = q_moves[0][1]
            else:
                ti = t_moves[0][1]
        elif q_moves:
            qi = q_moves[0][1]
        elif t_moves:
            ti = t_moves[0][1]
        else:
            # Jump to the nearest unmatched cell (both sides change).
            ti, qi = min(
                unmatched, key=lambda cell: abs(cell[0] - ti) + abs(cell[1] - qi)
            )

    steps.extend(tracker.cleanup_steps(capacity))
    return WindowSchedule(steps, capacity, "coordinated")


def _oracle_window_schedule(pair, capacity, active_targets=None, active_queries=None):
    # Deferred import: the oracle module builds on this one.
    from .oracle import oracle_window_schedule

    return oracle_window_schedule(pair, capacity, active_targets, active_queries)


SCHEDULERS = {
    "single": single_window_schedule,
    "double": double_window_schedule,
    "joint": joint_window_schedule,
    "coordinated": coordinated_window_schedule,
    "oracle": _oracle_window_schedule,
}
