"""Human-readable renderings of window schedules (Fig. 8/12 style).

The paper explains its window schemes through step tables ("Input
Nodes", "Edges", "Matching", "Total Miss Count") and annotated
adjacency matrices. This module renders both from a
:class:`~repro.cgc.window.WindowSchedule`, for documentation, debugging,
and the walkthrough example.
"""

from __future__ import annotations

from typing import List, Optional

from ..graphs.pairs import GraphPair
from .window import WindowSchedule

__all__ = [
    "schedule_table",
    "node_name",
    "schedule_summary",
    "adjacency_step_matrix",
    "render_step_matrix",
]


def node_name(node: int, num_target_nodes: int) -> str:
    """Paper-style node labels: targets 1..n, queries a, b, c, ...

    Query graphs larger than 26 nodes extend to a1, b1, ... suffixes.
    """
    if node < num_target_nodes:
        return str(node + 1)
    query_index = node - num_target_nodes
    letter = chr(ord("a") + query_index % 26)
    suffix = query_index // 26
    return letter if suffix == 0 else f"{letter}{suffix}"


def schedule_table(
    schedule: WindowSchedule,
    pair: Optional[GraphPair] = None,
    max_steps: Optional[int] = None,
) -> str:
    """Render a schedule as the paper's step table.

    With a ``pair``, nodes are labelled in the paper's style (numbers
    for the target graph, letters for the query graph); otherwise raw
    global indices are shown.
    """
    num_target = pair.target.num_nodes if pair is not None else None

    def label(node: int) -> str:
        if num_target is None:
            return str(node)
        return node_name(node, num_target)

    rows: List[List[str]] = []
    running_misses = 0
    steps = schedule.steps if max_steps is None else schedule.steps[:max_steps]
    for index, step in enumerate(steps, start=1):
        running_misses += step.misses
        nodes = ",".join(label(n) for n in sorted(step.input_nodes))
        rows.append(
            [
                str(index),
                nodes,
                str(step.num_edges) if step.num_edges else "-",
                str(step.num_matchings) if step.num_matchings else "-",
                str(running_misses),
                step.kind,
            ]
        )
    headers = ["step", "input nodes", "edges", "matchings", "total misses", "kind"]
    widths = [
        max(len(headers[i]), max((len(r[i]) for r in rows), default=0))
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
    ]
    lines.append("-" * len(lines[0]))
    for row in rows:
        lines.append("  ".join(c.ljust(widths[i]) for i, c in enumerate(row)))
    if max_steps is not None and len(schedule.steps) > max_steps:
        lines.append(f"... ({len(schedule.steps) - max_steps} more steps)")
    return "\n".join(lines)


def schedule_summary(schedule: WindowSchedule) -> str:
    """One-line summary: scheme, steps, misses, covered work."""
    return (
        f"{schedule.scheme}: {schedule.num_steps} steps, "
        f"{schedule.total_misses} misses, "
        f"{schedule.total_matchings} matchings, "
        f"{schedule.total_edges} edges"
    )


def adjacency_step_matrix(
    schedule: WindowSchedule, pair: GraphPair
) -> List[List[str]]:
    """Fig. 8/12-style annotated global adjacency matrix.

    Returns a grid (list of rows of cell strings) over the pair's global
    adjacency: each intra-graph edge cell and cross-graph matching cell
    is labelled with the 1-based step index at which the schedule
    processes it; untouched cells are blank. The header row/column carry
    the paper-style node names.
    """
    n_t = pair.target.num_nodes
    total = pair.total_nodes
    cells = [["" for _ in range(total)] for _ in range(total)]

    remaining_edges = {
        (u, v)
        for u, v in zip(pair.target.src.tolist(), pair.target.dst.tolist())
    }
    remaining_edges |= {
        (n_t + u, n_t + v)
        for u, v in zip(pair.query.src.tolist(), pair.query.dst.tolist())
    }
    matched = set()

    for index, step in enumerate(schedule.steps, start=1):
        nodes = step.input_nodes
        for u, v in sorted(remaining_edges):
            if u in nodes and v in nodes:
                cells[u][v] = str(index)
        remaining_edges = {
            (u, v)
            for u, v in remaining_edges
            if not (u in nodes and v in nodes)
        }
        if step.num_matchings:
            for t_node in sorted(node for node in nodes if node < n_t):
                for q_node in sorted(node for node in nodes if node >= n_t):
                    if (t_node, q_node) not in matched:
                        cells[t_node][q_node] = str(index)
                        matched.add((t_node, q_node))

    header = [""] + [node_name(i, n_t) for i in range(total)]
    grid = [header]
    for row_index in range(total):
        grid.append(
            [node_name(row_index, n_t)] + cells[row_index]
        )
    return grid


def render_step_matrix(schedule: WindowSchedule, pair: GraphPair) -> str:
    """The step matrix as aligned text (the paper's Fig. 12 panels)."""
    grid = adjacency_step_matrix(schedule, pair)
    widths = [
        max(len(grid[r][c]) for r in range(len(grid)))
        for c in range(len(grid[0]))
    ]
    lines = []
    for row in grid:
        lines.append(
            " ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)
