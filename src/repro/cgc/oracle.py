"""Oracle sliding-direction decisions and AOE precision measurement.

Section V-C claims "Algorithm 2 can achieve 90% precision compared to
the optimal decisions". This module measures that: it replays the
coordinated joint window, and at every point where both sliding
directions are available it evaluates each branch with a full rollout
(completing the sweep plus cleanup under the default AOE policy) and
takes the branch with fewer total remaining misses — a one-step
lookahead oracle. Precision is the fraction of decision points where
AOE's constant-time estimate agrees with the oracle.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from ..graphs.pairs import GraphPair
from .aoe import SLIDE_COLUMN_WISE, approximate_outlier_estimation
from .window import (
    _EdgeTracker,
    _active_sets,
    _chunks,
    _cleanup_only_schedule,
    _pair_edges,
    _validate_capacity,
)

__all__ = ["oracle_decisions", "aoe_precision", "oracle_window_schedule"]

_Blocks = List[Tuple[int, ...]]


def _window(t_block: Tuple[int, ...], q_block: Tuple[int, ...]) -> frozenset:
    return frozenset(t_block) | frozenset(q_block)


def _nearest_moves(
    unmatched: Set[Tuple[int, int]], ti: int, qi: int
) -> Tuple[Optional[int], Optional[int]]:
    """Nearest unmatched cell reachable by sliding one side only."""
    q_moves = sorted((abs(qj - qi), qj) for (tj, qj) in unmatched if tj == ti)
    t_moves = sorted((abs(tj - ti), tj) for (tj, qj) in unmatched if qj == qi)
    return (
        q_moves[0][1] if q_moves else None,
        t_moves[0][1] if t_moves else None,
    )


def _cleanup_misses(tracker: _EdgeTracker, capacity: int, previous: frozenset) -> int:
    misses = 0
    for step in tracker.cleanup_steps(capacity):
        misses += len(step.input_nodes - previous)
        previous = step.input_nodes
    return misses


def _rollout(
    t_blocks: _Blocks,
    q_blocks: _Blocks,
    ti: int,
    qi: int,
    unmatched: Set[Tuple[int, int]],
    tracker: _EdgeTracker,
    capacity: int,
    previous: frozenset,
) -> int:
    """Misses accrued completing the schedule under the AOE policy."""
    unmatched = set(unmatched)
    tracker = tracker.copy()
    misses = 0
    while True:
        window = _window(t_blocks[ti], q_blocks[qi])
        misses += len(window - previous)
        previous = window
        tracker.process_coresident(window)
        unmatched.discard((ti, qi))
        if not unmatched:
            break
        q_move, t_move = _nearest_moves(unmatched, ti, qi)
        if q_move is not None and t_move is not None:
            direction = approximate_outlier_estimation(
                [tracker.node_remains(u) for u in t_blocks[ti]],
                [tracker.node_remains(u) for u in q_blocks[qi]],
            )
            if direction == SLIDE_COLUMN_WISE:
                qi = q_move
            else:
                ti = t_move
        elif q_move is not None:
            qi = q_move
        elif t_move is not None:
            ti = t_move
        else:
            ti, qi = min(
                unmatched, key=lambda cell: abs(cell[0] - ti) + abs(cell[1] - qi)
            )
    return misses + _cleanup_misses(tracker, capacity, previous)


def oracle_decisions(
    pair: GraphPair,
    capacity: int,
) -> List[Tuple[int, int]]:
    """Replay the coordinated window with a lookahead oracle.

    Returns one ``(aoe_choice, oracle_choice)`` tuple per decision point
    where both sliding directions were available (choices use the
    Algorithm 2 convention: 1 row-wise, 0 column-wise). The schedule
    follows the oracle's choices.
    """
    capacity = _validate_capacity(capacity)
    half = max(1, capacity // 2)
    targets, queries = _active_sets(pair, None, None)
    if not targets or not queries:
        # No cross-graph matchings: no sliding decisions to score.
        return []
    tracker = _EdgeTracker(_pair_edges(pair))
    t_blocks = _chunks(targets, half)
    q_blocks = _chunks(queries, half)
    unmatched: Set[Tuple[int, int]] = {
        (ti, qi) for ti in range(len(t_blocks)) for qi in range(len(q_blocks))
    }
    decisions: List[Tuple[int, int]] = []
    ti, qi = 0, 0
    previous: frozenset = frozenset()
    while True:
        window = _window(t_blocks[ti], q_blocks[qi])
        previous = window
        tracker.process_coresident(window)
        unmatched.discard((ti, qi))
        if not unmatched:
            break
        q_move, t_move = _nearest_moves(unmatched, ti, qi)
        if q_move is not None and t_move is not None:
            aoe_choice = approximate_outlier_estimation(
                [tracker.node_remains(u) for u in t_blocks[ti]],
                [tracker.node_remains(u) for u in q_blocks[qi]],
            )
            slide_q_cost = _rollout(
                t_blocks, q_blocks, ti, q_move, unmatched, tracker, capacity, previous
            )
            slide_t_cost = _rollout(
                t_blocks, q_blocks, t_move, qi, unmatched, tracker, capacity, previous
            )
            if slide_q_cost < slide_t_cost:
                oracle_choice = SLIDE_COLUMN_WISE
            elif slide_t_cost < slide_q_cost:
                oracle_choice = 1 - SLIDE_COLUMN_WISE
            else:
                # Tie: either choice is optimal; credit AOE's pick.
                oracle_choice = aoe_choice
            decisions.append((aoe_choice, oracle_choice))
            if oracle_choice == SLIDE_COLUMN_WISE:
                qi = q_move
            else:
                ti = t_move
        elif q_move is not None:
            qi = q_move
        elif t_move is not None:
            ti = t_move
        else:
            ti, qi = min(
                unmatched, key=lambda cell: abs(cell[0] - ti) + abs(cell[1] - qi)
            )
    return decisions


def aoe_precision(pair: GraphPair, capacity: int) -> Optional[float]:
    """Fraction of decision points where AOE matches the oracle.

    Returns None when the schedule contains no two-way decision points
    (e.g. the whole pair fits one window).
    """
    decisions = oracle_decisions(pair, capacity)
    if not decisions:
        return None
    agreements = sum(1 for aoe, oracle in decisions if aoe == oracle)
    return agreements / len(decisions)


def oracle_window_schedule(
    pair: GraphPair,
    capacity: int,
    active_targets=None,
    active_queries=None,
):
    """Coordinated window steered by the lookahead oracle.

    A practical upper bound for AOE: each two-way decision runs both
    rollouts and takes the cheaper branch. Much costlier to schedule
    (O(steps) rollouts), so it is a reference point, not a dataflow —
    the ``fig08`` experiment shows how close AOE's constant-time
    heuristic gets.
    """
    from .window import WindowSchedule, WindowStep

    capacity = _validate_capacity(capacity)
    half = max(1, capacity // 2)
    targets, queries = _active_sets(pair, active_targets, active_queries)
    tracker = _EdgeTracker(_pair_edges(pair))
    if not targets or not queries:
        return _cleanup_only_schedule(tracker, capacity, "oracle")
    t_blocks = _chunks(targets, half)
    q_blocks = _chunks(queries, half)
    unmatched = {
        (ti, qi) for ti in range(len(t_blocks)) for qi in range(len(q_blocks))
    }
    steps = []
    ti, qi = 0, 0
    previous: frozenset = frozenset()
    while True:
        window = _window(t_blocks[ti], q_blocks[qi])
        edges = tracker.process_coresident(window)
        matchings = 0
        if (ti, qi) in unmatched:
            unmatched.discard((ti, qi))
            matchings = len(t_blocks[ti]) * len(q_blocks[qi])
        steps.append(WindowStep(window, matchings, edges, "joint"))
        previous = window
        if not unmatched:
            break
        q_move, t_move = _nearest_moves(unmatched, ti, qi)
        if q_move is not None and t_move is not None:
            slide_q_cost = _rollout(
                t_blocks, q_blocks, ti, q_move, unmatched, tracker, capacity, previous
            )
            slide_t_cost = _rollout(
                t_blocks, q_blocks, t_move, qi, unmatched, tracker, capacity, previous
            )
            if slide_q_cost <= slide_t_cost:
                qi = q_move
            else:
                ti = t_move
        elif q_move is not None:
            qi = q_move
        elif t_move is not None:
            ti = t_move
        else:
            ti, qi = min(
                unmatched, key=lambda cell: abs(cell[0] - ti) + abs(cell[1] - qi)
            )
    steps.extend(tracker.cleanup_steps(capacity))
    return WindowSchedule(steps, capacity, "oracle")
