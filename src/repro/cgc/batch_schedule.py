"""Batch-level scheduling over the global adjacency matrix (Fig. 15).

CEGMA batches graph pairs into one global adjacency matrix. Because the
cross-graph matching area is block-diagonal (nodes only match within
their own pair), the batch schedule decomposes into per-pair schedules —
what differs between platforms is the *ordering*:

- :func:`batch_coordinated_schedule` (CEGMA): pair-coherent — each
  pair's fused coordinated schedule runs to completion before the next
  pair's, preserving locality across a pair's stages.
- :func:`batch_baseline_schedule` (HyGCN-style): stage-wise — the
  embedding windows of *every* pair run first, then the matching windows
  of every pair, which is exactly the regime that destroys inter-stage
  locality (Figs. 4/8).

Both return a :class:`~repro.cgc.window.WindowSchedule` over *global*
node ids (target blocks first, then query blocks, per Fig. 15), so the
miss accounting reflects cross-pair buffer transitions.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from ..graphs.batch import GraphPairBatch
from .window import (
    WindowSchedule,
    WindowStep,
    coordinated_window_schedule,
    single_window_schedule,
)

__all__ = ["batch_coordinated_schedule", "batch_baseline_schedule"]


def _globalize_step(
    step: WindowStep, pair_index: int, batch: GraphPairBatch
) -> WindowStep:
    """Map a per-pair step's local node ids into the Fig. 15 layout."""
    pair = batch.pairs[pair_index]
    n_t = pair.target.num_nodes
    t_offset = batch.target_offsets[pair_index]
    q_offset = batch.query_offsets[pair_index]
    nodes = frozenset(
        t_offset + node if node < n_t else q_offset + (node - n_t)
        for node in step.input_nodes
    )
    return WindowStep(nodes, step.num_matchings, step.num_edges, step.kind)


def batch_coordinated_schedule(
    batch: GraphPairBatch,
    capacity: int,
    active_targets: Optional[Sequence[Optional[Iterable[int]]]] = None,
    active_queries: Optional[Sequence[Optional[Iterable[int]]]] = None,
) -> WindowSchedule:
    """CEGMA's pair-coherent batch schedule.

    ``active_targets`` / ``active_queries`` optionally carry one
    EMF-unique node set per pair (local indices), as in the per-pair
    scheduler.
    """
    steps: List[WindowStep] = []
    for index, pair in enumerate(batch.pairs):
        schedule = coordinated_window_schedule(
            pair,
            capacity,
            None if active_targets is None else active_targets[index],
            None if active_queries is None else active_queries[index],
        )
        steps.extend(
            _globalize_step(step, index, batch) for step in schedule.steps
        )
    return WindowSchedule(steps, capacity, "batch-coordinated")


def batch_baseline_schedule(
    batch: GraphPairBatch,
    capacity: int,
) -> WindowSchedule:
    """Stage-wise baseline batch schedule (embedding first, everywhere)."""
    per_pair = [
        single_window_schedule(pair, capacity) for pair in batch.pairs
    ]
    steps: List[WindowStep] = []
    for kinds in (("embed",), ("match", "joint", "cleanup")):
        for index, schedule in enumerate(per_pair):
            steps.extend(
                _globalize_step(step, index, batch)
                for step in schedule.steps
                if step.kind in kinds
            )
    return WindowSchedule(steps, capacity, "batch-baseline")
