"""Cross Graph Coordinator: joint sliding windows and AOE (Algorithm 2)."""

from .aoe import SLIDE_COLUMN_WISE, SLIDE_ROW_WISE, approximate_outlier_estimation
from .batch_schedule import batch_baseline_schedule, batch_coordinated_schedule
from .hardware import CGCHardwareModel
from .oracle import aoe_precision, oracle_decisions, oracle_window_schedule
from .render import (
    adjacency_step_matrix,
    node_name,
    render_step_matrix,
    schedule_summary,
    schedule_table,
)
from .window import (
    SCHEDULERS,
    WindowSchedule,
    WindowStep,
    coordinated_window_schedule,
    double_window_schedule,
    joint_window_schedule,
    single_window_schedule,
)

__all__ = [
    "approximate_outlier_estimation",
    "SLIDE_ROW_WISE",
    "SLIDE_COLUMN_WISE",
    "WindowStep",
    "WindowSchedule",
    "single_window_schedule",
    "double_window_schedule",
    "joint_window_schedule",
    "coordinated_window_schedule",
    "SCHEDULERS",
    "aoe_precision",
    "oracle_decisions",
    "batch_coordinated_schedule",
    "batch_baseline_schedule",
    "schedule_table",
    "schedule_summary",
    "node_name",
    "CGCHardwareModel",
    "adjacency_step_matrix",
    "render_step_matrix",
    "oracle_window_schedule",
]
