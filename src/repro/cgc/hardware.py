"""CGC decision-logic timing (Fig. 13).

The Task Generator's FSM consults the AOE block whenever a sliding
direction must be decided: rows/columns stream from the edge buffer
into the Remains Counters (8-input parallel counters), whose outputs
feed the outlier comparison. Table III provisions 34 parallel counters
and 33 magnitude comparators.

The decision latency is tiny (tens of cycles) and fully overlapped with
the current window's computation; this model exists to *show* that —
the per-decision cycles never approach a window step's compute time.
"""

from __future__ import annotations

import math
from typing import Dict

__all__ = ["CGCHardwareModel"]


class CGCHardwareModel:
    """Cycle model of the AOE decision path."""

    def __init__(
        self,
        counter_inputs: int = 8,
        num_remains_counters: int = 34,
        num_comparators: int = 33,
    ) -> None:
        if min(counter_inputs, num_remains_counters, num_comparators) < 1:
            raise ValueError("hardware parameters must be positive")
        self.counter_inputs = counter_inputs
        self.num_remains_counters = num_remains_counters
        self.num_comparators = num_comparators

    def decision_cycles(self, window_nodes: int, mean_degree: float) -> int:
        """Cycles for one AOE direction decision.

        Each on-chip node's remaining-edge count is produced by a
        Remains Counter consuming its adjacency row ``counter_inputs``
        entries per cycle; the counters run in parallel across nodes
        (bounded by the provisioned counter count), and the outlier
        comparison pipeline adds one pass over the nodes.
        """
        if window_nodes < 0 or mean_degree < 0:
            raise ValueError("workload parameters must be non-negative")
        if window_nodes == 0:
            return 0
        row_cycles = max(1, math.ceil(mean_degree / self.counter_inputs))
        waves = math.ceil(window_nodes / self.num_remains_counters)
        count_cycles = waves * row_cycles
        compare_cycles = math.ceil(window_nodes / self.num_comparators)
        return count_cycles + compare_cycles

    def per_layer_overhead(
        self,
        num_decisions: int,
        window_nodes: int,
        mean_degree: float,
    ) -> int:
        """Total AOE cycles for one layer's schedule."""
        return num_decisions * self.decision_cycles(window_nodes, mean_degree)

    def report(
        self, window_nodes: int, mean_degree: float, step_compute_cycles: float
    ) -> Dict[str, float]:
        """Compare one decision's cost against a window step's compute."""
        cycles = self.decision_cycles(window_nodes, mean_degree)
        return {
            "decision_cycles": float(cycles),
            "step_compute_cycles": float(step_compute_cycles),
            "overlapped": float(cycles <= step_compute_cycles),
        }
