"""Approximate Outlier Estimation — Algorithm 2 of the paper.

When the joint window finishes a stripe of the matching matrix, the CGC
must pick a sliding direction: keep the target-side (row) nodes
stationary and stream query-side (column) nodes past them, or vice
versa. AOE estimates, for each side, how many on-chip nodes are
*outliers* — nodes with the minimum number of remaining (unprocessed)
intra-graph edges — and keeps the side with more outliers stationary.
Stationary nodes complete all their matchings and retire; retiring nodes
that still have unprocessed edges must be revisited during cleanup, so
retiring minimum-remaining-edge nodes minimizes revisits.

Return convention follows the paper: ``1`` = row-wise sliding (rows
change, columns stationary), ``0`` = column-wise sliding (columns change,
rows stationary).
"""

from __future__ import annotations

from typing import Sequence

from ..obs.metrics import get_metrics

__all__ = ["approximate_outlier_estimation", "SLIDE_ROW_WISE", "SLIDE_COLUMN_WISE"]

SLIDE_ROW_WISE = 1
SLIDE_COLUMN_WISE = 0


def approximate_outlier_estimation(
    row_remains: Sequence[int],
    column_remains: Sequence[int],
) -> int:
    """Algorithm 2: pick the sliding direction.

    Parameters
    ----------
    row_remains:
        Remaining-edge counts for the on-chip row-side (target) nodes,
        the set ``S_0`` of the paper.
    column_remains:
        Remaining-edge counts for the on-chip column-side (query) nodes
        (``S_1``).

    Returns
    -------
    ``SLIDE_ROW_WISE`` (1) if the column side holds at least as many
    outliers (columns stay, rows slide); ``SLIDE_COLUMN_WISE`` (0) if the
    row side holds strictly more outliers (rows stay, columns slide).
    """
    threshold = None
    n0 = 0  # outliers among rows (S_0)
    n1 = 0  # outliers among columns (S_1)
    for side, remains_list in ((0, row_remains), (1, column_remains)):
        for remains in remains_list:
            if threshold is None or remains < threshold:
                threshold = remains
                if side == 0:
                    n0, n1 = 1, 0
                else:
                    n0, n1 = 0, 1
            elif remains == threshold:
                if side == 0:
                    n0 += 1
                else:
                    n1 += 1
    decision = SLIDE_COLUMN_WISE if n0 > n1 else SLIDE_ROW_WISE
    registry = get_metrics()
    if registry is not None:
        direction = "column" if decision == SLIDE_COLUMN_WISE else "row"
        registry.inc("cgc.aoe.decisions", 1, direction=direction)
        # How many on-chip nodes sat at the minimum remaining-edge
        # count — the estimate Algorithm 2 steers by; comparing its
        # distribution against cgc.revisits.nodes shows how well the
        # estimate tracked actual cleanup work.
        registry.observe("cgc.aoe.outliers", n0 + n1)
    return decision
