"""Node reuse-distance profiling (Figs. 4 and 20).

The paper defines reuse distance as the number of *unique* nodes
referenced between two references to the same node (an LRU stack
distance); a revisit misses the input buffer whenever its distance
exceeds the buffer's capacity in nodes (128 KB / 256 B = 512 nodes).

Reference streams are built at buffer-load granularity:

- **Baseline** (Fig. 4): one GMN layer executes stage-wise over the
  whole batch. The embedding stage streams each graph's nodes once
  (HyGCN-style column windows load each source block exactly once per
  layer); the matching stage then slides a window over each pair's
  similarity matrix, holding a target block stationary while all query
  nodes stream past. A node's embedding-stage access and its
  matching-stage reuse are therefore separated by most of the *batch*
  working set — for batch 32 this is thousands of nodes, which is why
  the paper finds AIDS needs ~4x the 512-node buffer and REDDIT-BINARY
  ~128x.
- **CEGMA** (Fig. 20): the coordinated joint window processes each pair
  coherently and fuses the stages, so reuses happen between consecutive
  window steps — at half-window distances (<= 2^8 nodes for the 128 KB
  T/Q buffers), matching the paper's "90.3% of reuses within 2^8".
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from ..cgc.window import coordinated_window_schedule
from ..graphs.pairs import GraphPair

__all__ = [
    "lru_stack_distances",
    "reuse_distance_cdf",
    "fraction_within",
    "baseline_reference_stream",
    "cegma_reference_stream",
    "profile_reuse",
]


class _FenwickTree:
    """Binary indexed tree over reference positions (1-indexed)."""

    def __init__(self, size: int) -> None:
        self._tree = [0] * (size + 1)

    def add(self, index: int, delta: int) -> None:
        index += 1
        while index < len(self._tree):
            self._tree[index] += delta
            index += index & (-index)

    def prefix_sum(self, index: int) -> int:
        """Sum of entries at positions 0..index inclusive."""
        index += 1
        total = 0
        while index > 0:
            total += self._tree[index]
            index -= index & (-index)
        return total


def lru_stack_distances(stream: Sequence[int]) -> List[float]:
    """LRU stack distance of every reference in the stream.

    First-time references have distance ``inf`` (cold misses); they are
    not reuses and are excluded from reuse CDFs. Computed with the
    classic Fenwick-tree algorithm (a bit set at each node's most recent
    position; the distance is the count of set bits strictly between the
    previous and current positions), O(n log n) overall.
    """
    tree = _FenwickTree(len(stream))
    last_position: Dict[int, int] = {}
    distances: List[float] = []
    for position, node in enumerate(stream):
        previous = last_position.get(node)
        if previous is None:
            distances.append(float("inf"))
        else:
            between = tree.prefix_sum(position - 1) - tree.prefix_sum(previous)
            distances.append(float(between))
            tree.add(previous, -1)
        tree.add(position, 1)
        last_position[node] = position
    return distances


def reuse_distance_cdf(
    distances: Iterable[float],
    max_log2: int = 20,
) -> Tuple[np.ndarray, np.ndarray]:
    """CDF of finite reuse distances over power-of-two buckets.

    Returns ``(thresholds, cdf)`` where ``cdf[i]`` is the fraction of
    reuses with distance <= ``thresholds[i] = 2**i``.
    """
    finite = np.asarray([d for d in distances if np.isfinite(d)])
    thresholds = np.array([2.0**i for i in range(max_log2 + 1)])
    if finite.size == 0:
        return thresholds, np.ones_like(thresholds)
    cdf = np.array([(finite <= t).mean() for t in thresholds])
    return thresholds, cdf


def fraction_within(distances: Iterable[float], capacity_nodes: int) -> float:
    """Fraction of reuses captured by a buffer of the given capacity."""
    finite = [d for d in distances if np.isfinite(d)]
    if not finite:
        return 1.0
    return sum(1 for d in finite if d <= capacity_nodes) / len(finite)


def _globalize(pairs: Sequence[GraphPair]) -> List[int]:
    offsets = []
    offset = 0
    for pair in pairs:
        offsets.append(offset)
        offset += pair.total_nodes
    return offsets


def baseline_reference_stream(
    pairs: Sequence[GraphPair],
    capacity: int,
    num_layers: int,
) -> List[int]:
    """Stage-wise batch execution stream (the Fig. 4 regime)."""
    if capacity < 2:
        raise ValueError("capacity must hold at least 2 nodes")
    offsets = _globalize(pairs)
    half = max(1, capacity // 2)
    stream: List[int] = []
    for _ in range(num_layers):
        # Embedding stage: every node streamed once, pair after pair.
        for pair, offset in zip(pairs, offsets):
            stream.extend(offset + node for node in range(pair.total_nodes))
        # Matching stage: window over each pair's similarity matrix;
        # target blocks stationary, query nodes streamed per block.
        for pair, offset in zip(pairs, offsets):
            n_t, n_q = pair.target.num_nodes, pair.query.num_nodes
            query_nodes = [offset + n_t + j for j in range(n_q)]
            for block_start in range(0, n_t, half):
                block = [
                    offset + i for i in range(block_start, min(block_start + half, n_t))
                ]
                stream.extend(block)
                stream.extend(query_nodes)
    return stream


def cegma_reference_stream(
    pairs: Sequence[GraphPair],
    capacity: int,
    num_layers: int,
) -> List[int]:
    """Pair-coherent fused execution stream (the Fig. 20 regime)."""
    offsets = _globalize(pairs)
    schedules = [coordinated_window_schedule(pair, capacity) for pair in pairs]
    stream: List[int] = []
    # CEGMA's task queue drains one pair completely (all layers) before
    # the next: GMN layers carry no cross-pair dependency, so there is no
    # batch-wide layer barrier. Within a layer, every on-chip node is
    # touched each step; the stationary side's touches are the
    # short-distance reuses the fused window creates.
    for schedule, offset in zip(schedules, offsets):
        for _ in range(num_layers):
            for step in schedule.steps:
                stream.extend(
                    offset + node for node in sorted(step.input_nodes)
                )
    return stream


def profile_reuse(
    pairs: Sequence[GraphPair],
    capacity: int,
    num_layers: int = 3,
    cegma: bool = False,
) -> List[float]:
    """Reuse distances for a batch under the baseline or CEGMA regime."""
    if cegma:
        stream = cegma_reference_stream(pairs, capacity, num_layers)
    else:
        stream = baseline_reference_stream(pairs, capacity, num_layers)
    return lru_stack_distances(stream)
