"""Result aggregation helpers shared by the experiment runners."""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence

import numpy as np

from ..sim.engine import PlatformResult

__all__ = ["speedup", "normalize_to", "geomean", "ResultTable"]


def speedup(baseline: PlatformResult, target: PlatformResult) -> float:
    """How many times faster ``target`` is than ``baseline``."""
    if target.latency_seconds <= 0:
        raise ValueError("target latency must be positive")
    return baseline.latency_seconds / target.latency_seconds


def normalize_to(
    values: Mapping[str, float], reference_key: str
) -> Dict[str, float]:
    """Normalize a dict of metric values to one entry (e.g. HyGCN=1.0)."""
    if reference_key not in values:
        raise KeyError(f"reference {reference_key!r} missing from values")
    reference = values[reference_key]
    if reference == 0:
        raise ValueError("reference value must be non-zero")
    return {key: value / reference for key, value in values.items()}


def geomean(values: Iterable[float]) -> float:
    """Geometric mean (the customary average for speedup ratios)."""
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        raise ValueError("geomean of empty sequence")
    if np.any(array <= 0):
        raise ValueError("geomean requires positive values")
    return float(np.exp(np.mean(np.log(array))))


class ResultTable:
    """A small row-oriented table with aligned text rendering.

    Used by every experiment runner to print the figure/table data the
    way the paper reports it.
    """

    def __init__(self, columns: Sequence[str], title: str = "") -> None:
        if not columns:
            raise ValueError("table needs at least one column")
        self.columns = list(columns)
        self.title = title
        self.rows: List[List[str]] = []

    def add_row(self, *cells: object) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} cells, got {len(cells)}"
            )
        self.rows.append([self._format(cell) for cell in cells])

    @staticmethod
    def _format(cell: object) -> str:
        if isinstance(cell, float):
            if cell != 0 and (abs(cell) >= 1e5 or abs(cell) < 1e-3):
                return f"{cell:.3e}"
            return f"{cell:.3f}"
        return str(cell)

    def render(self) -> str:
        widths = [len(col) for col in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = []
        if self.title:
            lines.append(self.title)
        header = "  ".join(
            col.ljust(widths[i]) for i, col in enumerate(self.columns)
        )
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            lines.append(
                "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
            )
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()
