"""Matching-redundancy measurement (Figs. 7 and 18).

Fig. 7 reports the ratio between redundant and unique matchings per
model/dataset; Fig. 18 reports the percentage of matchings that remain
after the EMF removes redundancy. Both derive from running the models,
filtering each matching layer's features with Algorithm 1, and counting.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..emf.filter import MatchingPlan
from ..trace.events import PairTrace

__all__ = [
    "pair_matching_counts",
    "remaining_matching_fraction",
    "redundant_to_unique_ratio",
    "dataset_redundancy",
]


def pair_matching_counts(trace: PairTrace) -> Dict[str, int]:
    """Total vs unique matchings summed over a pair's matching layers."""
    total = 0
    unique = 0
    for layer in trace.layers:
        if not layer.has_matching:
            continue
        plan = MatchingPlan.from_features(
            layer.target_features, layer.query_features
        )
        total += plan.total_matchings
        unique += plan.unique_matchings
    return {"total": total, "unique": unique, "redundant": total - unique}


def remaining_matching_fraction(traces: Sequence[PairTrace]) -> float:
    """Fig. 18's metric: unique / total matchings over a workload."""
    total = 0
    unique = 0
    for trace in traces:
        counts = pair_matching_counts(trace)
        total += counts["total"]
        unique += counts["unique"]
    return unique / total if total else 1.0


def redundant_to_unique_ratio(traces: Sequence[PairTrace]) -> float:
    """Fig. 7's metric: redundant / unique matchings over a workload."""
    total = 0
    unique = 0
    for trace in traces:
        counts = pair_matching_counts(trace)
        total += counts["total"]
        unique += counts["unique"]
    if unique == 0:
        return 0.0
    return (total - unique) / unique


def dataset_redundancy(traces: Sequence[PairTrace]) -> Dict[str, float]:
    """Both redundancy metrics for one model/dataset workload."""
    remaining = remaining_matching_fraction(traces)
    ratio = redundant_to_unique_ratio(traces)
    return {
        "remaining_fraction": remaining,
        "removed_fraction": 1.0 - remaining,
        "redundant_to_unique": ratio,
    }
