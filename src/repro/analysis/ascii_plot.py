"""Terminal plotting: bar charts and line/CDF plots in plain text.

The repository has no plotting dependency (the offline environment
ships none), so experiment results render as Unicode charts — good
enough to *see* Fig. 16's bars or Fig. 4's CDFs in a terminal, and used
by the experiments CLI's ``--plot`` flag.
"""

from __future__ import annotations

import math
from typing import List, Mapping, Sequence, Tuple

__all__ = ["bar_chart", "line_plot", "log_bar_chart"]

_BLOCKS = " ▏▎▍▌▋▊▉█"


def _format_value(value: float) -> str:
    if value != 0 and (abs(value) >= 1e5 or abs(value) < 1e-2):
        return f"{value:.2e}"
    return f"{value:,.2f}"


def _bar(fraction: float, width: int) -> str:
    fraction = min(max(fraction, 0.0), 1.0)
    whole = int(fraction * width)
    remainder = (fraction * width - whole) * (len(_BLOCKS) - 1)
    partial = _BLOCKS[int(remainder)] if whole < width else ""
    return "█" * whole + partial


def bar_chart(
    values: Mapping[str, float],
    title: str = "",
    width: int = 40,
) -> str:
    """Horizontal bar chart of labelled non-negative values."""
    if not values:
        raise ValueError("nothing to plot")
    if any(v < 0 for v in values.values()):
        raise ValueError("bar_chart requires non-negative values")
    peak = max(values.values()) or 1.0
    label_width = max(len(label) for label in values)
    lines = [title] if title else []
    for label, value in values.items():
        bar = _bar(value / peak, width)
        lines.append(
            f"{label.ljust(label_width)} |{bar.ljust(width)}| {_format_value(value)}"
        )
    return "\n".join(lines)


def log_bar_chart(
    values: Mapping[str, float],
    title: str = "",
    width: int = 40,
) -> str:
    """Bar chart on a log10 scale — the paper's Fig. 16/25 rendering.

    Values must be >= 1 (ratios over a baseline).
    """
    if not values:
        raise ValueError("nothing to plot")
    if any(v < 1.0 for v in values.values()):
        raise ValueError("log_bar_chart requires values >= 1")
    peak = max(math.log10(v) for v in values.values()) or 1.0
    label_width = max(len(label) for label in values)
    lines = [f"{title} (log scale)"] if title else []
    for label, value in values.items():
        bar = _bar(math.log10(value) / peak if peak else 0.0, width)
        lines.append(
            f"{label.ljust(label_width)} |{bar.ljust(width)}| {_format_value(value)}x"
        )
    return "\n".join(lines)


def line_plot(
    series: Mapping[str, Sequence[Tuple[float, float]]],
    title: str = "",
    width: int = 60,
    height: int = 12,
) -> str:
    """Multi-series scatter/line plot on a character canvas.

    Each series is a list of (x, y) points; series are drawn with
    distinct markers. Axes are annotated with the data ranges.
    """
    if not series or all(not points for points in series.values()):
        raise ValueError("nothing to plot")
    markers = "ox+*#@"
    xs = [x for points in series.values() for x, _ in points]
    ys = [y for points in series.values() for _, y in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    canvas: List[List[str]] = [[" "] * width for _ in range(height)]
    for index, (name, points) in enumerate(series.items()):
        marker = markers[index % len(markers)]
        for x, y in points:
            column = int((x - x_lo) / x_span * (width - 1))
            row = height - 1 - int((y - y_lo) / y_span * (height - 1))
            canvas[row][column] = marker

    lines = [title] if title else []
    for row in canvas:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(
        f" x: [{_format_value(x_lo)}, {_format_value(x_hi)}]  "
        f"y: [{_format_value(y_lo)}, {_format_value(y_hi)}]"
    )
    legend = "  ".join(
        f"{markers[i % len(markers)]}={name}"
        for i, name in enumerate(series)
    )
    lines.append(f" {legend}")
    return "\n".join(lines)
