"""Analysis utilities: reuse distances, redundancy metrics, aggregation."""

from .metrics import ResultTable, geomean, normalize_to, speedup
from .redundancy import (
    dataset_redundancy,
    pair_matching_counts,
    redundant_to_unique_ratio,
    remaining_matching_fraction,
)
from .roofline import arithmetic_intensity, machine_balance, roofline_report
from .reuse import (
    baseline_reference_stream,
    cegma_reference_stream,
    fraction_within,
    lru_stack_distances,
    profile_reuse,
    reuse_distance_cdf,
)

__all__ = [
    "speedup",
    "normalize_to",
    "geomean",
    "ResultTable",
    "pair_matching_counts",
    "remaining_matching_fraction",
    "redundant_to_unique_ratio",
    "dataset_redundancy",
    "lru_stack_distances",
    "reuse_distance_cdf",
    "fraction_within",
    "baseline_reference_stream",
    "cegma_reference_stream",
    "profile_reuse",
    "arithmetic_intensity",
    "machine_balance",
    "roofline_report",
]
