"""Roofline-style boundedness analysis.

Classifies a simulated workload as compute- or memory-bound on a
platform: arithmetic intensity (MACs per DRAM byte) against the
platform's machine balance (MACs/cycle over bytes/cycle). Explains
*why* CEGMA's two mechanisms compose — the EMF attacks the compute
ceiling, the CGC the memory ceiling — and which one binds where.
"""

from __future__ import annotations

from typing import Dict

from ..sim.config import HardwareConfig
from ..sim.engine import PlatformResult

__all__ = ["arithmetic_intensity", "machine_balance", "roofline_report"]


def arithmetic_intensity(result: PlatformResult) -> float:
    """MACs performed per DRAM byte moved."""
    if result.dram_bytes <= 0:
        raise ValueError("workload moved no DRAM bytes")
    return result.macs / result.dram_bytes


def machine_balance(config: HardwareConfig) -> float:
    """The platform's balance point: MACs/cycle over DRAM bytes/cycle.

    Workloads with arithmetic intensity above this are compute-bound on
    the platform; below, memory-bound.
    """
    return config.mac_units / config.dram_bandwidth_bytes_per_cycle


def roofline_report(
    result: PlatformResult, config: HardwareConfig
) -> Dict[str, float]:
    """Boundedness summary for one simulated workload.

    ``bound`` is +1 when compute-bound, -1 when memory-bound;
    ``headroom`` is the intensity ratio to the balance point (>1 means
    compute-bound by that factor).
    """
    intensity = arithmetic_intensity(result)
    balance = machine_balance(config)
    ratio = intensity / balance
    return {
        "arithmetic_intensity": intensity,
        "machine_balance": balance,
        "headroom": ratio,
        "bound": 1.0 if ratio >= 1.0 else -1.0,
        "attained_macs_per_cycle": result.macs / result.cycles
        if result.cycles
        else 0.0,
    }
