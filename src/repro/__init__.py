"""CEGMA: Coordinated Elastic Graph Matching Acceleration -- reproduction.

A full Python reproduction of "CEGMA: Coordinated Elastic Graph Matching
Acceleration for Graph Matching Networks" (HPCA 2023): the GMN model zoo
(GMN-Li, GraphSim, SimGNN), synthetic Table II datasets, the Elastic
Matching Filter and Cross Graph Coordinator, a cycle-level accelerator
simulator with HyGCN/AWB-GCN/PyG-CPU/PyG-GPU comparison platforms, and a
benchmark harness regenerating every evaluation figure and table.

Quickstart::

    import logging

    from repro import simulate_workload
    from repro.obs import configure_logging

    configure_logging(1)  # route repro.* loggers to stderr at INFO
    logger = logging.getLogger("repro.quickstart")
    results = simulate_workload("GMN-Li", "AIDS", num_pairs=8)
    for platform, result in results.items():
        logger.info("%s: %.3g s/pair", platform, result.latency_per_pair)

Library code never prints; diagnostics flow through the ``repro.*``
logger hierarchy configured by :func:`repro.obs.configure_logging`.
"""

from .core import (
    DEFAULT_PLATFORMS,
    PLATFORM_BUILDERS,
    compare_platforms,
    filtered_similarity_matrix,
    simulate_traces,
    simulate_workload,
)
from .counters import FlopCounter
from .graphs import (
    DATASET_NAMES,
    DATASETS,
    Graph,
    GraphPair,
    GraphPairBatch,
    load_dataset,
    make_batches,
)
from .models import MODEL_NAMES, build_model, similarity_matrix
from .platforms import REGISTRY, RunSpec, build_platform, register_platform
from .search import SearchResult, SimilaritySearchIndex
from .sim import AcceleratorSimulator, PlatformResult, cegma_config

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Graph",
    "GraphPair",
    "GraphPairBatch",
    "DATASETS",
    "DATASET_NAMES",
    "MODEL_NAMES",
    "load_dataset",
    "make_batches",
    "build_model",
    "similarity_matrix",
    "filtered_similarity_matrix",
    "simulate_workload",
    "simulate_traces",
    "compare_platforms",
    "PLATFORM_BUILDERS",
    "DEFAULT_PLATFORMS",
    "REGISTRY",
    "RunSpec",
    "build_platform",
    "register_platform",
    "AcceleratorSimulator",
    "PlatformResult",
    "cegma_config",
    "FlopCounter",
    "SimilaritySearchIndex",
    "SearchResult",
]
