"""Platform registry, spec strings, and workload identity (RunSpec).

This package is the single spine for "what runs where":

- :class:`PlatformRegistry` / :data:`REGISTRY` — declarative name ->
  builder mapping for every simulation platform, with **spec strings**
  (``"CEGMA@bandwidth_gbps=512"``) deriving ablation/sweep variants
  from the stock hardware configs;
- :class:`RunSpec` — the one canonical, hashable workload key shared by
  the in-process memos, the on-disk trace cache, and the parallel
  harness worker transport;
- :mod:`~repro.platforms.artifacts` — schema-versioned JSON persistence
  of ``{platform: PlatformResult}`` outputs under ``results/``.

The legacy ``repro.core.api.PLATFORM_BUILDERS`` dict survives as a thin
deprecated view over :data:`REGISTRY`.
"""

from .artifacts import (
    ARTIFACT_SCHEMA_VERSION,
    default_artifact_path,
    load_results,
    results_payload,
    save_results,
)
from .builtin import DEFAULT_PLATFORMS
from .registry import (
    REGISTRY,
    ParsedSpec,
    Platform,
    PlatformEntry,
    PlatformRegistry,
    build_platform,
    register_accelerator,
    register_platform,
)
from .runspec import (
    FIDELITIES,
    FULL_BATCH,
    QUICK_BATCH,
    QUICK_PAIRS,
    RUNSPEC_SCHEMA_VERSION,
    RunSpec,
)

__all__ = [
    "Platform",
    "PlatformEntry",
    "PlatformRegistry",
    "ParsedSpec",
    "REGISTRY",
    "build_platform",
    "register_platform",
    "register_accelerator",
    "DEFAULT_PLATFORMS",
    "RunSpec",
    "RUNSPEC_SCHEMA_VERSION",
    "FIDELITIES",
    "QUICK_PAIRS",
    "QUICK_BATCH",
    "FULL_BATCH",
    "ARTIFACT_SCHEMA_VERSION",
    "results_payload",
    "save_results",
    "load_results",
    "default_artifact_path",
]
