"""JSON persistence of simulation results.

``simulate_workload`` and the experiment harness produce
``{platform: PlatformResult}`` mappings; this module writes them as
schema-versioned JSON artifacts (by convention under ``results/``) and
reads them back, so evaluation outputs can be diffed, archived, and
post-processed without re-simulating.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

from ..sim.engine import PlatformResult
from .runspec import RunSpec

__all__ = [
    "ARTIFACT_SCHEMA_VERSION",
    "results_payload",
    "save_results",
    "load_results",
    "default_artifact_path",
]

ARTIFACT_SCHEMA_VERSION = 1

DEFAULT_RESULTS_DIR = "results"


def results_payload(
    results: Dict[str, PlatformResult],
    spec: Optional[RunSpec] = None,
) -> dict:
    """The JSON-serializable artifact for one simulated workload."""
    return {
        "schema_version": ARTIFACT_SCHEMA_VERSION,
        "run_spec": None if spec is None else spec.to_dict(),
        "results": {
            platform: result.to_dict()
            for platform, result in results.items()
        },
    }


def save_results(
    results: Dict[str, PlatformResult],
    path: Union[str, Path],
    spec: Optional[RunSpec] = None,
) -> Path:
    """Write a results artifact; creates parent directories as needed."""
    target = Path(path)
    if target.parent != Path("."):
        target.parent.mkdir(parents=True, exist_ok=True)
    with open(target, "w") as handle:
        json.dump(results_payload(results, spec), handle, indent=2)
    return target


def default_artifact_path(spec: RunSpec) -> Path:
    """The conventional ``results/`` location for a workload artifact."""
    return Path(DEFAULT_RESULTS_DIR) / f"{spec.stem}.json"


def load_results(
    path: Union[str, Path],
) -> Tuple[Dict[str, PlatformResult], Optional[RunSpec]]:
    """Inverse of :func:`save_results`."""
    with open(path) as handle:
        payload = json.load(handle)
    version = payload.get("schema_version")
    if version != ARTIFACT_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported results artifact schema version {version!r} "
            f"(expected {ARTIFACT_SCHEMA_VERSION})"
        )
    spec_payload = payload.get("run_spec")
    spec = None if spec_payload is None else RunSpec.from_dict(spec_payload)
    results = {
        platform: PlatformResult.from_dict(entry)
        for platform, entry in payload["results"].items()
    }
    return results, spec
