"""The canonical workload identity: :class:`RunSpec`.

A workload is fully determined by five inputs — model, dataset, number
of graph pairs, batch size, and seed — plus the derived quick/full
fidelity flag. Before this module existed, that tuple was hand-assembled
in three places (the in-process memos of ``experiments.common``, the
on-disk ``perf.trace_cache`` file stems, and the ``perf.parallel``
worker task tuples) which could drift apart silently. ``RunSpec`` is now
the one hashable, frozen value all three consume, serialized in exactly
one place with a schema-versioned ``to_dict``/``from_dict``.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "RunSpec",
    "RUNSPEC_SCHEMA_VERSION",
    "FIDELITIES",
    "QUICK_PAIRS",
    "QUICK_BATCH",
    "FULL_BATCH",
]

RUNSPEC_SCHEMA_VERSION = 1

# Harness fidelity constants. Quick mode runs every workload at this
# fixed tiny size; anything else is a "full" run (full-mode pair counts
# come from the Table II test-set sizes — see
# ``experiments.common.workload_size``).
QUICK_PAIRS = 4
QUICK_BATCH = 4
FULL_BATCH = 32

FIDELITIES = ("quick", "full")


@dataclass(frozen=True)
class RunSpec:
    """One profiled workload: what ran, on what data, at what size.

    Frozen and hashable, so it is directly usable as a cache key. The
    ``fidelity`` field exists so quick and full runs of the same
    (model, dataset, seed) can never alias, even if a future size change
    made their pair counts collide; derive it with :meth:`make` rather
    than passing it by hand.
    """

    model: str
    dataset: str
    num_pairs: int
    batch_size: int
    seed: int = 0
    fidelity: str = "full"

    def __post_init__(self) -> None:
        if self.num_pairs < 1 or self.batch_size < 1:
            raise ValueError("num_pairs and batch_size must be positive")
        if self.fidelity not in FIDELITIES:
            raise ValueError(
                f"fidelity must be one of {FIDELITIES}, got {self.fidelity!r}"
            )

    # ------------------------------------------------------------------
    @staticmethod
    def derive_fidelity(num_pairs: int, batch_size: int) -> str:
        """The quick/full flag a workload size implies."""
        if (int(num_pairs), int(batch_size)) == (QUICK_PAIRS, QUICK_BATCH):
            return "quick"
        return "full"

    @classmethod
    def make(
        cls,
        model: str,
        dataset: str,
        num_pairs: int,
        batch_size: int,
        seed: int = 0,
    ) -> "RunSpec":
        """Build a spec with the fidelity flag derived from the size."""
        return cls(
            model=str(model),
            dataset=str(dataset),
            num_pairs=int(num_pairs),
            batch_size=int(batch_size),
            seed=int(seed),
            fidelity=cls.derive_fidelity(num_pairs, batch_size),
        )

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-serializable representation (schema-versioned)."""
        return {
            "schema_version": RUNSPEC_SCHEMA_VERSION,
            "model": self.model,
            "dataset": self.dataset,
            "num_pairs": self.num_pairs,
            "batch_size": self.batch_size,
            "seed": self.seed,
            "fidelity": self.fidelity,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RunSpec":
        """Inverse of :meth:`to_dict`; rejects unknown schema versions."""
        version = payload.get("schema_version")
        if version != RUNSPEC_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported RunSpec schema version {version!r} "
                f"(expected {RUNSPEC_SCHEMA_VERSION})"
            )
        return cls(
            model=str(payload["model"]),
            dataset=str(payload["dataset"]),
            num_pairs=int(payload["num_pairs"]),
            batch_size=int(payload["batch_size"]),
            seed=int(payload["seed"]),
            fidelity=str(payload["fidelity"]),
        )

    # ------------------------------------------------------------------
    @property
    def stem(self) -> str:
        """Human-readable identifier used in cache file names."""
        return (
            f"{self.model}_{self.dataset}_p{self.num_pairs}"
            f"_b{self.batch_size}_s{self.seed}_{self.fidelity}"
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.stem
