"""Stock platform registrations (Table III plus software baselines).

Importing :mod:`repro.platforms` loads this module, which populates the
process-wide :data:`~repro.platforms.registry.REGISTRY` with the seven
evaluation platforms. The five accelerators register through their
``HardwareConfig`` factories, so all of them accept spec-string
overrides (``"CEGMA@bandwidth_gbps=512"``); the two software models
register plain builders.
"""

from __future__ import annotations

from ..baselines import pyg_cpu_model, pyg_gpu_model
from ..sim.config import (
    awbgcn_config,
    cegma_cgc_only_config,
    cegma_config,
    cegma_emf_only_config,
    hygcn_config,
)
from .registry import REGISTRY

__all__ = ["DEFAULT_PLATFORMS"]

#: The evaluation's standard comparison set (slowest to fastest).
DEFAULT_PLATFORMS = ("PyG-CPU", "PyG-GPU", "HyGCN", "AWB-GCN", "CEGMA")

REGISTRY.register_accelerator("CEGMA", cegma_config)
REGISTRY.register_accelerator("CEGMA-EMF", cegma_emf_only_config)
REGISTRY.register_accelerator("CEGMA-CGC", cegma_cgc_only_config)
REGISTRY.register_accelerator("HyGCN", hygcn_config)
REGISTRY.register_accelerator("AWB-GCN", awbgcn_config)
REGISTRY.register("PyG-CPU", pyg_cpu_model)
REGISTRY.register("PyG-GPU", pyg_gpu_model)
