"""Declarative platform registry and spec-string grammar.

Everything that can simulate a workload — the CEGMA accelerator model,
its ablation variants, the HyGCN/AWB-GCN baselines, and the PyG software
models — is a *platform*: any object with a
``simulate_batches(traces) -> PlatformResult`` method (the
:class:`Platform` protocol). The :class:`PlatformRegistry` maps names to
platform builders and replaces the hard-coded ``PLATFORM_BUILDERS`` dict
that ``repro.core.api`` used to carry.

Spec strings
------------
Accelerator platforms registered with a
:class:`~repro.sim.config.HardwareConfig` factory accept **spec
strings**, so hardware sweeps and ablations are data, not code::

    CEGMA                                   # the stock Table III config
    CEGMA@bandwidth_gbps=512                # one override
    CEGMA@num_pes=1024,buffer_kb=256        # several overrides

Grammar: ``NAME[@key=value[,key=value...]]``. Keys are either scalar
fields of ``HardwareConfig.to_dict()`` (``mac_units``,
``input_buffer_bytes``, ``dram_bandwidth_bytes_per_cycle``,
``cgc_enabled``, ...) or one of the ergonomic aliases:

- ``bandwidth_gbps`` — DRAM bandwidth in GB/s at the 1 GHz clock
  (numerically equal to ``dram_bandwidth_bytes_per_cycle``);
- ``num_pes`` — sets ``mac_units`` *and* ``aggregation_lanes``;
- ``buffer_kb`` — ``input_buffer_bytes`` in KiB.

Values are coerced to the field's type (``true``/``false`` for bools).
Overrides are raw field sets on top of the stock config; coupled fields
(e.g. ``overlaps_memory`` following ``cgc_enabled``) are not re-derived
— override them explicitly when needed.
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
)

from ..sim.config import HardwareConfig
from ..sim.engine import AcceleratorSimulator, PlatformResult
from ..trace.profiler import BatchTrace

__all__ = [
    "Platform",
    "PlatformEntry",
    "PlatformRegistry",
    "ParsedSpec",
    "REGISTRY",
    "build_platform",
    "register_platform",
    "register_accelerator",
]


class Platform(Protocol):
    """Anything that can simulate profiled batches of graph pairs."""

    def simulate_batches(
        self, batch_traces: Sequence[BatchTrace]
    ) -> PlatformResult:  # pragma: no cover - protocol signature
        ...


# Spec-string aliases: alias -> list of (field, transform) assignments.
_SPEC_ALIASES: Dict[str, Tuple[Tuple[str, Callable[[float], object]], ...]] = {
    "bandwidth_gbps": (
        ("dram_bandwidth_bytes_per_cycle", float),
    ),
    "num_pes": (
        ("mac_units", lambda v: int(round(v))),
        ("aggregation_lanes", lambda v: int(round(v))),
    ),
    "buffer_kb": (
        ("input_buffer_bytes", lambda v: int(round(v * 1024))),
    ),
}

# Fields of HardwareConfig.to_dict() that spec strings may not touch:
# "name" is derived from the spec itself, "emf" is a nested model.
_UNSETTABLE_FIELDS = ("name", "emf")


class ParsedSpec:
    """A decomposed spec string: base platform plus typed overrides."""

    __slots__ = ("base", "overrides")

    def __init__(self, base: str, overrides: Dict[str, object]) -> None:
        self.base = base
        self.overrides = overrides

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ParsedSpec({self.base!r}, {self.overrides!r})"


class PlatformEntry:
    """One registered platform: a builder, optionally configurable."""

    __slots__ = ("name", "builder", "config_factory")

    def __init__(
        self,
        name: str,
        builder: Callable[[], Platform],
        config_factory: Optional[Callable[[], HardwareConfig]] = None,
    ) -> None:
        self.name = name
        self.builder = builder
        self.config_factory = config_factory

    @property
    def configurable(self) -> bool:
        return self.config_factory is not None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PlatformEntry({self.name!r}, "
            f"configurable={self.configurable})"
        )


def _format_value(value: object) -> str:
    """Canonical spec-string rendering of one override value."""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        return str(int(value)) if value.is_integer() else repr(value)
    return str(value)


def _coerce(raw: str, current: object, key: str) -> object:
    """Parse ``raw`` to the type of the field's current value."""
    try:
        if isinstance(current, bool):
            lowered = raw.strip().lower()
            if lowered in ("true", "1", "yes", "on"):
                return True
            if lowered in ("false", "0", "no", "off"):
                return False
            raise ValueError(raw)
        if isinstance(current, int):
            return int(raw)
        if isinstance(current, float):
            return float(raw)
    except ValueError:
        raise ValueError(
            f"cannot parse {raw!r} as a value for spec field {key!r}"
        ) from None
    return raw


class PlatformRegistry:
    """Name -> platform-builder mapping with spec-string support."""

    def __init__(self) -> None:
        self._entries: Dict[str, PlatformEntry] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        builder: Optional[Callable[[], Platform]] = None,
        *,
        config_factory: Optional[Callable[[], HardwareConfig]] = None,
        overwrite: bool = False,
    ):
        """Register a platform builder; usable directly or as a decorator.

        Direct form::

            REGISTRY.register("PyG-CPU", pyg_cpu_model)

        Decorator form::

            @REGISTRY.register("MyPlatform")
            def build_my_platform():
                return MySimulator()
        """
        if builder is None:
            def decorator(func: Callable[[], Platform]):
                self.register(
                    name,
                    func,
                    config_factory=config_factory,
                    overwrite=overwrite,
                )
                return func

            return decorator
        if "@" in name or "," in name or "=" in name:
            raise ValueError(
                f"platform name {name!r} may not contain '@', ',' or '='"
            )
        if name in self._entries and not overwrite:
            raise ValueError(
                f"platform {name!r} already registered; pass overwrite=True"
            )
        self._entries[name] = PlatformEntry(name, builder, config_factory)
        return builder

    def register_accelerator(
        self,
        name: str,
        config_factory: Optional[Callable[[], HardwareConfig]] = None,
        *,
        overwrite: bool = False,
    ):
        """Register an accelerator from a ``HardwareConfig`` factory.

        The platform builds as ``AcceleratorSimulator(config_factory())``
        and accepts spec-string overrides. Usable directly
        (``register_accelerator("CEGMA", cegma_config)``) or as a
        decorator over the config factory.
        """
        if config_factory is None:
            def decorator(func: Callable[[], HardwareConfig]):
                self.register_accelerator(name, func, overwrite=overwrite)
                return func

            return decorator
        self.register(
            name,
            lambda: AcceleratorSimulator(config_factory()),
            config_factory=config_factory,
            overwrite=overwrite,
        )
        return config_factory

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def names(self) -> List[str]:
        return sorted(self._entries)

    def __contains__(self, spec: object) -> bool:
        if not isinstance(spec, str):
            return False
        try:
            self.parse(spec)
        except (KeyError, ValueError):
            return False
        return True

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._entries)

    def entry(self, name: str) -> PlatformEntry:
        """The registration for a *base* name (no spec overrides)."""
        try:
            return self._entries[name]
        except KeyError:
            raise KeyError(
                f"unknown platform {name!r}; known: {self.names()}"
            ) from None

    def spec_fields(self, name: str) -> Tuple[str, ...]:
        """Field names a spec string may override for this platform."""
        entry = self.entry(name)
        if not entry.configurable:
            return ()
        payload = entry.config_factory().to_dict()
        fields = [k for k in payload if k not in _UNSETTABLE_FIELDS]
        return tuple(sorted(fields) + sorted(_SPEC_ALIASES))

    # ------------------------------------------------------------------
    # Spec strings
    # ------------------------------------------------------------------
    def parse(self, spec: str) -> ParsedSpec:
        """Decompose ``NAME@key=value,...`` into typed field overrides.

        Raises ``KeyError`` for an unknown base platform and
        ``ValueError`` for a malformed or inapplicable override.
        """
        base, sep, rest = spec.partition("@")
        base = base.strip()
        entry = self.entry(base)
        if not sep:
            return ParsedSpec(base, {})
        if not entry.configurable:
            raise ValueError(
                f"platform {base!r} does not take spec overrides "
                "(it has no HardwareConfig)"
            )
        payload = entry.config_factory().to_dict()
        settable = {
            key: value
            for key, value in payload.items()
            if key not in _UNSETTABLE_FIELDS
        }
        overrides: Dict[str, object] = {}
        for item in rest.split(","):
            key, eq, raw = item.partition("=")
            key = key.strip()
            raw = raw.strip()
            if not eq or not key or not raw:
                raise ValueError(
                    f"bad spec override {item!r} in {spec!r}; "
                    "expected key=value"
                )
            if key in _SPEC_ALIASES:
                numeric = _coerce(raw, 0.0, key)
                for field, transform in _SPEC_ALIASES[key]:
                    overrides[field] = transform(numeric)
            elif key in settable:
                overrides[key] = _coerce(raw, settable[key], key)
            else:
                raise ValueError(
                    f"unknown spec field {key!r} for platform {base!r}; "
                    f"valid fields: {list(self.spec_fields(base))}"
                )
        return ParsedSpec(base, overrides)

    def format_spec(self, base: str, overrides: Dict[str, object]) -> str:
        """The canonical spec string for a base name plus overrides."""
        parsed = self.parse(base)  # validates the base name
        if not overrides:
            return parsed.base
        rendered = ",".join(
            f"{key}={_format_value(value)}"
            for key, value in sorted(overrides.items())
        )
        return f"{parsed.base}@{rendered}"

    def canonical(self, spec: str) -> str:
        """Normalized form of a spec string (sorted, aliases resolved)."""
        parsed = self.parse(spec)
        return self.format_spec(parsed.base, parsed.overrides)

    # ------------------------------------------------------------------
    # Building
    # ------------------------------------------------------------------
    def config(self, spec: str) -> HardwareConfig:
        """The (possibly derived) ``HardwareConfig`` for a spec string.

        Raises ``ValueError`` for platforms without a hardware config.
        """
        parsed = self.parse(spec)
        entry = self.entry(parsed.base)
        if not entry.configurable:
            raise ValueError(
                f"platform {parsed.base!r} has no HardwareConfig"
            )
        config = entry.config_factory()
        if not parsed.overrides:
            return config
        payload = config.to_dict()
        payload.update(parsed.overrides)
        payload["name"] = self.format_spec(parsed.base, parsed.overrides)
        return HardwareConfig.from_dict(payload)

    def config_or_none(self, spec: str) -> Optional[HardwareConfig]:
        """Like :meth:`config` but ``None`` for software platforms."""
        parsed = self.parse(spec)
        if not self.entry(parsed.base).configurable:
            return None
        return self.config(spec)

    def build(self, spec: str) -> Platform:
        """Instantiate the platform a spec string describes."""
        parsed = self.parse(spec)
        entry = self.entry(parsed.base)
        if not parsed.overrides:
            return entry.builder()
        return AcceleratorSimulator(self.config(spec))

    def builder(self, spec: str) -> Callable[[], Platform]:
        """A zero-argument builder for the spec (validated eagerly)."""
        self.parse(spec)
        return lambda: self.build(spec)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PlatformRegistry({self.names()})"


#: The process-wide registry; stock platforms are registered by
#: :mod:`repro.platforms.builtin` when the package is imported.
REGISTRY = PlatformRegistry()


def build_platform(spec: str) -> Platform:
    """Module-level convenience for ``REGISTRY.build``."""
    return REGISTRY.build(spec)


def register_platform(name: str, builder=None, **kwargs):
    """Module-level convenience for ``REGISTRY.register``."""
    return REGISTRY.register(name, builder, **kwargs)


def register_accelerator(name: str, config_factory=None, **kwargs):
    """Module-level convenience for ``REGISTRY.register_accelerator``."""
    return REGISTRY.register_accelerator(name, config_factory, **kwargs)
