"""Request admission for the serving pipeline.

The front door of the staged query path (ROADMAP item 1): callers
submit :class:`QueryRequest`\\ s into a bounded :class:`AdmissionQueue`;
the batch scheduler drains it. Admission control is where "heavy
traffic" becomes explicit — a full queue rejects instead of growing
without bound, and per-request deadlines let overload shed stale work
at dequeue time instead of scoring queries nobody is still waiting for.

Counters (``search.serve.admitted`` / ``rejected`` / ``expired``) and
the ``search.serve.queue_depth`` gauge flow through :mod:`repro.obs`
and are free when metrics are off. The clock is injectable so deadline
behaviour is testable without sleeping.

Every admitted request carries a
:class:`~repro.obs.context.RequestContext` (request id + deadline +
baggage) — the trace identity that travels with it through every later
stage. When the queue was built with a
:class:`~repro.obs.context.RequestTracker`, dequeue records each
request's ``admission`` stage span ``[submitted_at → take]`` on the
shared pipeline clock; the scheduler's span starts where admission
ends (via :attr:`AdmissionQueue.last_take_at`), which is what makes
per-stage budgets sum to the measured latency.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, List, Optional, Tuple

from ..graphs.graph import Graph
from ..obs import get_metrics
from ..obs.context import RequestContext, RequestTracker
from .results import SearchResult

__all__ = ["QueryRequest", "QueryResponse", "AdmissionQueue"]


@dataclass(frozen=True)
class QueryRequest:
    """One admitted query: a graph to rank against the database.

    ``deadline`` is absolute on the admission queue's clock (``None``
    means the request never expires); ``submitted_at`` feeds the
    end-to-end latency histogram.
    """

    request_id: int
    graph: Graph
    top_k: int
    submitted_at: float
    deadline: Optional[float] = None
    #: Trace identity carried through every stage (and across the shm
    #: worker boundary); always populated by ``AdmissionQueue.submit``.
    context: Optional[RequestContext] = None

    def expired(self, now: float) -> bool:
        return self.deadline is not None and now > self.deadline


@dataclass(frozen=True)
class QueryResponse:
    """The pipeline's answer to one request.

    ``status`` is ``"ok"`` (ranked results attached) or ``"expired"``
    (the deadline passed before execution; ``results`` is empty).
    Results are a tuple — responses to duplicate requests share one
    frozen ranking, so they must be immutable.
    """

    request_id: int
    results: Tuple[SearchResult, ...] = field(default_factory=tuple)
    status: str = "ok"
    latency_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status == "ok"


class AdmissionQueue:
    """Bounded FIFO of pending requests with deadline-aware dequeue.

    Parameters
    ----------
    max_depth:
        Admission bound. A submit against a full queue is rejected
        (returns ``None``) — backpressure, not buffering.
    clock:
        Monotonic-seconds callable; injectable for tests. Deadlines are
        absolute values of this clock.
    tracker:
        Optional :class:`~repro.obs.context.RequestTracker`; when set,
        dequeue records each request's ``admission`` stage span.
    """

    def __init__(
        self,
        max_depth: int = 1024,
        clock: Callable[[], float] = time.monotonic,
        tracker: Optional[RequestTracker] = None,
    ) -> None:
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        self.max_depth = max_depth
        self.clock = clock
        self.tracker = tracker
        self._pending: Deque[QueryRequest] = deque()
        self._next_id = 0
        self.admitted = 0
        self.rejected = 0
        self.expired = 0
        #: Clock reading of the most recent ``take`` — the boundary
        #: where the admission stage ends and scheduling begins.
        self.last_take_at: Optional[float] = None

    def __len__(self) -> int:
        return len(self._pending)

    @property
    def depth(self) -> int:
        return len(self._pending)

    def submit(
        self,
        graph: Graph,
        top_k: int = 5,
        timeout_seconds: Optional[float] = None,
        **baggage: object,
    ) -> Optional[QueryRequest]:
        """Admit a query, or reject it when the queue is full.

        Returns the admitted :class:`QueryRequest` (its ``request_id``
        keys the eventual response) or ``None`` on rejection. Extra
        keyword arguments become trace-context baggage that propagates
        with the request through every stage.
        """
        if top_k < 1:
            raise ValueError("top_k must be >= 1")
        metrics = get_metrics()
        if len(self._pending) >= self.max_depth:
            self.rejected += 1
            if metrics is not None:
                metrics.inc("search.serve.rejected")
            return None
        now = self.clock()
        deadline = None if timeout_seconds is None else now + timeout_seconds
        request = QueryRequest(
            request_id=self._next_id,
            graph=graph,
            top_k=top_k,
            submitted_at=now,
            deadline=deadline,
            context=RequestContext.make(self._next_id, deadline, **baggage),
        )
        self._next_id += 1
        self._pending.append(request)
        self.admitted += 1
        if metrics is not None:
            metrics.inc("search.serve.admitted")
            metrics.set_gauge("search.serve.queue_depth", len(self._pending))
        return request

    def take(
        self, max_items: Optional[int] = None
    ) -> Tuple[List[QueryRequest], List[QueryRequest]]:
        """Dequeue up to ``max_items`` requests in FIFO order.

        Returns ``(live, expired)``: requests whose deadline already
        passed are shed here — they count toward ``max_items`` (their
        queue slot was real) but skip scoring entirely.
        """
        now = self.clock()
        live: List[QueryRequest] = []
        dead: List[QueryRequest] = []
        budget = len(self._pending) if max_items is None else max_items
        while self._pending and budget > 0:
            request = self._pending.popleft()
            budget -= 1
            (dead if request.expired(now) else live).append(request)
        self.last_take_at = now
        if self.tracker is not None:
            # The admission span covers queue residency; it ends at
            # this shared ``now``, where the schedule span begins.
            for request in live:
                self.tracker.record(
                    request.request_id,
                    "admission",
                    start=request.submitted_at,
                    duration_seconds=now - request.submitted_at,
                )
            for request in dead:
                self.tracker.record(
                    request.request_id,
                    "admission",
                    start=request.submitted_at,
                    duration_seconds=now - request.submitted_at,
                    expired=True,
                )
        metrics = get_metrics()
        if dead:
            self.expired += len(dead)
            if metrics is not None:
                metrics.inc("search.serve.expired", len(dead))
        if metrics is not None:
            metrics.set_gauge("search.serve.queue_depth", len(self._pending))
        return live, dead
