"""Persistence and identity for search databases.

Two concerns share this module because they share one byte-level graph
encoding:

- **Versioned ``.npz`` artifacts.** :func:`database_arrays` /
  :func:`graphs_from_arrays` are the codec behind
  ``SimilaritySearchIndex.save``/``load``; the payload carries a
  ``schema_version`` so future layout changes can be detected instead
  of misread. Version-less files written before the version stamp
  existed still load (they are exactly the v1 layout).
- **Exact graph signatures.** :func:`graph_signature` returns a bytes
  key that is equal iff two graphs have byte-identical structure and
  features — the request/candidate dedup stages of the serving
  pipeline broadcast one computed result across identical graphs, the
  same duplicate-detection-then-broadcast move the EMF's ``bytes``
  method makes at the node level (Algorithm 1), lifted to whole graphs.
  Byte keys cannot collide, so dedup is exact by construction.

The codec is also how database shards travel to worker processes: the
executor publishes one uncompressed ``.npz`` image of the database into
shared memory and each worker rebuilds only its shard's graphs from it.
"""

from __future__ import annotations

import io
from typing import Dict, List, Sequence

import numpy as np

from ..graphs.graph import Graph

__all__ = [
    "INDEX_SCHEMA_VERSION",
    "database_arrays",
    "graphs_from_arrays",
    "graphs_to_npz_bytes",
    "graphs_from_buffer",
    "graph_signature",
]

#: v1: ``g{i}/edges``, ``g{i}/features``, ``g{i}/num_nodes`` per graph
#: plus ``count`` (the version-less legacy layout). v2 adds the
#: ``schema_version`` stamp itself; the graph arrays are unchanged.
INDEX_SCHEMA_VERSION = 2

_SUPPORTED_VERSIONS = (1, 2)


def database_arrays(graphs: Sequence[Graph]) -> Dict[str, np.ndarray]:
    """The array mapping persisted for a graph database."""
    arrays: Dict[str, np.ndarray] = {
        "schema_version": np.array(INDEX_SCHEMA_VERSION),
        "count": np.array(len(graphs)),
    }
    for index, graph in enumerate(graphs):
        arrays[f"g{index}/edges"] = graph.edge_list()
        arrays[f"g{index}/features"] = graph.node_features
        arrays[f"g{index}/num_nodes"] = np.array(graph.num_nodes)
    return arrays


def graphs_from_arrays(data, start: int = 0, stop: int = None) -> List[Graph]:
    """Rebuild graphs ``start:stop`` from a :func:`database_arrays`
    mapping (an open ``npz`` file or a plain dict).

    Raises an actionable ``ValueError`` for artifacts written by a
    newer (unknown) schema version or missing their graph arrays;
    version-less legacy files are read as v1.
    """
    if "schema_version" in data:
        version = int(data["schema_version"])
        if version not in _SUPPORTED_VERSIONS:
            raise ValueError(
                f"unsupported search index schema version {version}; this "
                f"build reads versions {_SUPPORTED_VERSIONS} — upgrade "
                "repro (or re-save the database with this build) to read "
                "this file"
            )
    if "count" not in data:
        raise ValueError(
            "not a search index artifact: missing the 'count' entry "
            "(expected a file written by SimilaritySearchIndex.save)"
        )
    count = int(data["count"])
    stop = count if stop is None else min(stop, count)
    graphs: List[Graph] = []
    for i in range(start, stop):
        try:
            edges = data[f"g{i}/edges"]
            features = data[f"g{i}/features"]
            num_nodes = int(data[f"g{i}/num_nodes"])
        except KeyError as exc:
            raise ValueError(
                f"corrupt search index artifact: graph {i} of {count} is "
                f"missing array {exc.args[0]!r}"
            ) from None
        graphs.append(Graph(num_nodes, np.asarray(edges), features))
    return graphs


def graphs_to_npz_bytes(graphs: Sequence[Graph]) -> bytes:
    """The database as one uncompressed ``.npz`` image (shard transport)."""
    buffer = io.BytesIO()
    np.savez(buffer, **database_arrays(graphs))
    return buffer.getvalue()


def graphs_from_buffer(buffer, start: int = 0, stop: int = None) -> List[Graph]:
    """Rebuild graphs ``start:stop`` from a :func:`graphs_to_npz_bytes`
    image (bytes or a shared-memory view)."""
    with np.load(io.BytesIO(bytes(buffer)), allow_pickle=False) as data:
        return graphs_from_arrays(data, start, stop)


def graph_signature(graph: Graph) -> bytes:
    """Exact identity key: equal iff the graphs are byte-identical.

    Covers node count, the directed edge list (in storage order), and
    the raw (un-quantized) feature bytes — scores of two graphs with
    equal signatures are bit-identical, so broadcasting one computed
    result across them is lossless.
    """
    return b"|".join(
        (
            graph.num_nodes.to_bytes(8, "little"),
            graph.edge_list().tobytes(),
            np.ascontiguousarray(graph.node_features).tobytes(),
        )
    )
