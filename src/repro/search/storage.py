"""Persistence and identity for search databases.

Two concerns share this module because they share one byte-level graph
encoding:

- **Versioned ``.npz`` artifacts.** :func:`database_arrays` /
  :func:`graphs_from_arrays` are the codec behind
  ``SimilaritySearchIndex.save``/``load``; the payload carries a
  ``schema_version`` so future layout changes can be detected instead
  of misread. Version-less files written before the version stamp
  existed still load (they are exactly the v1 layout).
- **Exact graph signatures.** :func:`graph_signature` returns a bytes
  key that is equal iff two graphs have byte-identical structure and
  features — the request/candidate dedup stages of the serving
  pipeline broadcast one computed result across identical graphs, the
  same duplicate-detection-then-broadcast move the EMF's ``bytes``
  method makes at the node level (Algorithm 1), lifted to whole graphs.
  Byte keys cannot collide, so dedup is exact by construction.

The codec is also how database shards travel to worker processes: the
executor publishes one uncompressed ``.npz`` image of the database into
shared memory and each worker rebuilds only its shard's graphs from it.
"""

from __future__ import annotations

import io
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..graphs.graph import Graph

__all__ = [
    "INDEX_SCHEMA_VERSION",
    "database_arrays",
    "graphs_from_arrays",
    "graphs_to_npz_bytes",
    "graphs_from_buffer",
    "sketch_from_arrays",
    "graph_signature",
]

#: v1: ``g{i}/edges``, ``g{i}/features``, ``g{i}/num_nodes`` per graph
#: plus ``count`` (the version-less legacy layout). v2 adds the
#: ``schema_version`` stamp itself; the graph arrays are unchanged.
#: v3 adds the *optional* ``sketch/signatures`` (count × num_perm
#: uint64 MinHash rows) and ``sketch/params`` entries — databases
#: saved without sketches omit them, and loaders fall back to flat
#: retrieval when they are absent or mismatched.
INDEX_SCHEMA_VERSION = 3

_SUPPORTED_VERSIONS = (1, 2, 3)


def database_arrays(
    graphs: Sequence[Graph],
    sketch: Optional[Tuple[np.ndarray, np.ndarray]] = None,
) -> Dict[str, np.ndarray]:
    """The array mapping persisted for a graph database.

    ``sketch`` optionally attaches the v3 sketch payload as a
    ``(signatures, params)`` pair (see
    :meth:`repro.search.sketch.SketchConfig.to_params`); the signature
    matrix must hold one row per graph.
    """
    arrays: Dict[str, np.ndarray] = {
        "schema_version": np.array(INDEX_SCHEMA_VERSION),
        "count": np.array(len(graphs)),
    }
    if sketch is not None:
        signatures, params = sketch
        signatures = np.asarray(signatures, dtype=np.uint64)
        if signatures.ndim != 2 or signatures.shape[0] != len(graphs):
            raise ValueError(
                "sketch signatures must be a (graphs, num_perm) matrix; "
                f"got shape {signatures.shape} for {len(graphs)} graphs"
            )
        arrays["sketch/signatures"] = signatures
        arrays["sketch/params"] = np.asarray(params, dtype=np.int64)
    for index, graph in enumerate(graphs):
        arrays[f"g{index}/edges"] = graph.edge_list()
        arrays[f"g{index}/features"] = graph.node_features
        arrays[f"g{index}/num_nodes"] = np.array(graph.num_nodes)
    return arrays


def graphs_from_arrays(
    data,
    start: int = 0,
    stop: int = None,
    indices: Optional[Iterable[int]] = None,
) -> List[Graph]:
    """Rebuild graphs from a :func:`database_arrays` mapping (an open
    ``npz`` file or a plain dict).

    Either a contiguous ``start:stop`` slice or an explicit ``indices``
    selection (the executor's candidate shards). Raises an actionable
    ``ValueError`` for artifacts written by a newer (unknown) schema
    version or missing their graph arrays; version-less legacy files
    are read as v1.
    """
    if "schema_version" in data:
        version = int(data["schema_version"])
        if version not in _SUPPORTED_VERSIONS:
            raise ValueError(
                f"unsupported search index schema version {version}; this "
                f"build reads versions {_SUPPORTED_VERSIONS} — upgrade "
                "repro (or re-save the database with this build) to read "
                "this file"
            )
    if "count" not in data:
        raise ValueError(
            "not a search index artifact: missing the 'count' entry "
            "(expected a file written by SimilaritySearchIndex.save)"
        )
    count = int(data["count"])
    if indices is None:
        stop = count if stop is None else min(stop, count)
        selection: Iterable[int] = range(start, stop)
    else:
        selection = [int(i) for i in indices]
    graphs: List[Graph] = []
    for i in selection:
        try:
            edges = data[f"g{i}/edges"]
            features = data[f"g{i}/features"]
            num_nodes = int(data[f"g{i}/num_nodes"])
        except KeyError as exc:
            raise ValueError(
                f"corrupt search index artifact: graph {i} of {count} is "
                f"missing array {exc.args[0]!r}"
            ) from None
        graphs.append(Graph(num_nodes, np.asarray(edges), features))
    return graphs


def sketch_from_arrays(data) -> Optional[Tuple[np.ndarray, np.ndarray]]:
    """The v3 sketch payload ``(signatures, params)``, or ``None``.

    Version-less, v1, and v2 artifacts — and v3 files saved without
    sketches — return ``None``; callers fall back to flat retrieval. A
    signature matrix whose row count disagrees with ``count`` is
    treated as absent rather than trusted.
    """
    if "sketch/signatures" not in data or "sketch/params" not in data:
        return None
    signatures = np.asarray(data["sketch/signatures"], dtype=np.uint64)
    if signatures.ndim != 2 or signatures.shape[0] != int(data["count"]):
        return None
    return signatures, np.asarray(data["sketch/params"], dtype=np.int64)


def graphs_to_npz_bytes(graphs: Sequence[Graph]) -> bytes:
    """The database as one uncompressed ``.npz`` image (shard transport)."""
    buffer = io.BytesIO()
    np.savez(buffer, **database_arrays(graphs))
    return buffer.getvalue()


def graphs_from_buffer(
    buffer,
    start: int = 0,
    stop: int = None,
    indices: Optional[Iterable[int]] = None,
) -> List[Graph]:
    """Rebuild graphs from a :func:`graphs_to_npz_bytes` image (bytes
    or a shared-memory view) — a ``start:stop`` slice or an explicit
    ``indices`` selection."""
    with np.load(io.BytesIO(bytes(buffer)), allow_pickle=False) as data:
        return graphs_from_arrays(data, start, stop, indices=indices)


def graph_signature(graph: Graph) -> bytes:
    """Exact identity key: equal iff the graphs are byte-identical.

    Covers node count, the directed edge list (in storage order), and
    the raw (un-quantized) feature bytes — scores of two graphs with
    equal signatures are bit-identical, so broadcasting one computed
    result across them is lossless.
    """
    return b"|".join(
        (
            graph.num_nodes.to_bytes(8, "little"),
            graph.edge_list().tobytes(),
            np.ascontiguousarray(graph.node_features).tobytes(),
        )
    )
