"""The staged serving pipeline: admission → schedule → execute → rank.

:class:`ServingPipeline` wires the layers of :mod:`repro.search` into
the serving system of ROADMAP item 1:

1. :class:`~repro.search.requests.AdmissionQueue` — bounded intake
   with deadlines and backpressure.
2. :class:`~repro.search.scheduler.BatchScheduler` — request dedup and
   policy-ordered batching.
3. :class:`~repro.search.executor.ShardedExecutor` — sharded scoring
   with candidate dedup and a k-way top-k merge.
4. Response assembly — frozen :class:`~repro.search.requests.
   QueryResponse` objects carrying rankings bit-identical to the flat
   ``SimilaritySearchIndex.query`` path (gated by the
   ``search.serve_vs_direct`` differential check).

Observability: per-stage spans (``serve.schedule`` / ``serve.execute``
/ ``serve.rank``), a ``search.serve.latency_seconds`` histogram on
:data:`~repro.obs.LATENCY_BUCKETS` (p50/p99 via
:meth:`~repro.obs.Histogram.quantile`), queue-depth gauges, and
admission/dedup counters — all free when metrics are off.

Request-scoped telemetry (all optional, all free when off): inject a
:class:`~repro.obs.context.RequestTracker` and every response joins to
a span tree — ``admission → schedule → pending → execute (per-shard
children from the workers) → rank → respond`` — whose stage spans are
*contiguous on the pipeline clock*, so the per-stage
``search.serve.budget_seconds{stage=...}`` histograms sum to the
measured latency exactly. A
:class:`~repro.obs.timeseries.TimeseriesRecorder` snapshots windowed
rates/quantiles once per round, and an
:class:`~repro.obs.exemplars.ExemplarBuffer` retains the span trees of
the K slowest and all deadline-expired requests.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..graphs.graph import Graph
from ..obs import LATENCY_BUCKETS, get_metrics, span
from ..obs.context import RequestTracker
from ..obs.exemplars import ExemplarBuffer
from ..obs.timeseries import TimeseriesRecorder
from .requests import AdmissionQueue, QueryRequest, QueryResponse
from .scheduler import BatchScheduler, SchedulingPolicy

__all__ = ["ServingPipeline"]


class ServingPipeline:
    """Serve similarity queries against a ``SimilaritySearchIndex``.

    The pipeline holds live references to the index's model, scorer,
    and graph list, so graphs added to the index after construction are
    served without rebuilding anything.

    Parameters
    ----------
    index:
        The :class:`~repro.search.index.SimilaritySearchIndex` whose
        database and scoring semantics this pipeline serves.
    policy:
        Batch ordering policy (:class:`SchedulingPolicy` or its value).
    max_batch_queries:
        Distinct queries per execution batch.
    max_queue_depth:
        Admission bound; submissions beyond it are rejected.
    num_shards / workers:
        Forwarded to the :class:`ShardedExecutor`.
    retrieval:
        ``"flat"`` (default) scores every database graph per batch;
        ``"sketch"`` inserts a
        :class:`~repro.search.sketch.CandidateRetriever` between
        scheduling and execution, so the executor scores only the
        batch's retrieved candidate union and reranks it exactly
        (gated against flat by ``search.sketch_vs_flat``).
    sketch_config:
        Optional :class:`~repro.search.sketch.SketchConfig` for
        ``retrieval="sketch"``; defaults to the index's live sketch
        store (or default parameters).
    clock:
        Monotonic-seconds callable (injectable for deadline tests).
    dedup:
        Disable to score duplicate requests separately (measurement
        only; results are identical either way).
    tracker:
        Optional :class:`~repro.obs.context.RequestTracker` shared by
        every stage; turns on per-request span trees and the
        ``search.serve.budget_seconds{stage=...}`` attribution.
    recorder:
        Optional :class:`~repro.obs.timeseries.TimeseriesRecorder`;
        the pipeline calls :meth:`maybe_snapshot` once per round.
    exemplars:
        Optional :class:`~repro.obs.exemplars.ExemplarBuffer`; every
        finished request is offered (with its span tree when a tracker
        is present).
    """

    def __init__(
        self,
        index,
        policy: "SchedulingPolicy | str" = SchedulingPolicy.FIFO,
        max_batch_queries: int = 8,
        max_queue_depth: int = 1024,
        num_shards: Optional[int] = None,
        workers: Optional[int] = None,
        retrieval: str = "flat",
        sketch_config=None,
        clock: Callable[[], float] = time.monotonic,
        dedup: bool = True,
        tracker: Optional[RequestTracker] = None,
        recorder: Optional[TimeseriesRecorder] = None,
        exemplars: Optional[ExemplarBuffer] = None,
    ) -> None:
        from .executor import ShardedExecutor

        self.index = index
        self.clock = clock
        self.tracker = tracker
        self.recorder = recorder
        self.exemplars = exemplars
        self.queue = AdmissionQueue(
            max_depth=max_queue_depth, clock=clock, tracker=tracker
        )
        self.scheduler = BatchScheduler(
            policy=policy,
            max_batch_queries=max_batch_queries,
            dedup=dedup,
            tracker=tracker,
        )
        self.executor = ShardedExecutor(
            model=index.model,
            graphs=index._graphs,
            scorer=index.scorer,
            num_shards=num_shards,
            workers=workers,
            tracker=tracker,
            clock=clock,
        )
        self.retrieval = str(retrieval)
        if self.retrieval not in ("flat", "sketch"):
            raise ValueError(
                f"unknown retrieval mode {retrieval!r}; known: flat, sketch"
            )
        self.retriever = None
        if self.retrieval == "sketch":
            from .sketch import CandidateRetriever

            self.retriever = CandidateRetriever(
                index.sketch_store(sketch_config)
            )
        self.completed = 0
        self.expired = 0

    # -- intake ----------------------------------------------------------
    def submit(
        self,
        graph: Graph,
        top_k: int = 5,
        timeout_seconds: Optional[float] = None,
        **baggage: object,
    ) -> Optional[QueryRequest]:
        """Admit one query; ``None`` means rejected (queue full).

        Extra keyword arguments become trace-context baggage carried
        with the request through every stage.
        """
        return self.queue.submit(graph, top_k, timeout_seconds, **baggage)

    # -- serving ---------------------------------------------------------
    def run_round(
        self, max_items: Optional[int] = None
    ) -> List[QueryResponse]:
        """Drain up to ``max_items`` requests and answer them.

        One scheduling round: expired requests come back with status
        ``"expired"`` and no results; live ones are deduped, batched,
        executed, and answered. Responses are in request-id order.
        """
        live, dead = self.queue.take(max_items)
        tracker = self.tracker
        # Stage boundaries are shared clock readings: each stage's span
        # starts exactly where the previous one ended, so per-request
        # budgets sum to the measured latency.
        taken_at = self.queue.last_take_at
        responses: List[QueryResponse] = [
            self._respond(request, tuple(), "expired", stage_start=taken_at)
            for request in dead
        ]
        if live:
            with span("serve.schedule", requests=len(live)):
                batches = self.scheduler.build_batches(live)
            pending_since = None
            if tracker is not None:
                schedule_end = self.clock()
                for request in live:
                    tracker.record(
                        request.request_id,
                        "schedule",
                        start=taken_at,
                        duration_seconds=schedule_end - taken_at,
                        policy=self.scheduler.policy.value,
                    )
                pending_since = schedule_end
            for batch in batches:
                candidates = None
                if self.retriever is not None:
                    with span(
                        "serve.retrieve",
                        batch=batch.batch_id,
                        queries=len(batch.groups),
                    ):
                        candidates = self.retriever.retrieve_batch(
                            [
                                (group.graph, group.top_k)
                                for group in batch.groups
                            ]
                        )
                    if tracker is not None:
                        # The retrieve stage opens where scheduling (or
                        # the previous batch) ended and hands its end to
                        # the executor as the pending-stage start, so
                        # stage budgets stay contiguous on the clock.
                        retrieve_end = self.clock()
                        for group in batch.groups:
                            for request in group.requests:
                                tracker.record(
                                    request.request_id,
                                    "retrieve",
                                    start=pending_since,
                                    duration_seconds=(
                                        retrieve_end - pending_since
                                    ),
                                    batch=batch.batch_id,
                                    candidates=len(candidates),
                                )
                        pending_since = retrieve_end
                rankings = self.executor.run_batch(
                    batch, pending_since=pending_since, candidates=candidates
                )
                batch_end = (
                    self.executor.last_batch_end
                    if tracker is not None
                    else None
                )
                for group, ranking in zip(batch.groups, rankings):
                    # Dedup followers share the primary's frozen ranking.
                    for request in group.requests:
                        responses.append(
                            self._respond(
                                request, ranking, "ok", stage_start=batch_end
                            )
                        )
                # The next batch's pending stage starts where this
                # one's ranking ended (response assembly included).
                pending_since = batch_end
        if self.recorder is not None:
            self.recorder.maybe_snapshot()
        responses.sort(key=lambda response: response.request_id)
        return responses

    def run_until_drained(self) -> List[QueryResponse]:
        """Serve rounds until the queue is empty."""
        responses: List[QueryResponse] = []
        while len(self.queue):
            responses.extend(self.run_round())
        responses.sort(key=lambda response: response.request_id)
        return responses

    def serve(
        self,
        graphs: Sequence[Graph],
        top_k: int = 5,
        timeout_seconds: Optional[float] = None,
    ) -> List[Optional[QueryResponse]]:
        """Convenience: submit a stream, drain it, align responses.

        Returns one entry per input graph in submission order;
        ``None`` marks a rejected (not admitted) submission.
        """
        admitted: List[Optional[int]] = []
        for graph in graphs:
            request = self.submit(graph, top_k, timeout_seconds)
            admitted.append(None if request is None else request.request_id)
        by_id: Dict[int, QueryResponse] = {
            response.request_id: response
            for response in self.run_until_drained()
        }
        return [
            by_id[request_id] if request_id is not None else None
            for request_id in admitted
        ]

    # -- bookkeeping -----------------------------------------------------
    def _respond(
        self,
        request: QueryRequest,
        results: Tuple,
        status: str,
        stage_start: Optional[float] = None,
    ) -> QueryResponse:
        now = self.clock()
        latency = max(0.0, now - request.submitted_at)
        if status == "ok":
            self.completed += 1
        else:
            self.expired += 1
        metrics = get_metrics()
        if metrics is not None:
            metrics.inc("search.serve.responses", status=status)
            metrics.observe(
                "search.serve.latency_seconds",
                latency,
                bounds=LATENCY_BUCKETS,
            )
        tracker = self.tracker
        if tracker is not None:
            if stage_start is not None:
                # Same ``now`` as the latency read, so the respond span
                # closes the request's budget exactly.
                tracker.record(
                    request.request_id,
                    "respond",
                    start=stage_start,
                    duration_seconds=now - stage_start,
                    status=status,
                )
            if metrics is not None:
                for stage, seconds in tracker.budgets(
                    request.request_id
                ).items():
                    metrics.observe(
                        "search.serve.budget_seconds",
                        seconds,
                        bounds=LATENCY_BUCKETS,
                        stage=stage,
                    )
            if self.exemplars is not None:
                self.exemplars.offer(
                    request.request_id,
                    latency,
                    status,
                    tracker.tree(request.request_id),
                )
        elif self.exemplars is not None:
            self.exemplars.offer(request.request_id, latency, status, None)
        return QueryResponse(
            request_id=request.request_id,
            results=results,
            status=status,
            latency_seconds=latency,
        )

    def stats(self) -> Dict[str, float]:
        """Serving counters for reports and the CLI."""
        latency = None
        metrics = get_metrics()
        if metrics is not None:
            latency = metrics.histogram("search.serve.latency_seconds")
        payload: Dict[str, float] = {
            "admitted": float(self.queue.admitted),
            "rejected": float(self.queue.rejected),
            "expired": float(self.queue.expired),
            "completed": float(self.completed),
            "queue_depth": float(len(self.queue)),
        }
        if latency is not None and latency.count:
            payload["latency_p50_seconds"] = float(latency.quantile(0.5))
            payload["latency_p99_seconds"] = float(latency.quantile(0.99))
        if self.retriever is not None:
            payload.update(self.retriever.stats())
        if self.tracker is not None:
            payload["tracked_requests"] = float(len(self.tracker))
            payload["dropped_spans"] = float(self.tracker.dropped_spans)
        if self.recorder is not None:
            payload["windows"] = float(len(self.recorder.windows))
        if self.exemplars is not None:
            payload["exemplars"] = float(len(self.exemplars))
        return payload
