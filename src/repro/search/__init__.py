"""Graph similarity search: the paper's motivating database workload."""

from .index import SearchResult, SimilaritySearchIndex

__all__ = ["SimilaritySearchIndex", "SearchResult"]
