"""Graph similarity search: the paper's motivating database workload.

A staged serving package (ROADMAP item 1): admission
(:class:`AdmissionQueue`) → batch scheduling (:class:`BatchScheduler`,
:class:`SchedulingPolicy`) → sharded execution
(:class:`ShardedExecutor`) → deterministic ranking
(:class:`SearchResult`, ties by ascending database index), wired
together by :class:`ServingPipeline`. :class:`SimilaritySearchIndex`
remains the database handle; its ``query``/``query_many`` adapt onto
the pipeline and stay bit-identical to the flat reference path.
"""

from .index import SearchResult, SimilaritySearchIndex
from .pipeline import ServingPipeline
from .requests import AdmissionQueue, QueryRequest, QueryResponse
from .results import merge_topk, rank_scores
from .scheduler import BatchScheduler, QueryBatch, QueryGroup, SchedulingPolicy
from .sketch import CandidateRetriever, SketchConfig, SketchStore, sketch_signature
from .storage import INDEX_SCHEMA_VERSION, graph_signature

__all__ = [
    "SimilaritySearchIndex",
    "SearchResult",
    "ServingPipeline",
    "CandidateRetriever",
    "SketchConfig",
    "SketchStore",
    "sketch_signature",
    "AdmissionQueue",
    "QueryRequest",
    "QueryResponse",
    "BatchScheduler",
    "QueryBatch",
    "QueryGroup",
    "SchedulingPolicy",
    "rank_scores",
    "merge_topk",
    "INDEX_SCHEMA_VERSION",
    "graph_signature",
]
