"""Ranked results and the deterministic ranking/merge primitives.

Every stage of the serving pipeline (and the flat reference path in
:mod:`repro.search.index`) ranks through the two helpers here, so the
tie-breaking contract lives in exactly one place:

**Equal scores order by ascending database index.** ``np.argsort`` on
raw scores is an unstable quicksort, which made tied candidates come
back in an arbitrary (and backend-dependent) order; with the contract
pinned, a sharded merge is bit-identical to one flat sort, which is
what the ``search.serve_vs_direct`` differential check gates.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["SearchResult", "rank_scores", "merge_topk"]


@dataclass(frozen=True)
class SearchResult:
    """One ranked candidate from a query.

    Frozen (results are shared between duplicate requests by the
    scheduler's dedup stage, so they must be immutable) and totally
    ordered: a result sorts before another when its score is higher,
    with equal scores broken by ascending database index.
    """

    index: int
    score: float

    def _key(self) -> Tuple[int, float, int]:
        # NaN scores sort after every real score, ties by ascending
        # index. A raw ``(-score, index)`` tuple is incoherent under
        # NaN (``nan != nan`` short-circuits the comparison to a bare
        # ``nan < nan`` → False both ways), which let a sharded k-way
        # merge order NaN candidates differently from one flat
        # ``np.lexsort`` — the class of divergence the differential
        # checks exist to catch.
        if self.score != self.score:
            return (1, 0.0, self.index)
        return (0, -self.score, self.index)

    # Defining __eq__/__hash__ suppresses the dataclass-generated pair,
    # which compared raw fields and so declared two NaN-scored results
    # for the same candidate unequal.
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SearchResult):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __lt__(self, other: "SearchResult") -> bool:
        return self._key() < other._key()

    def __le__(self, other: "SearchResult") -> bool:
        return self._key() <= other._key()

    def __gt__(self, other: "SearchResult") -> bool:
        return self._key() > other._key()

    def __ge__(self, other: "SearchResult") -> bool:
        return self._key() >= other._key()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SearchResult(index={self.index}, score={self.score:.4f})"


def rank_scores(
    scores: Sequence[float],
    top_k: int,
    indices: Optional[Sequence[int]] = None,
) -> List[SearchResult]:
    """Top-``top_k`` results of a score vector, ties by ascending index.

    ``indices`` maps positions in ``scores`` to database indices (a
    shard scoring a slice passes its global offsets); by default the
    positions themselves are the indices. Returns at most ``top_k``
    results (fewer when the score vector is shorter).
    """
    if top_k < 1:
        raise ValueError("top_k must be >= 1")
    score_array = np.asarray(scores, dtype=np.float64)
    if indices is None:
        index_array = np.arange(score_array.shape[0])
    else:
        index_array = np.asarray(indices, dtype=np.int64)
        if index_array.shape != score_array.shape:
            raise ValueError("indices and scores must have the same length")
    # lexsort's last key is primary: descending score, then ascending
    # database index — the SearchResult total order.
    order = np.lexsort((index_array, -score_array))[:top_k]
    return [
        SearchResult(int(index_array[i]), float(score_array[i]))
        for i in order
    ]


def merge_topk(
    partials: Iterable[Sequence[SearchResult]], top_k: int
) -> List[SearchResult]:
    """Merge per-shard top-k lists into the global top-k.

    Each partial list must already be sorted (as :func:`rank_scores`
    returns them); the merge is a straight k-way heap merge on the
    total order, so the output is exactly what one flat
    :func:`rank_scores` over the concatenated shards would produce —
    provided every shard contributed at least ``min(top_k, len(shard))``
    candidates.
    """
    if top_k < 1:
        raise ValueError("top_k must be >= 1")
    merged = heapq.merge(*partials)
    out: List[SearchResult] = []
    for result in merged:
        out.append(result)
        if len(out) == top_k:
            break
    return out
