"""Sharded batch execution against the graph database.

Bottom stage of the serving pipeline: a :class:`ShardedExecutor` scores
each query batch against the database split into contiguous shards,
ranks every shard's scores locally, and k-way merges the per-shard
top-k lists into the global ranking. Because ranking and merging both
honour the :class:`~repro.search.results.SearchResult` total order,
the merged result is bit-identical to one flat sort over the whole
database — the property the ``search.serve_vs_direct`` check gates.

Two executions of the same plan:

- **Serial** (the guaranteed path): the parent scores every query
  in-process. Before scoring, byte-identical database candidates are
  collapsed via :func:`~repro.search.storage.graph_signature` — one
  forward pass per *unique* candidate, score broadcast to duplicates
  (the EMF dedup-and-broadcast move at database granularity; exact by
  construction, so rankings cannot change).
- **Sharded workers** (multi-core hosts): shards fan across the
  ``perf.parallel`` process pool. The database travels once as an
  uncompressed ``.npz`` image in a shared-memory segment; each worker
  attaches, rebuilds only its shard, dedups within it, and returns raw
  score vectors for the parent to rank and merge. Any pool or
  shared-memory failure falls back to the serial path transparently
  (same ``_map_tasks`` contract as the simulation harness).

Request-scoped telemetry crosses the worker boundary explicitly: each
task tuple carries the batch queries' :class:`~repro.obs.context.
RequestContext` wire forms, workers record per-query ``execute.shard``
spans (and a ``search.serve.shard_seconds`` latency histogram) into a
private tracker, and the span payloads ship back with the worker's
metrics snapshot for the parent to ingest under its ``execute`` stage
span at join. A context that fails to deserialize is counted as
``obs.context.worker_failures`` — never silently dropped.
"""

from __future__ import annotations

import logging
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..graphs.graph import Graph
from ..graphs.pairs import GraphPair
from ..models.base import GMNModel
from ..models.training import LogisticHead
from ..obs import LATENCY_BUCKETS, get_metrics, metrics_enabled, span
from ..obs.context import RequestContext, RequestTracker
from ..perf.parallel import (
    _map_tasks,
    _merge_worker_telemetry,
    _telemetry_payload,
    available_workers,
)
from . import results as results_mod
from .results import SearchResult
from .scheduler import QueryBatch
from .storage import graph_signature, graphs_from_buffer, graphs_to_npz_bytes

__all__ = ["shard_bounds", "ShardedExecutor"]

logger = logging.getLogger("repro.search.executor")


def shard_bounds(database_size: int, num_shards: int) -> List[Tuple[int, int]]:
    """Contiguous near-equal ``[start, stop)`` slices of the database.

    Never returns more shards than entries; an empty database yields no
    shards. Together the slices cover every index exactly once — the
    invariant that makes the shard merge equal to a flat sort.
    """
    if database_size <= 0:
        return []
    num_shards = max(1, min(num_shards, database_size))
    stride = -(-database_size // num_shards)
    return [
        (start, min(start + stride, database_size))
        for start in range(0, database_size, stride)
    ]


def _dedup_scores(
    score_fn: Callable[[Graph], float],
    graphs: Sequence[Graph],
    signatures: Sequence[bytes],
) -> Tuple[np.ndarray, int]:
    """Score candidates, computing each unique signature once.

    Returns the dense score vector and the number of forward passes
    saved (duplicates broadcast from their representative).
    """
    representatives: Dict[bytes, int] = {}
    scores = np.empty(len(graphs), dtype=np.float64)
    for position, signature in enumerate(signatures):
        representative = representatives.setdefault(signature, position)
        if representative == position:
            scores[position] = score_fn(graphs[position])
        else:
            scores[position] = scores[representative]
    return scores, len(graphs) - len(representatives)


def _score_shard_queries(
    model: GMNModel,
    scorer: Optional[LogisticHead],
    shard: Sequence[Graph],
    signatures: Sequence[bytes],
    queries: Sequence[Graph],
    contexts: Optional[Sequence[Optional[dict]]],
    shard_label: str,
    tracker: Optional[RequestTracker],
) -> List[np.ndarray]:
    """Score every query against one shard, recording telemetry.

    Shared by the worker body and the serial path so both emit the same
    ``execute.shard`` spans and ``search.serve.shard_seconds``
    observations. ``contexts`` holds one
    :class:`~repro.obs.context.RequestContext` wire dict (or ``None``)
    per query; a malformed one counts as
    ``obs.context.worker_failures`` instead of crashing the shard.
    """
    registry = get_metrics()
    vectors: List[np.ndarray] = []
    for position, query in enumerate(queries):
        started = time.monotonic()
        scores, saved = _dedup_scores(
            lambda candidate: _pair_score(model, scorer, candidate, query),
            shard,
            signatures,
        )
        elapsed = time.monotonic() - started
        if registry is not None:
            if saved:
                registry.inc("search.serve.candidate_dedup_hits", saved)
            registry.observe(
                "search.serve.shard_seconds",
                elapsed,
                bounds=LATENCY_BUCKETS,
            )
        if tracker is not None and contexts is not None:
            payload = contexts[position]
            if payload is not None:
                try:
                    context = RequestContext.from_wire(payload)
                except (KeyError, TypeError, ValueError):
                    if registry is not None:
                        registry.inc("obs.context.worker_failures")
                else:
                    tracker.record(
                        context.request_id,
                        "execute.shard",
                        start=started,
                        duration_seconds=elapsed,
                        parent="execute",
                        shard=shard_label,
                    )
        vectors.append(scores)
    return vectors


def _shard_task(task):
    """Worker body: score every batch query against one database shard.

    Attaches the parent's shared-memory database image, rebuilds only
    ``[start, stop)``, and returns raw per-query score vectors — the
    parent owns ranking and merging so the tie-break contract lives in
    one process. When the task carries request contexts, per-query
    ``execute.shard`` spans ride back in the telemetry payload.
    """
    (
        shm_name,
        size,
        start,
        stop,
        ids,
        model,
        scorer,
        queries,
        contexts,
        collect,
    ) = task
    from multiprocessing import shared_memory

    shm = shared_memory.SharedMemory(name=shm_name)
    try:
        # Attaching registers the segment with this process's resource
        # tracker (bpo-39959), which would unlink it out from under the
        # other workers at exit; the parent owns cleanup.
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker internals vary
        pass
    view = None
    try:
        view = shm.buf[:size]
        if ids is None:
            shard = graphs_from_buffer(view, start, stop)
            shard_label = f"{start}:{stop}"
        else:
            # Candidate-retrieval shard: ``[start, stop)`` slices the
            # batch's candidate id array, not the database itself.
            shard = graphs_from_buffer(view, indices=ids)
            shard_label = f"sel{start}:{stop}"
        signatures = [graph_signature(graph) for graph in shard]
        if not collect:
            return (
                start,
                _score_shard_queries(
                    model, scorer, shard, signatures, queries,
                    None, shard_label, None,
                ),
                None,
            )
        tracker = RequestTracker() if contexts is not None else None
        with metrics_enabled() as registry:
            vectors = _score_shard_queries(
                model, scorer, shard, signatures, queries,
                contexts, shard_label, tracker,
            )
        return start, vectors, _telemetry_payload(registry, tracker)
    finally:
        view = None
        try:
            shm.close()
        except BufferError:  # pragma: no cover - views still referenced
            pass  # process exit unmaps; the parent unlinks


def _pair_score(
    model: GMNModel,
    scorer: Optional[LogisticHead],
    candidate: Graph,
    query: Graph,
) -> float:
    """Exact per-pair score — identical to the flat path's scoring."""
    trace = model.forward_pair(GraphPair(candidate, query))
    if scorer is not None and trace.head_features is not None:
        return float(scorer.predict_proba(trace.head_features[None, :])[0])
    return trace.score


class ShardedExecutor:
    """Execute query batches against a (possibly growing) database.

    Holds a live reference to the index's graph list; signatures and
    the shared-memory image are cached and extended/invalidated as the
    database grows.

    Parameters
    ----------
    num_shards:
        Shard count per query; defaults to the worker count (at least
        one shard per worker keeps the pool busy).
    workers:
        Process-pool width; clamped to the host's cores. ``1`` forces
        the serial path.
    tracker:
        Optional :class:`~repro.obs.context.RequestTracker`; when set,
        the executor records ``pending``/``execute``/``rank`` stage
        spans per request (contiguous on ``clock``) and joins worker
        shard spans back to each request's tree.
    clock:
        The pipeline's monotonic clock — stage boundaries must be read
        off the same clock the admission queue uses for budgets to sum
        to the measured latency.
    """

    def __init__(
        self,
        model: GMNModel,
        graphs: List[Graph],
        scorer: Optional[LogisticHead] = None,
        num_shards: Optional[int] = None,
        workers: Optional[int] = None,
        tracker: Optional[RequestTracker] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.model = model
        self.scorer = scorer
        self._graphs = graphs
        self.num_shards = num_shards
        self.workers = workers
        self.tracker = tracker
        self.clock = clock
        self._signatures: List[bytes] = []
        self._image: Optional[Tuple[int, bytes]] = None
        #: Clock reading when the last batch finished ranking — where
        #: the pipeline's ``respond`` stage span begins.
        self.last_batch_end: Optional[float] = None

    # -- cached database views -----------------------------------------
    def signatures(self) -> List[bytes]:
        """Byte signatures of every database graph (extended lazily)."""
        for graph in self._graphs[len(self._signatures) :]:
            self._signatures.append(graph_signature(graph))
        del self._signatures[len(self._graphs) :]
        return self._signatures

    def _database_image(self) -> bytes:
        """The database as npz bytes, rebuilt when the size changes."""
        size = len(self._graphs)
        if self._image is None or self._image[0] != size:
            self._image = (size, graphs_to_npz_bytes(self._graphs))
        return self._image[1]

    # -- execution ------------------------------------------------------
    def run_batch(
        self,
        batch: QueryBatch,
        pending_since: Optional[float] = None,
        candidates: Optional[np.ndarray] = None,
    ) -> List[Tuple[SearchResult, ...]]:
        """Score one batch; returns rankings aligned with its groups.

        ``pending_since`` is the clock reading where scheduling ended —
        the start of this batch's ``pending`` stage (time spent waiting
        for earlier batches in the round). Stage spans recorded here
        share boundary timestamps, so per-request budgets stay exact.

        ``candidates`` restricts scoring to the given database indices
        (sorted unique, from a
        :class:`~repro.search.sketch.CandidateRetriever`); results rank
        only those candidates, under the same total order and shard
        plan the full database would use. ``None`` scores everything —
        the flat-retrieval path, byte-identical to before candidates
        existed.
        """
        database_size = len(self._graphs)
        if database_size == 0:
            return [tuple() for _ in batch.groups]
        selection = None
        if candidates is not None:
            selection = np.unique(np.asarray(candidates, dtype=np.int64))
            if selection.size and (
                selection[0] < 0 or selection[-1] >= database_size
            ):
                raise IndexError(
                    "candidate ids out of range for database of size "
                    f"{database_size}"
                )
            if selection.size == 0:
                return [tuple() for _ in batch.groups]
        work_size = database_size if selection is None else len(selection)
        workers = available_workers(self.workers)
        bounds = shard_bounds(
            work_size,
            workers if self.num_shards is None else self.num_shards,
        )
        queries = [group.graph for group in batch.groups]
        contexts = (
            [group.primary.context for group in batch.groups]
            if self.tracker is not None
            else None
        )
        tracker = self.tracker
        members = [
            request for group in batch.groups for request in group.requests
        ]
        if tracker is not None:
            execute_start = self.clock()
            if pending_since is not None:
                for request in members:
                    tracker.record(
                        request.request_id,
                        "pending",
                        start=pending_since,
                        duration_seconds=execute_start - pending_since,
                        batch=batch.batch_id,
                    )
        with span(
            "serve.execute",
            batch=batch.batch_id,
            queries=len(queries),
            shards=len(bounds),
        ):
            vectors = None
            if workers > 1 and len(bounds) > 1:
                vectors = self._run_sharded(
                    queries, contexts, bounds, workers, selection
                )
            if vectors is None:
                vectors = self._run_serial(queries, contexts, bounds, selection)
        if tracker is not None:
            rank_start = self.clock()
            for request in members:
                tracker.record(
                    request.request_id,
                    "execute",
                    start=execute_start,
                    duration_seconds=rank_start - execute_start,
                    batch=batch.batch_id,
                    shards=len(bounds),
                )
        with span("serve.rank", batch=batch.batch_id):
            rankings = [
                self._rank(vectors[position], bounds, group.top_k, selection)
                for position, group in enumerate(batch.groups)
            ]
        if tracker is not None:
            rank_end = self.clock()
            for request in members:
                tracker.record(
                    request.request_id,
                    "rank",
                    start=rank_start,
                    duration_seconds=rank_end - rank_start,
                    batch=batch.batch_id,
                )
            # Dedup followers share the primary's execution, so they
            # share its per-shard detail spans too.
            for group in batch.groups:
                if len(group) > 1:
                    tracker.replicate(
                        group.primary.request_id,
                        [r.request_id for r in group.requests[1:]],
                    )
            self.last_batch_end = rank_end
        return rankings

    def _rank(
        self,
        shard_scores: List[np.ndarray],
        bounds: List[Tuple[int, int]],
        top_k: int,
        selection: Optional[np.ndarray] = None,
    ) -> Tuple[SearchResult, ...]:
        """Rank each shard locally, then k-way merge to the global top-k.

        With a candidate ``selection``, results carry the *database*
        index of each scored candidate, so the total order (descending
        score, ties ascending database index) is the flat path's order
        restricted to the candidate set.
        """
        partials = [
            results_mod.rank_scores(
                scores,
                top_k,
                indices=(
                    np.arange(start, stop)
                    if selection is None
                    else selection[start:stop]
                ),
            )
            for scores, (start, stop) in zip(shard_scores, bounds)
        ]
        return tuple(results_mod.merge_topk(partials, top_k))

    def _run_serial(
        self,
        queries: Sequence[Graph],
        contexts: Optional[List[Optional[RequestContext]]],
        bounds: List[Tuple[int, int]],
        selection: Optional[np.ndarray] = None,
    ) -> List[List[np.ndarray]]:
        """Score in-process with database-wide candidate dedup."""
        wire_contexts = (
            [
                None if context is None else context.to_wire()
                for context in contexts
            ]
            if contexts is not None
            else None
        )
        if selection is None:
            graphs: Sequence[Graph] = self._graphs
            signatures: Sequence[bytes] = self.signatures()
            label = f"0:{len(self._graphs)}"
        else:
            all_signatures = self.signatures()
            graphs = [self._graphs[i] for i in selection]
            signatures = [all_signatures[i] for i in selection]
            label = f"sel0:{len(graphs)}"
        vectors = _score_shard_queries(
            self.model,
            self.scorer,
            graphs,
            signatures,
            queries,
            wire_contexts,
            label,
            self.tracker,
        )
        return [
            [scores[start:stop] for start, stop in bounds]
            for scores in vectors
        ]

    def _run_sharded(
        self,
        queries: Sequence[Graph],
        contexts: Optional[List[Optional[RequestContext]]],
        bounds: List[Tuple[int, int]],
        workers: int,
        selection: Optional[np.ndarray] = None,
    ) -> Optional[List[List[np.ndarray]]]:
        """Fan shards across the process pool via shared memory.

        Returns None when the segment cannot be created so the caller
        falls back to the serial path.
        """
        try:
            from multiprocessing import shared_memory
        except ImportError:  # pragma: no cover - stdlib always has it
            return None
        image = self._database_image()
        try:
            segment = shared_memory.SharedMemory(create=True, size=len(image))
        except (OSError, PermissionError, ValueError) as exc:
            registry = get_metrics()
            if registry is not None:
                registry.inc(
                    "search.serve.shm_failures", kind=type(exc).__name__
                )
            logger.warning(
                "shared-memory segment unavailable (%s: %s); scoring "
                "shards serially",
                type(exc).__name__,
                exc,
            )
            return None
        registry = get_metrics()
        collect = registry is not None or self.tracker is not None
        wire_contexts = (
            [
                None if context is None else context.to_wire()
                for context in contexts
            ]
            if contexts is not None
            else None
        )
        try:
            segment.buf[: len(image)] = image
            tasks = [
                (
                    segment.name,
                    len(image),
                    start,
                    stop,
                    None if selection is None else selection[start:stop],
                    self.model,
                    self.scorer,
                    list(queries),
                    wire_contexts,
                    collect,
                )
                for start, stop in bounds
            ]
            raw = _map_tasks(_shard_task, tasks, workers)
        finally:
            segment.close()
            segment.unlink()
        raw.sort(key=lambda item: item[0])
        for _, _, telemetry in raw:
            spans = _merge_worker_telemetry(telemetry)
            if self.tracker is not None and spans:
                self.tracker.ingest(spans, parent="execute")
        # raw is per-shard [per-query scores]; transpose to per-query
        # [per-shard scores] in shard order.
        return [
            [vectors[position] for _, vectors, _ in raw]
            for position in range(len(queries))
        ]
