"""Sublinear candidate retrieval from EMF/WL sketches (ROADMAP item 2).

Every query used to pay O(database) full GMN scoring. This module
turns the paper's own duplicate-detection machinery into an index:

- **Tokens.** Each graph is summarized as a set of uint64 tokens — one
  per (layer, node-hash) — where layer 0 is the EMF's XXH32 tag set
  (:func:`repro.emf.signatures.node_feature_tags`, the per-layer
  node-hash population Algorithm 1 deduplicates) and layers ``1..R``
  are canonical WL color hashes
  (:func:`repro.graphs.wl.wl_color_hashes`), which predict the deeper
  GNN layers' duplicate structure without running a model.
- **MinHash.** The token set is sketched into ``num_perm`` minimum
  values of independent 64-bit hash permutations; the fraction of
  agreeing slots estimates token-set Jaccard similarity.
- **LSH banding.** Signatures split into bands of ``band_rows`` rows;
  graphs sharing any full band land in the same inverted-index bucket
  (NeuroMatch / HGMN's coarse-to-fine pruning shape).
- **Recall floor.** Band matches are padded deterministically with the
  sketch-most-similar remaining graphs up to
  ``max(top_k, min_candidates, ceil(recall_floor * database))``, so a
  band miss cannot starve the exact reranker.

:class:`CandidateRetriever` slots between the batch scheduler and the
:class:`~repro.search.executor.ShardedExecutor`: the executor scores
only the retrieved candidate union and reranks it *exactly* (same
per-pair scores, same :class:`~repro.search.results.SearchResult`
total order). Pruning is lossy in principle; the
``search.sketch_vs_flat`` differential check gates top-k agreement
with the flat path on the validate workloads, and the recall floor is
the knob that buys agreement back if a workload ever diverges.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..emf.signatures import node_feature_tags
from ..graphs.graph import Graph
from ..graphs.wl import wl_color_hashes
from ..obs import get_metrics

__all__ = [
    "SketchConfig",
    "graph_tokens",
    "minhash_signature",
    "sketch_signature",
    "SketchStore",
    "CandidateRetriever",
]

#: Signature slot for an empty token set (zero-node graphs): no
#: permutation has a minimum, so every slot holds the identity that
#: only another empty graph can share.
EMPTY_SLOT = np.uint64(0xFFFFFFFFFFFFFFFF)

_U64 = np.uint64


@dataclass(frozen=True)
class SketchConfig:
    """Sketch and retrieval parameters.

    ``num_perm``, ``band_rows``, ``wl_rounds``, and ``seed`` define the
    signature itself (persisted with the database; signatures from
    different values are incomparable). ``recall_floor`` and
    ``min_candidates`` are retrieval-time knobs — how aggressively band
    matches may prune — and can change per pipeline without resketching.
    """

    num_perm: int = 64
    band_rows: int = 4
    wl_rounds: int = 2
    seed: int = 0
    recall_floor: float = 0.5
    min_candidates: int = 8

    def __post_init__(self) -> None:
        if self.num_perm < 1:
            raise ValueError("num_perm must be positive")
        if self.band_rows < 1 or self.num_perm % self.band_rows:
            raise ValueError("band_rows must divide num_perm")
        if self.wl_rounds < 0:
            raise ValueError("wl_rounds must be non-negative")
        if not 0.0 <= self.recall_floor <= 1.0:
            raise ValueError("recall_floor must be in [0, 1]")
        if self.min_candidates < 0:
            raise ValueError("min_candidates must be non-negative")

    @property
    def num_bands(self) -> int:
        return self.num_perm // self.band_rows

    def candidate_floor(self, top_k: int, database_size: int) -> int:
        """Smallest candidate set retrieval may return."""
        floor = max(
            top_k,
            self.min_candidates,
            math.ceil(self.recall_floor * database_size),
        )
        return min(database_size, floor)

    # -- persistence (see repro.search.storage schema v3) ---------------
    def to_params(self) -> np.ndarray:
        """Signature-defining parameters as an int64 array."""
        return np.array(
            [self.num_perm, self.band_rows, self.wl_rounds, self.seed],
            dtype=np.int64,
        )

    @classmethod
    def from_params(cls, params: np.ndarray) -> "SketchConfig":
        num_perm, band_rows, wl_rounds, seed = (
            int(value) for value in np.asarray(params).ravel()[:4]
        )
        return cls(
            num_perm=num_perm,
            band_rows=band_rows,
            wl_rounds=wl_rounds,
            seed=seed,
        )

    def compatible_with(self, params: np.ndarray) -> bool:
        """Whether persisted signatures under ``params`` match ours."""
        return bool(np.array_equal(self.to_params(), np.asarray(params)))


@lru_cache(maxsize=32)
def _permutations(num_perm: int, seed: int) -> Tuple[np.ndarray, np.ndarray]:
    """Multipliers (odd) and offsets of the 64-bit hash family."""
    rng = np.random.default_rng((seed, 0x5EED))
    multipliers = (
        rng.integers(0, 1 << 63, size=num_perm, dtype=np.uint64) << _U64(1)
    ) | _U64(1)
    offsets = rng.integers(0, 1 << 64, size=num_perm, dtype=np.uint64)
    return multipliers, offsets


def _mix64(values: np.ndarray) -> np.ndarray:
    """SplitMix64 finalizer: decorrelates the affine permutation hashes."""
    values = values ^ (values >> _U64(30))
    values = values * _U64(0xBF58476D1CE4E5B9)
    values = values ^ (values >> _U64(27))
    values = values * _U64(0x94D049BB133111EB)
    return values ^ (values >> _U64(31))


def graph_tokens(graph: Graph, config: SketchConfig) -> np.ndarray:
    """The graph's sketch token set: layer-tagged node hashes.

    Layer 0 holds the EMF XXH32 tag set; layers ``1..wl_rounds`` hold
    the canonical WL color hashes of that round. Each token is
    ``(layer << 32) | hash`` so equal node hashes at different depths
    stay distinct. Sorted unique uint64; empty for zero-node graphs.
    """
    layers: List[np.ndarray] = [
        node_feature_tags(graph.node_features, seed=config.seed).astype(
            np.uint64
        )
    ]
    if config.wl_rounds > 0:
        rounds = wl_color_hashes(graph, config.wl_rounds, seed=config.seed)
        # Round 0 duplicates the EMF tags (same hash of the same rows);
        # only the refinement rounds add information.
        layers.extend(
            np.unique(round_hashes) & _U64(0xFFFFFFFF)
            for round_hashes in rounds[1:]
        )
    tagged = [
        tokens | (_U64(layer) << _U64(32))
        for layer, tokens in enumerate(layers)
    ]
    if not tagged:
        return np.empty(0, dtype=np.uint64)
    return np.unique(np.concatenate(tagged))


def minhash_signature(tokens: np.ndarray, config: SketchConfig) -> np.ndarray:
    """MinHash the token set: ``num_perm`` minima of hash permutations.

    Deterministic in ``(tokens, num_perm, seed)``; an empty token set
    yields all-:data:`EMPTY_SLOT` so only empty graphs match it.
    """
    if tokens.size == 0:
        return np.full(config.num_perm, EMPTY_SLOT, dtype=np.uint64)
    multipliers, offsets = _permutations(config.num_perm, config.seed)
    hashed = _mix64(
        tokens[None, :] * multipliers[:, None] + offsets[:, None]
    )
    return hashed.min(axis=1)


def sketch_signature(graph: Graph, config: SketchConfig) -> np.ndarray:
    """The graph's persisted sketch row: MinHash over its tokens."""
    return minhash_signature(graph_tokens(graph, config), config)


def _band_keys(signature: np.ndarray, config: SketchConfig) -> List[bytes]:
    """LSH bucket keys: one bytes key per band of the signature."""
    banded = signature.reshape(config.num_bands, config.band_rows)
    return [row.astype("<u8").tobytes() for row in banded]


class SketchStore:
    """Per-graph sketch signatures aligned with a live graph list.

    Holds a reference to the index's graph list (the same
    live-reference pattern as the executor's signature cache) and
    extends lazily on :meth:`sync`, so graphs added after construction
    are sketched exactly once. ``signatures`` preloads rows persisted
    by :meth:`SimilaritySearchIndex.save` for the first graphs.
    """

    def __init__(
        self,
        graphs: List[Graph],
        config: Optional[SketchConfig] = None,
        signatures: Optional[np.ndarray] = None,
    ) -> None:
        self._graphs = graphs
        self.config = config or SketchConfig()
        self._rows: List[np.ndarray] = []
        if signatures is not None:
            signatures = np.asarray(signatures, dtype=np.uint64)
            if signatures.ndim != 2 or signatures.shape[1] != self.config.num_perm:
                raise ValueError(
                    "preloaded signatures must be (graphs, num_perm) "
                    f"uint64; got shape {signatures.shape}"
                )
            if signatures.shape[0] > len(graphs):
                raise ValueError(
                    "more preloaded signatures than database graphs"
                )
            self._rows = [np.array(row) for row in signatures]

    def __len__(self) -> int:
        return len(self._rows)

    def sync(self) -> None:
        """Sketch graphs added since the last sync (drop removed ones)."""
        for graph in self._graphs[len(self._rows):]:
            self._rows.append(sketch_signature(graph, self.config))
        del self._rows[len(self._graphs):]

    def signature(self, index: int) -> np.ndarray:
        return self._rows[index]

    def matrix(self) -> np.ndarray:
        """All signatures as one ``(graphs, num_perm)`` uint64 matrix."""
        self.sync()
        if not self._rows:
            return np.empty((0, self.config.num_perm), dtype=np.uint64)
        return np.vstack(self._rows)


class CandidateRetriever:
    """Band-match + recall-floor candidate retrieval over a store.

    Maintains the inverted band index incrementally as the store's
    graph list grows; retrieval is fully deterministic (band matches,
    then padding by descending estimated Jaccard with ascending-index
    tie-break). Counters: ``search.sketch.candidates`` (candidate-set
    sizes), ``search.sketch.bands`` (matched buckets), and
    ``search.sketch.recall_floor`` (candidates added by padding) — the
    candidate counter staying below ``queries * database`` is what
    "sublinear" means operationally.
    """

    def __init__(self, store: SketchStore) -> None:
        self.store = store
        self.config = store.config
        self._buckets: List[Dict[bytes, List[int]]] = [
            {} for _ in range(self.config.num_bands)
        ]
        self._indexed = 0
        # Plain-int mirrors of the metric counters so pipeline stats
        # work with metrics off.
        self.queries = 0
        self.candidates_retrieved = 0
        self.floor_padded = 0

    def _sync(self) -> None:
        self.store.sync()
        total = len(self.store)
        if total < self._indexed:
            # The database shrank (not a supported index operation, but
            # the store tolerates it) — rebuild from scratch.
            self._buckets = [{} for _ in range(self.config.num_bands)]
            self._indexed = 0
        for graph_id in range(self._indexed, total):
            signature = self.store.signature(graph_id)
            for band, key in enumerate(_band_keys(signature, self.config)):
                self._buckets[band].setdefault(key, []).append(graph_id)
        self._indexed = total

    def retrieve(self, graph: Graph, top_k: int) -> np.ndarray:
        """Candidate database ids for one query (sorted ascending)."""
        self._sync()
        database_size = len(self.store)
        if database_size == 0:
            return np.empty(0, dtype=np.int64)
        signature = sketch_signature(graph, self.config)
        member = np.zeros(database_size, dtype=bool)
        bands_matched = 0
        for band, key in enumerate(_band_keys(signature, self.config)):
            bucket = self._buckets[band].get(key)
            if bucket:
                bands_matched += 1
                member[bucket] = True
        floor = self.config.candidate_floor(top_k, database_size)
        padded = 0
        matched = int(member.sum())
        if matched < floor:
            # Deterministic padding: estimated Jaccard (fraction of
            # agreeing signature slots) descending, index ascending.
            agreement = (self.store.matrix() == signature[None, :]).mean(axis=1)
            order = np.lexsort((np.arange(database_size), -agreement))
            for graph_id in order:
                if not member[graph_id]:
                    member[graph_id] = True
                    padded += 1
                    if matched + padded >= floor:
                        break
        candidates = np.flatnonzero(member).astype(np.int64)
        self.queries += 1
        self.candidates_retrieved += len(candidates)
        self.floor_padded += padded
        registry = get_metrics()
        if registry is not None:
            registry.inc("search.sketch.candidates", len(candidates))
            registry.inc("search.sketch.bands", bands_matched)
            if padded:
                registry.inc("search.sketch.recall_floor", padded)
        return candidates

    def retrieve_batch(
        self, queries: Sequence[Tuple[Graph, int]]
    ) -> np.ndarray:
        """Union candidate set for one execution batch.

        The executor scores each batch against the union of its
        queries' candidate sets (one shard plan per batch, like the
        flat path); each query is still ranked over at least its own
        retrieved candidates, so agreement with per-query retrieval can
        only improve.
        """
        sets = [self.retrieve(graph, top_k) for graph, top_k in queries]
        if not sets:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate(sets))

    def stats(self) -> Dict[str, float]:
        """Retrieval counters for pipeline stats (metrics-independent)."""
        return {
            "sketch_queries": float(self.queries),
            "sketch_candidates": float(self.candidates_retrieved),
            "sketch_floor_padded": float(self.floor_padded),
        }
