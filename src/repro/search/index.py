"""Graph similarity search — the paper's motivating application.

Section III-A: "searching a graph from an extensive database would
require millions of matching queries ... real-time code clone search
applications require searching within a second". This subsystem wraps
the library into that workload: a database of graphs, a GMN scoring
queries against every candidate, optional trained scoring heads, and
platform-latency planning (how large a database fits a deadline, and on
which platform).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..graphs.graph import Graph
from ..graphs.pairs import GraphPair
from ..models.base import GMNModel
from ..models.training import LogisticHead
from ..platforms import REGISTRY
from ..trace.profiler import profile_batches

__all__ = ["SearchResult", "SimilaritySearchIndex"]


class SearchResult:
    """One ranked candidate from a query."""

    __slots__ = ("index", "score")

    def __init__(self, index: int, score: float) -> None:
        self.index = index
        self.score = score

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SearchResult(index={self.index}, score={self.score:.4f})"


class SimilaritySearchIndex:
    """A database of graphs searchable by GMN similarity.

    Parameters
    ----------
    model:
        The scoring backbone. ``use_emf=True`` models filter their
        matching; rankings are unchanged (the EMF is lossless).
    scorer:
        Optional trained :class:`LogisticHead` applied to the model's
        head features; falls back to the model's own score.
    """

    def __init__(
        self, model: GMNModel, scorer: Optional[LogisticHead] = None
    ) -> None:
        self.model = model
        self.scorer = scorer
        self._graphs: List[Graph] = []

    # ------------------------------------------------------------------
    # Database management
    # ------------------------------------------------------------------
    def add(self, graph: Graph) -> int:
        """Add one graph; returns its database index."""
        if graph.feature_dim != getattr(self.model, "input_dim", graph.feature_dim):
            raise ValueError(
                "graph feature dim does not match the index's model"
            )
        self._graphs.append(graph)
        return len(self._graphs) - 1

    def add_many(self, graphs: Sequence[Graph]) -> List[int]:
        return [self.add(graph) for graph in graphs]

    def __len__(self) -> int:
        return len(self._graphs)

    def graph(self, index: int) -> Graph:
        return self._graphs[index]

    def save(self, path) -> None:
        """Persist the database graphs to a compressed ``.npz`` file.

        The model/scorer are code, not data; reload them separately and
        pass to :meth:`load`.
        """
        import numpy as np

        arrays = {}
        for index, graph in enumerate(self._graphs):
            arrays[f"g{index}/edges"] = graph.edge_list()
            arrays[f"g{index}/features"] = graph.node_features
            arrays[f"g{index}/num_nodes"] = np.array(graph.num_nodes)
        arrays["count"] = np.array(len(self._graphs))
        np.savez_compressed(path, **arrays)

    @classmethod
    def load(cls, path, model: GMNModel, scorer=None) -> "SimilaritySearchIndex":
        """Rebuild an index from :meth:`save` output."""
        import numpy as np

        index = cls(model, scorer)
        with np.load(path, allow_pickle=False) as data:
            count = int(data["count"])
            for i in range(count):
                edges = data[f"g{i}/edges"]
                index.add(
                    Graph(
                        int(data[f"g{i}/num_nodes"]),
                        map(tuple, edges.tolist()),
                        data[f"g{i}/features"],
                    )
                )
        return index

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def _pair_score(self, pair: GraphPair) -> float:
        trace = self.model.forward_pair(pair)
        if self.scorer is not None and trace.head_features is not None:
            return float(
                self.scorer.predict_proba(trace.head_features[None, :])[0]
            )
        return trace.score

    def query(self, graph: Graph, top_k: int = 5) -> List[SearchResult]:
        """Score the query against every candidate; return the top k."""
        if not self._graphs:
            raise ValueError("the index is empty")
        if top_k < 1:
            raise ValueError("top_k must be >= 1")
        scores = [
            self._pair_score(GraphPair(candidate, graph))
            for candidate in self._graphs
        ]
        order = np.argsort(scores)[::-1][:top_k]
        return [SearchResult(int(i), float(scores[i])) for i in order]

    def query_many(
        self, graphs: Sequence[Graph], top_k: int = 5
    ) -> List[List[SearchResult]]:
        """Batch query mode: rank every query against the database.

        The throughput scenario of Section III-A ("millions of matching
        queries"): results come back in query order.
        """
        return [self.query(graph, top_k) for graph in graphs]

    # ------------------------------------------------------------------
    # Deadline planning
    # ------------------------------------------------------------------
    def estimate_pair_latency(
        self,
        query: Graph,
        platform: str = "CEGMA",
        sample_size: int = 4,
        batch_size: int = 8,
    ) -> float:
        """Estimated seconds per candidate on the given platform.

        ``platform`` is any registry spec string, so planning against a
        hypothetical part (``"CEGMA@bandwidth_gbps=512"``) works too.
        Profiles the query against a database sample and simulates it;
        full-database search time extrapolates linearly (every candidate
        is one independent pair).
        """
        simulator = REGISTRY.build(platform)  # KeyError lists known names
        if not self._graphs:
            raise ValueError("the index is empty")
        sample = self._graphs[: max(1, min(sample_size, len(self._graphs)))]
        pairs = [GraphPair(candidate, query) for candidate in sample]
        traces = profile_batches(self.model, pairs, batch_size=batch_size)
        result = simulator.simulate_batches(traces)
        return result.latency_per_pair

    def estimate_search_seconds(
        self, query: Graph, platform: str = "CEGMA", **kwargs
    ) -> float:
        """Estimated wall time to search the whole database."""
        return self.estimate_pair_latency(query, platform, **kwargs) * len(self)

    def max_database_size(
        self,
        query: Graph,
        deadline_seconds: float,
        platform: str = "CEGMA",
        **kwargs,
    ) -> int:
        """Largest database searchable within the deadline."""
        if deadline_seconds <= 0:
            raise ValueError("deadline must be positive")
        per_pair = self.estimate_pair_latency(query, platform, **kwargs)
        return int(deadline_seconds / per_pair)

    def plan(
        self,
        query: Graph,
        deadline_seconds: float,
        platforms: Sequence[str] = ("PyG-CPU", "PyG-GPU", "AWB-GCN", "CEGMA"),
        **kwargs,
    ) -> Dict[str, Dict[str, float]]:
        """Deadline feasibility per platform for the current database."""
        report: Dict[str, Dict[str, float]] = {}
        for platform in platforms:
            per_pair = self.estimate_pair_latency(query, platform, **kwargs)
            search_time = per_pair * len(self)
            report[platform] = {
                "per_pair_seconds": per_pair,
                "search_seconds": search_time,
                "meets_deadline": float(search_time <= deadline_seconds),
                "max_database_size": int(deadline_seconds / per_pair),
            }
        return report
