"""Graph similarity search — the paper's motivating application.

Section III-A: "searching a graph from an extensive database would
require millions of matching queries ... real-time code clone search
applications require searching within a second". This package wraps the
library into that workload as a staged serving system:

- :mod:`repro.search.requests` — bounded admission with deadlines.
- :mod:`repro.search.scheduler` — request dedup + policy batching.
- :mod:`repro.search.executor` — sharded scoring and top-k merge.
- :mod:`repro.search.results` — the deterministic ranking contract.
- :mod:`repro.search.storage` — versioned persistence + signatures.
- :mod:`repro.search.pipeline` — the stages wired together.

:class:`SimilaritySearchIndex` remains the database handle and the
planning surface (how large a database fits a deadline, on which
platform). Its ``query``/``query_many`` are now thin adapters over a
default :class:`~repro.search.pipeline.ServingPipeline`; the original
flat per-candidate loop survives as :meth:`_query_flat`, the reference
side of the ``search.serve_vs_direct`` differential check.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..graphs.graph import Graph
from ..graphs.pairs import GraphPair
from ..models.base import GMNModel
from ..models.training import LogisticHead
from ..platforms import REGISTRY
from ..trace.profiler import profile_batches
from . import results as results_mod
from .results import SearchResult
from .storage import database_arrays, graphs_from_arrays, sketch_from_arrays

__all__ = ["SearchResult", "SimilaritySearchIndex"]


def _deadline_capacity(deadline_seconds: float, per_pair_seconds: float) -> float:
    """Candidates searchable within the deadline.

    A zero (or negative — clock skew) per-pair estimate means the
    deadline never binds: the capacity is unbounded, not a
    ``ZeroDivisionError``.
    """
    if per_pair_seconds <= 0:
        return float("inf")
    return int(deadline_seconds / per_pair_seconds)


class SimilaritySearchIndex:
    """A database of graphs searchable by GMN similarity.

    Parameters
    ----------
    model:
        The scoring backbone. ``use_emf=True`` models filter their
        matching; rankings are unchanged (the EMF is lossless).
    scorer:
        Optional trained :class:`LogisticHead` applied to the model's
        head features; falls back to the model's own score.
    """

    def __init__(
        self, model: GMNModel, scorer: Optional[LogisticHead] = None
    ) -> None:
        self.model = model
        self.scorer = scorer
        self._graphs: List[Graph] = []
        self._pipeline = None
        self._sketch_store = None

    # ------------------------------------------------------------------
    # Database management
    # ------------------------------------------------------------------
    def add(self, graph: Graph) -> int:
        """Add one graph; returns its database index."""
        if graph.feature_dim != getattr(self.model, "input_dim", graph.feature_dim):
            raise ValueError(
                "graph feature dim does not match the index's model"
            )
        self._graphs.append(graph)
        # The cached default pipeline carries per-database derived state
        # (executor signature/image caches, retriever band buckets);
        # invalidate on mutation so the next query is guaranteed a
        # pipeline consistent with the grown database rather than
        # trusting every cache layer to self-extend.
        self._pipeline = None
        return len(self._graphs) - 1

    def add_many(self, graphs: Sequence[Graph]) -> List[int]:
        return [self.add(graph) for graph in graphs]

    def __len__(self) -> int:
        return len(self._graphs)

    def graph(self, index: int) -> Graph:
        return self._graphs[index]

    def save(self, path, include_sketches: Optional[bool] = None) -> None:
        """Persist the database graphs to a compressed ``.npz`` file.

        The payload is schema-versioned (see
        :data:`repro.search.storage.INDEX_SCHEMA_VERSION`); the
        model/scorer are code, not data — reload them separately and
        pass to :meth:`load`. Sketch signatures ride along when this
        index has materialized a sketch store (or when
        ``include_sketches=True`` forces one), so a reloaded index
        serves ``--retrieval sketch`` without resketching.
        """
        include = (
            self._sketch_store is not None
            if include_sketches is None
            else include_sketches
        )
        sketch = None
        if include:
            store = self.sketch_store()
            sketch = (store.matrix(), store.config.to_params())
        np.savez_compressed(
            path, **database_arrays(self._graphs, sketch=sketch)
        )

    @classmethod
    def load(cls, path, model: GMNModel, scorer=None) -> "SimilaritySearchIndex":
        """Rebuild an index from :meth:`save` output.

        Reads current and legacy (version-less) artifacts; files from a
        newer schema raise an actionable ``ValueError``. Persisted
        sketch signatures (schema v3) preload the sketch store; legacy
        artifacts load sketch-less and sketch lazily on first use (or
        serve flat).
        """
        index = cls(model, scorer)
        with np.load(path, allow_pickle=False) as data:
            index.add_many(graphs_from_arrays(data))
            sketch = sketch_from_arrays(data)
        if sketch is not None:
            from .sketch import SketchConfig, SketchStore

            signatures, params = sketch
            index._sketch_store = SketchStore(
                index._graphs,
                SketchConfig.from_params(params),
                signatures=signatures,
            )
        return index

    def sketch_store(self, config=None):
        """The index's :class:`~repro.search.sketch.SketchStore`.

        Created on first use (with ``config`` or defaults) and shared
        by every sketch-mode pipeline over this index, so signatures
        are computed once per graph. Passing a ``config`` different
        from the live store's rebuilds the store under the new
        parameters (signatures under different parameters are
        incomparable).
        """
        from .sketch import SketchConfig, SketchStore

        if config is not None and not isinstance(config, SketchConfig):
            raise TypeError("config must be a SketchConfig")
        if self._sketch_store is None:
            self._sketch_store = SketchStore(
                self._graphs, config or SketchConfig()
            )
        elif config is not None and config != self._sketch_store.config:
            self._sketch_store = SketchStore(self._graphs, config)
        return self._sketch_store

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def _pair_score(self, pair: GraphPair) -> float:
        trace = self.model.forward_pair(pair)
        if self.scorer is not None and trace.head_features is not None:
            return float(
                self.scorer.predict_proba(trace.head_features[None, :])[0]
            )
        return trace.score

    def pipeline(self, **kwargs) -> "object":
        """A fresh :class:`~repro.search.pipeline.ServingPipeline` over
        this index; keyword arguments forward to its constructor."""
        from .pipeline import ServingPipeline

        return ServingPipeline(self, **kwargs)

    def _default_pipeline(self):
        if self._pipeline is None:
            self._pipeline = self.pipeline()
        return self._pipeline

    def _query_flat(self, graph: Graph, top_k: int = 5) -> List[SearchResult]:
        """Reference path: score every candidate in one flat loop.

        This is the pre-pipeline implementation (no dedup, no shards,
        no queue) kept as the ground truth the serving pipeline must
        match bit-for-bit; ties rank by ascending database index.
        """
        self._check_query(top_k)
        scores = [
            self._pair_score(GraphPair(candidate, graph))
            for candidate in self._graphs
        ]
        return results_mod.rank_scores(scores, top_k)

    def _check_query(self, top_k: int) -> None:
        if not self._graphs:
            raise ValueError("the index is empty")
        if top_k < 1:
            raise ValueError("top_k must be >= 1")

    def query(self, graph: Graph, top_k: int = 5) -> List[SearchResult]:
        """Score the query against every candidate; return the top k.

        Thin adapter over the default serving pipeline (kept for
        compatibility — new code serving many queries should construct
        a :meth:`pipeline` and drive it directly for admission control,
        deadlines, and batching). Results are bit-identical to the flat
        reference path.
        """
        self._check_query(top_k)
        response = self._default_pipeline().serve([graph], top_k)[0]
        return list(response.results)

    def query_many(
        self, graphs: Sequence[Graph], top_k: int = 5
    ) -> List[List[SearchResult]]:
        """Batch query mode: rank every query against the database.

        The throughput scenario of Section III-A ("millions of matching
        queries"): results come back in query order. Adapter over the
        default serving pipeline — one submission per graph, one
        coalesced (and deduplicated) execution behind them.
        """
        if not graphs:
            return []
        self._check_query(top_k)
        responses = self._default_pipeline().serve(list(graphs), top_k)
        return [list(response.results) for response in responses]

    # ------------------------------------------------------------------
    # Deadline planning
    # ------------------------------------------------------------------
    def estimate_pair_latency(
        self,
        query: Graph,
        platform: str = "CEGMA",
        sample_size: Optional[int] = None,
        batch_size: int = 8,
        backend: Optional[str] = None,
    ) -> float:
        """Estimated seconds per candidate on the given platform.

        ``platform`` is any registry spec string, so planning against a
        hypothetical part (``"CEGMA@bandwidth_gbps=512"``) works too.

        The estimate models the batched execution backend the serving
        pipeline actually runs (PR 6): the profiled sample is one full
        dense batch — database candidates cycled to fill ``batch_size``
        pairs when the database is smaller — so the extrapolated
        per-pair cost includes cross-pair batch amortization instead of
        the old per-pair serial assumption. ``backend`` forwards to the
        accelerator simulators like
        :func:`repro.core.api.simulate_traces` (default: the
        simulator's own default, ``"batched"``).
        """
        simulator = REGISTRY.build(platform)  # KeyError lists known names
        if not self._graphs:
            raise ValueError("the index is empty")
        if backend is not None and hasattr(simulator, "backend"):
            from ..core.api import _validated_backend

            simulator.backend = _validated_backend(backend)
        if sample_size is None:
            sample_size = batch_size
        sample = [
            self._graphs[i % len(self._graphs)]
            for i in range(max(1, sample_size))
        ]
        pairs = [GraphPair(candidate, query) for candidate in sample]
        traces = profile_batches(self.model, pairs, batch_size=batch_size)
        result = simulator.simulate_batches(traces)
        return result.latency_per_pair

    def estimate_search_seconds(
        self, query: Graph, platform: str = "CEGMA", **kwargs
    ) -> float:
        """Estimated wall time to search the whole database."""
        return self.estimate_pair_latency(query, platform, **kwargs) * len(self)

    def max_database_size(
        self,
        query: Graph,
        deadline_seconds: float,
        platform: str = "CEGMA",
        **kwargs,
    ) -> float:
        """Largest database searchable within the deadline.

        ``float("inf")`` when the per-pair estimate is zero (a
        degenerate profile on a hypothetical platform) — the deadline
        never binds, and dividing by the estimate would raise.
        """
        if deadline_seconds <= 0:
            raise ValueError("deadline must be positive")
        per_pair = self.estimate_pair_latency(query, platform, **kwargs)
        return _deadline_capacity(deadline_seconds, per_pair)

    def plan(
        self,
        query: Graph,
        deadline_seconds: float,
        platforms: Sequence[str] = ("PyG-CPU", "PyG-GPU", "AWB-GCN", "CEGMA"),
        **kwargs,
    ) -> Dict[str, Dict[str, float]]:
        """Deadline feasibility per platform for the current database."""
        report: Dict[str, Dict[str, float]] = {}
        for platform in platforms:
            per_pair = self.estimate_pair_latency(query, platform, **kwargs)
            search_time = per_pair * len(self)
            report[platform] = {
                "per_pair_seconds": per_pair,
                "throughput_pairs_per_second": (
                    1.0 / per_pair if per_pair > 0 else float("inf")
                ),
                "search_seconds": search_time,
                "meets_deadline": float(search_time <= deadline_seconds),
                "max_database_size": _deadline_capacity(
                    deadline_seconds, per_pair
                ),
            }
        return report
