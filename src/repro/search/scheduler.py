"""Batch scheduling: coalesce admitted queries into GMN batches.

Middle stage of the serving pipeline. Drained requests are first
**deduplicated** — byte-identical queries (same graph signature, same
``top_k``) collapse into one :class:`QueryGroup` whose primary request
is scored once and whose followers share the frozen results. This is
the EMF move (detect exact duplicates, compute once, broadcast) applied
at request granularity: code-clone search traffic is exactly the
workload where many users submit the same hot graph.

Groups are then ordered by a pluggable :class:`SchedulingPolicy` (the
Helix ``SchedulingMethod`` shape — a string-valued enum selecting the
strategy) and chunked into :class:`QueryBatch`\\ es sized for the
cross-pair batched simulation backend (PR 6): every query in a batch is
scored against the database in one coalesced sweep, so batch size here
is the unit the executor hands to ``backend="batched"`` engines.

Policies:

- ``fifo`` — arrival order; the latency-fair default.
- ``deadline`` — earliest deadline first (deadline-less requests run
  last); overloaded queues finish urgent work before it expires.
- ``size_bucketed`` — ascending query-graph node count; batches become
  size-uniform, which keeps the batched engines' padded programs dense.

All orderings tie-break by arrival (request id), so scheduling is
deterministic and results remain bit-identical to the flat path.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional, Sequence, Tuple

from ..obs import get_metrics
from ..obs.context import RequestTracker
from .requests import QueryRequest
from .storage import graph_signature

__all__ = ["SchedulingPolicy", "QueryGroup", "QueryBatch", "BatchScheduler"]


class SchedulingPolicy(Enum):
    """How a scheduling round orders query groups into batches."""

    FIFO = "fifo"
    DEADLINE = "deadline"
    SIZE_BUCKETED = "size_bucketed"

    @classmethod
    def parse(cls, value: "SchedulingPolicy | str") -> "SchedulingPolicy":
        if isinstance(value, cls):
            return value
        try:
            return cls(value)
        except ValueError:
            known = ", ".join(policy.value for policy in cls)
            raise ValueError(
                f"unknown scheduling policy {value!r}; known: {known}"
            ) from None


@dataclass(frozen=True)
class QueryGroup:
    """Requests sharing one (query graph, top_k) — scored once.

    ``requests[0]`` is the primary (earliest arrival); followers are
    byte-identical duplicates that receive the primary's results.
    """

    requests: Tuple[QueryRequest, ...]

    @property
    def primary(self) -> QueryRequest:
        return self.requests[0]

    @property
    def graph(self):
        return self.primary.graph

    @property
    def top_k(self) -> int:
        return self.primary.top_k

    def __len__(self) -> int:
        return len(self.requests)


@dataclass(frozen=True)
class QueryBatch:
    """One unit of execution: query groups scored in a single sweep."""

    batch_id: int
    groups: Tuple[QueryGroup, ...]
    policy: SchedulingPolicy

    @property
    def num_queries(self) -> int:
        """Distinct queries scored (one per group)."""
        return len(self.groups)

    @property
    def num_requests(self) -> int:
        """Requests answered, including dedup followers."""
        return sum(len(group) for group in self.groups)

    def get_description(self) -> str:
        return (
            f"QueryBatch {self.batch_id} [{self.policy.value}]: "
            f"{self.num_queries} queries serving {self.num_requests} "
            "requests"
        )


class BatchScheduler:
    """Turn drained requests into ordered, bounded query batches.

    Parameters
    ----------
    policy:
        A :class:`SchedulingPolicy` (or its string value).
    max_batch_queries:
        Upper bound on *distinct* queries per batch — the cross-pair
        batch the executor coalesces for the batched backend.
    dedup:
        When False every request is its own group (the pre-dedup
        behaviour); kept for measurement, not for serving.
    tracker:
        Optional :class:`~repro.obs.context.RequestTracker`; when set,
        every scheduled request is annotated with its batch id, group
        size, and primary — the scheduling decision joined to the
        request's span tree.
    """

    def __init__(
        self,
        policy: "SchedulingPolicy | str" = SchedulingPolicy.FIFO,
        max_batch_queries: int = 8,
        dedup: bool = True,
        tracker: Optional[RequestTracker] = None,
    ) -> None:
        if max_batch_queries < 1:
            raise ValueError("max_batch_queries must be >= 1")
        self.policy = SchedulingPolicy.parse(policy)
        self.max_batch_queries = max_batch_queries
        self.dedup = dedup
        self.tracker = tracker
        self._next_batch_id = 0

    def group_requests(
        self, requests: Sequence[QueryRequest]
    ) -> List[QueryGroup]:
        """Collapse byte-identical (graph, top_k) requests into groups."""
        if not self.dedup:
            return [QueryGroup((request,)) for request in requests]
        buckets: Dict[Tuple[bytes, int], List[QueryRequest]] = {}
        for request in requests:
            key = (graph_signature(request.graph), request.top_k)
            buckets.setdefault(key, []).append(request)
        groups = [QueryGroup(tuple(members)) for members in buckets.values()]
        # Insertion order of a dict is arrival order of each primary,
        # but make it explicit: groups are FIFO by primary until a
        # policy reorders them.
        groups.sort(key=lambda group: group.primary.request_id)
        return groups

    def _order(self, groups: List[QueryGroup]) -> List[QueryGroup]:
        if self.policy is SchedulingPolicy.FIFO:
            key = lambda g: (g.primary.request_id,)  # noqa: E731
        elif self.policy is SchedulingPolicy.DEADLINE:
            key = lambda g: (  # noqa: E731
                g.primary.deadline is None,
                g.primary.deadline if g.primary.deadline is not None else 0.0,
                g.primary.request_id,
            )
        else:  # SIZE_BUCKETED
            key = lambda g: (g.graph.num_nodes, g.primary.request_id)  # noqa: E731
        return sorted(groups, key=key)

    def build_batches(
        self, requests: Sequence[QueryRequest]
    ) -> List[QueryBatch]:
        """One scheduling round: dedup, order by policy, chunk."""
        if not requests:
            return []
        groups = self._order(self.group_requests(requests))
        batches: List[QueryBatch] = []
        for start in range(0, len(groups), self.max_batch_queries):
            batch = QueryBatch(
                batch_id=self._next_batch_id,
                groups=tuple(groups[start : start + self.max_batch_queries]),
                policy=self.policy,
            )
            self._next_batch_id += 1
            batches.append(batch)
        metrics = get_metrics()
        if metrics is not None:
            metrics.inc("search.serve.batches", len(batches))
            metrics.inc(
                "search.serve.deduped_requests",
                len(requests) - len(groups),
            )
        if self.tracker is not None:
            for batch in batches:
                for group in batch.groups:
                    for request in group.requests:
                        self.tracker.annotate(
                            request.request_id,
                            batch=batch.batch_id,
                            group_size=len(group),
                            primary=group.primary.request_id,
                            policy=self.policy.value,
                        )
        return batches
