"""Process-pool fan-out for the experiment harness.

Two grains of parallelism, matching how the harness spends its time:

- :func:`parallel_workload_results` fans whole (model, dataset)
  workloads — the unit the experiment runners iterate over — across a
  ``ProcessPoolExecutor``. Workloads are independent (each rebuilds its
  dataset and model deterministically from the seed), so this is
  embarrassingly parallel.
- :func:`parallel_simulate_workload` splits ONE workload's graph pairs
  into contiguous chunks at batch-size boundaries and simulates the
  chunks concurrently, merging the per-platform results in chunk order.

Chunking at multiples of ``batch_size`` keeps batch boundaries — and
therefore every simulated cycle count — identical to a serial run.
Merged floating-point accumulators (energy, seconds) are summed in a
different association order than one long serial sum, so they can
differ from a serial run at the ulp level; cycle counts are integral
per batch and merge exactly.

Every entry point degrades gracefully to in-process execution when only
one worker is requested, when there is only one task, or when the host
refuses to spawn processes (sandboxes without /dev/shm, 1-core boxes).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "available_workers",
    "parallel_workload_results",
    "parallel_simulate_workload",
]


def available_workers(requested: Optional[int] = None) -> int:
    """Clamp a worker request to the machine's CPU count (min 1)."""
    cores = os.cpu_count() or 1
    if requested is None:
        return cores
    return max(1, min(requested, cores))


# ----------------------------------------------------------------------
# Grain 1: one task per (model, dataset) workload.


def _workload_task(
    task: Tuple[str, str, Tuple[str, ...], int, int, int]
) -> Tuple[Tuple[str, str], Dict]:
    """Worker body: simulate one workload via the shared cached path."""
    model_name, dataset_name, platforms, num_pairs, batch_size, seed = task
    from ..experiments.common import workload_results

    results = workload_results(
        model_name, dataset_name, platforms, num_pairs, batch_size, seed
    )
    return (model_name, dataset_name), results


def parallel_workload_results(
    workloads: Sequence[Tuple[str, str]],
    platforms: Sequence[str],
    num_pairs: int,
    batch_size: int,
    seed: int = 0,
    workers: Optional[int] = None,
) -> Dict[Tuple[str, str], Dict]:
    """Simulate many (model, dataset) workloads, fanning across processes.

    Returns ``{(model, dataset): {platform: PlatformResult}}``. With one
    worker (or one workload, or a pool that fails to start) this runs
    serially in-process and produces the identical mapping.
    """
    tasks = [
        (model, dataset, tuple(platforms), num_pairs, batch_size, seed)
        for model, dataset in workloads
    ]
    workers = available_workers(workers)
    if workers > 1 and len(tasks) > 1:
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                return dict(pool.map(_workload_task, tasks))
        except (OSError, PermissionError):
            pass  # spawning unavailable: fall through to serial
    return dict(_workload_task(task) for task in tasks)


# ----------------------------------------------------------------------
# Grain 2: one task per graph-pair chunk within a single workload.


def _chunk_task(
    task: Tuple[str, str, Tuple[str, ...], int, int, int, int, int]
) -> Tuple[int, Dict]:
    """Worker body: profile+simulate one contiguous slice of the workload.

    The worker rebuilds the dataset and model from (name, seed) — both
    are deterministic — instead of shipping graphs over the pipe.
    """
    (
        model_name,
        dataset_name,
        platforms,
        num_pairs,
        batch_size,
        seed,
        start,
        stop,
    ) = task
    from ..core.api import simulate_traces
    from ..graphs.datasets import load_dataset
    from ..models import build_model
    from ..trace.profiler import profile_batches

    pairs = load_dataset(dataset_name, seed=seed, num_pairs=num_pairs)
    model = build_model(
        model_name, input_dim=pairs[0].target.feature_dim, seed=seed
    )
    traces = profile_batches(model, pairs[start:stop], batch_size=batch_size)
    return start, simulate_traces(traces, platforms)


def _chunk_bounds(
    num_pairs: int, batch_size: int, workers: int
) -> List[Tuple[int, int]]:
    """Contiguous [start, stop) slices aligned to batch boundaries."""
    num_batches = -(-num_pairs // batch_size)
    batches_per_chunk = -(-num_batches // workers)
    stride = batches_per_chunk * batch_size
    return [
        (start, min(start + stride, num_pairs))
        for start in range(0, num_pairs, stride)
    ]


def parallel_simulate_workload(
    model_name: str,
    dataset_name: str,
    platforms: Sequence[str],
    num_pairs: int = 8,
    batch_size: int = 32,
    seed: int = 0,
    workers: Optional[int] = None,
) -> Dict[str, "object"]:
    """:func:`repro.core.api.simulate_workload`, chunked across processes.

    Returns ``{platform: PlatformResult}`` with per-chunk results merged
    in chunk order, so repeated runs are deterministic.
    """
    workers = available_workers(workers)
    bounds = _chunk_bounds(num_pairs, batch_size, workers)
    tasks = [
        (
            model_name,
            dataset_name,
            tuple(platforms),
            num_pairs,
            batch_size,
            seed,
            start,
            stop,
        )
        for start, stop in bounds
    ]
    if workers > 1 and len(tasks) > 1:
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                chunk_results = list(pool.map(_chunk_task, tasks))
        except (OSError, PermissionError):
            chunk_results = [_chunk_task(task) for task in tasks]
    else:
        chunk_results = [_chunk_task(task) for task in tasks]
    chunk_results.sort(key=lambda item: item[0])
    merged: Dict[str, "object"] = {}
    for _, results in chunk_results:
        for platform, result in results.items():
            if platform in merged:
                merged[platform].merge(result)
            else:
                merged[platform] = result
    return merged
