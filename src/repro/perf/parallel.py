"""Process-pool fan-out for the experiment harness.

Two grains of parallelism, matching how the harness spends its time:

- :func:`parallel_run_specs` (and its ``(model, dataset)``-keyed wrapper
  :func:`parallel_workload_results`) fans whole workloads — the unit the
  experiment runners iterate over — across a ``ProcessPoolExecutor``.
  Workloads are independent (each rebuilds its dataset and model
  deterministically from the seed), so this is embarrassingly parallel.
- :func:`parallel_simulate_workload` splits ONE workload's graph pairs
  into contiguous chunks at batch-size boundaries and simulates the
  chunks concurrently, merging the per-platform results in chunk order.

Workloads cross the process boundary as serialized
:class:`~repro.platforms.runspec.RunSpec` payloads — the same canonical
key the memo and disk caches use — so the worker transport can never
drift from the cache keys.

Chunk workers receive their traces through a *shared-memory segment*:
the parent profiles the workload once (through the cached
``traces_for`` path), publishes the uncompressed ``.npz`` image into a
``multiprocessing.shared_memory`` block, and each worker attaches and
rebuilds its chunk as zero-copy views — no per-worker re-profiling, no
pickled trace arrays over the pipe, and feature pages are shared
physical memory across all workers. Hosts without shared memory fall
back to the original rebuild-from-spec workers transparently.

Chunking at multiples of ``batch_size`` keeps batch boundaries — and
therefore every simulated cycle count — identical to a serial run.
Merged floating-point accumulators (energy, seconds) are summed in a
different association order than one long serial sum, so they can
differ from a serial run at the ulp level; cycle counts are integral
per batch and merge exactly.

Every entry point degrades gracefully to in-process execution when only
one worker is requested, when there is only one task, or when the host
refuses to spawn processes (sandboxes without /dev/shm, 1-core boxes).
"""

from __future__ import annotations

import logging
import os
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..obs.metrics import MetricsRegistry, get_metrics, metrics_enabled
from ..platforms.runspec import RunSpec

__all__ = [
    "available_workers",
    "parallel_run_specs",
    "parallel_workload_results",
    "parallel_simulate_workload",
]

# _telemetry_payload / _merge_worker_telemetry are the worker transport
# contract shared with repro.search.executor: workers ship
# {"metrics": registry.as_dict(), "spans": [wire spans]} back over the
# pipe and the parent merges at join.

logger = logging.getLogger("repro.perf.parallel")


def available_workers(requested: Optional[int] = None) -> int:
    """Clamp a worker request to the machine's CPU count (min 1)."""
    cores = os.cpu_count() or 1
    if requested is None:
        return cores
    return max(1, min(requested, cores))


def _map_tasks(
    task_fn: Callable,
    tasks: Sequence[Tuple],
    workers: int,
) -> List:
    """``pool.map`` with a complete serial fallback.

    Two failure shapes degrade to in-process execution of the *entire*
    task list, so the caller always receives one result per task and the
    merged metrics registry stays complete:

    - the pool never starts (``OSError``/``PermissionError``: sandboxes
      without /dev/shm, fork limits), and
    - a worker dies mid-task (``BrokenExecutor``: OOM-killed child,
      hard crash), which ``pool.map`` surfaces after partial progress.

    Worker deaths are counted as ``perf.parallel.worker_failures`` on
    the active registry so regression tooling can see that a run fell
    back, instead of the failure vanishing into identical results.
    """
    if workers > 1 and len(tasks) > 1:
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                return list(pool.map(task_fn, tasks))
        except (OSError, PermissionError, BrokenExecutor) as exc:
            registry = get_metrics()
            if registry is not None:
                registry.inc(
                    "perf.parallel.worker_failures",
                    kind=type(exc).__name__,
                )
            logger.warning(
                "process pool failed (%s: %s); re-running %d task(s) serially",
                type(exc).__name__,
                exc,
                len(tasks),
            )
    return [task_fn(task) for task in tasks]


# ----------------------------------------------------------------------
# Grain 1: one task per workload spec.


def _spec_task(
    task: Tuple[dict, Tuple[str, ...], bool]
) -> Tuple[dict, Dict, Optional[dict]]:
    """Worker body: simulate one workload via the shared cached path.

    When ``collect`` is set the worker runs under its own
    :class:`~repro.obs.metrics.MetricsRegistry` and ships the snapshot
    back for the parent to merge — metric merge is commutative and
    associative, so fan-out does not change the totals.
    """
    spec_payload, platforms, collect = task
    from ..experiments.common import results_for

    spec = RunSpec.from_dict(spec_payload)
    if not collect:
        return spec_payload, results_for(spec, platforms), None
    with metrics_enabled() as registry:
        results = results_for(spec, platforms)
    return spec_payload, results, registry.as_dict()


def _telemetry_payload(
    registry: MetricsRegistry, tracker: Optional[object] = None
) -> dict:
    """One worker's telemetry for the pipe: metrics + request spans.

    The metrics snapshot is the classic ``as_dict()`` payload; when the
    worker also tracked request-scoped spans (a
    :class:`~repro.obs.context.RequestTracker` built from contexts that
    shipped out with the task tuple), their wire forms ride along so
    the parent can rejoin them to the request trees at merge time.
    """
    payload: dict = {"metrics": registry.as_dict()}
    if tracker is not None and len(tracker):
        payload["spans"] = tracker.wire_spans()
    return payload


def _merge_worker_telemetry(payload: Optional[dict]) -> List[dict]:
    """Fold one worker's telemetry into the active registry.

    Accepts both payload shapes — a bare ``MetricsRegistry.as_dict()``
    (the original worker contract) and the combined
    ``{"metrics": ..., "spans": [...]}`` form from
    :func:`_telemetry_payload`. Metrics merge into the active registry;
    the request-scoped wire spans are *returned* for the caller to
    ingest into its tracker (the parallel layer has no request state of
    its own).
    """
    if payload is None:
        return []
    if "metrics" in payload:
        metrics_payload = payload["metrics"]
        spans = list(payload.get("spans", []))
    else:
        metrics_payload = payload
        spans = []
    registry = get_metrics()
    if registry is not None and metrics_payload is not None:
        registry.merge(MetricsRegistry.from_dict(metrics_payload))
    return spans


def _merge_worker_metrics(payload: Optional[dict]) -> None:
    """Fold one worker's metrics snapshot into the active registry."""
    _merge_worker_telemetry(payload)


def parallel_run_specs(
    specs: Sequence[RunSpec],
    platforms: Sequence[str],
    workers: Optional[int] = None,
) -> Dict[RunSpec, Dict]:
    """Simulate many workload specs, fanning across processes.

    Returns ``{spec: {platform: PlatformResult}}``. With one worker (or
    one spec, or a pool that fails to start) this runs serially
    in-process and produces the identical mapping. When the parent has
    an active metrics registry, each worker collects its own and the
    snapshots are merged at join.
    """
    registry = get_metrics()
    collect = registry is not None
    tasks = [(spec.to_dict(), tuple(platforms), collect) for spec in specs]
    workers = available_workers(workers)
    if registry is not None:
        registry.set_gauge("perf.parallel.workers", workers)
    raw = _map_tasks(_spec_task, tasks, workers)
    for _, _, metrics_payload in raw:
        _merge_worker_metrics(metrics_payload)
    return {
        RunSpec.from_dict(payload): results for payload, results, _ in raw
    }


def parallel_workload_results(
    workloads: Sequence[Tuple[str, str]],
    platforms: Sequence[str],
    num_pairs: int,
    batch_size: int,
    seed: int = 0,
    workers: Optional[int] = None,
) -> Dict[Tuple[str, str], Dict]:
    """:func:`parallel_run_specs` keyed by ``(model, dataset)`` pairs.

    Convenience wrapper for callers that sweep a model/dataset grid at
    one uniform workload size.
    """
    specs = [
        RunSpec.make(model, dataset, num_pairs, batch_size, seed)
        for model, dataset in workloads
    ]
    computed = parallel_run_specs(specs, platforms, workers)
    return {
        (spec.model, spec.dataset): results
        for spec, results in computed.items()
    }


# ----------------------------------------------------------------------
# Grain 2: one task per graph-pair chunk within a single workload.


def _chunk_task(
    task: Tuple[dict, Tuple[str, ...], int, int, bool, Optional[str]]
) -> Tuple[int, Dict, Optional[dict]]:
    """Worker body: profile+simulate one contiguous slice of the workload.

    The worker rebuilds the dataset and model from the spec — both are
    deterministic — instead of shipping graphs over the pipe.
    """
    spec_payload, platforms, start, stop, collect, backend = task
    from ..core.api import simulate_traces
    from ..graphs.datasets import load_dataset
    from ..models import build_model
    from ..trace.profiler import profile_batches

    spec = RunSpec.from_dict(spec_payload)
    pairs = load_dataset(spec.dataset, seed=spec.seed, num_pairs=spec.num_pairs)
    model = build_model(
        spec.model, input_dim=pairs[0].target.feature_dim, seed=spec.seed
    )
    traces = profile_batches(
        model, pairs[start:stop], batch_size=spec.batch_size
    )
    if not collect:
        return start, simulate_traces(traces, platforms, backend=backend), None
    with metrics_enabled() as registry:
        results = simulate_traces(traces, platforms, backend=backend)
    return start, results, registry.as_dict()


def _chunk_bounds(
    num_pairs: int, batch_size: int, workers: int
) -> List[Tuple[int, int]]:
    """Contiguous [start, stop) slices aligned to batch boundaries.

    An empty workload yields no chunks (the degenerate stride would
    otherwise be zero and ``range`` rejects it).
    """
    if num_pairs <= 0:
        return []
    num_batches = -(-num_pairs // batch_size)
    batches_per_chunk = -(-num_batches // workers)
    stride = batches_per_chunk * batch_size
    return [
        (start, min(start + stride, num_pairs))
        for start in range(0, num_pairs, stride)
    ]


def _shm_chunk_task(
    task: Tuple[str, int, Tuple[str, ...], int, int, int, bool, Optional[str]]
) -> Tuple[int, Dict, Optional[dict]]:
    """Worker body: simulate a batch-slice of shared-memory traces.

    Attaches the parent's shared-memory segment, rebuilds the traces as
    zero-copy views over it, and simulates only this chunk's batches —
    pages belonging to other chunks are never touched.
    """
    shm_name, size, platforms, start, stop, batch_size, collect, backend = task
    from multiprocessing import shared_memory

    from ..core.api import simulate_traces
    from ..trace.io import traces_from_buffer

    shm = shared_memory.SharedMemory(name=shm_name)
    try:
        # Attaching registers the segment with this process's resource
        # tracker (bpo-39959), which would unlink it out from under the
        # other workers at exit; the parent owns cleanup.
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker internals vary
        pass
    view = None
    chunk = None
    try:
        view = shm.buf[:size]
        traces = traces_from_buffer(view)
        lo = start // batch_size
        hi = -(-stop // batch_size)
        chunk = traces[lo:hi]
        traces = None
        if not collect:
            return (
                start,
                simulate_traces(chunk, platforms, backend=backend),
                None,
            )
        with metrics_enabled() as registry:
            results = simulate_traces(chunk, platforms, backend=backend)
        return start, results, registry.as_dict()
    finally:
        chunk = None
        view = None
        try:
            shm.close()
        except BufferError:  # pragma: no cover - views still referenced
            pass  # process exit unmaps; the parent unlinks


def parallel_simulate_workload(
    spec: RunSpec,
    platforms: Sequence[str],
    workers: Optional[int] = None,
    backend: Optional[str] = None,
) -> Dict[str, "object"]:
    """:func:`repro.core.api.simulate_workload`, chunked across processes.

    Returns ``{platform: PlatformResult}`` with per-chunk results merged
    in chunk order, so repeated runs are deterministic. Traces travel to
    the workers through shared memory (profiled once in the parent);
    when the host cannot allocate a segment, workers rebuild their slice
    from the spec instead.
    """
    workers = available_workers(workers)
    registry = get_metrics()
    if registry is not None:
        registry.set_gauge("perf.parallel.workers", workers)
    bounds = _chunk_bounds(spec.num_pairs, spec.batch_size, workers)
    if not bounds:
        return {}
    collect = registry is not None
    chunk_results = None
    if workers > 1 and len(bounds) > 1:
        chunk_results = _shm_map_chunks(
            spec, tuple(platforms), bounds, workers, collect, backend
        )
    if chunk_results is None:
        payload = spec.to_dict()
        tasks = [
            (payload, tuple(platforms), start, stop, collect, backend)
            for start, stop in bounds
        ]
        chunk_results = _map_tasks(_chunk_task, tasks, workers)
    chunk_results.sort(key=lambda item: item[0])
    merged: Dict[str, "object"] = {}
    for _, results, metrics_payload in chunk_results:
        _merge_worker_metrics(metrics_payload)
        for platform, result in results.items():
            if platform in merged:
                merged[platform].merge(result)
            else:
                merged[platform] = result
    return merged


def _shm_map_chunks(
    spec: RunSpec,
    platforms: Tuple[str, ...],
    bounds: List[Tuple[int, int]],
    workers: int,
    collect: bool,
    backend: Optional[str] = None,
) -> Optional[List]:
    """Fan chunks out over a shared-memory trace segment.

    Returns None when the segment cannot be created (no /dev/shm,
    exhausted shared memory) so the caller can fall back to
    rebuild-from-spec workers.
    """
    from ..experiments.common import traces_for
    from ..trace.io import traces_to_npz_bytes

    try:
        from multiprocessing import shared_memory
    except ImportError:  # pragma: no cover - stdlib always has it
        return None
    traces = traces_for(spec)
    image = traces_to_npz_bytes(traces)
    try:
        segment = shared_memory.SharedMemory(create=True, size=len(image))
    except (OSError, PermissionError, ValueError) as exc:
        registry = get_metrics()
        if registry is not None:
            registry.inc(
                "perf.parallel.shm_failures", kind=type(exc).__name__
            )
        logger.warning(
            "shared-memory segment unavailable (%s: %s); workers will "
            "rebuild traces from the spec",
            type(exc).__name__,
            exc,
        )
        return None
    try:
        segment.buf[: len(image)] = image
        tasks = [
            (
                segment.name,
                len(image),
                platforms,
                start,
                stop,
                spec.batch_size,
                collect,
                backend,
            )
            for start, stop in bounds
        ]
        return _map_tasks(_shm_chunk_task, tasks, workers)
    finally:
        segment.close()
        segment.unlink()
