"""Persistent on-disk workload-trace cache.

Profiling a workload is deterministic in its
:class:`~repro.platforms.runspec.RunSpec` — the models are seeded and
the datasets synthetic — so traces can be profiled once and replayed by
every later harness invocation, in this process or any other. This
replaces the purely per-process ``lru_cache`` memoization that
``experiments.common`` used to rely on: worker processes of the
parallel harness and repeated CLI runs now share one cache.

Layout: one compressed ``.npz`` per workload (the
:mod:`repro.trace.io` format) under the cache directory, named by an
XXH32 digest of the key plus the spec's human-readable stem::

    .trace_cache/GMN-Li_AIDS_p4_b4_s0_quick_v2_1a2b3c4d.npz

Invalidation: the file name embeds the trace-format version, so a
format bump orphans old entries (they are ignored, never misread).
Delete the directory to drop the cache entirely; set
``REPRO_TRACE_CACHE=off`` (or ``0``) to disable caching, or point it at
an alternative directory.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import List, Optional, Sequence, Union

from ..emf.xxhash import xxh32
from ..obs.metrics import get_metrics
from ..platforms.runspec import RunSpec
from ..trace import io as trace_io
from ..trace.profiler import BatchTrace

__all__ = ["TraceCache", "default_trace_cache", "DEFAULT_CACHE_DIR"]

DEFAULT_CACHE_DIR = ".trace_cache"
_DISABLED_VALUES = ("", "0", "off", "none", "disabled")


class TraceCache:
    """File-per-workload trace store with atomic writes, keyed by RunSpec."""

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)

    # ------------------------------------------------------------------
    def key_path(self, spec: RunSpec) -> Path:
        """The cache file for one workload spec."""
        stem = f"{spec.stem}_v{trace_io.FORMAT_VERSION}"
        digest = xxh32(stem.encode("utf-8"))
        safe = "".join(c if c.isalnum() or c in "._-" else "-" for c in stem)
        return self.directory / f"{safe}_{digest:08x}.npz"

    def load(self, spec: RunSpec) -> Optional[List[BatchTrace]]:
        """The cached traces, or None on miss (or unreadable entry)."""
        path = self.key_path(spec)
        registry = get_metrics()
        if not path.is_file():
            if registry is not None:
                registry.inc("trace_cache.miss")
            return None
        try:
            traces = trace_io.load_traces(path)
        except (ValueError, KeyError, OSError):
            # Corrupt or stale-format entry: treat as a miss; the fresh
            # profile below overwrites it.
            if registry is not None:
                registry.inc("trace_cache.miss")
            return None
        if registry is not None:
            registry.inc("trace_cache.hit")
        return traces

    def store(self, spec: RunSpec, traces: Sequence[BatchTrace]) -> Path:
        """Write traces atomically (temp file + rename) and return the path.

        Atomicity matters because parallel harness workers may race to
        populate the same entry; last writer wins with a complete file.
        """
        path = self.key_path(spec)
        self.directory.mkdir(parents=True, exist_ok=True)
        # Suffix must stay ".npz": np.savez appends it otherwise and the
        # rename below would promote an empty placeholder file.
        handle, temp_name = tempfile.mkstemp(
            dir=self.directory, suffix=".tmp.npz"
        )
        os.close(handle)
        try:
            trace_io.save_traces(traces, temp_name)
            os.replace(temp_name, path)
        finally:
            if os.path.exists(temp_name):  # pragma: no cover - error path
                os.unlink(temp_name)
        registry = get_metrics()
        if registry is not None:
            registry.inc("trace_cache.store")
        return path

    def clear(self) -> int:
        """Delete every cache entry; returns the number removed."""
        if not self.directory.is_dir():
            return 0
        removed = 0
        for entry in self.directory.glob("*.npz"):
            entry.unlink()
            removed += 1
        return removed

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TraceCache({str(self.directory)!r})"


def default_trace_cache() -> Optional[TraceCache]:
    """The process-wide cache configured by ``REPRO_TRACE_CACHE``.

    Unset: a ``.trace_cache`` directory under the current working
    directory. Set to a path: that directory. Set to ``off``/``0``/empty:
    caching disabled (returns None).
    """
    configured = os.environ.get("REPRO_TRACE_CACHE")
    if configured is None:
        return TraceCache(DEFAULT_CACHE_DIR)
    if configured.strip().lower() in _DISABLED_VALUES:
        return None
    return TraceCache(configured)
