"""Persistent on-disk workload-trace cache.

Profiling a workload is deterministic in its
:class:`~repro.platforms.runspec.RunSpec` — the models are seeded and
the datasets synthetic — so traces can be profiled once and replayed by
every later harness invocation, in this process or any other. This
replaces the purely per-process ``lru_cache`` memoization that
``experiments.common`` used to rely on: worker processes of the
parallel harness and repeated CLI runs now share one cache.

Layout: one ``.npz`` per workload (the :mod:`repro.trace.io` format)
under the cache directory, named by an XXH32 digest of the key plus the
spec's human-readable stem::

    .trace_cache/GMN-Li_AIDS_p4_b4_s0_quick_v2_1a2b3c4d.npz

Entries are stored *uncompressed* and loaded through
:class:`~repro.trace.io.MmapNpzReader`, so a warm load maps the file
and touches no array bytes until a simulator does — deserialization of
cached traces used to dominate the warm harness. Legacy compressed
entries (same key) still load via the reader's per-member fallback.

Next to each trace file the cache keeps a *schedule sidecar*
(``<entry>.sched.npz``) persisting the window-schedule summaries and
EMF plan summaries a simulation run built for that workload. Warm runs
attach the sidecar to the loaded traces so the batched simulator skips
schedule construction and EMF filtering entirely — metric-free runs
only; with a metrics registry active the simulator rebuilds both so
deterministic counters are emitted exactly as computed. Both store
paths are deterministic functions of the spec, so a sidecar can never
disagree with its trace file.

Invalidation: the file name embeds the trace-format version, so a
format bump orphans old entries (they are ignored, never misread).
Delete the directory to drop the cache entirely; set
``REPRO_TRACE_CACHE=off`` (or ``0``) to disable caching, or point it at
an alternative directory.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
import zipfile
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..cgc.summary import ScheduleSummary, memoized_summaries, summary_key
from ..emf.filter import PlanSummary
from ..emf.xxhash import xxh32
from ..obs.metrics import get_metrics
from ..platforms.runspec import RunSpec
from ..trace import io as trace_io
from ..trace.profiler import BatchTrace

__all__ = ["TraceCache", "default_trace_cache", "DEFAULT_CACHE_DIR"]

DEFAULT_CACHE_DIR = ".trace_cache"
_DISABLED_VALUES = ("", "0", "off", "none", "disabled")

# Schema version of the schedule sidecar payload.
_SIDECAR_VERSION = 1


class TraceCache:
    """File-per-workload trace store with atomic writes, keyed by RunSpec."""

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)

    # ------------------------------------------------------------------
    def key_path(self, spec: RunSpec) -> Path:
        """The cache file for one workload spec."""
        stem = f"{spec.stem}_v{trace_io.FORMAT_VERSION}"
        digest = xxh32(stem.encode("utf-8"))
        safe = "".join(c if c.isalnum() or c in "._-" else "-" for c in stem)
        return self.directory / f"{safe}_{digest:08x}.npz"

    def sidecar_path(self, spec: RunSpec) -> Path:
        """The schedule-summary sidecar next to :meth:`key_path`."""
        entry = self.key_path(spec)
        return entry.with_name(entry.stem + ".sched.npz")

    def load(self, spec: RunSpec) -> Optional[List[BatchTrace]]:
        """The cached traces, or None on miss (or unreadable entry).

        Hits are memory-mapped and come back with the schedule sidecar
        (when present) attached to every pair trace.
        """
        path = self.key_path(spec)
        registry = get_metrics()
        if not path.is_file():
            if registry is not None:
                registry.inc("trace_cache.miss")
            return None
        start = time.perf_counter()
        try:
            traces = trace_io.load_traces(path, mmap=True)
        except (ValueError, KeyError, OSError, zipfile.BadZipFile):
            # Corrupt or stale-format entry: treat as a miss; the fresh
            # profile below overwrites it.
            if registry is not None:
                registry.inc("trace_cache.miss")
            return None
        self.load_schedules(spec, traces)
        if registry is not None:
            registry.inc("trace_cache.hit")
            registry.observe(
                "perf.trace_cache.load_seconds", time.perf_counter() - start
            )
        return traces

    def store(self, spec: RunSpec, traces: Sequence[BatchTrace]) -> Path:
        """Write traces atomically (temp file + rename) and return the path.

        Atomicity matters because parallel harness workers may race to
        populate the same entry; last writer wins with a complete file.
        """
        path = self.key_path(spec)
        self.directory.mkdir(parents=True, exist_ok=True)
        start = time.perf_counter()
        # Suffix must stay ".npz": np.savez appends it otherwise and the
        # rename below would promote an empty placeholder file.
        handle, temp_name = tempfile.mkstemp(
            dir=self.directory, suffix=".tmp.npz"
        )
        os.close(handle)
        try:
            trace_io.save_traces(traces, temp_name, compressed=False)
            os.replace(temp_name, path)
        finally:
            if os.path.exists(temp_name):  # pragma: no cover - error path
                os.unlink(temp_name)
        registry = get_metrics()
        if registry is not None:
            registry.inc("trace_cache.store")
            registry.observe(
                "perf.trace_cache.store_seconds", time.perf_counter() - start
            )
        return path

    # ------------------------------------------------------------------
    def store_schedules(
        self, spec: RunSpec, traces: Sequence[BatchTrace]
    ) -> Optional[Path]:
        """Persist the schedule/plan summaries a simulation built.

        Harvests each pair's summary memo and each layer's cached plan
        summary; returns None (writing nothing) when the traces carry no
        summaries yet — callers invoke this after simulating.
        """
        manifest: Dict = {
            "version": _SIDECAR_VERSION,
            "trace_format": trace_io.FORMAT_VERSION,
            "batches": [],
        }
        arrays: Dict[str, np.ndarray] = {}
        harvested = 0
        for b, batch_trace in enumerate(traces):
            batch_entry = []
            for p, pair_trace in enumerate(batch_trace.pair_traces):
                prefix = f"b{b}/p{p}"
                plans = []
                for i, layer in enumerate(pair_trace.layers):
                    plan_summary = layer._plan_summary
                    if plan_summary is None:
                        plans.append(None)
                        continue
                    arrays[f"{prefix}/l{i}/at"] = np.asarray(
                        plan_summary.target_actives, dtype=np.int64
                    )
                    arrays[f"{prefix}/l{i}/aq"] = np.asarray(
                        plan_summary.query_actives, dtype=np.int64
                    )
                    plans.append(
                        {
                            "fraction": plan_summary.remaining_fraction,
                            "unique": plan_summary.unique_matchings,
                        }
                    )
                    harvested += 1
                schedules = []
                for j, (key, summary) in enumerate(
                    memoized_summaries(pair_trace.pair).items()
                ):
                    scheme, capacity, actives_t, actives_q = key
                    arrays[f"{prefix}/s{j}"] = summary.to_array()
                    schedules.append(
                        {
                            "key": summary_key(
                                scheme, capacity, actives_t, actives_q
                            ),
                            "scheme": scheme,
                            "capacity": capacity,
                        }
                    )
                    harvested += 1
                batch_entry.append({"plans": plans, "schedules": schedules})
            manifest["batches"].append(batch_entry)
        if not harvested:
            return None
        arrays["manifest"] = np.array(json.dumps(manifest))
        path = self.sidecar_path(spec)
        self.directory.mkdir(parents=True, exist_ok=True)
        handle, temp_name = tempfile.mkstemp(
            dir=self.directory, suffix=".tmp.npz"
        )
        os.close(handle)
        try:
            np.savez(temp_name, **arrays)
            os.replace(temp_name, path)
        finally:
            if os.path.exists(temp_name):  # pragma: no cover - error path
                os.unlink(temp_name)
        registry = get_metrics()
        if registry is not None:
            registry.inc("trace_cache.sidecar_store")
        return path

    def load_schedules(
        self, spec: RunSpec, traces: Sequence[BatchTrace]
    ) -> bool:
        """Attach a sidecar's summaries to already-loaded traces.

        Returns whether anything was attached; unreadable or mismatched
        sidecars are ignored (the simulator just rebuilds on demand).
        """
        path = self.sidecar_path(spec)
        if not path.is_file():
            return False
        try:
            reader = trace_io.MmapNpzReader(path)
            manifest = json.loads(str(reader["manifest"]))
            if manifest.get("version") != _SIDECAR_VERSION:
                return False
            if manifest.get("trace_format") != trace_io.FORMAT_VERSION:
                return False
            batches = manifest["batches"]
            if len(batches) != len(traces):
                return False
            attached = False
            for b, batch_trace in enumerate(traces):
                if len(batches[b]) != len(batch_trace.pair_traces):
                    return False
                for p, pair_trace in enumerate(batch_trace.pair_traces):
                    prefix = f"b{b}/p{p}"
                    entry = batches[b][p]
                    plans = entry["plans"]
                    if len(plans) != len(pair_trace.layers):
                        return False
                    for i, plan_entry in enumerate(plans):
                        if plan_entry is None:
                            continue
                        pair_trace.layers[i]._plan_summary = PlanSummary(
                            tuple(reader[f"{prefix}/l{i}/at"].tolist()),
                            tuple(reader[f"{prefix}/l{i}/aq"].tolist()),
                            float(plan_entry["fraction"]),
                            int(plan_entry["unique"]),
                        )
                        attached = True
                    store: Dict[str, ScheduleSummary] = {}
                    for j, sched_entry in enumerate(entry["schedules"]):
                        store[str(sched_entry["key"])] = (
                            ScheduleSummary.from_array(
                                str(sched_entry["scheme"]),
                                int(sched_entry["capacity"]),
                                reader[f"{prefix}/s{j}"],
                            )
                        )
                    if store:
                        pair_trace._sched_store = store
                        attached = True
        except (ValueError, KeyError, OSError, zipfile.BadZipFile):
            return False
        registry = get_metrics()
        if registry is not None and attached:
            registry.inc("trace_cache.sidecar_hit")
        return attached

    def clear(self) -> int:
        """Delete every cache entry; returns the number removed."""
        if not self.directory.is_dir():
            return 0
        removed = 0
        for entry in self.directory.glob("*.npz"):
            entry.unlink()
            removed += 1
        return removed

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TraceCache({str(self.directory)!r})"


def default_trace_cache() -> Optional[TraceCache]:
    """The process-wide cache configured by ``REPRO_TRACE_CACHE``.

    Unset: a ``.trace_cache`` directory under the current working
    directory. Set to a path: that directory. Set to ``off``/``0``/empty:
    caching disabled (returns None).
    """
    configured = os.environ.get("REPRO_TRACE_CACHE")
    if configured is None:
        return TraceCache(DEFAULT_CACHE_DIR)
    if configured.strip().lower() in _DISABLED_VALUES:
        return None
    return TraceCache(configured)
