"""Performance layer: timing, trace caching, and parallel fan-out.

This package holds the infrastructure that makes the reproduction run
"as fast as the hardware allows":

- :mod:`repro.perf.timing` — wall-clock stage timers and the
  machine-readable ``BENCH_*.json`` report format.
- :mod:`repro.perf.trace_cache` — a persistent on-disk workload-trace
  cache (keyed by model/dataset/seed/pair-count/batch) so repeated
  harness invocations skip re-profiling entirely.
- :mod:`repro.perf.parallel` — a ``ProcessPoolExecutor`` runner that
  fans (model, dataset) workloads and graph-pair chunks across cores.
- :mod:`repro.perf.bench` — ``python -m repro.perf.bench``, the
  microbenchmark that records the scalar-vs-vectorized EMF and
  serial-vs-optimized harness speedups.
"""

from .timing import BenchReport, StageTimer, time_stage
from .trace_cache import TraceCache, default_trace_cache
from .parallel import (
    available_workers,
    parallel_simulate_workload,
    parallel_workload_results,
)

__all__ = [
    "BenchReport",
    "StageTimer",
    "time_stage",
    "TraceCache",
    "default_trace_cache",
    "available_workers",
    "parallel_simulate_workload",
    "parallel_workload_results",
]
