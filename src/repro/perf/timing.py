"""Wall-clock instrumentation and machine-readable bench reports.

Every performance claim in this repository is backed by a
``BENCH_<name>.json`` file written through :class:`BenchReport`, so the
perf trajectory can be tracked across revisions by diffing two JSON
files instead of re-reading log output.
"""

from __future__ import annotations

import json
import os
import platform
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Iterator, Optional, Union

__all__ = ["StageTimer", "time_stage", "BenchReport"]


class StageTimer:
    """Accumulates wall-clock seconds per named stage.

    Stages repeat (e.g. one ``profile`` entry per batch); the timer
    records totals and call counts so per-call averages can be derived.
    """

    def __init__(self) -> None:
        self.seconds: Dict[str, float] = {}
        self.calls: Dict[str, int] = {}

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.seconds[name] = self.seconds.get(name, 0.0) + elapsed
            self.calls[name] = self.calls.get(name, 0) + 1

    def record(self, name: str, seconds: float) -> None:
        self.seconds[name] = self.seconds.get(name, 0.0) + seconds
        self.calls[name] = self.calls.get(name, 0) + 1

    @property
    def total_seconds(self) -> float:
        return sum(self.seconds.values())

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        return {
            name: {"seconds": self.seconds[name], "calls": self.calls[name]}
            for name in sorted(self.seconds)
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        stages = ", ".join(
            f"{name}={self.seconds[name]:.3f}s" for name in sorted(self.seconds)
        )
        return f"StageTimer({stages})"


@contextmanager
def time_stage(timer: Optional[StageTimer], name: str) -> Iterator[None]:
    """`timer.stage(name)` that tolerates ``timer=None`` (no-op)."""
    if timer is None:
        yield
    else:
        with timer.stage(name):
            yield


class BenchReport:
    """One benchmark's machine-readable outcome.

    ``write()`` produces ``BENCH_<name>.json`` with a stable layout::

        {
          "name": ...,
          "platform": {"python": ..., "machine": ..., "cpus": ...},
          "provenance": {...},      # git sha, timestamp, metrics digest
          "config": {...},          # benchmark parameters
          "timings": {...},         # seconds per measured variant
          "speedups": {...},        # derived ratios
          "checks": {...}           # equivalence verdicts, counts, ...
        }

    The provenance stamp uses the same schema as RunReport baselines
    (see :mod:`repro.obs.provenance`), so a BENCH file can be matched to
    the baseline-store entries produced at the same commit.
    """

    def __init__(self, name: str, config: Optional[Dict] = None) -> None:
        self.name = name
        self.config: Dict = dict(config or {})
        self.timings: Dict[str, float] = {}
        self.speedups: Dict[str, float] = {}
        self.checks: Dict = {}

    def add_timing(self, variant: str, seconds: float) -> None:
        self.timings[variant] = float(seconds)

    def add_speedup(self, label: str, baseline: str, improved: str) -> None:
        missing = [
            variant
            for variant in (baseline, improved)
            if variant not in self.timings
        ]
        if missing:
            raise ValueError(
                f"speedup {label!r} references unrecorded timing variant(s) "
                f"{missing}; recorded: {sorted(self.timings)}"
            )
        slow = self.timings[baseline]
        fast = self.timings[improved]
        self.speedups[label] = float(slow / fast) if fast > 0 else float("inf")

    def as_dict(self) -> Dict:
        from ..obs.metrics import get_metrics
        from ..obs.provenance import make_stamp

        registry = get_metrics()
        return {
            "name": self.name,
            "platform": {
                "python": platform.python_version(),
                "machine": platform.machine(),
                "cpus": os.cpu_count() or 1,
            },
            "provenance": make_stamp(
                metrics=registry.as_dict() if registry is not None else None,
                generator=f"repro.perf.bench:{self.name}",
            ),
            "config": self.config,
            "timings": self.timings,
            "speedups": self.speedups,
            "checks": self.checks,
        }

    def write(self, directory: Union[str, Path] = ".") -> Path:
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"BENCH_{self.name}.json"
        with open(path, "w") as handle:
            json.dump(self.as_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        return path
