"""Wall-clock instrumentation and machine-readable bench reports.

Every performance claim in this repository is backed by a
``BENCH_<name>.json`` file written through :class:`BenchReport`, so the
perf trajectory can be tracked across revisions by diffing two JSON
files instead of re-reading log output.
"""

from __future__ import annotations

import json
import os
import platform
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Union

__all__ = [
    "StageTimer",
    "time_stage",
    "BenchReport",
    "BENCH_SCHEMA_VERSION",
    "SUPPORTED_BENCH_SCHEMA_VERSIONS",
]

# v1 (implicit — the key is absent from legacy files): name + platform +
# provenance + config + timings + speedups + checks, timings holding one
# aggregate (best-of) second count per variant. v2 adds "schema_version",
# "samples" (the raw per-repeat wall-clock readings each aggregate was
# derived from) and "repeats", so downstream comparison can run a real
# statistical test instead of a single-number ratio.
BENCH_SCHEMA_VERSION = 2
SUPPORTED_BENCH_SCHEMA_VERSIONS = (1, 2)


class StageTimer:
    """Accumulates wall-clock seconds per named stage.

    Stages repeat (e.g. one ``profile`` entry per batch); the timer
    records totals and call counts so per-call averages can be derived.
    """

    def __init__(self) -> None:
        self.seconds: Dict[str, float] = {}
        self.calls: Dict[str, int] = {}

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.seconds[name] = self.seconds.get(name, 0.0) + elapsed
            self.calls[name] = self.calls.get(name, 0) + 1

    def record(self, name: str, seconds: float) -> None:
        self.seconds[name] = self.seconds.get(name, 0.0) + seconds
        self.calls[name] = self.calls.get(name, 0) + 1

    @property
    def total_seconds(self) -> float:
        return sum(self.seconds.values())

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        return {
            name: {"seconds": self.seconds[name], "calls": self.calls[name]}
            for name in sorted(self.seconds)
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        stages = ", ".join(
            f"{name}={self.seconds[name]:.3f}s" for name in sorted(self.seconds)
        )
        return f"StageTimer({stages})"


@contextmanager
def time_stage(timer: Optional[StageTimer], name: str) -> Iterator[None]:
    """`timer.stage(name)` that tolerates ``timer=None`` (no-op)."""
    if timer is None:
        yield
    else:
        with timer.stage(name):
            yield


class BenchReport:
    """One benchmark's machine-readable outcome.

    ``write()`` produces ``BENCH_<name>.json`` with a stable layout::

        {
          "schema_version": 2,
          "name": ...,
          "platform": {"python": ..., "machine": ..., "cpus": ...},
          "provenance": {...},      # git sha, timestamp, metrics digest
          "config": {...},          # benchmark parameters
          "timings": {...},         # seconds per measured variant
          "samples": {...},         # raw per-repeat seconds per variant
          "repeats": ...,           # requested timing repeats
          "speedups": {...},        # derived ratios
          "checks": {...}           # equivalence verdicts, counts, ...
        }

    The provenance stamp uses the same schema as RunReport baselines
    (see :mod:`repro.obs.provenance`), so a BENCH file can be matched to
    the baseline-store entries produced at the same commit. Legacy (v1)
    payloads — no ``schema_version``, no ``samples`` — still load via
    :meth:`from_dict`, with the raw-sample sections empty.
    """

    def __init__(self, name: str, config: Optional[Dict] = None) -> None:
        self.name = name
        self.config: Dict = dict(config or {})
        self.timings: Dict[str, float] = {}
        self.samples: Dict[str, List[float]] = {}
        self.repeats: Optional[int] = None
        self.speedups: Dict[str, float] = {}
        self.checks: Dict = {}
        # Populated by from_dict so a loaded report round-trips with the
        # stamp it was written under instead of minting a fresh one.
        self._loaded_provenance: Optional[Dict] = None
        self._loaded_platform: Optional[Dict] = None

    def add_timing(
        self,
        variant: str,
        seconds: float,
        samples: Optional[Sequence[float]] = None,
    ) -> None:
        """Record a variant's aggregate seconds (and raw repeats).

        ``samples`` is the full list of per-repeat wall-clock readings
        the aggregate was derived from; retaining it lets consumers run
        median/MAD statistics instead of trusting one number.
        """
        self.timings[variant] = float(seconds)
        if samples is not None:
            self.samples[variant] = [float(value) for value in samples]

    def add_speedup(self, label: str, baseline: str, improved: str) -> None:
        missing = [
            variant
            for variant in (baseline, improved)
            if variant not in self.timings
        ]
        if missing:
            raise ValueError(
                f"speedup {label!r} references unrecorded timing variant(s) "
                f"{missing}; recorded: {sorted(self.timings)}"
            )
        slow = self.timings[baseline]
        fast = self.timings[improved]
        self.speedups[label] = float(slow / fast) if fast > 0 else float("inf")

    def as_dict(self) -> Dict:
        from ..obs.metrics import get_metrics
        from ..obs.provenance import make_stamp

        if self._loaded_provenance is not None:
            stamp = dict(self._loaded_provenance)
        else:
            registry = get_metrics()
            stamp = make_stamp(
                metrics=registry.as_dict() if registry is not None else None,
                generator=f"repro.perf.bench:{self.name}",
            )
        if self._loaded_platform is not None:
            host = dict(self._loaded_platform)
        else:
            host = {
                "python": platform.python_version(),
                "machine": platform.machine(),
                "cpus": os.cpu_count() or 1,
            }
        return {
            "schema_version": BENCH_SCHEMA_VERSION,
            "name": self.name,
            "platform": host,
            "provenance": stamp,
            "config": self.config,
            "timings": self.timings,
            "samples": {
                variant: list(values)
                for variant, values in self.samples.items()
            },
            "repeats": self.repeats,
            "speedups": self.speedups,
            "checks": self.checks,
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "BenchReport":
        """Load a ``BENCH_<name>.json`` payload (legacy v1 included).

        v1 files predate ``schema_version``/``samples``/``repeats``;
        they load with those sections empty. An unknown (newer) version
        is rejected loudly rather than misread.
        """
        if not isinstance(payload, dict):
            raise ValueError("BenchReport payload is not a JSON object")
        version = payload.get("schema_version", 1)
        if version not in SUPPORTED_BENCH_SCHEMA_VERSIONS:
            supported = ", ".join(
                str(v) for v in SUPPORTED_BENCH_SCHEMA_VERSIONS
            )
            raise ValueError(
                f"unsupported BenchReport schema version {version!r} "
                f"(this build supports versions {supported}; a newer "
                "version means the file was written by a newer repro — "
                "upgrade to read it)"
            )
        if "name" not in payload or "timings" not in payload:
            raise ValueError(
                "BenchReport payload is missing required key(s) "
                "'name'/'timings' — not a BENCH_*.json file?"
            )
        report = cls(str(payload["name"]), config=payload.get("config"))
        report.timings = {
            str(k): float(v) for k, v in payload["timings"].items()
        }
        report.samples = {
            str(k): [float(v) for v in values]
            for k, values in (payload.get("samples") or {}).items()
        }
        raw_repeats = payload.get("repeats")
        report.repeats = None if raw_repeats is None else int(raw_repeats)
        report.speedups = {
            str(k): float(v)
            for k, v in (payload.get("speedups") or {}).items()
        }
        report.checks = dict(payload.get("checks") or {})
        loaded_prov = payload.get("provenance")
        report._loaded_provenance = (
            dict(loaded_prov) if isinstance(loaded_prov, dict) else None
        )
        loaded_platform = payload.get("platform")
        report._loaded_platform = (
            dict(loaded_platform)
            if isinstance(loaded_platform, dict)
            else None
        )
        return report

    def write(self, directory: Union[str, Path] = ".") -> Path:
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"BENCH_{self.name}.json"
        with open(path, "w") as handle:
            json.dump(self.as_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        return path
