"""Microbenchmarks backing the repository's performance claims.

Run as ``python -m repro.perf.bench`` (add ``--quick`` for a fast
smoke-sized run). Two reports are written to the current directory:

- ``BENCH_emf.json`` — scalar vs. vectorized EMF: raw XXH32 hashing of
  an (N, D) feature matrix, and the full filter (Algorithm 1). The two
  backends are also checked for bit-identical tags and filter results,
  so the report certifies equivalence along with speed.
- ``BENCH_harness.json`` — the experiment harness on quick-mode
  workloads: per-query fresh profiling (the uncached path) vs. the
  cached harness with a cold and a warm on-disk trace cache, fanned
  across whatever cores the host offers. Results are checked identical
  between the cached and uncached paths.
- ``BENCH_search.json`` — a clone-search query stream served by the
  flat per-query loop vs. the staged serving pipeline (request dedup,
  sharded execution, candidate dedup), with queries/sec and p50/p99
  latency recorded and served rankings checked bit-identical.

Reports use the :class:`~repro.perf.timing.BenchReport` layout (schema
v2: aggregates plus raw per-repeat samples). Every run is additionally
appended to the append-only benchmark history store
(``results/obs/bench_history/``, see :mod:`repro.obs.history`) unless
``--no-history`` / ``REPRO_BENCH_HISTORY=off`` — the history is what
``repro obs bench compare|trend`` gate and chart, so the perf
trajectory survives the snapshot files being overwritten.
"""

from __future__ import annotations

import argparse
import logging
import os
import sys
import tempfile
import time
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..obs.logging import configure_logging
from .parallel import available_workers, parallel_workload_results
from .timing import BenchReport

__all__ = ["bench_emf", "bench_harness", "bench_search", "main"]


def _sample_times(repeats: int, func) -> List[float]:
    """Per-repeat wall-clock seconds, in call order.

    Callers keep the min as the headline aggregate (classic timeit
    discipline) but record the full list on the BenchReport, so the
    history analytics can run median/MAD statistics over real samples.
    """
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        func()
        samples.append(time.perf_counter() - start)
    return samples


def _best_of(repeats: int, func) -> float:
    """Min wall-clock over ``repeats`` calls (classic timeit discipline)."""
    return min(_sample_times(repeats, func))


def _duplicated_features(
    num_nodes: int, feature_dim: int, unique_rows: int, seed: int = 0
) -> np.ndarray:
    """A feature matrix with realistic duplication (the EMF's target)."""
    rng = np.random.default_rng(seed)
    base = rng.normal(size=(unique_rows, feature_dim))
    return base[rng.integers(0, unique_rows, size=num_nodes)]


def bench_emf(quick: bool = False, repeats: int = 3) -> BenchReport:
    """Scalar vs. vectorized EMF hashing and filtering."""
    from ..emf.filter import elastic_matching_filter
    from ..emf.xxhash import hash_feature_matrix, hash_feature_vector

    num_nodes = 1024 if quick else 4096
    feature_dim = 64
    unique_rows = max(1, num_nodes // 8)
    features = _duplicated_features(num_nodes, feature_dim, unique_rows)

    report = BenchReport(
        "emf",
        config={
            "num_nodes": num_nodes,
            "feature_dim": feature_dim,
            "unique_rows": unique_rows,
            "repeats": repeats,
            "quick": quick,
        },
    )
    report.repeats = repeats

    def hash_scalar() -> np.ndarray:
        return np.array(
            [hash_feature_vector(row) for row in features], dtype=np.uint32
        )

    def hash_vectorized() -> np.ndarray:
        return hash_feature_matrix(features)

    def timed(variant: str, func) -> None:
        samples = _sample_times(repeats, func)
        report.add_timing(variant, min(samples), samples)

    timed("hash_scalar", hash_scalar)
    timed("hash_vectorized", hash_vectorized)
    report.add_speedup("emf_hashing", "hash_scalar", "hash_vectorized")
    tags_equal = bool(np.array_equal(hash_scalar(), hash_vectorized()))

    # Filter timing uses the hardware-faithful XXH32 method — the path
    # the vectorized backend accelerates (the "bytes" method's dict loop
    # was never the bottleneck and keeps its scalar backend under auto).
    def filter_scalar():
        return elastic_matching_filter(
            features, method="xxhash", backend="scalar"
        )

    def filter_vectorized():
        return elastic_matching_filter(
            features, method="xxhash", backend="vectorized"
        )

    timed("filter_scalar", filter_scalar)
    timed("filter_vectorized", filter_vectorized)
    report.add_speedup("emf_filter", "filter_scalar", "filter_vectorized")

    scalar_result = filter_scalar()
    vector_result = filter_vectorized()
    report.checks = {
        "tags_identical": tags_equal,
        "record_sets_identical": scalar_result.record_set
        == vector_result.record_set,
        "tag_maps_identical": scalar_result.tag_map == vector_result.tag_map,
        "num_unique": scalar_result.num_unique,
    }
    return report


def _quick_workloads(quick: bool) -> List[Tuple[str, str]]:
    from ..experiments.common import DATASET_ORDER, MODEL_ORDER

    datasets = DATASET_ORDER[:2] if quick else DATASET_ORDER[:4]
    models = MODEL_ORDER[:1] if quick else MODEL_ORDER
    return [(model, dataset) for model in models for dataset in datasets]


def _results_signature(results) -> List[Tuple[str, str, float, int]]:
    """Order-independent fingerprint of a harness result mapping."""
    signature = []
    for (model, dataset), per_platform in sorted(results.items()):
        for platform, result in sorted(per_platform.items()):
            signature.append(
                (f"{model}/{dataset}", platform, result.cycles, result.num_pairs)
            )
    return signature


def bench_harness(
    quick: bool = False, workers: Optional[int] = None
) -> BenchReport:
    """Uncached serial harness vs. the cached (and parallel) harness."""
    from ..core.api import simulate_traces, simulate_workload
    from ..platforms import DEFAULT_PLATFORMS, RunSpec
    from ..experiments.common import (
        QUICK_BATCH,
        QUICK_PAIRS,
        clear_workload_caches,
        traces_for,
    )

    workloads = _quick_workloads(quick)
    platforms = DEFAULT_PLATFORMS
    workers = available_workers(workers)
    # The figure experiments (fig16/17/19/21/24 plus the ablations) each
    # query the same (model, dataset) workloads, so a harness run issues
    # several queries per workload. Four queries is still a conservative
    # model of that stream.
    queries = 4
    report = BenchReport(
        "harness",
        config={
            "workloads": [f"{m}/{d}" for m, d in workloads],
            "platforms": list(platforms),
            "num_pairs": QUICK_PAIRS,
            "batch_size": QUICK_BATCH,
            "workers": workers,
            "queries_per_workload": queries,
            "quick": quick,
        },
    )

    # Each harness pass is expensive, so every variant is timed once:
    # the samples list is the single reading, and the history gate's
    # ratio fallback (not the CI test) applies to this bench.
    report.repeats = 1

    def record_once(variant: str, seconds: float) -> None:
        report.add_timing(variant, seconds, [seconds])

    saved_env = os.environ.get("REPRO_TRACE_CACHE")
    try:
        # Baseline: every query re-profiles and re-simulates from
        # scratch on the per-pair "serial" engine backend (the
        # pre-caching, pre-batching behavior of one fresh process per
        # figure).
        os.environ["REPRO_TRACE_CACHE"] = "off"
        clear_workload_caches()
        start = time.perf_counter()
        for _ in range(queries):
            baseline = {
                (model, dataset): simulate_workload(
                    model,
                    dataset,
                    platforms,
                    num_pairs=QUICK_PAIRS,
                    batch_size=QUICK_BATCH,
                    seed=0,
                    backend="serial",
                )
                for model, dataset in workloads
            }
        record_once("serial_uncached", time.perf_counter() - start)

        def harness_pass():
            """One harness invocation: the same query stream, served by
            the memoized + disk-cached + parallel-capable runner."""
            for _ in range(queries):
                results = parallel_workload_results(
                    workloads,
                    platforms,
                    num_pairs=QUICK_PAIRS,
                    batch_size=QUICK_BATCH,
                    seed=0,
                    workers=workers,
                )
            return results

        with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as cache:
            os.environ["REPRO_TRACE_CACHE"] = cache

            # Cold cache: first harness invocation; profiles each
            # workload once, persists traces, and serves repeat queries
            # from the in-process memo.
            clear_workload_caches()
            start = time.perf_counter()
            cold = harness_pass()
            record_once("harness_cold_cache", time.perf_counter() - start)

            # Warm cache: a later harness invocation (fresh process —
            # emulated by dropping the in-process memos) replays traces
            # from disk instead of re-profiling.
            clear_workload_caches()
            start = time.perf_counter()
            warm = harness_pass()
            record_once("harness_warm_cache", time.perf_counter() - start)

            # Engine-level variants over the warm cache: identical
            # memory-mapped traces (schedule sidecar attached), simulated
            # once per backend. The batched backend consumes the array
            # summaries directly; the serial reference loop rebuilds its
            # window schedules per pair.
            backend_results = {}
            for backend in ("serial", "batched"):
                clear_workload_caches()
                per_spec = [
                    (
                        (model, dataset),
                        traces_for(
                            RunSpec.make(
                                model, dataset, QUICK_PAIRS, QUICK_BATCH, 0
                            )
                        ),
                    )
                    for model, dataset in workloads
                ]
                start = time.perf_counter()
                backend_results[backend] = {
                    workload: simulate_traces(
                        traces, platforms, backend=backend
                    )
                    for workload, traces in per_spec
                }
                record_once(
                    f"sim_warm_{backend}", time.perf_counter() - start
                )
    finally:
        if saved_env is None:
            os.environ.pop("REPRO_TRACE_CACHE", None)
        else:
            os.environ["REPRO_TRACE_CACHE"] = saved_env
        clear_workload_caches()

    report.add_speedup("harness_quick", "serial_uncached", "harness_warm_cache")
    report.add_speedup(
        "harness_cold", "serial_uncached", "harness_cold_cache"
    )
    report.add_speedup("sim_batched", "sim_warm_serial", "sim_warm_batched")
    report.checks = {
        "cold_matches_uncached": _results_signature(baseline)
        == _results_signature(cold),
        "warm_matches_uncached": _results_signature(baseline)
        == _results_signature(warm),
        "batched_matches_serial": _results_signature(
            backend_results["serial"]
        )
        == _results_signature(backend_results["batched"]),
        "num_workloads": len(workloads),
    }
    return report


def bench_search(
    quick: bool = False, repeats: int = 3, workers: Optional[int] = None
) -> BenchReport:
    """Flat per-query search loop vs. the staged serving pipeline.

    A clone-search scenario (Section III-A): the database is a clone
    database — ``database_unique`` distinct graphs cycled to
    ``database_size`` byte-identical entries — and the stream repeats
    hot queries, both of which the config records explicitly. The flat
    baseline is the pre-pipeline behaviour (one full scoring loop per
    request, no dedup, no batching); the pipeline serves the identical
    stream through admission → scheduling → sharded execution. The
    ``pipelined_matches_flat`` check asserts the served rankings are
    bit-identical to the flat loop's.

    A second scenario benchmarks sketch-gated candidate retrieval on a
    *unique-heavy* database (every entry distinct, so the executor's
    clone dedup cannot mask the pruning): the same pipeline serves the
    stream twice — flat retrieval vs. the EMF-sketch inverted index —
    and ``sketch_matches_flat`` asserts the gated rankings stay
    bit-identical while ``sketch_candidates_per_pass`` stays a strict
    subset of the pairs the flat path scores.
    """
    from ..graphs.datasets import generate_graph
    from ..graphs.pairs import substitute_edges
    from ..models import build_model
    from ..obs.metrics import metrics_enabled
    from ..search import SimilaritySearchIndex

    database_size = 64 if quick else 128
    database_unique = max(1, database_size // 4)
    num_queries = 16 if quick else 32
    distinct_queries = 4 if quick else 8
    top_k = 5

    rng = np.random.default_rng(0)
    unique = [generate_graph("AIDS", rng) for _ in range(database_unique)]
    database = [unique[i % database_unique] for i in range(database_size)]
    model = build_model("GMN-Li", input_dim=database[0].feature_dim, seed=0)
    index = SimilaritySearchIndex(model)
    index.add_many(database)
    distinct = []
    for position in range(distinct_queries):
        base = unique[int(rng.integers(database_unique))]
        distinct.append(
            base if position % 2 == 0 else substitute_edges(base, 2, rng)
        )
    stream = [
        distinct[int(rng.integers(distinct_queries))]
        for _ in range(num_queries)
    ]

    report = BenchReport(
        "search",
        config={
            "model": "GMN-Li",
            "dataset": "AIDS",
            "database_size": database_size,
            "database_unique": database_unique,
            "num_queries": num_queries,
            "distinct_queries": distinct_queries,
            "top_k": top_k,
            "workers": available_workers(workers),
            "repeats": repeats,
            "quick": quick,
        },
    )

    report.repeats = repeats

    def flat_pass():
        return [index._query_flat(graph, top_k) for graph in stream]

    flat_samples = _sample_times(repeats, flat_pass)
    report.add_timing("flat_per_query", min(flat_samples), flat_samples)

    pipeline = index.pipeline(workers=workers)

    def pipelined_pass():
        return pipeline.serve(stream, top_k)

    with metrics_enabled() as registry:
        serve_samples = _sample_times(repeats, pipelined_pass)
        report.add_timing(
            "serve_pipelined", min(serve_samples), serve_samples
        )
        served = pipelined_pass()
        latency = registry.histogram("search.serve.latency_seconds")
        passes = repeats + 1
        deduped_requests = (
            registry.counter("search.serve.deduped_requests") / passes
        )
        dedup_hits = (
            registry.counter("search.serve.candidate_dedup_hits") / passes
        )
    report.add_speedup("search_serve", "flat_per_query", "serve_pipelined")

    flat = flat_pass()
    matches = all(
        response is not None and list(response.results) == expected
        for response, expected in zip(served, flat)
    )

    # Scenario 2: sketch-gated retrieval over a unique-heavy database.
    # Per-query batches keep the scored set equal to each query's own
    # candidate set (a batch scores the union of its groups' sets, so
    # batching would blur the pruning being measured). recall_floor=0.6
    # is the empirically-gated setting at which the gated rankings are
    # bit-identical to flat on this workload — the same knob the
    # ``search.sketch_vs_flat`` check turns.
    from ..search.sketch import SketchConfig

    sketch_top_k = 3
    sketch_floor = 0.6
    sketch_rng = np.random.default_rng(1)
    sketch_db = [
        generate_graph("AIDS", sketch_rng) for _ in range(database_size)
    ]
    sketch_index = SimilaritySearchIndex(
        build_model("GMN-Li", input_dim=sketch_db[0].feature_dim, seed=0)
    )
    sketch_index.add_many(sketch_db)
    sketch_distinct = []
    for position in range(distinct_queries):
        base = sketch_db[int(sketch_rng.integers(database_size))]
        sketch_distinct.append(
            base
            if position % 2 == 0
            else substitute_edges(base, 2, sketch_rng)
        )
    sketch_stream = [
        sketch_distinct[int(sketch_rng.integers(distinct_queries))]
        for _ in range(num_queries)
    ]
    sketch_config = SketchConfig(
        min_candidates=sketch_top_k, recall_floor=sketch_floor
    )
    sketch_off = sketch_index.pipeline(max_batch_queries=1, workers=workers)
    sketch_on = sketch_index.pipeline(
        retrieval="sketch",
        sketch_config=sketch_config,
        max_batch_queries=1,
        workers=workers,
    )
    # Materialize the sketch store outside the timed region: building
    # it is a one-time indexing cost, not a per-query one.
    sketch_on.serve(sketch_stream[:1], sketch_top_k)

    def sketch_off_pass():
        return sketch_off.serve(sketch_stream, sketch_top_k)

    def sketch_on_pass():
        return sketch_on.serve(sketch_stream, sketch_top_k)

    off_samples = _sample_times(repeats, sketch_off_pass)
    report.add_timing("serve_sketch_off", min(off_samples), off_samples)
    candidates_before = sketch_on.retriever.candidates_retrieved
    on_samples = _sample_times(repeats, sketch_on_pass)
    report.add_timing("serve_sketch_on", min(on_samples), on_samples)
    served_sketch = sketch_on_pass()
    report.add_speedup("search_sketch", "serve_sketch_off", "serve_sketch_on")
    sketch_candidates_per_pass = (
        sketch_on.retriever.candidates_retrieved - candidates_before
    ) / (repeats + 1)
    sketch_pairs_flat = num_queries * database_size
    sketch_flat = [
        sketch_index._query_flat(graph, sketch_top_k)
        for graph in sketch_stream
    ]
    sketch_matches = all(
        response is not None and list(response.results) == expected
        for response, expected in zip(served_sketch, sketch_flat)
    )
    report.config["sketch_top_k"] = sketch_top_k
    report.config["sketch_recall_floor"] = sketch_floor

    report.checks = {
        "pipelined_matches_flat": matches,
        "sketch_matches_flat": sketch_matches,
        "sketch_candidates_per_pass": sketch_candidates_per_pass,
        "sketch_pairs_per_pass_flat": sketch_pairs_flat,
        "sketch_prunes_candidates": sketch_candidates_per_pass
        < sketch_pairs_flat,
        "flat_queries_per_second": num_queries
        / report.timings["flat_per_query"],
        "pipelined_queries_per_second": num_queries
        / report.timings["serve_pipelined"],
        "latency_p50_seconds": latency.quantile(0.5),
        "latency_p99_seconds": latency.quantile(0.99),
        "deduped_requests_per_pass": deduped_requests,
        "candidate_dedup_hits_per_pass": dedup_hits,
    }
    return report


def _resolve_history(history_dir: Optional[str], disabled: bool):
    """The BenchHistory to append runs to, or ``None`` when off.

    Resolution order: ``--no-history`` > ``--history-dir`` > the
    ``REPRO_BENCH_HISTORY`` env var > the default store location. The
    value ``off`` (flag or env) disables recording.
    """
    if disabled:
        return None
    target = history_dir
    if target is None:
        target = os.environ.get("REPRO_BENCH_HISTORY")
    if target is not None and target.strip().lower() == "off":
        return None
    from ..obs.history import BenchHistory

    return BenchHistory(target)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf.bench",
        description="EMF and harness microbenchmarks (writes BENCH_*.json)",
    )
    parser.add_argument(
        "--quick", action="store_true", help="smaller matrices and workloads"
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="timing repeats (min is kept)"
    )
    parser.add_argument(
        "--workers", type=int, default=None, help="harness worker processes"
    )
    parser.add_argument(
        "--output-dir", default=".", help="where BENCH_*.json are written"
    )
    parser.add_argument(
        "--only",
        choices=("emf", "harness", "search"),
        default=None,
        help="run a single benchmark",
    )
    parser.add_argument(
        "--history-dir",
        default=None,
        metavar="DIR",
        help="bench history store to append each run to (default "
        "results/obs/bench_history, or the REPRO_BENCH_HISTORY env "
        "var; 'off' disables recording)",
    )
    parser.add_argument(
        "--no-history",
        action="store_true",
        help="do not append this run to the bench history store",
    )
    args = parser.parse_args(argv)
    # Bench results are the command's whole point: log them at INFO.
    configure_logging(1)
    logger = logging.getLogger("repro.perf.bench")

    reports = []
    if args.only in (None, "emf"):
        reports.append(bench_emf(quick=args.quick, repeats=args.repeats))
    if args.only in (None, "harness"):
        reports.append(bench_harness(quick=args.quick, workers=args.workers))
    if args.only in (None, "search"):
        reports.append(
            bench_search(
                quick=args.quick, repeats=args.repeats, workers=args.workers
            )
        )

    history = _resolve_history(args.history_dir, args.no_history)
    failures = 0
    for report in reports:
        path = report.write(args.output_dir)
        logger.info("wrote %s", path)
        if history is not None:
            # Appending happens after all timing is done, so history
            # recording costs the benchmark nothing.
            entry, appended = history.append(report.as_dict())
            logger.info(
                "%s history entry %s to %s",
                "appended" if appended else "already recorded",
                entry.entry_id,
                history.path_for(entry.bench),
            )
        for label, value in report.speedups.items():
            logger.info("  %s: %.2fx", label, value)
        for label, value in report.checks.items():
            logger.info("  check %s: %s", label, value)
            # Boolean checks are equivalence assertions (batched vs
            # serial, cached vs uncached); a False one fails the run so
            # CI's bench smoke gates on them.
            if value is False:
                failures += 1
    if failures:
        logger.error("%d equivalence check(s) failed", failures)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    sys.exit(main())
