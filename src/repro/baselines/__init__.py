"""Comparison platforms: PyG-CPU, PyG-GPU software models.

The accelerator baselines (HyGCN, AWB-GCN) live in ``repro.sim`` because
they share the cycle-simulator substrate; this package holds the
software-platform latency models.
"""

from .base import SoftwarePlatformModel, pyg_cpu_model, pyg_gpu_model

__all__ = ["SoftwarePlatformModel", "pyg_cpu_model", "pyg_gpu_model"]
