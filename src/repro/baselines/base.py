"""Software platform models (PyG-CPU, PyG-GPU).

The paper's software baselines run PyTorch-Geometric implementations
(TorchScript, MKL/OpenMP on CPU; cuSPARSE/cuBLAS on the V100). We model
them with a two-term latency per pair:

``T = sum_layers(ops_per_layer * op_overhead) + total_flops / effective_flops``

The first term captures framework/kernel-dispatch overhead — GMN inference
launches many small kernels per layer, and the cross-graph stages run
per pair because pair sizes differ (this is why GPUs do so poorly on
small-graph batches: the paper's 353x gap is mostly dispatch-bound). The
second term uses a *sustained* effective throughput far below peak,
reflecting irregular sparse kernels, small matrices, and host-device
synchronization.

Calibration anchors (documented in EXPERIMENTS.md):

- Fig. 2: GMN-Li on 1000-node random pairs takes ~33 ms on the V100 and
  ~671 ms at 5000 nodes. With our GMN-Li workload this corresponds to a
  sustained ~120 GFLOP/s (about 1% of the V100's fp32 peak) plus ~20 us
  of dispatch per kernel.
- The paper's CPU:GPU latency ratio (3139x / 353x vs CEGMA) puts the
  CPU's sustained throughput roughly an order of magnitude below the
  GPU's, with heavier per-op dispatch.
"""

from __future__ import annotations

from typing import Sequence

from ..sim.engine import PlatformResult
from ..trace.profiler import BatchTrace

__all__ = ["SoftwarePlatformModel", "pyg_cpu_model", "pyg_gpu_model"]


class SoftwarePlatformModel:
    """Analytical latency/energy model of a software GMN implementation."""

    def __init__(
        self,
        name: str,
        effective_flops: float,
        op_overhead_seconds: float,
        ops_per_layer: int = 10,
        tdp_watts: float = 150.0,
    ) -> None:
        if effective_flops <= 0:
            raise ValueError("effective_flops must be positive")
        if op_overhead_seconds < 0 or ops_per_layer < 0:
            raise ValueError("overhead terms must be non-negative")
        self.name = name
        self.effective_flops = effective_flops
        self.op_overhead_seconds = op_overhead_seconds
        self.ops_per_layer = ops_per_layer
        self.tdp_watts = tdp_watts

    # ------------------------------------------------------------------
    def pair_latency_seconds(self, total_flops: float, num_layers: int) -> float:
        """Latency of one graph pair's inference."""
        dispatch = num_layers * self.ops_per_layer * self.op_overhead_seconds
        return dispatch + total_flops / self.effective_flops

    def simulate_batch(self, batch_trace: BatchTrace) -> PlatformResult:
        """Simulate one batch. Results use the PlatformResult container
        (frequency fixed at 1 GHz, cycles = nanoseconds) so software and
        accelerator results are directly comparable."""
        result = PlatformResult(self.name, 1e9)
        result.num_pairs = batch_trace.batch.batch_size
        seconds = 0.0
        for pair_trace in batch_trace.pair_traces:
            flops = pair_trace.total_flops.total
            seconds += self.pair_latency_seconds(flops, len(pair_trace.layers))
            result.macs += flops / 2.0
        result.cycles = seconds * 1e9
        result.energy_joules = self.tdp_watts * seconds
        return result

    def simulate_batches(
        self, batch_traces: Sequence[BatchTrace]
    ) -> PlatformResult:
        if not batch_traces:
            raise ValueError("need at least one batch")
        total = self.simulate_batch(batch_traces[0])
        for batch_trace in batch_traces[1:]:
            total.merge(self.simulate_batch(batch_trace))
        return total

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SoftwarePlatformModel({self.name!r})"


def pyg_cpu_model() -> SoftwarePlatformModel:
    """Dual 12-core Skylake Xeon running TorchScript PyG (Table III)."""
    return SoftwarePlatformModel(
        name="PyG-CPU",
        effective_flops=5e9,
        op_overhead_seconds=80e-6,
        ops_per_layer=10,
        tdp_watts=2 * 125.0,
    )


def pyg_gpu_model() -> SoftwarePlatformModel:
    """NVIDIA V100 running CUDA 10.1 PyG (Table III)."""
    return SoftwarePlatformModel(
        name="PyG-GPU",
        effective_flops=120e9,
        op_overhead_seconds=20e-6,
        ops_per_layer=10,
        tdp_watts=300.0,
    )
