"""Phase-categorized FLOP accounting shared by models and simulators.

Lives at the package root (rather than in ``repro.models``) because both
the model zoo and the trace records depend on it.
"""

from __future__ import annotations

from typing import Dict

__all__ = ["FlopCounter", "PHASES"]

PHASES = ("aggregate", "combine", "match", "other")


class FlopCounter:
    """Accumulates FLOPs per GMN phase.

    The paper's Fig. 3 splits one GMN layer's FLOPs into intra-graph
    aggregation, combination, and cross-graph matching; everything else
    (readout, CNNs, MLP heads) lands in ``other``.
    """

    __slots__ = ("counts",)

    def __init__(self) -> None:
        self.counts: Dict[str, int] = {phase: 0 for phase in PHASES}

    def add(self, phase: str, flops: int) -> None:
        if phase not in self.counts:
            raise KeyError(f"unknown phase {phase!r}; known: {PHASES}")
        self.counts[phase] += int(flops)

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def fraction(self, phase: str) -> float:
        total = self.total
        return self.counts[phase] / total if total else 0.0

    def merged(self, other: "FlopCounter") -> "FlopCounter":
        result = FlopCounter()
        for phase in PHASES:
            result.counts[phase] = self.counts[phase] + other.counts[phase]
        return result

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FlopCounter({self.counts})"
