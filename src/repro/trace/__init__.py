"""Trace-driven profiling: models emit traces, simulators consume them."""

from .events import LayerTrace, PairTrace
from .flops import layer_flop_breakdown, pair_flop_breakdown
from .io import load_traces, save_traces
from .profiler import BatchTrace, profile_batches, profile_pairs
from .summary import workload_summary

__all__ = [
    "LayerTrace",
    "PairTrace",
    "BatchTrace",
    "profile_pairs",
    "profile_batches",
    "layer_flop_breakdown",
    "pair_flop_breakdown",
    "save_traces",
    "load_traces",
    "workload_summary",
]
