"""Analytical FLOP accounting for one GMN layer (Fig. 3).

The paper quantifies the FLOP split of one GMN layer (GraphSim-style:
standard GCN embedding + dot-product matching, feature size 64) into
intra-graph aggregation, combination, and cross-graph matching.

Two accounting modes are provided:

- ``combine_includes_weights=True`` counts the dense ``X W`` transform in
  the combination phase (2*n*f_in*f_out FLOPs), the literal cost of a GCN
  layer.
- ``combine_includes_weights=False`` counts only the element-wise update
  (bias + activation, ~2*n*f), reproducing the paper's reported 58%-99%
  matching share. The paper's accounting evidently treats the shared
  dense transform separately from per-node combination work; we expose
  both modes and report both in the Fig. 3 experiment.
"""

from __future__ import annotations

from typing import Dict

from ..graphs.pairs import GraphPair

__all__ = ["layer_flop_breakdown", "pair_flop_breakdown"]


def layer_flop_breakdown(
    num_nodes_target: int,
    num_nodes_query: int,
    num_directed_edges_target: int,
    num_directed_edges_query: int,
    feature_dim: int = 64,
    combine_includes_weights: bool = True,
) -> Dict[str, int]:
    """FLOPs of one GMN layer over a graph pair, split per phase.

    Aggregation: one multiply-add per directed edge per feature.
    Combination: dense node transform (see module docstring for modes).
    Matching: the all-to-all similarity matrix, 2*n*m*f.
    """
    if feature_dim < 1:
        raise ValueError("feature_dim must be positive")
    total_edges = num_directed_edges_target + num_directed_edges_query
    total_nodes = num_nodes_target + num_nodes_query
    aggregate = 2 * total_edges * feature_dim
    if combine_includes_weights:
        combine = 2 * total_nodes * feature_dim * feature_dim
    else:
        combine = 2 * total_nodes * feature_dim
    match = 2 * num_nodes_target * num_nodes_query * feature_dim
    return {"aggregate": aggregate, "combine": combine, "match": match}


def pair_flop_breakdown(
    pair: GraphPair,
    feature_dim: int = 64,
    combine_includes_weights: bool = True,
) -> Dict[str, int]:
    """Convenience wrapper computing the layer breakdown for a GraphPair."""
    return layer_flop_breakdown(
        pair.target.num_nodes,
        pair.query.num_nodes,
        pair.target.num_edges,
        pair.query.num_edges,
        feature_dim,
        combine_includes_weights,
    )
