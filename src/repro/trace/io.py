"""Trace-file serialization.

The paper's methodology is explicitly file-based: "We first run the
GMNs on the CPU, and profile trace files ... Next, the simulator reads
these files". This module round-trips :class:`BatchTrace` lists through
a single compressed ``.npz`` file so workloads can be profiled once
(e.g. from a slow full-dataset run, or a different GMN framework per
the paper's note about TensorFlow) and simulated many times.

Format: one ``manifest`` JSON string describing the structure, plus one
array entry per tensor, keyed ``b{batch}/p{pair}/...``.
"""

from __future__ import annotations

import ast
import io
import json
import mmap as _mmap
import zipfile
from pathlib import Path
from typing import Dict, List, Sequence, Union

import numpy as np

from ..counters import PHASES, FlopCounter
from ..graphs.batch import GraphPairBatch
from ..graphs.graph import Graph
from ..graphs.pairs import GraphPair
from .events import LayerTrace, PairTrace
from .profiler import BatchTrace

__all__ = [
    "save_traces",
    "load_traces",
    "traces_to_npz_bytes",
    "traces_from_buffer",
    "MmapNpzReader",
    "FORMAT_VERSION",
]

# v1: graphs + per-layer features/flops. v2 adds the optional per-pair
# ``head_features`` vector so cached traces can feed head training.
FORMAT_VERSION = 2
_FORMAT_VERSION = FORMAT_VERSION  # backwards-compatible alias


def _graph_arrays(prefix: str, graph: Graph, arrays: Dict[str, np.ndarray]) -> Dict:
    arrays[f"{prefix}/edges"] = graph.edge_list()
    arrays[f"{prefix}/features"] = graph.node_features
    return {"num_nodes": graph.num_nodes}


def _layer_manifest(
    prefix: str, layer: LayerTrace, arrays: Dict[str, np.ndarray]
) -> Dict:
    arrays[f"{prefix}/target_features"] = layer.target_features
    arrays[f"{prefix}/query_features"] = layer.query_features
    return {
        "layer_index": layer.layer_index,
        "in_dim": layer.in_dim,
        "out_dim": layer.out_dim,
        "has_matching": layer.has_matching,
        "similarity": layer.similarity,
        "flops": layer.flops.counts,
    }


def save_traces(
    batch_traces: Sequence[BatchTrace],
    path: Union[str, Path],
    compressed: bool = True,
) -> None:
    """Serialize batch traces to an ``.npz`` file.

    ``compressed=False`` stores arrays raw (``ZIP_STORED``), which lets
    :class:`MmapNpzReader` map them back zero-copy — the trace cache's
    choice; distribution artifacts keep the compressed default.
    """
    arrays = _collect_arrays(batch_traces)
    if compressed:
        np.savez_compressed(Path(path), **arrays)
    else:
        np.savez(Path(path), **arrays)


def traces_to_npz_bytes(batch_traces: Sequence[BatchTrace]) -> bytes:
    """The uncompressed ``.npz`` serialization as in-memory bytes.

    Byte-for-byte the ``save_traces(..., compressed=False)`` file; used
    by :mod:`repro.perf.parallel` to publish traces into a shared-memory
    segment that workers read back with ``MmapNpzReader(buffer=...)``.
    """
    arrays = _collect_arrays(batch_traces)
    sink = io.BytesIO()
    np.savez(sink, **arrays)
    return sink.getvalue()


def _collect_arrays(
    batch_traces: Sequence[BatchTrace],
) -> Dict[str, np.ndarray]:
    """The flat ``{member: array}`` mapping (manifest included)."""
    if not batch_traces:
        raise ValueError("nothing to save")
    arrays: Dict[str, np.ndarray] = {}
    manifest: Dict = {"version": _FORMAT_VERSION, "batches": []}
    for b, batch_trace in enumerate(batch_traces):
        batch_entry: Dict = {"pairs": []}
        for p, trace in enumerate(batch_trace.pair_traces):
            prefix = f"b{b}/p{p}"
            pair_entry = {
                "model_name": trace.model_name,
                "score": trace.score,
                "matching_usage": trace.matching_usage,
                "label": trace.pair.label,
                "has_head_features": trace.head_features is not None,
                "readout_flops": trace.readout_flops.counts,
                "target": _graph_arrays(
                    f"{prefix}/target", trace.pair.target, arrays
                ),
                "query": _graph_arrays(
                    f"{prefix}/query", trace.pair.query, arrays
                ),
                "layers": [
                    _layer_manifest(f"{prefix}/l{i}", layer, arrays)
                    for i, layer in enumerate(trace.layers)
                ],
            }
            if trace.head_features is not None:
                arrays[f"{prefix}/head_features"] = trace.head_features
            batch_entry["pairs"].append(pair_entry)
        manifest["batches"].append(batch_entry)
    arrays["manifest"] = np.array(json.dumps(manifest))
    return arrays


def _counter_from(counts: Dict[str, int]) -> FlopCounter:
    counter = FlopCounter()
    for phase in PHASES:
        counter.counts[phase] = int(counts.get(phase, 0))
    return counter


def _graph_from(prefix: str, entry: Dict, data) -> Graph:
    edges = data[f"{prefix}/edges"]
    features = data[f"{prefix}/features"]
    return Graph(int(entry["num_nodes"]), edges, features)


class _BufferIO(io.RawIOBase):
    """Zero-copy read-only file interface over a bytes-like buffer.

    Lets :mod:`zipfile` parse an archive that lives in a shared-memory
    segment (or any buffer) without first copying it into a ``BytesIO``.
    """

    def __init__(self, buffer) -> None:
        self._buffer = buffer
        self._pos = 0

    def readable(self) -> bool:
        return True

    def seekable(self) -> bool:
        return True

    def seek(self, offset: int, whence: int = io.SEEK_SET) -> int:
        if whence == io.SEEK_SET:
            self._pos = offset
        elif whence == io.SEEK_CUR:
            self._pos += offset
        elif whence == io.SEEK_END:
            self._pos = len(self._buffer) + offset
        else:  # pragma: no cover - io contract
            raise ValueError(f"invalid whence {whence}")
        self._pos = max(0, self._pos)
        return self._pos

    def tell(self) -> int:
        return self._pos

    def readinto(self, target) -> int:
        chunk = self._buffer[self._pos : self._pos + len(target)]
        count = len(chunk)
        target[:count] = chunk
        self._pos += count
        return count


class MmapNpzReader:
    """Read-only ``.npz`` access returning views over one ``mmap``.

    ``np.load`` ignores ``mmap_mode`` for ``.npz`` archives: every
    member is read and decompressed eagerly. For uncompressed archives
    (``save_traces(..., compressed=False)``) each member's payload is a
    contiguous ``.npy`` byte range inside the zip, so this reader maps
    the whole file once and serves ``np.frombuffer`` views — no copy,
    no deserialization; pages fault in only when an array is actually
    touched (the "lazy per-batch materialization" the trace cache's
    warm path relies on). Compressed (legacy) members transparently
    fall back to an eager decompress of just that member.

    ``buffer=`` serves an archive that is already in memory — e.g. a
    shared-memory segment published by :mod:`repro.perf.parallel` — the
    same way, with arrays as zero-copy views into that buffer. The
    buffer must span exactly the archive (slice shared memory to the
    payload length; segments round up to a page).

    Arrays keep the mmap/buffer alive through their ``base`` reference,
    so the reader itself may be dropped as soon as loading finishes.
    """

    def __init__(
        self, path: Union[str, Path, None] = None, *, buffer=None
    ) -> None:
        if (path is None) == (buffer is None):
            raise ValueError("pass exactly one of path or buffer")
        if buffer is not None:
            self.path = None
            self._mmap = buffer
        else:
            self.path = Path(path)
            with open(self.path, "rb") as handle:
                self._mmap = _mmap.mmap(
                    handle.fileno(), 0, access=_mmap.ACCESS_READ
                )
        self._infos: Dict[str, zipfile.ZipInfo] = {}
        with self._open_archive() as archive:
            for info in archive.infolist():
                name = info.filename
                if name.endswith(".npy"):
                    name = name[:-4]
                self._infos[name] = info

    def _open_archive(self) -> zipfile.ZipFile:
        if self.path is not None:
            return zipfile.ZipFile(self.path)
        return zipfile.ZipFile(_BufferIO(self._mmap))

    def keys(self):
        return self._infos.keys()

    def __contains__(self, name: str) -> bool:
        return name in self._infos

    def __getitem__(self, name: str) -> np.ndarray:
        info = self._infos[name]
        if info.compress_type != zipfile.ZIP_STORED:
            # Legacy compressed entry: decompress just this member.
            with self._open_archive() as archive:
                payload = archive.read(info.filename)
            return np.load(io.BytesIO(payload), allow_pickle=False)
        # The central directory's header_offset points at the local file
        # header; its name/extra lengths (which differ from the central
        # ones) give the payload start.
        local = self._mmap[info.header_offset : info.header_offset + 30]
        if local[:4] != b"PK\x03\x04":
            raise ValueError(
                f"corrupt zip local header for {info.filename!r}"
            )
        name_len = int.from_bytes(local[26:28], "little")
        extra_len = int.from_bytes(local[28:30], "little")
        start = info.header_offset + 30 + name_len + extra_len
        return self._read_npy(start, info.file_size, info.filename)

    def _read_npy(self, start: int, size: int, member: str) -> np.ndarray:
        view = memoryview(self._mmap)[start : start + size]
        if bytes(view[:6]) != b"\x93NUMPY":
            raise ValueError(f"member {member!r} is not an npy array")
        major = view[6]
        if major == 1:
            header_len = int.from_bytes(view[8:10], "little")
            data_start = 10 + header_len
            header_bytes = bytes(view[10:data_start])
        else:
            header_len = int.from_bytes(view[8:12], "little")
            data_start = 12 + header_len
            header_bytes = bytes(view[12:data_start])
        header = ast.literal_eval(header_bytes.decode("latin1"))
        dtype = np.dtype(header["descr"])
        if dtype.hasobject:
            raise ValueError(f"member {member!r} requires pickle")
        shape = header["shape"]
        count = 1
        for dim in shape:
            count *= dim
        array = np.frombuffer(
            self._mmap, dtype=dtype, count=count, offset=start + data_start
        )
        order = "F" if header["fortran_order"] else "C"
        return array.reshape(shape, order=order)


def load_traces(
    path: Union[str, Path], mmap: bool = False
) -> List[BatchTrace]:
    """Load batch traces previously written by :func:`save_traces`.

    With ``mmap=True`` array payloads stay memory-mapped
    (:class:`MmapNpzReader`): structurally the traces are fully built,
    but feature pages are only read from disk when a simulator touches
    them. The returned arrays are read-only views in that mode.
    """
    if mmap:
        return _build_traces(MmapNpzReader(path))
    with np.load(Path(path), allow_pickle=False) as data:
        return _build_traces(data)


def traces_from_buffer(buffer) -> List[BatchTrace]:
    """Rebuild traces from an in-memory uncompressed ``.npz`` image.

    The counterpart of :func:`traces_to_npz_bytes`: arrays are zero-copy
    views into ``buffer``, which must stay alive (and unmodified) while
    the traces are in use.
    """
    return _build_traces(MmapNpzReader(buffer=buffer))


def _build_traces(data) -> List[BatchTrace]:
    manifest = json.loads(str(data["manifest"]))
    version = manifest.get("version")
    if version not in (1, FORMAT_VERSION):
        raise ValueError(
            f"unsupported trace format version {version}"
        )
    batch_traces: List[BatchTrace] = []
    for b, batch_entry in enumerate(manifest["batches"]):
        pairs: List[GraphPair] = []
        traces: List[PairTrace] = []
        for p, pair_entry in enumerate(batch_entry["pairs"]):
            prefix = f"b{b}/p{p}"
            target = _graph_from(
                f"{prefix}/target", pair_entry["target"], data
            )
            query = _graph_from(
                f"{prefix}/query", pair_entry["query"], data
            )
            label = pair_entry["label"]
            pair = GraphPair(
                target, query, None if label is None else int(label)
            )
            layers = [
                LayerTrace(
                    layer_index=int(entry["layer_index"]),
                    target_features=data[f"{prefix}/l{i}/target_features"],
                    query_features=data[f"{prefix}/l{i}/query_features"],
                    in_dim=int(entry["in_dim"]),
                    out_dim=int(entry["out_dim"]),
                    has_matching=bool(entry["has_matching"]),
                    similarity=entry["similarity"],
                    flops=_counter_from(entry["flops"]),
                )
                for i, entry in enumerate(pair_entry["layers"])
            ]
            head_features = None
            if pair_entry.get("has_head_features"):
                head_features = data[f"{prefix}/head_features"]
            trace = PairTrace(
                pair_entry["model_name"],
                pair,
                layers,
                _counter_from(pair_entry["readout_flops"]),
                float(pair_entry["score"]),
                pair_entry["matching_usage"],
                head_features=head_features,
            )
            pairs.append(pair)
            traces.append(trace)
        batch_traces.append(BatchTrace(GraphPairBatch(pairs), traces))
    return batch_traces
