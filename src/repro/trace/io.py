"""Trace-file serialization.

The paper's methodology is explicitly file-based: "We first run the
GMNs on the CPU, and profile trace files ... Next, the simulator reads
these files". This module round-trips :class:`BatchTrace` lists through
a single compressed ``.npz`` file so workloads can be profiled once
(e.g. from a slow full-dataset run, or a different GMN framework per
the paper's note about TensorFlow) and simulated many times.

Format: one ``manifest`` JSON string describing the structure, plus one
array entry per tensor, keyed ``b{batch}/p{pair}/...``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Sequence, Union

import numpy as np

from ..counters import PHASES, FlopCounter
from ..graphs.batch import GraphPairBatch
from ..graphs.graph import Graph
from ..graphs.pairs import GraphPair
from .events import LayerTrace, PairTrace
from .profiler import BatchTrace

__all__ = ["save_traces", "load_traces", "FORMAT_VERSION"]

# v1: graphs + per-layer features/flops. v2 adds the optional per-pair
# ``head_features`` vector so cached traces can feed head training.
FORMAT_VERSION = 2
_FORMAT_VERSION = FORMAT_VERSION  # backwards-compatible alias


def _graph_arrays(prefix: str, graph: Graph, arrays: Dict[str, np.ndarray]) -> Dict:
    arrays[f"{prefix}/edges"] = graph.edge_list()
    arrays[f"{prefix}/features"] = graph.node_features
    return {"num_nodes": graph.num_nodes}


def _layer_manifest(
    prefix: str, layer: LayerTrace, arrays: Dict[str, np.ndarray]
) -> Dict:
    arrays[f"{prefix}/target_features"] = layer.target_features
    arrays[f"{prefix}/query_features"] = layer.query_features
    return {
        "layer_index": layer.layer_index,
        "in_dim": layer.in_dim,
        "out_dim": layer.out_dim,
        "has_matching": layer.has_matching,
        "similarity": layer.similarity,
        "flops": layer.flops.counts,
    }


def save_traces(
    batch_traces: Sequence[BatchTrace], path: Union[str, Path]
) -> None:
    """Serialize batch traces to a compressed ``.npz`` file."""
    if not batch_traces:
        raise ValueError("nothing to save")
    arrays: Dict[str, np.ndarray] = {}
    manifest: Dict = {"version": _FORMAT_VERSION, "batches": []}
    for b, batch_trace in enumerate(batch_traces):
        batch_entry: Dict = {"pairs": []}
        for p, trace in enumerate(batch_trace.pair_traces):
            prefix = f"b{b}/p{p}"
            pair_entry = {
                "model_name": trace.model_name,
                "score": trace.score,
                "matching_usage": trace.matching_usage,
                "label": trace.pair.label,
                "has_head_features": trace.head_features is not None,
                "readout_flops": trace.readout_flops.counts,
                "target": _graph_arrays(
                    f"{prefix}/target", trace.pair.target, arrays
                ),
                "query": _graph_arrays(
                    f"{prefix}/query", trace.pair.query, arrays
                ),
                "layers": [
                    _layer_manifest(f"{prefix}/l{i}", layer, arrays)
                    for i, layer in enumerate(trace.layers)
                ],
            }
            if trace.head_features is not None:
                arrays[f"{prefix}/head_features"] = trace.head_features
            batch_entry["pairs"].append(pair_entry)
        manifest["batches"].append(batch_entry)
    arrays["manifest"] = np.array(json.dumps(manifest))
    np.savez_compressed(Path(path), **arrays)


def _counter_from(counts: Dict[str, int]) -> FlopCounter:
    counter = FlopCounter()
    for phase in PHASES:
        counter.counts[phase] = int(counts.get(phase, 0))
    return counter


def _graph_from(prefix: str, entry: Dict, data) -> Graph:
    edges = data[f"{prefix}/edges"]
    features = data[f"{prefix}/features"]
    return Graph(int(entry["num_nodes"]), map(tuple, edges.tolist()), features)


def load_traces(path: Union[str, Path]) -> List[BatchTrace]:
    """Load batch traces previously written by :func:`save_traces`."""
    with np.load(Path(path), allow_pickle=False) as data:
        manifest = json.loads(str(data["manifest"]))
        version = manifest.get("version")
        if version not in (1, FORMAT_VERSION):
            raise ValueError(
                f"unsupported trace format version {version}"
            )
        batch_traces: List[BatchTrace] = []
        for b, batch_entry in enumerate(manifest["batches"]):
            pairs: List[GraphPair] = []
            traces: List[PairTrace] = []
            for p, pair_entry in enumerate(batch_entry["pairs"]):
                prefix = f"b{b}/p{p}"
                target = _graph_from(
                    f"{prefix}/target", pair_entry["target"], data
                )
                query = _graph_from(
                    f"{prefix}/query", pair_entry["query"], data
                )
                label = pair_entry["label"]
                pair = GraphPair(
                    target, query, None if label is None else int(label)
                )
                layers = [
                    LayerTrace(
                        layer_index=int(entry["layer_index"]),
                        target_features=data[f"{prefix}/l{i}/target_features"],
                        query_features=data[f"{prefix}/l{i}/query_features"],
                        in_dim=int(entry["in_dim"]),
                        out_dim=int(entry["out_dim"]),
                        has_matching=bool(entry["has_matching"]),
                        similarity=entry["similarity"],
                        flops=_counter_from(entry["flops"]),
                    )
                    for i, entry in enumerate(pair_entry["layers"])
                ]
                head_features = None
                if pair_entry.get("has_head_features"):
                    head_features = data[f"{prefix}/head_features"]
                trace = PairTrace(
                    pair_entry["model_name"],
                    pair,
                    layers,
                    _counter_from(pair_entry["readout_flops"]),
                    float(pair_entry["score"]),
                    pair_entry["matching_usage"],
                    head_features=head_features,
                )
                pairs.append(pair)
                traces.append(trace)
            batch_traces.append(BatchTrace(GraphPairBatch(pairs), traces))
    return batch_traces
