"""Trace generation: run a GMN model over datasets and collect traces.

This is the software half of the paper's trace-driven methodology
(Section V-A): "We first run the GMNs on the CPU, and profile trace files
include node features, adjacency matrices, weights, and operations within
each layer of GMNs. Next, the simulator reads these files and then
simulates the execution."
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from ..graphs.batch import GraphPairBatch, make_batches
from ..graphs.pairs import GraphPair
from .events import PairTrace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (models use traces)
    from ..models.base import GMNModel

__all__ = ["BatchTrace", "profile_pairs", "profile_batches"]


class BatchTrace:
    """Traces for one batch of graph pairs, plus the batch itself.

    Platform simulators consume batches (CEGMA builds one global
    adjacency matrix per batch, Fig. 15), so traces are grouped at batch
    granularity.
    """

    __slots__ = ("batch", "pair_traces")

    def __init__(self, batch: GraphPairBatch, pair_traces: List[PairTrace]) -> None:
        if len(pair_traces) != batch.batch_size:
            raise ValueError("one trace per pair required")
        self.batch = batch
        self.pair_traces = pair_traces

    @property
    def model_name(self) -> str:
        return self.pair_traces[0].model_name

    @property
    def num_layers(self) -> int:
        return len(self.pair_traces[0].layers)

    @property
    def total_flops(self) -> Dict[str, int]:
        totals: Dict[str, int] = {}
        for trace in self.pair_traces:
            for phase, count in trace.total_flops.counts.items():
                totals[phase] = totals.get(phase, 0) + count
        return totals

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BatchTrace(model={self.model_name!r}, "
            f"batch_size={self.batch.batch_size})"
        )


def profile_pairs(model: "GMNModel", pairs: Sequence[GraphPair]) -> List[PairTrace]:
    """Run the model on each pair, returning one trace per pair."""
    return [model.forward_pair(pair) for pair in pairs]


def profile_batches(
    model: "GMNModel",
    pairs: Sequence[GraphPair],
    batch_size: int = 32,
    max_batches: Optional[int] = None,
) -> List[BatchTrace]:
    """Batch the pairs and trace every batch.

    ``max_batches`` caps the work for quick experiments; ``None`` traces
    the full set.
    """
    batches = make_batches(list(pairs), batch_size)
    if max_batches is not None:
        batches = batches[:max_batches]
    result = []
    for batch in batches:
        result.append(BatchTrace(batch, profile_pairs(model, batch.pairs)))
    return result
