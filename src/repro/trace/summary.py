"""Workload summaries: what a trace contains, at a glance.

Used by the CLI's ``describe`` subcommand and handy before committing to
a long simulation: pair counts, node/edge statistics, FLOPs per phase,
matching intensity.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from .profiler import BatchTrace

__all__ = ["workload_summary"]


def workload_summary(batch_traces: Sequence[BatchTrace]) -> Dict[str, float]:
    """Aggregate statistics over a profiled workload."""
    if not batch_traces:
        raise ValueError("empty workload")
    pair_traces = [
        trace for batch in batch_traces for trace in batch.pair_traces
    ]
    nodes = [trace.pair.total_nodes for trace in pair_traces]
    edges = [
        trace.pair.target.num_edges + trace.pair.query.num_edges
        for trace in pair_traces
    ]
    flops: Dict[str, float] = {}
    for trace in pair_traces:
        for phase, count in trace.total_flops.counts.items():
            flops[phase] = flops.get(phase, 0.0) + count
    total_flops = sum(flops.values())
    matchings = sum(trace.total_matching_pairs for trace in pair_traces)
    return {
        "model": batch_traces[0].model_name,
        "num_pairs": float(len(pair_traces)),
        "num_batches": float(len(batch_traces)),
        "num_layers": float(batch_traces[0].num_layers),
        "mean_nodes_per_pair": float(np.mean(nodes)),
        "mean_edges_per_pair": float(np.mean(edges)),
        "total_gflops": total_flops / 1e9,
        "match_flop_share": flops.get("match", 0.0) / total_flops
        if total_flops
        else 0.0,
        "total_matchings": float(matchings),
        "matching_usage": pair_traces[0].matching_usage,
    }
