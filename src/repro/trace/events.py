"""Trace record structures.

The CEGMA simulator is trace-driven (Section V-A): models run once on the
"CPU" (here: numpy) and emit a trace of per-layer node features, FLOP
counts, and matching activity. Every platform model (CEGMA, HyGCN,
AWB-GCN, PyG-CPU/GPU) consumes the same trace, which guarantees that
cross-platform comparisons are over identical workloads.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..graphs.pairs import GraphPair
from ..counters import FlopCounter

__all__ = ["LayerTrace", "PairTrace"]


class LayerTrace:
    """One GMN layer's workload for one graph pair.

    Attributes
    ----------
    layer_index:
        0-based layer number.
    target_features, query_features:
        Node features *entering* the layer (the features the matching
        stage of this layer reads, i.e. ``X^l`` / ``Y^l`` of Eq. 2).
    in_dim, out_dim:
        Feature dimensionality entering and leaving the layer.
    has_matching:
        Whether this layer performs cross-graph matching (every layer in
        layer-wise GMNs; only the last in SimGNN's model-wise matching).
    similarity:
        Similarity kind used if ``has_matching``.
    flops:
        Per-phase FLOP counts for this layer only.
    """

    __slots__ = (
        "layer_index",
        "target_features",
        "query_features",
        "in_dim",
        "out_dim",
        "has_matching",
        "similarity",
        "flops",
        "_matching_plan",
        "_plan_summary",
    )

    def __init__(
        self,
        layer_index: int,
        target_features: np.ndarray,
        query_features: np.ndarray,
        in_dim: int,
        out_dim: int,
        has_matching: bool,
        similarity: Optional[str],
        flops: FlopCounter,
    ) -> None:
        self.layer_index = layer_index
        self.target_features = target_features
        self.query_features = query_features
        self.in_dim = in_dim
        self.out_dim = out_dim
        self.has_matching = has_matching
        self.similarity = similarity
        self.flops = flops
        self._matching_plan = None
        # Cached PlanSummary (derived from the plan, or attached by the
        # trace-cache sidecar so warm runs skip the filter entirely).
        self._plan_summary = None

    def matching_plan(self):
        """Default-parameter EMF :class:`~repro.emf.filter.MatchingPlan`.

        Memoized on the trace: every platform simulator filters the same
        layer features, so the plan is computed once per layer and shared
        across all platforms/variants simulated from this trace.
        """
        if self._matching_plan is None:
            from ..emf.filter import MatchingPlan  # deferred: avoids cycle

            self._matching_plan = MatchingPlan.from_features(
                self.target_features, self.query_features
            )
        return self._matching_plan

    @property
    def num_matching_pairs(self) -> int:
        if not self.has_matching:
            return 0
        return self.target_features.shape[0] * self.query_features.shape[0]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LayerTrace(layer={self.layer_index}, in={self.in_dim}, "
            f"out={self.out_dim}, matching={self.has_matching})"
        )


class PairTrace:
    """Full trace of one model inference over one graph pair.

    ``matching_usage`` records how the model consumes similarity
    results: "writeback" (SimGNN, GraphSim — written to memory for a
    later stage) or "in-layer" (GMN-Li — consumed within the layer),
    which selects the Matching Controller's broadcast vs. on-chip-reuse
    mode (Section IV-D).
    """

    __slots__ = (
        "model_name",
        "pair",
        "layers",
        "readout_flops",
        "score",
        "matching_usage",
        "head_features",
        "_sched_store",
    )

    def __init__(
        self,
        model_name: str,
        pair: GraphPair,
        layers: List[LayerTrace],
        readout_flops: FlopCounter,
        score: float,
        matching_usage: str = "writeback",
        head_features: Optional[np.ndarray] = None,
    ) -> None:
        if matching_usage not in ("writeback", "in-layer"):
            raise ValueError(f"unknown matching_usage {matching_usage!r}")
        self.model_name = model_name
        self.pair = pair
        self.layers = layers
        self.readout_flops = readout_flops
        self.score = score
        self.matching_usage = matching_usage
        # Feature vector entering the prediction head; used to train
        # lightweight scoring heads on top of the (untrained) backbone.
        self.head_features = head_features
        # Optional {summary_key: ScheduleSummary} attached by the
        # trace-cache sidecar; consulted by the batched engine only for
        # metric-free runs (see repro.cgc.summary.schedule_summary_for).
        self._sched_store = None

    @property
    def total_flops(self) -> FlopCounter:
        total = self.readout_flops
        for layer in self.layers:
            total = total.merged(layer.flops)
        return total

    @property
    def num_matching_layers(self) -> int:
        return sum(1 for layer in self.layers if layer.has_matching)

    @property
    def total_matching_pairs(self) -> int:
        return sum(layer.num_matching_pairs for layer in self.layers)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PairTrace(model={self.model_name!r}, layers={len(self.layers)}, "
            f"score={self.score:.4f})"
        )
