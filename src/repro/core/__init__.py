"""High-level public API for the CEGMA reproduction."""

from .api import (
    DEFAULT_PLATFORMS,
    PLATFORM_BUILDERS,
    compare_platforms,
    filtered_similarity_matrix,
    simulate_traces,
    simulate_workload,
)

__all__ = [
    "PLATFORM_BUILDERS",
    "DEFAULT_PLATFORMS",
    "filtered_similarity_matrix",
    "simulate_workload",
    "simulate_traces",
    "compare_platforms",
]
