"""High-level public API.

Three entry points cover the common uses of this reproduction:

- :func:`filtered_similarity_matrix` — the EMF-accelerated software path:
  compute only unique rows/columns of the similarity matrix and
  broadcast, with exact (bit-identical) results. This is the paper's core
  idea usable as a plain library function.
- :func:`simulate_workload` — run a model over a dataset and simulate
  every requested platform on the identical trace; the engine behind all
  evaluation figures.
- :func:`compare_platforms` — the same, reduced to a speedup table.

Platform names are resolved through
:data:`repro.platforms.REGISTRY`, so every entry point accepts spec
strings (``"CEGMA@bandwidth_gbps=512"``) in addition to registered
names. The old ``PLATFORM_BUILDERS`` dict survives as a deprecated
read-only view over the registry.
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Callable, Dict, Iterator, Optional, Sequence

import numpy as np

from ..counters import FlopCounter
from ..emf.filter import MatchingPlan
from ..graphs.datasets import load_dataset
from ..models import build_model, similarity_matrix
from ..obs.tracing import span
from ..platforms import DEFAULT_PLATFORMS, REGISTRY, RunSpec
from ..platforms.registry import Platform
from ..sim import PlatformResult
from ..trace.profiler import BatchTrace, profile_batches

__all__ = [
    "PLATFORM_BUILDERS",
    "DEFAULT_PLATFORMS",
    "filtered_similarity_matrix",
    "simulate_workload",
    "simulate_traces",
    "compare_platforms",
    "serve_query_stream",
]


class _RegistryBuilders(Mapping):
    """Deprecated read-only dict view over the platform registry.

    Kept so downstream ``PLATFORM_BUILDERS[name]()`` /
    ``sorted(PLATFORM_BUILDERS)`` code keeps working; new code should
    use :data:`repro.platforms.REGISTRY` directly.
    """

    def __getitem__(self, name: str) -> Callable[[], Platform]:
        return REGISTRY.builder(name)

    def __iter__(self) -> Iterator[str]:
        return iter(REGISTRY.names())

    def __len__(self) -> int:
        return len(REGISTRY)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PLATFORM_BUILDERS(deprecated view of {REGISTRY!r})"


#: Deprecated: use ``repro.platforms.REGISTRY`` instead.
PLATFORM_BUILDERS = _RegistryBuilders()


def filtered_similarity_matrix(
    x: np.ndarray,
    y: np.ndarray,
    kind: str = "dot",
    flops: Optional[FlopCounter] = None,
) -> np.ndarray:
    """All-to-all similarity via the Elastic Matching Filter.

    Detects duplicate rows in ``x`` and ``y`` (Algorithm 1), computes the
    similarity of unique rows/columns only, and broadcasts to the full
    matrix. The result is exactly equal to
    :func:`repro.models.similarity_matrix` — the EMF is lossless — while
    the FLOPs recorded reflect only the unique workload.
    """
    plan = MatchingPlan.from_features(x, y)
    unique_x = x[plan.target_filter.unique_indices]
    unique_y = y[plan.query_filter.unique_indices]
    unique = similarity_matrix(unique_x, unique_y, kind, flops)
    return plan.broadcast(unique)


def simulate_traces(
    batch_traces: Sequence[BatchTrace],
    platforms: Sequence[str] = DEFAULT_PLATFORMS,
    backend: Optional[str] = None,
) -> Dict[str, PlatformResult]:
    """Simulate pre-profiled traces on each requested platform.

    Each entry of ``platforms`` may be a registered name or a spec
    string; results are keyed by the string exactly as requested.
    ``backend`` selects the accelerator-simulator execution strategy
    (``"batched"`` — the default — or the deprecated per-pair
    ``"serial"`` path, see :data:`repro.sim.engine.SIM_BACKENDS`);
    software platform models ignore it.
    """
    results: Dict[str, PlatformResult] = {}
    for platform in platforms:
        simulator = REGISTRY.build(platform)
        if backend is not None and hasattr(simulator, "backend"):
            # Only the accelerator simulators have an execution backend;
            # analytic software models (PyG-CPU/GPU) do not.
            simulator.backend = _validated_backend(backend)
        with span("simulate", platform=platform):
            results[platform] = simulator.simulate_batches(list(batch_traces))
    return results


def _validated_backend(backend: str) -> str:
    from ..sim.engine import SIM_BACKENDS

    if backend not in SIM_BACKENDS:
        raise ValueError(
            f"unknown simulation backend {backend!r}; "
            f"expected one of {SIM_BACKENDS}"
        )
    return backend


def simulate_workload(
    model_name: str,
    dataset_name: str,
    platforms: Sequence[str] = DEFAULT_PLATFORMS,
    num_pairs: int = 8,
    batch_size: int = 32,
    seed: int = 0,
    jobs: Optional[int] = None,
    backend: Optional[str] = None,
) -> Dict[str, PlatformResult]:
    """Profile a model on a dataset and simulate all platforms.

    This is the workhorse behind the evaluation figures: one trace per
    workload, shared by every platform, so comparisons are apples to
    apples. ``jobs`` > 1 splits the graph pairs into batch-aligned
    chunks and runs them across worker processes (see
    :mod:`repro.perf.parallel`); cycle counts are unchanged, merged
    float accumulators may differ from serial at the ulp level.
    ``backend`` is forwarded to :func:`simulate_traces`.
    """
    spec = RunSpec.make(model_name, dataset_name, num_pairs, batch_size, seed)
    if jobs is not None and jobs != 1:
        from ..perf.parallel import parallel_simulate_workload

        return parallel_simulate_workload(
            spec, platforms, workers=jobs, backend=backend
        )
    with span("profile", spec=spec.stem):
        pairs = load_dataset(
            spec.dataset, seed=spec.seed, num_pairs=spec.num_pairs
        )
        input_dim = pairs[0].target.feature_dim
        model = build_model(spec.model, input_dim=input_dim, seed=spec.seed)
        batch_traces = profile_batches(model, pairs, batch_size=spec.batch_size)
    return simulate_traces(batch_traces, platforms, backend=backend)


def compare_platforms(
    model_name: str,
    dataset_name: str,
    baseline: str = "PyG-CPU",
    platforms: Sequence[str] = DEFAULT_PLATFORMS,
    num_pairs: int = 8,
    batch_size: int = 32,
    seed: int = 0,
    jobs: Optional[int] = None,
) -> Dict[str, float]:
    """Speedup of every platform over the chosen baseline."""
    results = simulate_workload(
        model_name, dataset_name, platforms, num_pairs, batch_size, seed, jobs
    )
    if baseline not in results:
        raise KeyError(f"baseline {baseline!r} not among simulated platforms")
    reference = results[baseline].latency_seconds
    return {
        name: reference / result.latency_seconds
        for name, result in results.items()
    }


def serve_query_stream(
    model_name: str,
    dataset_name: str,
    num_queries: int = 16,
    database_size: int = 32,
    database_unique: Optional[int] = None,
    distinct_queries: Optional[int] = None,
    top_k: int = 5,
    policy: str = "fifo",
    max_batch_queries: int = 8,
    num_shards: Optional[int] = None,
    workers: Optional[int] = None,
    retrieval: str = "flat",
    max_queue_depth: int = 1024,
    timeout_seconds: Optional[float] = None,
    seed: int = 0,
    request_tracing: bool = False,
    window_seconds: Optional[float] = None,
    max_windows: int = 120,
    exemplar_slowest: int = 8,
    on_window=None,
) -> Dict[str, object]:
    """Drive a synthetic query stream through the serving pipeline.

    The scenario of Section III-A made executable: a graph database
    built from ``dataset_name``'s generator, a stream of clone-search
    queries (exact database members mixed with lightly perturbed
    variants, with hot queries repeating), served through the staged
    pipeline — admission, policy batching, sharded execution, ranking.

    ``database_unique`` models a clone database: the database holds
    that many distinct graphs, cycled to ``database_size`` entries
    (byte-identical clones, which the executor's candidate dedup
    collapses). Defaults to fully unique. ``distinct_queries`` bounds
    the number of distinct query graphs in the stream (defaults to
    ``min(num_queries, 8)``); repeats model hot queries and exercise
    the scheduler's request dedup.

    ``retrieval`` selects the execution scope per batch: ``"flat"``
    scores the whole database, ``"sketch"`` retrieves a candidate set
    from the EMF/WL MinHash index first (see
    :mod:`repro.search.sketch`) and reranks it exactly.

    Request-scoped telemetry is opt-in and layered: ``request_tracing``
    attaches a :class:`~repro.obs.context.RequestTracker` (per-request
    span trees, ``search.serve.budget_seconds{stage=...}``) and an
    :class:`~repro.obs.exemplars.ExemplarBuffer` keeping the
    ``exemplar_slowest`` slowest plus all expired requests;
    ``window_seconds`` attaches a
    :class:`~repro.obs.timeseries.TimeseriesRecorder` snapshotting
    counter rates and histogram p50/p99 each interval (``on_window``
    fires per closed window — e.g. a JSONL sink). Both are free when
    left off.

    Returns ``{"responses", "pipeline", "stats", "config"}`` — stats
    is the pipeline's counter/latency snapshot plus stream accounting
    (``served`` / ``rejected_submissions``). With tracing on, the
    result also carries ``tracker`` / ``exemplars``; with windowed
    recording, ``recorder`` and the closed ``windows`` (as dicts).
    """
    from ..graphs.datasets import generate_graph
    from ..graphs.pairs import substitute_edges
    from ..models import build_model
    from ..search import SimilaritySearchIndex

    if num_queries < 1:
        raise ValueError("num_queries must be >= 1")
    if database_size < 1:
        raise ValueError("database_size must be >= 1")
    if database_unique is None:
        database_unique = database_size
    database_unique = max(1, min(database_unique, database_size))
    if distinct_queries is None:
        distinct_queries = min(num_queries, 8)
    distinct_queries = max(1, min(distinct_queries, num_queries))

    rng = np.random.default_rng(seed)
    unique_graphs = [
        generate_graph(dataset_name, rng) for _ in range(database_unique)
    ]
    database = [
        unique_graphs[i % database_unique] for i in range(database_size)
    ]
    model = build_model(
        model_name, input_dim=database[0].feature_dim, seed=seed
    )
    index = SimilaritySearchIndex(model)
    index.add_many(database)

    distinct = []
    for position in range(distinct_queries):
        base = database[int(rng.integers(len(database)))]
        distinct.append(
            base if position % 2 == 0 else substitute_edges(base, 2, rng)
        )
    stream = [
        distinct[int(rng.integers(distinct_queries))]
        for _ in range(num_queries)
    ]

    tracker = exemplars = recorder = None
    if request_tracing:
        from ..obs.context import RequestTracker
        from ..obs.exemplars import ExemplarBuffer

        tracker = RequestTracker()
        exemplars = ExemplarBuffer(k_slowest=exemplar_slowest)
    if window_seconds is not None:
        from ..obs.timeseries import TimeseriesRecorder

        recorder = TimeseriesRecorder(
            interval_seconds=window_seconds,
            max_windows=max_windows,
            on_window=on_window,
        )

    pipeline = index.pipeline(
        policy=policy,
        max_batch_queries=max_batch_queries,
        max_queue_depth=max_queue_depth,
        num_shards=num_shards,
        workers=workers,
        retrieval=retrieval,
        tracker=tracker,
        recorder=recorder,
        exemplars=exemplars,
    )
    with span("serve.stream", queries=num_queries, database=database_size):
        responses = pipeline.serve(stream, top_k, timeout_seconds)
    if recorder is not None:
        # Close the tail window so short runs still produce output.
        recorder.maybe_snapshot(force=True)

    stats = pipeline.stats()
    stats["served"] = float(
        sum(1 for response in responses if response is not None and response.ok)
    )
    stats["rejected_submissions"] = float(
        sum(1 for response in responses if response is None)
    )
    outcome: Dict[str, object] = {
        "responses": responses,
        "pipeline": pipeline,
        "stats": stats,
    }
    if tracker is not None:
        outcome["tracker"] = tracker
        outcome["exemplars"] = exemplars
    if recorder is not None:
        outcome["recorder"] = recorder
        outcome["windows"] = recorder.window_dicts()
    outcome["config"] = {
        "model": model_name,
        "dataset": dataset_name,
        "num_queries": num_queries,
        "database_size": database_size,
        "database_unique": database_unique,
        "distinct_queries": distinct_queries,
        "top_k": top_k,
        "policy": str(policy),
        "retrieval": str(retrieval),
        "max_batch_queries": max_batch_queries,
        "seed": seed,
    }
    return outcome
