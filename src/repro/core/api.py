"""High-level public API.

Three entry points cover the common uses of this reproduction:

- :func:`filtered_similarity_matrix` — the EMF-accelerated software path:
  compute only unique rows/columns of the similarity matrix and
  broadcast, with exact (bit-identical) results. This is the paper's core
  idea usable as a plain library function.
- :func:`simulate_workload` — run a model over a dataset and simulate
  every requested platform on the identical trace; the engine behind all
  evaluation figures.
- :func:`compare_platforms` — the same, reduced to a speedup table.

Platform names are resolved through
:data:`repro.platforms.REGISTRY`, so every entry point accepts spec
strings (``"CEGMA@bandwidth_gbps=512"``) in addition to registered
names. The old ``PLATFORM_BUILDERS`` dict survives as a deprecated
read-only view over the registry.
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Callable, Dict, Iterator, Optional, Sequence

import numpy as np

from ..counters import FlopCounter
from ..emf.filter import MatchingPlan
from ..graphs.datasets import load_dataset
from ..models import build_model, similarity_matrix
from ..obs.tracing import span
from ..platforms import DEFAULT_PLATFORMS, REGISTRY, RunSpec
from ..platforms.registry import Platform
from ..sim import PlatformResult
from ..trace.profiler import BatchTrace, profile_batches

__all__ = [
    "PLATFORM_BUILDERS",
    "DEFAULT_PLATFORMS",
    "filtered_similarity_matrix",
    "simulate_workload",
    "simulate_traces",
    "compare_platforms",
]


class _RegistryBuilders(Mapping):
    """Deprecated read-only dict view over the platform registry.

    Kept so downstream ``PLATFORM_BUILDERS[name]()`` /
    ``sorted(PLATFORM_BUILDERS)`` code keeps working; new code should
    use :data:`repro.platforms.REGISTRY` directly.
    """

    def __getitem__(self, name: str) -> Callable[[], Platform]:
        return REGISTRY.builder(name)

    def __iter__(self) -> Iterator[str]:
        return iter(REGISTRY.names())

    def __len__(self) -> int:
        return len(REGISTRY)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PLATFORM_BUILDERS(deprecated view of {REGISTRY!r})"


#: Deprecated: use ``repro.platforms.REGISTRY`` instead.
PLATFORM_BUILDERS = _RegistryBuilders()


def filtered_similarity_matrix(
    x: np.ndarray,
    y: np.ndarray,
    kind: str = "dot",
    flops: Optional[FlopCounter] = None,
) -> np.ndarray:
    """All-to-all similarity via the Elastic Matching Filter.

    Detects duplicate rows in ``x`` and ``y`` (Algorithm 1), computes the
    similarity of unique rows/columns only, and broadcasts to the full
    matrix. The result is exactly equal to
    :func:`repro.models.similarity_matrix` — the EMF is lossless — while
    the FLOPs recorded reflect only the unique workload.
    """
    plan = MatchingPlan.from_features(x, y)
    unique_x = x[plan.target_filter.unique_indices]
    unique_y = y[plan.query_filter.unique_indices]
    unique = similarity_matrix(unique_x, unique_y, kind, flops)
    return plan.broadcast(unique)


def simulate_traces(
    batch_traces: Sequence[BatchTrace],
    platforms: Sequence[str] = DEFAULT_PLATFORMS,
    backend: Optional[str] = None,
) -> Dict[str, PlatformResult]:
    """Simulate pre-profiled traces on each requested platform.

    Each entry of ``platforms`` may be a registered name or a spec
    string; results are keyed by the string exactly as requested.
    ``backend`` selects the accelerator-simulator execution strategy
    (``"batched"`` — the default — or the deprecated per-pair
    ``"serial"`` path, see :data:`repro.sim.engine.SIM_BACKENDS`);
    software platform models ignore it.
    """
    results: Dict[str, PlatformResult] = {}
    for platform in platforms:
        simulator = REGISTRY.build(platform)
        if backend is not None and hasattr(simulator, "backend"):
            # Only the accelerator simulators have an execution backend;
            # analytic software models (PyG-CPU/GPU) do not.
            simulator.backend = _validated_backend(backend)
        with span("simulate", platform=platform):
            results[platform] = simulator.simulate_batches(list(batch_traces))
    return results


def _validated_backend(backend: str) -> str:
    from ..sim.engine import SIM_BACKENDS

    if backend not in SIM_BACKENDS:
        raise ValueError(
            f"unknown simulation backend {backend!r}; "
            f"expected one of {SIM_BACKENDS}"
        )
    return backend


def simulate_workload(
    model_name: str,
    dataset_name: str,
    platforms: Sequence[str] = DEFAULT_PLATFORMS,
    num_pairs: int = 8,
    batch_size: int = 32,
    seed: int = 0,
    jobs: Optional[int] = None,
    backend: Optional[str] = None,
) -> Dict[str, PlatformResult]:
    """Profile a model on a dataset and simulate all platforms.

    This is the workhorse behind the evaluation figures: one trace per
    workload, shared by every platform, so comparisons are apples to
    apples. ``jobs`` > 1 splits the graph pairs into batch-aligned
    chunks and runs them across worker processes (see
    :mod:`repro.perf.parallel`); cycle counts are unchanged, merged
    float accumulators may differ from serial at the ulp level.
    ``backend`` is forwarded to :func:`simulate_traces`.
    """
    spec = RunSpec.make(model_name, dataset_name, num_pairs, batch_size, seed)
    if jobs is not None and jobs != 1:
        from ..perf.parallel import parallel_simulate_workload

        return parallel_simulate_workload(
            spec, platforms, workers=jobs, backend=backend
        )
    with span("profile", spec=spec.stem):
        pairs = load_dataset(
            spec.dataset, seed=spec.seed, num_pairs=spec.num_pairs
        )
        input_dim = pairs[0].target.feature_dim
        model = build_model(spec.model, input_dim=input_dim, seed=spec.seed)
        batch_traces = profile_batches(model, pairs, batch_size=spec.batch_size)
    return simulate_traces(batch_traces, platforms, backend=backend)


def compare_platforms(
    model_name: str,
    dataset_name: str,
    baseline: str = "PyG-CPU",
    platforms: Sequence[str] = DEFAULT_PLATFORMS,
    num_pairs: int = 8,
    batch_size: int = 32,
    seed: int = 0,
    jobs: Optional[int] = None,
) -> Dict[str, float]:
    """Speedup of every platform over the chosen baseline."""
    results = simulate_workload(
        model_name, dataset_name, platforms, num_pairs, batch_size, seed, jobs
    )
    if baseline not in results:
        raise KeyError(f"baseline {baseline!r} not among simulated platforms")
    reference = results[baseline].latency_seconds
    return {
        name: reference / result.latency_seconds
        for name, result in results.items()
    }
