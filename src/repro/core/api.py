"""High-level public API.

Three entry points cover the common uses of this reproduction:

- :func:`filtered_similarity_matrix` — the EMF-accelerated software path:
  compute only unique rows/columns of the similarity matrix and
  broadcast, with exact (bit-identical) results. This is the paper's core
  idea usable as a plain library function.
- :func:`simulate_workload` — run a model over a dataset and simulate
  every requested platform on the identical trace; the engine behind all
  evaluation figures.
- :func:`compare_platforms` — the same, reduced to a speedup table.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..baselines import pyg_cpu_model, pyg_gpu_model
from ..counters import FlopCounter
from ..emf.filter import MatchingPlan
from ..graphs.datasets import load_dataset
from ..models import build_model, matching_flops, similarity_matrix
from ..sim import (
    AcceleratorSimulator,
    PlatformResult,
    awbgcn_config,
    cegma_cgc_only_config,
    cegma_config,
    cegma_emf_only_config,
    hygcn_config,
)
from ..trace.profiler import BatchTrace, profile_batches

__all__ = [
    "PLATFORM_BUILDERS",
    "filtered_similarity_matrix",
    "simulate_workload",
    "simulate_traces",
    "compare_platforms",
]


def _accelerator(config_factory):
    return lambda: AcceleratorSimulator(config_factory())


PLATFORM_BUILDERS = {
    "CEGMA": _accelerator(cegma_config),
    "CEGMA-EMF": _accelerator(cegma_emf_only_config),
    "CEGMA-CGC": _accelerator(cegma_cgc_only_config),
    "HyGCN": _accelerator(hygcn_config),
    "AWB-GCN": _accelerator(awbgcn_config),
    "PyG-CPU": pyg_cpu_model,
    "PyG-GPU": pyg_gpu_model,
}

DEFAULT_PLATFORMS = ("PyG-CPU", "PyG-GPU", "HyGCN", "AWB-GCN", "CEGMA")


def filtered_similarity_matrix(
    x: np.ndarray,
    y: np.ndarray,
    kind: str = "dot",
    flops: Optional[FlopCounter] = None,
) -> np.ndarray:
    """All-to-all similarity via the Elastic Matching Filter.

    Detects duplicate rows in ``x`` and ``y`` (Algorithm 1), computes the
    similarity of unique rows/columns only, and broadcasts to the full
    matrix. The result is exactly equal to
    :func:`repro.models.similarity_matrix` — the EMF is lossless — while
    the FLOPs recorded reflect only the unique workload.
    """
    plan = MatchingPlan.from_features(x, y)
    unique_x = x[plan.target_filter.unique_indices]
    unique_y = y[plan.query_filter.unique_indices]
    unique = similarity_matrix(unique_x, unique_y, kind, flops)
    return plan.broadcast(unique)


def simulate_traces(
    batch_traces: Sequence[BatchTrace],
    platforms: Sequence[str] = DEFAULT_PLATFORMS,
) -> Dict[str, PlatformResult]:
    """Simulate pre-profiled traces on each requested platform."""
    results: Dict[str, PlatformResult] = {}
    for platform in platforms:
        if platform not in PLATFORM_BUILDERS:
            raise KeyError(
                f"unknown platform {platform!r}; known: {sorted(PLATFORM_BUILDERS)}"
            )
        simulator = PLATFORM_BUILDERS[platform]()
        results[platform] = simulator.simulate_batches(list(batch_traces))
    return results


def simulate_workload(
    model_name: str,
    dataset_name: str,
    platforms: Sequence[str] = DEFAULT_PLATFORMS,
    num_pairs: int = 8,
    batch_size: int = 32,
    seed: int = 0,
    jobs: Optional[int] = None,
) -> Dict[str, PlatformResult]:
    """Profile a model on a dataset and simulate all platforms.

    This is the workhorse behind the evaluation figures: one trace per
    workload, shared by every platform, so comparisons are apples to
    apples. ``jobs`` > 1 splits the graph pairs into batch-aligned
    chunks and runs them across worker processes (see
    :mod:`repro.perf.parallel`); cycle counts are unchanged, merged
    float accumulators may differ from serial at the ulp level.
    """
    if jobs is not None and jobs != 1:
        from ..perf.parallel import parallel_simulate_workload

        return parallel_simulate_workload(
            model_name,
            dataset_name,
            platforms,
            num_pairs=num_pairs,
            batch_size=batch_size,
            seed=seed,
            workers=jobs,
        )
    pairs = load_dataset(dataset_name, seed=seed, num_pairs=num_pairs)
    input_dim = pairs[0].target.feature_dim
    model = build_model(model_name, input_dim=input_dim, seed=seed)
    batch_traces = profile_batches(model, pairs, batch_size=batch_size)
    return simulate_traces(batch_traces, platforms)


def compare_platforms(
    model_name: str,
    dataset_name: str,
    baseline: str = "PyG-CPU",
    platforms: Sequence[str] = DEFAULT_PLATFORMS,
    num_pairs: int = 8,
    batch_size: int = 32,
    seed: int = 0,
    jobs: Optional[int] = None,
) -> Dict[str, float]:
    """Speedup of every platform over the chosen baseline."""
    results = simulate_workload(
        model_name, dataset_name, platforms, num_pairs, batch_size, seed, jobs
    )
    if baseline not in results:
        raise KeyError(f"baseline {baseline!r} not among simulated platforms")
    reference = results[baseline].latency_seconds
    return {
        name: reference / result.latency_seconds
        for name, result in results.items()
    }
