"""Neural-network building blocks implemented in pure numpy.

Only inference is needed for the paper's evaluation (the accelerator runs
trained models), so layers implement forward passes with deterministic,
seed-controlled Glorot initialization standing in for trained weights.
Every layer tracks the floating-point operations it performs through a
:class:`FlopCounter`, categorized by GMN phase (aggregate / combine /
match / other), which feeds the Fig. 3 breakdown and the platform models.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..counters import FlopCounter

__all__ = [
    "FlopCounter",
    "Linear",
    "MLP",
    "GCNLayer",
    "NeuralTensorNetwork",
    "Conv2D",
    "relu",
    "sigmoid",
    "glorot",
]

def relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


def sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))


def glorot(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    """Glorot/Xavier uniform initialization."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


class Linear:
    """Affine transform ``x @ W + b``."""

    def __init__(self, in_dim: int, out_dim: int, rng: np.random.Generator) -> None:
        if in_dim < 1 or out_dim < 1:
            raise ValueError("dimensions must be positive")
        self.in_dim = in_dim
        self.out_dim = out_dim
        self.weight = glorot(rng, in_dim, out_dim)
        self.bias = np.zeros(out_dim)

    def forward(
        self, x: np.ndarray, flops: Optional[FlopCounter] = None, phase: str = "other"
    ) -> np.ndarray:
        if x.shape[-1] != self.in_dim:
            raise ValueError(
                f"expected input dim {self.in_dim}, got {x.shape[-1]}"
            )
        if flops is not None:
            rows = int(np.prod(x.shape[:-1]))
            flops.add(phase, 2 * rows * self.in_dim * self.out_dim)
        return x @ self.weight + self.bias


class MLP:
    """Multi-layer perceptron with ReLU between layers (none after last)."""

    def __init__(self, sizes: Sequence[int], rng: np.random.Generator) -> None:
        if len(sizes) < 2:
            raise ValueError("MLP needs at least input and output sizes")
        self.sizes = list(sizes)
        self.layers = [
            Linear(sizes[i], sizes[i + 1], rng) for i in range(len(sizes) - 1)
        ]

    @property
    def in_dim(self) -> int:
        return self.sizes[0]

    @property
    def out_dim(self) -> int:
        return self.sizes[-1]

    def forward(
        self, x: np.ndarray, flops: Optional[FlopCounter] = None, phase: str = "other"
    ) -> np.ndarray:
        for index, layer in enumerate(self.layers):
            x = layer.forward(x, flops, phase)
            if index + 1 < len(self.layers):
                x = relu(x)
        return x


class GCNLayer:
    """Standard GCN layer: ``sigma(A_hat X W)`` (Kipf & Welling).

    The aggregation (``A_hat X``) and combination (``X W`` + activation)
    phases are counted separately, matching the paper's Fig. 3 breakdown.
    """

    def __init__(self, in_dim: int, out_dim: int, rng: np.random.Generator) -> None:
        self.in_dim = in_dim
        self.out_dim = out_dim
        self.weight = glorot(rng, in_dim, out_dim)
        self.bias = np.zeros(out_dim)

    def forward(
        self,
        norm_adjacency: np.ndarray,
        x: np.ndarray,
        num_edges: int,
        flops: Optional[FlopCounter] = None,
        activation=relu,
    ) -> np.ndarray:
        """Apply the layer.

        ``num_edges`` is the number of directed edges in the underlying
        graph; aggregation FLOPs are counted sparsely (one multiply-add
        per edge per feature, plus the self loop), which is how every
        GNN accelerator in the paper executes the SpMM.
        """
        aggregated = norm_adjacency @ x
        if flops is not None:
            flops.add("aggregate", 2 * (num_edges + x.shape[0]) * self.in_dim)
            flops.add("combine", 2 * x.shape[0] * self.in_dim * self.out_dim)
        return activation(aggregated @ self.weight + self.bias)


class NeuralTensorNetwork:
    """SimGNN's NTN: scores interaction of two graph-level embeddings.

    ``g(h1, h2) = relu(h1^T W[k] h2 + V [h1; h2] + b)`` with ``k`` slices.
    """

    def __init__(self, dim: int, slices: int, rng: np.random.Generator) -> None:
        self.dim = dim
        self.slices = slices
        self.tensor = glorot(rng, dim, dim * slices).reshape(dim, dim, slices)
        self.linear = glorot(rng, 2 * dim, slices)
        self.bias = np.zeros(slices)

    def forward(
        self,
        h1: np.ndarray,
        h2: np.ndarray,
        flops: Optional[FlopCounter] = None,
    ) -> np.ndarray:
        if h1.shape != (self.dim,) or h2.shape != (self.dim,):
            raise ValueError("NTN expects graph-level vectors of the right dim")
        bilinear = np.einsum("i,ijk,j->k", h1, self.tensor, h2)
        concat = np.concatenate([h1, h2])
        if flops is not None:
            flops.add("other", 2 * self.dim * self.dim * self.slices)
            flops.add("other", 2 * 2 * self.dim * self.slices)
        return relu(bilinear + concat @ self.linear + self.bias)


class Conv2D:
    """Minimal 3x3 same-padding convolution with optional 2x2 max-pool.

    Used by GraphSim's CNN stages over (padded) similarity matrices. The
    implementation favours clarity over speed; similarity matrices are
    resized to a small fixed extent before convolution.
    """

    KERNEL = 3

    def __init__(
        self, in_channels: int, out_channels: int, rng: np.random.Generator
    ) -> None:
        self.in_channels = in_channels
        self.out_channels = out_channels
        fan_in = in_channels * self.KERNEL * self.KERNEL
        limit = np.sqrt(6.0 / (fan_in + out_channels))
        self.weight = rng.uniform(
            -limit, limit, size=(out_channels, in_channels, self.KERNEL, self.KERNEL)
        )
        self.bias = np.zeros(out_channels)

    def forward(
        self,
        x: np.ndarray,
        flops: Optional[FlopCounter] = None,
        pool: bool = True,
    ) -> np.ndarray:
        """``x`` has shape (in_channels, H, W); returns (out_channels, H', W')."""
        if x.ndim != 3 or x.shape[0] != self.in_channels:
            raise ValueError(
                f"expected ({self.in_channels}, H, W) input, got {x.shape}"
            )
        channels, height, width = x.shape
        padded = np.pad(x, ((0, 0), (1, 1), (1, 1)))
        # im2col: gather 3x3 patches.
        patches = np.empty((height * width, channels * 9))
        idx = 0
        for i in range(height):
            for j in range(width):
                patches[idx] = padded[:, i : i + 3, j : j + 3].ravel()
                idx += 1
        kernel = self.weight.reshape(self.out_channels, -1).T
        out = relu(patches @ kernel + self.bias)
        out = out.T.reshape(self.out_channels, height, width)
        if flops is not None:
            flops.add("other", 2 * height * width * channels * 9 * self.out_channels)
        if pool and height >= 2 and width >= 2:
            h2, w2 = height // 2, width // 2
            out = out[:, : h2 * 2, : w2 * 2]
            out = out.reshape(self.out_channels, h2, 2, w2, 2).max(axis=(2, 4))
        return out
