"""Configurable GMN for extension studies.

The paper evaluates three fixed models; CEGMA itself is
model-agnostic — it only needs per-layer features and a matching stage.
``CustomGMN`` lets users compose their own: any layer count, hidden
width, similarity kind, layer-wise or model-wise matching, optional
GMN-Li-style cross-graph attention messages. Traces from custom models
drive all simulators and experiments exactly like the Table I models,
so questions such as "how does CEGMA's gain scale with matching depth?"
become one-liners (see ``tests/models/test_custom.py``).
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..graphs.interop import propagation_matrix
from ..graphs.pairs import GraphPair
from ..trace.events import LayerTrace
from .base import GMNModel
from .layers import MLP, FlopCounter, GCNLayer, Linear, sigmoid
from .similarity import SIMILARITY_KINDS, cross_graph_attention

__all__ = ["CustomGMN"]


class CustomGMN(GMNModel):
    """A GCN-backbone GMN with configurable matching.

    Parameters
    ----------
    num_layers, hidden_dim:
        Backbone shape (GCN layers, all ``hidden_dim`` wide).
    similarity:
        Matching similarity kind.
    matching_mode:
        "layer-wise" or "model-wise".
    cross_messages:
        When True, each matching layer feeds the attention-weighted
        cross-graph message back into the node update (GMN-Li style,
        update MLP over ``[x, mu]``); when False matching results are
        written out only (SimGNN/GraphSim style).
    """

    def __init__(
        self,
        input_dim: int = 1,
        hidden_dim: int = 64,
        num_layers: int = 3,
        similarity: str = "dot",
        matching_mode: str = "layer-wise",
        cross_messages: bool = False,
        seed: int = 0,
        use_emf: bool = False,
    ) -> None:
        if similarity not in SIMILARITY_KINDS:
            raise ValueError(
                f"unknown similarity {similarity!r}; known: {SIMILARITY_KINDS}"
            )
        super().__init__(
            name=f"CustomGMN({num_layers}x{hidden_dim},{similarity})",
            similarity=similarity,
            matching_mode=matching_mode,
            num_layers=num_layers,
            hidden_dim=hidden_dim,
            seed=seed,
            matching_usage="in-layer" if cross_messages else "writeback",
            use_emf=use_emf,
        )
        self.input_dim = input_dim
        self.cross_messages = cross_messages
        rng = self._rng
        dims = [input_dim] + [hidden_dim] * num_layers
        self.gcn_layers = [
            GCNLayer(dims[i], dims[i + 1], rng) for i in range(num_layers)
        ]
        if cross_messages:
            self.update_mlps = [
                MLP([2 * hidden_dim, hidden_dim], rng)
                for _ in range(num_layers)
            ]
        self.readout = Linear(hidden_dim, hidden_dim, rng)

    # ------------------------------------------------------------------
    def forward_pair(self, pair: GraphPair):
        target, query = pair.target, pair.query
        if target.feature_dim != self.input_dim or query.feature_dim != self.input_dim:
            raise ValueError(
                f"{self.name} was built for input dim {self.input_dim}, got "
                f"{target.feature_dim}/{query.feature_dim}"
            )
        norm_t = propagation_matrix(target)
        norm_q = propagation_matrix(query)
        x, y = target.node_features, query.node_features

        layer_traces: List[LayerTrace] = []
        readout_flops = FlopCounter()
        for index, gcn in enumerate(self.gcn_layers):
            flops = FlopCounter()
            x = gcn.forward(norm_t, x, target.num_edges, flops)
            y = gcn.forward(norm_q, y, query.num_edges, flops)
            has_matching = self.layer_has_matching(index)
            if has_matching:
                similarity = self._similarity(x, y, self.similarity, flops)
                if self.cross_messages:
                    mu_target = cross_graph_attention(x, y, similarity, flops)
                    mu_query = cross_graph_attention(
                        y, x, similarity.T, flops
                    )
                    x = self.update_mlps[index].forward(
                        np.concatenate([x, mu_target], axis=1),
                        flops,
                        phase="combine",
                    )
                    y = self.update_mlps[index].forward(
                        np.concatenate([y, mu_query], axis=1),
                        flops,
                        phase="combine",
                    )
            layer_traces.append(
                LayerTrace(
                    layer_index=index,
                    target_features=x.copy(),
                    query_features=y.copy(),
                    in_dim=gcn.in_dim,
                    out_dim=self.hidden_dim,
                    has_matching=has_matching,
                    similarity=self.similarity if has_matching else None,
                    flops=flops,
                )
            )

        h_target = self.readout.forward(x.mean(axis=0), readout_flops)
        h_query = self.readout.forward(y.mean(axis=0), readout_flops)
        distance = float(np.linalg.norm(h_target - h_query))
        score = 1.0 / (1.0 + distance)
        head_features = np.concatenate(
            [np.abs(h_target - h_query), h_target * h_query]
        )
        return self._make_trace(
            pair, layer_traces, readout_flops, score, head_features=head_features
        )
