"""End-to-end trainable Graph Matching Network.

A Siamese GCN with optional GMN-Li-style cross-graph messages, built on
the minimal autodiff engine, trainable on the paper's similar/dissimilar
task (1 vs 4 substituted edges). Purpose: back the accuracy-side claims
with gradients instead of frozen random weights —

- "GMNs effectively improve the inference accuracy" (abstract): both
  variants train well above chance on the similar/dissimilar task;
- "layer-wise node matching ... yields better accuracy" (Section II):
  ``cross_messages`` toggles layer-wise matching. At this harness's
  scale (tiny models, dozens of pairs, full-batch Adam) the layer-wise
  *advantage* is within seed noise — resolving it needs larger-scale
  training than a test suite should run; we report what we measure.

Kept deliberately small (one hidden width, sum-readout, interaction
head) — this is an accuracy harness, not a performance-traced model;
for simulation traces use the inference zoo in ``repro.models``.
"""

from __future__ import annotations

import logging
from typing import List, Sequence

import numpy as np

from ..graphs.graph import Graph
from ..graphs.pairs import GraphPair
from .autograd import Tensor, bce_loss, concat

__all__ = ["TrainableGMN"]

logger = logging.getLogger("repro.models.trainable")


class TrainableGMN:
    """Trainable Siamese GCN with optional cross-graph matching.

    Parameters
    ----------
    input_dim, hidden_dim, num_layers:
        Backbone shape.
    cross_messages:
        When True, every layer computes the cross-graph attention
        message (softmax over dot-product similarities) and concatenates
        it into the node update — layer-wise matching. When False the
        two towers never interact until the readout — the model-wise
        extreme.
    """

    def __init__(
        self,
        input_dim: int = 1,
        hidden_dim: int = 16,
        num_layers: int = 2,
        cross_messages: bool = True,
        seed: int = 0,
    ) -> None:
        if num_layers < 1:
            raise ValueError("need at least one layer")
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        self.num_layers = num_layers
        self.cross_messages = cross_messages
        rng = np.random.default_rng(seed)

        def parameter(fan_in, fan_out):
            limit = np.sqrt(6.0 / (fan_in + fan_out))
            return Tensor(
                rng.uniform(-limit, limit, size=(fan_in, fan_out)),
                requires_grad=True,
            )

        update_in = 2 * hidden_dim if cross_messages else hidden_dim
        self.parameters: List[Tensor] = []
        self.encoder = parameter(input_dim, hidden_dim)
        self.layer_weights = [
            parameter(update_in, hidden_dim) for _ in range(num_layers)
        ]
        self.head = parameter(2 * hidden_dim, 1)
        self.parameters = [self.encoder, *self.layer_weights, self.head]

    # ------------------------------------------------------------------
    def _forward_logit(self, pair: GraphPair) -> Tensor:
        prop_t = pair.target.normalized_adjacency()
        prop_q = pair.query.normalized_adjacency()
        h_t = Tensor(pair.target.node_features) @ self.encoder
        h_q = Tensor(pair.query.node_features) @ self.encoder
        for weight in self.layer_weights:
            agg_t = prop_t @ h_t
            agg_q = prop_q @ h_q
            if self.cross_messages:
                similarity = h_t @ h_q.T
                mu_t = similarity.softmax_rows() @ h_q
                mu_q = similarity.T.softmax_rows() @ h_t
                agg_t = concat([agg_t, mu_t], axis=1)
                agg_q = concat([agg_q, mu_q], axis=1)
            h_t = (agg_t @ weight).relu()
            h_q = (agg_q @ weight).relu()
        g_t = h_t.mean_rows(keepdims=True)
        g_q = h_q.mean_rows(keepdims=True)
        interaction = concat([(g_t - g_q).abs(), g_t * g_q], axis=1)
        return (interaction @ self.head).sum()

    # ------------------------------------------------------------------
    def score_pair(self, pair: GraphPair) -> float:
        """Probability the pair is similar."""
        logit = self._forward_logit(pair)
        return float(logit.sigmoid().data)

    def fit(
        self,
        pairs: Sequence[GraphPair],
        epochs: int = 30,
        learning_rate: float = 0.02,
        verbose: bool = False,
    ) -> List[float]:
        """Full-batch Adam on BCE; returns the loss curve."""
        if not pairs:
            raise ValueError("need training pairs")
        if any(pair.label is None for pair in pairs):
            raise ValueError("training requires labeled pairs")
        beta1, beta2, epsilon = 0.9, 0.999, 1e-8
        first_moment = [np.zeros_like(p.data) for p in self.parameters]
        second_moment = [np.zeros_like(p.data) for p in self.parameters]
        losses: List[float] = []
        for epoch in range(1, epochs + 1):
            for parameter in self.parameters:
                parameter.zero_grad()
            total = 0.0
            for pair in pairs:
                loss = bce_loss(self._forward_logit(pair), float(pair.label))
                loss.backward()
                total += float(loss.data)
            for index, parameter in enumerate(self.parameters):
                gradient = parameter.grad / len(pairs)
                first_moment[index] = (
                    beta1 * first_moment[index] + (1 - beta1) * gradient
                )
                second_moment[index] = (
                    beta2 * second_moment[index] + (1 - beta2) * gradient**2
                )
                corrected_first = first_moment[index] / (1 - beta1**epoch)
                corrected_second = second_moment[index] / (1 - beta2**epoch)
                parameter.data -= (
                    learning_rate
                    * corrected_first
                    / (np.sqrt(corrected_second) + epsilon)
                )
            losses.append(total / len(pairs))
            level = logging.INFO if verbose else logging.DEBUG
            logger.log(level, "epoch %d: loss %.4f", epoch, losses[-1])
        return losses

    def accuracy(self, pairs: Sequence[GraphPair]) -> float:
        """Classification accuracy at the 0.5 threshold."""
        correct = sum(
            1
            for pair in pairs
            if (self.score_pair(pair) >= 0.5) == bool(pair.label)
        )
        return correct / len(pairs)
