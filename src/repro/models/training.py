"""Lightweight trainable scoring heads.

The reproduction focuses on inference *performance*, which is
independent of weight values — but the paper's premise is that GMNs are
*accurate* similarity predictors, and CEGMA's correctness claim is that
EMF filtering changes nothing about the prediction. This module makes
both claims checkable: it trains a logistic-regression head on the
features each model's backbone extracts (GraphSim's pooled CNN features,
SimGNN's NTN+histogram vector, GMN-Li's graph-vector interactions) for
the paper's similar/dissimilar classification task, entirely in numpy.

Even with a random backbone, these interaction features are informative
(the similar counterpart differs by 1 substituted edge, the dissimilar
one by 4), so trained heads score well above chance — and identically
whether the backbone ran dense or EMF-filtered matching.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..graphs.pairs import GraphPair
from .base import GMNModel
from .layers import sigmoid

__all__ = ["LogisticHead", "extract_features", "train_scorer", "evaluate_scorer"]


class LogisticHead:
    """Logistic regression trained with full-batch gradient descent."""

    def __init__(self, weights: np.ndarray, bias: float, mean: np.ndarray, scale: np.ndarray) -> None:
        self.weights = weights
        self.bias = bias
        self.mean = mean
        self.scale = scale

    @classmethod
    def fit(
        cls,
        features: np.ndarray,
        labels: np.ndarray,
        epochs: int = 300,
        learning_rate: float = 0.5,
        l2: float = 1e-3,
    ) -> "LogisticHead":
        """Fit on standardized features; deterministic (zero init)."""
        if features.ndim != 2 or features.shape[0] != labels.shape[0]:
            raise ValueError("one label per feature row required")
        if features.shape[0] < 2:
            raise ValueError("need at least two training examples")
        mean = features.mean(axis=0)
        scale = features.std(axis=0)
        scale[scale < 1e-12] = 1.0
        standardized = (features - mean) / scale
        n, d = standardized.shape
        weights = np.zeros(d)
        bias = 0.0
        for _ in range(epochs):
            logits = standardized @ weights + bias
            probabilities = sigmoid(logits)
            error = probabilities - labels
            weights -= learning_rate * (
                standardized.T @ error / n + l2 * weights
            )
            bias -= learning_rate * float(error.mean())
        return cls(weights, bias, mean, scale)

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        standardized = (features - self.mean) / self.scale
        return sigmoid(standardized @ self.weights + self.bias)

    def predict(self, features: np.ndarray) -> np.ndarray:
        return (self.predict_proba(features) >= 0.5).astype(int)


def extract_features(
    model: GMNModel, pairs: Sequence[GraphPair]
) -> Tuple[np.ndarray, np.ndarray]:
    """Run the backbone and collect (head features, labels)."""
    features: List[np.ndarray] = []
    labels: List[int] = []
    for pair in pairs:
        trace = model.forward_pair(pair)
        if trace.head_features is None:
            raise ValueError(f"{model.name} does not expose head features")
        if pair.label is None:
            raise ValueError("training requires labeled pairs")
        features.append(trace.head_features)
        labels.append(pair.label)
    return np.vstack(features), np.asarray(labels, dtype=float)


def train_scorer(
    model: GMNModel,
    train_pairs: Sequence[GraphPair],
    epochs: int = 300,
) -> LogisticHead:
    """Train a similarity classifier head for the given backbone."""
    features, labels = extract_features(model, train_pairs)
    return LogisticHead.fit(features, labels, epochs=epochs)


def evaluate_scorer(
    model: GMNModel,
    head: LogisticHead,
    test_pairs: Sequence[GraphPair],
) -> float:
    """Classification accuracy on labeled test pairs."""
    features, labels = extract_features(model, test_pairs)
    predictions = head.predict(features)
    return float((predictions == labels).mean())
