"""Cross-graph node similarity functions (Eq. 2 of the paper).

Given per-layer node features ``X`` (target graph, n x f) and ``Y``
(query graph, m x f), the matching stage computes the similarity matrix
``S = X Y^T / K`` where ``K`` depends on the similarity kind:

- dot-product: ``K = 1``
- euclidean:  ``K = 2`` and scores are normalized by subtracting the
  squared row/column magnitudes, giving ``-||x_i - y_j||^2`` up to sign
  conventions (this is the formulation of GMN-Li).
- cosine: ``K_ij = ||x_i|| * ||y_j||``
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .layers import FlopCounter

__all__ = [
    "SIMILARITY_KINDS",
    "similarity_matrix",
    "matching_flops",
    "cross_graph_attention",
    "cross_graph_attention_unique",
]

SIMILARITY_KINDS = ("dot", "cosine", "euclidean")

_EPS = 1e-12


def similarity_matrix(
    x: np.ndarray,
    y: np.ndarray,
    kind: str = "dot",
    flops: Optional[FlopCounter] = None,
) -> np.ndarray:
    """All-to-all similarity between target features x and query features y."""
    if kind not in SIMILARITY_KINDS:
        raise ValueError(f"unknown similarity {kind!r}; known: {SIMILARITY_KINDS}")
    if x.ndim != 2 or y.ndim != 2 or x.shape[1] != y.shape[1]:
        raise ValueError(
            f"feature matrices must share the feature dim, got {x.shape} and {y.shape}"
        )
    if flops is not None:
        flops.add("match", matching_flops(x.shape[0], y.shape[0], x.shape[1], kind))

    inner = x @ y.T
    if kind == "dot":
        return inner
    if kind == "cosine":
        x_norm = np.linalg.norm(x, axis=1)
        y_norm = np.linalg.norm(y, axis=1)
        return inner / np.maximum(np.outer(x_norm, y_norm), _EPS)
    # euclidean: S = X Y^T / 2, then subtract squared magnitudes,
    # yielding -||x - y||^2 / 2 (monotone in negative distance).
    x_sq = np.einsum("ij,ij->i", x, x)
    y_sq = np.einsum("ij,ij->i", y, y)
    return inner - 0.5 * (x_sq[:, None] + y_sq[None, :])


def matching_flops(n: int, m: int, feature_dim: int, kind: str = "dot") -> int:
    """FLOPs of the all-to-all matching stage.

    The dominating term is the ``n*m*f`` inner-product matrix; cosine adds
    the norm computations and a division per entry, euclidean adds the
    squared-magnitude normalization.
    """
    if kind not in SIMILARITY_KINDS:
        raise ValueError(f"unknown similarity {kind!r}")
    base = 2 * n * m * feature_dim
    if kind == "dot":
        return base
    if kind == "cosine":
        return base + 2 * (n + m) * feature_dim + n * m
    return base + 2 * (n + m) * feature_dim + 2 * n * m


def cross_graph_attention(
    x: np.ndarray,
    y: np.ndarray,
    similarity: np.ndarray,
    flops: Optional[FlopCounter] = None,
) -> np.ndarray:
    """GMN-Li's cross-graph message: attention-weighted difference.

    ``a_ij = softmax_j(S_ij)``; ``mu_i = x_i - sum_j a_ij y_j``. Returns
    the per-target-node cross-graph message ``mu`` (n x f). Callers invoke
    it twice (swapping roles) to obtain messages for both graphs.
    """
    if similarity.shape != (x.shape[0], y.shape[0]):
        raise ValueError("similarity matrix shape mismatch")
    if similarity.size == 0:
        # One side is empty (degenerate pair): there is nothing to
        # attend to, so the attended term is zero and mu = x.
        return x.copy()
    shifted = similarity - similarity.max(axis=1, keepdims=True)
    weights = np.exp(shifted)
    weights /= weights.sum(axis=1, keepdims=True)
    attended = weights @ y
    if flops is not None:
        n, m = similarity.shape
        # softmax (~3 ops/entry) + weighted sum (2*n*m*f) + subtraction.
        flops.add("match", 3 * n * m + 2 * n * m * y.shape[1] + n * y.shape[1])
    return x - attended


def cross_graph_attention_unique(
    unique_x: np.ndarray,
    unique_y: np.ndarray,
    unique_similarity: np.ndarray,
    column_multiplicities: np.ndarray,
    flops: Optional[FlopCounter] = None,
) -> np.ndarray:
    """EMF-filtered cross-graph attention over the unique similarity matrix.

    Duplicate query nodes contribute identical softmax terms, so the full
    attention of Eq. (attention over all m query nodes) equals a
    count-weighted softmax over the u_q unique columns:
    ``a_ik = c_k exp(S_ik) / sum_k c_k exp(S_ik)``. The result is the
    cross-graph message for each *unique* target node; duplicates are
    broadcast by the caller. Exact (not approximate) with respect to the
    dense computation, at O(u_t * u_q) cost.
    """
    if unique_similarity.shape != (unique_x.shape[0], unique_y.shape[0]):
        raise ValueError("unique similarity matrix shape mismatch")
    if column_multiplicities.shape[0] != unique_y.shape[0]:
        raise ValueError("one multiplicity per unique query node required")
    if unique_similarity.size == 0:
        # One side is empty (degenerate pair): zero attended term.
        return unique_x.copy()
    shifted = unique_similarity - unique_similarity.max(axis=1, keepdims=True)
    weights = np.exp(shifted) * column_multiplicities[None, :]
    weights /= weights.sum(axis=1, keepdims=True)
    attended = weights @ unique_y
    if flops is not None:
        rows, cols = unique_similarity.shape
        flops.add(
            "match", 4 * rows * cols + 2 * rows * cols * unique_y.shape[1]
        )
    return unique_x - attended
