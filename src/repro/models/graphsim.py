"""GraphSim (Bai et al., AAAI'20).

Table I configuration: ``3*(GCN[1,64], SIM[64,1])`` node embedding with a
cosine similarity matrix after every GCN layer, three CNN towers
(``CNN[1,16,32,64,128]``) — one per similarity matrix scale — and a final
MLP head ``[128*3,128,64,32,16,1]``.

The published GraphSim orders nodes by BFS and resizes similarity
matrices to a fixed extent before the CNNs; we reproduce the fixed-extent
step by zero-padding small matrices and resampling large ones to
``SIM_MATRIX_EXTENT`` (the CNN tower input), which preserves the FLOP
profile and the layer-wise matching workload CEGMA targets.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..graphs.graph import Graph
from ..graphs.interop import propagation_matrix
from ..graphs.pairs import GraphPair
from ..trace.events import LayerTrace
from .base import GMNModel
from .layers import MLP, Conv2D, FlopCounter, GCNLayer, sigmoid

__all__ = ["GraphSim"]

SIM_MATRIX_EXTENT = 16
CNN_CHANNELS = (1, 16, 32, 64, 128)


class GraphSim(GMNModel):
    """GraphSim with layer-wise cosine matching."""

    def __init__(
        self,
        input_dim: int = 1,
        hidden_dim: int = 64,
        seed: int = 0,
        use_emf: bool = False,
    ) -> None:
        super().__init__(
            name="GraphSim",
            similarity="cosine",
            matching_mode="layer-wise",
            num_layers=3,
            hidden_dim=hidden_dim,
            seed=seed,
            use_emf=use_emf,
        )
        self.input_dim = input_dim
        rng = self._rng
        dims = [input_dim] + [hidden_dim] * self.num_layers
        self.gcn_layers = [
            GCNLayer(dims[i], dims[i + 1], rng) for i in range(self.num_layers)
        ]
        self.cnn_towers: List[List[Conv2D]] = [
            [
                Conv2D(CNN_CHANNELS[i], CNN_CHANNELS[i + 1], rng)
                for i in range(len(CNN_CHANNELS) - 1)
            ]
            for _ in range(self.num_layers)
        ]
        self.head = MLP(
            [CNN_CHANNELS[-1] * self.num_layers, 128, 64, 32, 16, 1], rng
        )

    # ------------------------------------------------------------------
    def _fixed_extent(self, similarity: np.ndarray) -> np.ndarray:
        """Resize a similarity matrix to the CNN input extent.

        Smaller matrices are zero-padded; larger ones are resampled at
        evenly spaced rows/columns (GraphSim's BFS-ordered resize), which
        keeps signal from the whole matrix rather than one corner.
        """
        fixed = np.zeros((SIM_MATRIX_EXTENT, SIM_MATRIX_EXTENT))
        n, m = similarity.shape
        if n == 0 or m == 0:
            return fixed
        rows = (
            np.arange(n)
            if n <= SIM_MATRIX_EXTENT
            else np.linspace(0, n - 1, SIM_MATRIX_EXTENT).astype(int)
        )
        cols = (
            np.arange(m)
            if m <= SIM_MATRIX_EXTENT
            else np.linspace(0, m - 1, SIM_MATRIX_EXTENT).astype(int)
        )
        fixed[: len(rows), : len(cols)] = similarity[np.ix_(rows, cols)]
        return fixed

    def _cnn_tower(
        self, tower: List[Conv2D], matrix: np.ndarray, flops: FlopCounter
    ) -> np.ndarray:
        activations = matrix[None, :, :]
        for conv in tower:
            activations = conv.forward(activations, flops)
        # Global average pool over the remaining spatial extent.
        return activations.mean(axis=(1, 2))

    # ------------------------------------------------------------------
    def forward_pair(self, pair: GraphPair):
        target, query = pair.target, pair.query
        if target.feature_dim != self.input_dim or query.feature_dim != self.input_dim:
            raise ValueError(
                f"{self.name} was built for input dim {self.input_dim}, got "
                f"{target.feature_dim}/{query.feature_dim}"
            )
        norm_t = propagation_matrix(target)
        norm_q = propagation_matrix(query)
        x, y = target.node_features, query.node_features

        layer_traces: List[LayerTrace] = []
        readout_flops = FlopCounter()
        pooled: List[np.ndarray] = []
        for index, gcn in enumerate(self.gcn_layers):
            flops = FlopCounter()
            x = gcn.forward(norm_t, x, target.num_edges, flops)
            y = gcn.forward(norm_q, y, query.num_edges, flops)
            # Layer-wise matching: cosine similarity over the layer output.
            sim = self._similarity(x, y, "cosine", flops)
            pooled.append(self._cnn_tower(self.cnn_towers[index], self._fixed_extent(sim), readout_flops))
            layer_traces.append(
                LayerTrace(
                    layer_index=index,
                    target_features=x.copy(),
                    query_features=y.copy(),
                    in_dim=gcn.in_dim,
                    out_dim=gcn.out_dim,
                    has_matching=True,
                    similarity="cosine",
                    flops=flops,
                )
            )

        features = np.concatenate(pooled)
        score = float(sigmoid(self.head.forward(features, readout_flops))[0])
        return self._make_trace(
            pair, layer_traces, readout_flops, score, head_features=features
        )
