"""GMN model zoo (Table I): GMN-Li, GraphSim, SimGNN in pure numpy."""

from .base import GMNModel, MATCHING_MODES
from .custom import CustomGMN
from .gmn_li import GMNLi
from .graphsim import GraphSim
from .layers import (
    MLP,
    Conv2D,
    FlopCounter,
    GCNLayer,
    Linear,
    NeuralTensorNetwork,
    glorot,
    relu,
    sigmoid,
)
from .similarity import (
    SIMILARITY_KINDS,
    cross_graph_attention,
    cross_graph_attention_unique,
    matching_flops,
    similarity_matrix,
)
from .simgnn import SimGNN
from .trainable import TrainableGMN
from .training import LogisticHead, evaluate_scorer, extract_features, train_scorer

MODEL_REGISTRY = {
    "GMN-Li": GMNLi,
    "GraphSim": GraphSim,
    "SimGNN": SimGNN,
}

MODEL_NAMES = list(MODEL_REGISTRY)


def build_model(
    name: str, input_dim: int = 1, seed: int = 0, use_emf: bool = False
) -> GMNModel:
    """Instantiate a Table I model by name.

    ``use_emf=True`` runs every matching stage through the Elastic
    Matching Filter (software realization of CEGMA's filter).
    """
    if name not in MODEL_REGISTRY:
        raise KeyError(f"unknown model {name!r}; known: {MODEL_NAMES}")
    return MODEL_REGISTRY[name](input_dim=input_dim, seed=seed, use_emf=use_emf)


__all__ = [
    "GMNModel",
    "GMNLi",
    "GraphSim",
    "SimGNN",
    "CustomGMN",
    "TrainableGMN",
    "MODEL_REGISTRY",
    "MODEL_NAMES",
    "MATCHING_MODES",
    "build_model",
    "FlopCounter",
    "Linear",
    "MLP",
    "GCNLayer",
    "Conv2D",
    "NeuralTensorNetwork",
    "relu",
    "sigmoid",
    "glorot",
    "SIMILARITY_KINDS",
    "similarity_matrix",
    "matching_flops",
    "cross_graph_attention",
    "cross_graph_attention_unique",
    "LogisticHead",
    "extract_features",
    "train_scorer",
    "evaluate_scorer",
]
