"""GMN-Li: Graph Matching Networks (Li et al., ICML'19).

Table I configuration: 5 propagation layers of
``(MGNN[64,64,64], MATCHING[64,64], MLP(64*3,64,64))`` with euclidean
similarity, plus ``READOUT[64,128,128]``.

Per layer, each node receives (i) intra-graph messages produced by an
edge MLP over concatenated endpoint features (the paper calls this GNN
variant "MGNN"), and (ii) a cross-graph message: the attention-weighted
difference between the node and the other graph's nodes, where attention
weights come from the euclidean similarity matrix (Eq. 2). A node-update
MLP combines ``[x, m_intra, m_cross]`` (hence the 64*3 input width).

GMN-Li matches in *every* layer, so it is the model where CEGMA's
matching-stage optimizations pay off the most (Section V-B).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..graphs.graph import Graph
from ..graphs.pairs import GraphPair
from ..trace.events import LayerTrace
from .base import GMNModel
from .layers import MLP, FlopCounter, Linear, sigmoid
from ..emf.filter import MatchingPlan
from .similarity import (
    cross_graph_attention,
    cross_graph_attention_unique,
    similarity_matrix,
)

__all__ = ["GMNLi"]

GRAPH_EMBED_DIM = 128


class GMNLi(GMNModel):
    """Graph Matching Network with layer-wise euclidean matching."""

    def __init__(
        self,
        input_dim: int = 1,
        hidden_dim: int = 64,
        num_layers: int = 5,
        seed: int = 0,
        use_emf: bool = False,
    ) -> None:
        super().__init__(
            name="GMN-Li",
            similarity="euclidean",
            matching_mode="layer-wise",
            num_layers=num_layers,
            hidden_dim=hidden_dim,
            seed=seed,
            matching_usage="in-layer",
            use_emf=use_emf,
        )
        self.input_dim = input_dim
        rng = self._rng
        self.encoder = Linear(input_dim, hidden_dim, rng)
        # One (edge MLP, update MLP) pair per propagation layer. Weights
        # are shared between the target and query graphs, as in GMN-Li.
        self.edge_mlps = [
            MLP([2 * hidden_dim, hidden_dim, hidden_dim], rng)
            for _ in range(num_layers)
        ]
        self.update_mlps = [
            MLP([3 * hidden_dim, hidden_dim, hidden_dim], rng)
            for _ in range(num_layers)
        ]
        # READOUT[64,128,128]: gated sum into a 128-d graph vector.
        self.readout_gate = Linear(hidden_dim, GRAPH_EMBED_DIM, rng)
        self.readout_transform = Linear(hidden_dim, GRAPH_EMBED_DIM, rng)
        self.readout_final = Linear(GRAPH_EMBED_DIM, GRAPH_EMBED_DIM, rng)

    # ------------------------------------------------------------------
    def _intra_messages(
        self, graph: Graph, x: np.ndarray, layer: int, flops: FlopCounter
    ) -> np.ndarray:
        """Edge-MLP messages summed at the destination node (MGNN)."""
        messages = np.zeros((graph.num_nodes, self.hidden_dim))
        if graph.num_edges == 0:
            return messages
        endpoint_features = np.concatenate(
            [x[graph.src], x[graph.dst]], axis=1
        )
        # The edge-MLP matmul is a dense GEMM over gathered edge
        # features (combination-class work on any platform); only the
        # per-edge scatter-sum is sparse aggregation-class work.
        edge_messages = self.edge_mlps[layer].forward(
            endpoint_features, flops, phase="combine"
        )
        np.add.at(messages, graph.dst, edge_messages)
        flops.add("aggregate", graph.num_edges * self.hidden_dim)
        return messages

    def _readout(self, x: np.ndarray, flops: FlopCounter) -> np.ndarray:
        gates = sigmoid(self.readout_gate.forward(x, flops))
        transformed = self.readout_transform.forward(x, flops)
        graph_vector = (gates * transformed).sum(axis=0)
        flops.add("other", 2 * x.size)
        return self.readout_final.forward(graph_vector, flops)

    # ------------------------------------------------------------------
    def forward_pair(self, pair: GraphPair):
        target, query = pair.target, pair.query
        if target.feature_dim != self.input_dim or query.feature_dim != self.input_dim:
            raise ValueError(
                f"{self.name} was built for input dim {self.input_dim}, got "
                f"{target.feature_dim}/{query.feature_dim}"
            )
        encode_flops = FlopCounter()
        x = self.encoder.forward(target.node_features, encode_flops, phase="combine")
        y = self.encoder.forward(query.node_features, encode_flops, phase="combine")

        layer_traces: List[LayerTrace] = []
        for layer in range(self.num_layers):
            flops = FlopCounter()
            # Record the features entering this layer: these are exactly
            # the X^l / Y^l the matching stage of this layer consumes.
            x_in, y_in = x.copy(), y.copy()

            m_target = self._intra_messages(target, x, layer, flops)
            m_query = self._intra_messages(query, y, layer, flops)

            if self.use_emf:
                # Filtered matching: similarity and attention both run in
                # unique-node space; duplicates receive broadcast copies.
                # Exact w.r.t. the dense path (duplicate query columns
                # enter the softmax via their multiplicities).
                plan = MatchingPlan.from_features(x, y)
                unique_x = x[plan.target_filter.unique_indices]
                unique_y = y[plan.query_filter.unique_indices]
                unique_similarity = similarity_matrix(
                    unique_x, unique_y, "euclidean", flops
                )
                mu_target = plan.target_filter.expand_rows(
                    cross_graph_attention_unique(
                        unique_x,
                        unique_y,
                        unique_similarity,
                        plan.query_filter.multiplicities(),
                        flops,
                    )
                )
                mu_query = plan.query_filter.expand_rows(
                    cross_graph_attention_unique(
                        unique_y,
                        unique_x,
                        unique_similarity.T,
                        plan.target_filter.multiplicities(),
                        flops,
                    )
                )
            else:
                similarity = self._similarity(x, y, "euclidean", flops)
                mu_target = cross_graph_attention(x, y, similarity, flops)
                mu_query = cross_graph_attention(y, x, similarity.T, flops)

            x = self.update_mlps[layer].forward(
                np.concatenate([x, m_target, mu_target], axis=1),
                flops,
                phase="combine",
            )
            y = self.update_mlps[layer].forward(
                np.concatenate([y, m_query, mu_query], axis=1),
                flops,
                phase="combine",
            )
            layer_traces.append(
                LayerTrace(
                    layer_index=layer,
                    target_features=x_in,
                    query_features=y_in,
                    in_dim=self.hidden_dim,
                    out_dim=self.hidden_dim,
                    has_matching=True,
                    similarity="euclidean",
                    flops=flops,
                )
            )

        readout_flops = encode_flops
        h_target = self._readout(x, readout_flops)
        h_query = self._readout(y, readout_flops)
        # Similarity score: negative euclidean distance between the graph
        # vectors, squashed to (0, 1) for comparability across models.
        distance = float(np.linalg.norm(h_target - h_query))
        score = 1.0 / (1.0 + distance)
        # Pairwise interaction features for trainable scoring heads.
        head_features = np.concatenate(
            [np.abs(h_target - h_query), h_target * h_query]
        )
        return self._make_trace(
            pair, layer_traces, readout_flops, score, head_features=head_features
        )
