"""Minimal reverse-mode automatic differentiation on numpy.

Just enough autodiff to train Graph Matching Networks end to end (the
inference-side reproduction uses seeded random weights; training exists
to check the *accuracy* claims — GMNs learn the similarity task, and
layer-wise cross-graph matching helps). Supported operations cover the
GMN forward pass: matmul (with ndarray constants on either side),
broadcast add/mul/sub, relu/sigmoid/tanh/abs, row softmax, transpose,
column concat, mean/sum reductions, and log for BCE losses.

Gradients are verified against numerical differentiation in
``tests/models/test_autograd.py``.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = ["Tensor", "concat", "bce_loss"]

ArrayLike = Union["Tensor", np.ndarray, float, int]


def _unbroadcast(gradient: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum a gradient down to ``shape`` (reverse of numpy broadcasting)."""
    while gradient.ndim > len(shape):
        gradient = gradient.sum(axis=0)
    for axis, size in enumerate(shape):
        if size == 1 and gradient.shape[axis] != 1:
            gradient = gradient.sum(axis=axis, keepdims=True)
    return gradient


class Tensor:
    """A numpy array with a gradient and a backward closure."""

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward")

    # Make numpy defer binary operations (ndarray @ Tensor etc.) to our
    # reflected methods instead of trying to coerce the Tensor.
    __array_ufunc__ = None

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        parents: Sequence["Tensor"] = (),
        backward: Optional[Callable[[np.ndarray], None]] = None,
    ) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = requires_grad
        self._parents = tuple(parents)
        self._backward = backward

    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    def _accumulate(self, gradient: np.ndarray) -> None:
        if self.grad is None:
            self.grad = np.zeros_like(self.data)
        self.grad += gradient

    def backward(self) -> None:
        """Reverse-mode sweep from this (scalar) tensor."""
        if self.data.size != 1:
            raise ValueError("backward() requires a scalar tensor")
        ordered: List[Tensor] = []
        seen = set()

        def visit(node: "Tensor") -> None:
            if id(node) in seen:
                return
            seen.add(id(node))
            for parent in node._parents:
                visit(parent)
            ordered.append(node)

        visit(self)
        self.grad = np.ones_like(self.data)
        for node in reversed(ordered):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    @staticmethod
    def _lift(value: ArrayLike) -> "Tensor":
        if isinstance(value, Tensor):
            return value
        return Tensor(value)

    def _binary(self, other: ArrayLike, forward, backward_self, backward_other):
        other = self._lift(other)
        out_data = forward(self.data, other.data)
        needs = self.requires_grad or other.requires_grad

        def backward(gradient: np.ndarray) -> None:
            if self.requires_grad or self._parents:
                self._accumulate(
                    _unbroadcast(
                        backward_self(gradient, self.data, other.data),
                        self.data.shape,
                    )
                )
            if other.requires_grad or other._parents:
                other._accumulate(
                    _unbroadcast(
                        backward_other(gradient, self.data, other.data),
                        other.data.shape,
                    )
                )

        return Tensor(out_data, needs, (self, other), backward)

    # Arithmetic ---------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        return self._binary(
            other,
            lambda a, b: a + b,
            lambda g, a, b: g,
            lambda g, a, b: g,
        )

    __radd__ = __add__

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return self._binary(
            other,
            lambda a, b: a - b,
            lambda g, a, b: g,
            lambda g, a, b: -g,
        )

    def __mul__(self, other: ArrayLike) -> "Tensor":
        return self._binary(
            other,
            lambda a, b: a * b,
            lambda g, a, b: g * b,
            lambda g, a, b: g * a,
        )

    __rmul__ = __mul__

    def __neg__(self) -> "Tensor":
        return self * -1.0

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        return self._binary(
            other,
            lambda a, b: a @ b,
            lambda g, a, b: g @ b.T,
            lambda g, a, b: a.T @ g,
        )

    def __rmatmul__(self, other: np.ndarray) -> "Tensor":
        """Constant matrix @ tensor (e.g. propagation @ features)."""
        constant = np.asarray(other, dtype=np.float64)
        out = Tensor(
            constant @ self.data,
            self.requires_grad,
            (self,),
            None,
        )

        def backward(gradient: np.ndarray) -> None:
            self._accumulate(constant.T @ gradient)

        out._backward = backward
        return out

    @property
    def T(self) -> "Tensor":
        out = Tensor(self.data.T, self.requires_grad, (self,), None)

        def backward(gradient: np.ndarray) -> None:
            self._accumulate(gradient.T)

        out._backward = backward
        return out

    # Nonlinearities ------------------------------------------------------
    def _unary(self, forward, local_gradient):
        out_data = forward(self.data)
        out = Tensor(out_data, self.requires_grad, (self,), None)

        def backward(gradient: np.ndarray) -> None:
            self._accumulate(gradient * local_gradient(self.data, out_data))

        out._backward = backward
        return out

    def relu(self) -> "Tensor":
        return self._unary(
            lambda a: np.maximum(a, 0.0), lambda a, y: (a > 0).astype(float)
        )

    def sigmoid(self) -> "Tensor":
        return self._unary(
            lambda a: 1.0 / (1.0 + np.exp(-np.clip(a, -60, 60))),
            lambda a, y: y * (1.0 - y),
        )

    def tanh(self) -> "Tensor":
        return self._unary(np.tanh, lambda a, y: 1.0 - y * y)

    def abs(self) -> "Tensor":
        return self._unary(np.abs, lambda a, y: np.sign(a))

    def log(self) -> "Tensor":
        return self._unary(
            lambda a: np.log(np.maximum(a, 1e-12)),
            lambda a, y: 1.0 / np.maximum(a, 1e-12),
        )

    def softmax_rows(self) -> "Tensor":
        shifted = self.data - self.data.max(axis=-1, keepdims=True)
        exp = np.exp(shifted)
        out_data = exp / exp.sum(axis=-1, keepdims=True)
        out = Tensor(out_data, self.requires_grad, (self,), None)

        def backward(gradient: np.ndarray) -> None:
            dot = (gradient * out_data).sum(axis=-1, keepdims=True)
            self._accumulate(out_data * (gradient - dot))

        out._backward = backward
        return out

    # Reductions ----------------------------------------------------------
    def sum(self) -> "Tensor":
        out = Tensor(self.data.sum(), self.requires_grad, (self,), None)

        def backward(gradient: np.ndarray) -> None:
            self._accumulate(np.full_like(self.data, float(gradient)))

        out._backward = backward
        return out

    def mean_rows(self, keepdims: bool = False) -> "Tensor":
        """Mean over axis 0 (node dimension -> graph readout)."""
        rows = self.data.shape[0]
        out = Tensor(
            self.data.mean(axis=0, keepdims=keepdims),
            self.requires_grad,
            (self,),
            None,
        )

        def backward(gradient: np.ndarray) -> None:
            self._accumulate(
                np.broadcast_to(gradient / rows, self.data.shape).copy()
            )

        out._backward = backward
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Tensor(shape={self.shape}, grad={'set' if self.grad is not None else 'None'})"


def concat(tensors: Sequence[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along an axis."""
    data = np.concatenate([t.data for t in tensors], axis=axis)
    needs = any(t.requires_grad or t._parents for t in tensors)
    out = Tensor(data, needs, tuple(tensors), None)
    sizes = [t.data.shape[axis] for t in tensors]

    def backward(gradient: np.ndarray) -> None:
        start = 0
        for tensor, size in zip(tensors, sizes):
            index = [slice(None)] * gradient.ndim
            index[axis if axis >= 0 else gradient.ndim + axis] = slice(
                start, start + size
            )
            tensor._accumulate(gradient[tuple(index)])
            start += size

    out._backward = backward
    return out


def bce_loss(logit: Tensor, label: float) -> Tensor:
    """Binary cross-entropy on a scalar logit."""
    probability = logit.sigmoid()
    if label >= 0.5:
        return -probability.log()
    return -(Tensor(1.0) - probability).log()
