"""GMN model base class.

All three evaluated models (GMN-Li, GraphSim, SimGNN — Table I) share the
two-stage structure of Fig. 1: per-layer intra-graph node embedding plus
cross-graph node matching, either layer-wise (GMN-Li, GraphSim) or
model-wise (SimGNN, last layer only). ``forward_pair`` runs inference and
returns a :class:`~repro.trace.events.PairTrace` that records, per layer,
the node features entering the matching stage and the per-phase FLOPs.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Optional

import numpy as np

from ..emf.filter import MatchingPlan
from ..graphs.pairs import GraphPair
from ..trace.events import LayerTrace, PairTrace
from ..counters import FlopCounter
from .similarity import similarity_matrix

__all__ = ["GMNModel", "MATCHING_MODES"]

MATCHING_MODES = ("layer-wise", "model-wise")


class GMNModel(ABC):
    """Abstract Graph Matching Network.

    Parameters
    ----------
    name:
        Model identifier (used in experiment tables).
    similarity:
        Similarity kind of the matching stage ("dot", "cosine",
        "euclidean").
    matching_mode:
        "layer-wise" computes Eq. 2 in every layer; "model-wise" only in
        the last layer (SimGNN), which the paper notes has less
        optimization potential for CEGMA.
    hidden_dim:
        Node feature width inside the network (64 for all Table I models).
    seed:
        Seed for the deterministic weight initialization.
    use_emf:
        When True, every matching stage runs through the Elastic
        Matching Filter: only unique nodes' similarities are computed
        and duplicates receive broadcast copies. This is the software
        realization of CEGMA's filter; results are lossless up to the
        EMF's feature quantization (exact on the fixed-point hardware).
    """

    def __init__(
        self,
        name: str,
        similarity: str,
        matching_mode: str,
        num_layers: int,
        hidden_dim: int = 64,
        seed: int = 0,
        matching_usage: str = "writeback",
        use_emf: bool = False,
    ) -> None:
        if matching_mode not in MATCHING_MODES:
            raise ValueError(
                f"unknown matching mode {matching_mode!r}; known: {MATCHING_MODES}"
            )
        if num_layers < 1:
            raise ValueError("models need at least one layer")
        self.name = name
        self.similarity = similarity
        self.matching_mode = matching_mode
        self.num_layers = num_layers
        self.hidden_dim = hidden_dim
        self.seed = seed
        self.matching_usage = matching_usage
        self.use_emf = use_emf
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    def _similarity(
        self,
        x: np.ndarray,
        y: np.ndarray,
        kind: str,
        flops: Optional[FlopCounter] = None,
    ) -> np.ndarray:
        """Matching-stage similarity, optionally EMF-filtered.

        FLOPs recorded reflect the work actually performed: the filtered
        path only pays for the unique rows/columns.
        """
        if not self.use_emf:
            return similarity_matrix(x, y, kind, flops)
        plan = MatchingPlan.from_features(x, y)
        unique = similarity_matrix(
            x[plan.target_filter.unique_indices],
            y[plan.query_filter.unique_indices],
            kind,
            flops,
        )
        return plan.broadcast(unique)

    def layer_has_matching(self, layer_index: int) -> bool:
        """Whether the matching stage runs in the given layer."""
        if self.matching_mode == "layer-wise":
            return True
        return layer_index == self.num_layers - 1

    @abstractmethod
    def forward_pair(self, pair: GraphPair) -> PairTrace:
        """Run inference on one graph pair, returning the full trace."""

    def score_pair(self, pair: GraphPair) -> float:
        """Similarity score only (convenience wrapper)."""
        return self.forward_pair(pair).score

    # ------------------------------------------------------------------
    def _make_trace(
        self,
        pair: GraphPair,
        layers: List[LayerTrace],
        readout_flops: FlopCounter,
        score: float,
        head_features: Optional[np.ndarray] = None,
    ) -> PairTrace:
        return PairTrace(
            self.name,
            pair,
            layers,
            readout_flops,
            float(score),
            self.matching_usage,
            head_features,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(layers={self.num_layers}, "
            f"similarity={self.similarity!r}, mode={self.matching_mode!r})"
        )
