"""SimGNN (Bai et al., WSDM'19).

Table I configuration: ``3*(GCN[1,64])`` embedding, a single dot-product
similarity stage over the third layer's output (``SIM[64,1]`` —
model-wise matching), an attention readout ``READOUT[64,128,16]``, a
Neural Tensor Network ``NTN[128,16]`` over graph-level embeddings, and a
prediction head ``MLP([32,16,8,4,1])`` fed by the concatenation of the
16 NTN features and a 16-bin histogram of pairwise node similarities.

SimGNN matching only in the last layer is what the paper calls
"model-wise" matching; CEGMA's speedups on SimGNN are accordingly the
smallest of the three models.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..graphs.interop import propagation_matrix
from ..graphs.pairs import GraphPair
from ..trace.events import LayerTrace
from .base import GMNModel
from .layers import MLP, FlopCounter, GCNLayer, Linear, NeuralTensorNetwork, sigmoid

__all__ = ["SimGNN"]

HISTOGRAM_BINS = 16
GRAPH_EMBED_DIM = 128
NTN_SLICES = 16


class SimGNN(GMNModel):
    """SimGNN with model-wise dot-product matching."""

    def __init__(
        self,
        input_dim: int = 1,
        hidden_dim: int = 64,
        seed: int = 0,
        use_emf: bool = False,
    ) -> None:
        super().__init__(
            name="SimGNN",
            similarity="dot",
            matching_mode="model-wise",
            num_layers=3,
            hidden_dim=hidden_dim,
            seed=seed,
            use_emf=use_emf,
        )
        self.input_dim = input_dim
        rng = self._rng
        dims = [input_dim] + [hidden_dim] * self.num_layers
        self.gcn_layers = [
            GCNLayer(dims[i], dims[i + 1], rng) for i in range(self.num_layers)
        ]
        # READOUT[64,128,16]: attention readout mapping node features (64)
        # to a graph embedding (128); 16 is the NTN slice count.
        self.attention = Linear(hidden_dim, hidden_dim, rng)
        self.embed = Linear(hidden_dim, GRAPH_EMBED_DIM, rng)
        self.ntn = NeuralTensorNetwork(GRAPH_EMBED_DIM, NTN_SLICES, rng)
        self.head = MLP([NTN_SLICES + HISTOGRAM_BINS, 16, 8, 4, 1], rng)

    # ------------------------------------------------------------------
    def _attention_readout(self, x: np.ndarray, flops: FlopCounter) -> np.ndarray:
        """SimGNN's global attention pooling into a graph embedding."""
        context = np.tanh(self.attention.forward(x, flops).mean(axis=0))
        scores = sigmoid(x @ self.attention.weight @ context)
        flops.add("other", 2 * x.shape[0] * x.shape[1])
        pooled = scores @ x
        return self.embed.forward(pooled, flops)

    @staticmethod
    def _similarity_histogram(similarity: np.ndarray) -> np.ndarray:
        """Normalized 16-bin histogram of pairwise similarity scores."""
        if similarity.size == 0:
            return np.zeros(HISTOGRAM_BINS)
        lo, hi = similarity.min(), similarity.max()
        span = hi - lo if hi > lo else 1.0
        normalized = (similarity - lo) / span
        hist, _ = np.histogram(normalized, bins=HISTOGRAM_BINS, range=(0.0, 1.0))
        return hist / similarity.size

    # ------------------------------------------------------------------
    def forward_pair(self, pair: GraphPair):
        target, query = pair.target, pair.query
        if target.feature_dim != self.input_dim or query.feature_dim != self.input_dim:
            raise ValueError(
                f"{self.name} was built for input dim {self.input_dim}, got "
                f"{target.feature_dim}/{query.feature_dim}"
            )
        norm_t = propagation_matrix(target)
        norm_q = propagation_matrix(query)
        x, y = target.node_features, query.node_features

        layer_traces: List[LayerTrace] = []
        readout_flops = FlopCounter()
        similarity = None
        for index, gcn in enumerate(self.gcn_layers):
            flops = FlopCounter()
            x = gcn.forward(norm_t, x, target.num_edges, flops)
            y = gcn.forward(norm_q, y, query.num_edges, flops)
            has_matching = self.layer_has_matching(index)
            if has_matching:
                similarity = self._similarity(x, y, "dot", flops)
            layer_traces.append(
                LayerTrace(
                    layer_index=index,
                    target_features=x.copy(),
                    query_features=y.copy(),
                    in_dim=gcn.in_dim,
                    out_dim=gcn.out_dim,
                    has_matching=has_matching,
                    similarity="dot" if has_matching else None,
                    flops=flops,
                )
            )

        h_target = self._attention_readout(x, readout_flops)
        h_query = self._attention_readout(y, readout_flops)
        ntn_features = self.ntn.forward(h_target, h_query, readout_flops)
        histogram = self._similarity_histogram(similarity)
        features = np.concatenate([ntn_features, histogram])
        score = float(sigmoid(self.head.forward(features, readout_flops))[0])
        return self._make_trace(
            pair, layer_traces, readout_flops, score, head_features=features
        )
