"""Fig. 23: absolute cycle counts of EMF-Hashing and EMF-Filtering.

The paper reports per-graph averages of 284 hashing / 429 filtering
cycles, rising to 1488 / 655 on RD-12K — well under a microsecond at
1 GHz, i.e. negligible against millisecond-scale deadlines.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..analysis.metrics import ResultTable
from ..emf.hardware import EMFHardwareModel
from ..graphs.datasets import load_dataset
from .common import DATASET_ORDER, ExperimentResult

__all__ = ["run"]

FEATURE_DIM = 64
NUM_LAYERS = 5  # GMN-Li, the deepest model


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    num_graphs = 8 if quick else 64
    model = EMFHardwareModel()
    table = ResultTable(
        ["dataset", "hashing cycles", "filtering cycles", "total us @1GHz"],
        title="EMF overhead per graph (Fig. 23)",
    )
    data: Dict[str, Dict[str, float]] = {}
    for dataset in DATASET_ORDER:
        pairs = load_dataset(dataset, seed=seed, num_pairs=num_graphs // 2)
        graphs = [p.target for p in pairs] + [p.query for p in pairs]
        hashing = []
        filtering = []
        for graph in graphs:
            report = model.per_graph_report(
                graph.num_nodes, FEATURE_DIM, NUM_LAYERS
            )
            hashing.append(report.hashing_cycles)
            filtering.append(report.filtering_cycles)
        row = {
            "hashing": float(np.mean(hashing)),
            "filtering": float(np.mean(filtering)),
        }
        row["total_us"] = (row["hashing"] + row["filtering"]) / 1e3
        table.add_row(dataset, row["hashing"], row["filtering"], row["total_us"])
        data[dataset] = row

    means = {
        "hashing": float(np.mean([d["hashing"] for d in data.values()])),
        "filtering": float(np.mean([d["filtering"] for d in data.values()])),
    }
    table.add_row("MEAN", means["hashing"], means["filtering"],
                  (means["hashing"] + means["filtering"]) / 1e3)
    return ExperimentResult(
        "fig23",
        "EMF hashing/filtering cycles (paper mean: 284 / 429; RD-12K 1488 / 655)",
        table,
        {"per_dataset": data, "mean": means},
    )
