"""Table II: dataset statistics of the synthetic substitutes.

Verifies that the generators reproduce the published average node and
edge counts (COLLAB's intentional edge-density deviation is documented
in :mod:`repro.graphs.datasets`).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..analysis.metrics import ResultTable
from ..graphs.datasets import DATASETS, generate_graph
from .common import DATASET_ORDER, ExperimentResult

__all__ = ["run"]


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    samples = 20 if quick else 100
    rng = np.random.default_rng(seed)
    table = ResultTable(
        [
            "dataset",
            "nodes (ours)",
            "nodes (paper)",
            "edges (ours)",
            "edges (paper)",
            "#pairs",
            "scale",
        ],
        title="Dataset statistics vs Table II",
    )
    data: Dict[str, Dict[str, float]] = {}
    for name in DATASET_ORDER:
        spec = DATASETS[name]
        graphs = [generate_graph(name, rng) for _ in range(samples)]
        nodes = float(np.mean([g.num_nodes for g in graphs]))
        edges = float(np.mean([g.num_undirected_edges for g in graphs]))
        table.add_row(
            name,
            nodes,
            spec.avg_nodes,
            edges,
            spec.avg_edges,
            spec.num_pairs,
            spec.scale_class,
        )
        data[name] = {
            "nodes": nodes,
            "paper_nodes": spec.avg_nodes,
            "edges": edges,
            "paper_edges": spec.avg_edges,
        }

    return ExperimentResult(
        "table2",
        "Synthetic dataset statistics against the published Table II",
        table,
        data,
    )
