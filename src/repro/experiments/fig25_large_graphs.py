"""Fig. 25: speedups on large synthetic graphs.

Graphs are generated with the GMN-Li protocol (8 originals per size,
paired by edge substitution). The paper finds CEGMA's advantage *grows*
with graph size — 10.8x / 9.6x over HyGCN / AWB-GCN at 1000 nodes,
rising to 37.5x / 36.6x at 5000 nodes — because larger graphs contain
more duplicate subgraphs.

Note on workload structure: plain Erdos-Renyi graphs carry almost no
duplicate l-hop neighborhoods, so (as in the dataset generators) the
large graphs replicate motif structure: each graph is a union of
repeated stars/trees plus a random component, preserving the property
the paper attributes to large real graphs.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..analysis.metrics import ResultTable
from ..graphs.batch import GraphPairBatch
from ..graphs.generators import MotifSpec, motif_soup_graph
from ..graphs.pairs import make_positive_negative_pairs
from ..models import build_model
from ..platforms import build_platform
from ..trace.profiler import BatchTrace, profile_pairs
from .common import ExperimentResult

__all__ = ["run", "large_graph"]


def large_graph(num_nodes: int, rng: np.random.Generator):
    """A large graph with size-proportional duplicate structure."""
    star = max(8, num_nodes // 40)
    copies = max(2, num_nodes // (4 * star))
    specs = [
        MotifSpec("star", star, copies=copies),
        MotifSpec("star", max(4, star // 2), copies=copies),
        MotifSpec("binary_tree", 4, copies=max(2, copies // 2)),
    ]
    used = sum(spec.nodes_per_copy * spec.copies for spec in specs)
    random_nodes = max(8, num_nodes - used)
    return motif_soup_graph(
        specs,
        random_nodes=random_nodes,
        random_edges=2 * random_nodes,
        rng=rng,
    )


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    sizes = (500, 1000) if quick else (1000, 2000, 3000, 4000, 5000)
    originals_per_size = 2 if quick else 8
    rng = np.random.default_rng(seed)
    model = build_model("GMN-Li", seed=seed)
    platforms = {
        "HyGCN": build_platform("HyGCN"),
        "AWB-GCN": build_platform("AWB-GCN"),
        "CEGMA": build_platform("CEGMA"),
    }

    table = ResultTable(
        ["nodes", "CEGMA vs HyGCN", "CEGMA vs AWB-GCN"],
        title="Speedup on large graphs, GMN-Li (Fig. 25)",
    )
    data: Dict[int, Dict[str, float]] = {}
    for size in sizes:
        pairs = []
        for _ in range(originals_per_size):
            graph = large_graph(size, rng)
            positive, negative = make_positive_negative_pairs(graph, rng)
            pairs.extend([positive, negative])
        batch = GraphPairBatch(pairs)
        traces = BatchTrace(batch, profile_pairs(model, pairs))
        results = {
            name: simulator.simulate_batch(traces)
            for name, simulator in platforms.items()
        }
        cegma = results["CEGMA"].latency_seconds
        row = {
            "HyGCN": results["HyGCN"].latency_seconds / cegma,
            "AWB-GCN": results["AWB-GCN"].latency_seconds / cegma,
        }
        table.add_row(size, row["HyGCN"], row["AWB-GCN"])
        data[size] = row

    return ExperimentResult(
        "fig25",
        "Large-graph speedups grow with size (paper: 10.8x->37.5x over "
        "HyGCN from 1k to 5k nodes)",
        table,
        data,
    )
