"""Ablation: DRAM bandwidth sensitivity.

Table III gives every accelerator 256 GB/s of HBM 1.0. This sweep scales
the bandwidth from DDR4-class to HBM2-class. The result inverts the
usual intuition: *CEGMA* is the bandwidth-hungry design. Having removed
~95% of the matching compute, it sits against the memory roof (see the
``roofline`` experiment) and converts every byte/s into latency, while
the baseline is pinned compute-bound on its inefficient dense matching
and barely notices. CEGMA's advantage therefore *grows* with memory
technology: ~2.9x at DDR4-class, ~22x at HBM2-class on this workload.

The sweep is pure data: each point is a platform **spec string**
(``CEGMA@bandwidth_gbps=512``) resolved by the platform registry, not a
hand-mutated config object.
"""

from __future__ import annotations

from typing import Dict

from ..analysis.metrics import ResultTable
from ..core.api import simulate_traces
from .common import ExperimentResult, workload_size, workload_traces

__all__ = ["run", "BANDWIDTHS", "sweep_specs"]

# Bytes per cycle at 1 GHz: 64 = DDR4-class, 256 = HBM 1.0 (Table III),
# 900 = HBM2-class.
BANDWIDTHS = (64.0, 128.0, 256.0, 512.0, 900.0)
MODEL = "GraphSim"
DATASET = "RD-B"


def sweep_specs(bandwidth: float) -> Dict[str, str]:
    """The two platform specs simulated at one bandwidth point."""
    return {
        "CEGMA": f"CEGMA@bandwidth_gbps={bandwidth:g}",
        "AWB-GCN": f"AWB-GCN@bandwidth_gbps={bandwidth:g}",
    }


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    num_pairs, batch_size = workload_size(quick, DATASET)
    traces = list(workload_traces(MODEL, DATASET, num_pairs, batch_size, seed))

    table = ResultTable(
        ["GB/s", "CEGMA us/pair", "AWB-GCN us/pair", "CEGMA speedup"],
        title=f"DRAM bandwidth sweep ({MODEL} on {DATASET})",
    )
    data: Dict[float, Dict[str, float]] = {}
    for bandwidth in BANDWIDTHS:
        specs = sweep_specs(bandwidth)
        results = simulate_traces(traces, tuple(specs.values()))
        cegma_result = results[specs["CEGMA"]]
        awb_result = results[specs["AWB-GCN"]]
        row = {
            "cegma_latency": cegma_result.latency_per_pair,
            "awb_latency": awb_result.latency_per_pair,
            "speedup": awb_result.latency_seconds / cegma_result.latency_seconds,
        }
        table.add_row(
            bandwidth,
            row["cegma_latency"] * 1e6,
            row["awb_latency"] * 1e6,
            row["speedup"],
        )
        data[bandwidth] = row

    return ExperimentResult(
        "ablation_bandwidth",
        "Post-EMF, CEGMA is memory-bound: its advantage grows with "
        "bandwidth while the compute-bound baseline saturates",
        table,
        data,
    )
