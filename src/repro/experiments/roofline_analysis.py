"""Roofline boundedness of every workload on every accelerator.

Not a paper figure, but the analysis that explains the paper's design:
GMN workloads sit near the baselines' machine balance, so removing MACs
(EMF) or DRAM bytes (CGC) alone cannot win everywhere — the two
mechanisms attack the two roofs, which is why the full design composes.
"""

from __future__ import annotations

from typing import Dict

from ..analysis.metrics import ResultTable
from ..analysis.roofline import roofline_report
from ..platforms import REGISTRY
from .common import (
    DATASET_ORDER,
    MODEL_ORDER,
    ExperimentResult,
    workload_size,
    workload_traces,
)

__all__ = ["run"]

PLATFORMS = ("HyGCN", "AWB-GCN", "CEGMA")


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    datasets = ("AIDS", "GITHUB", "RD-5K") if quick else DATASET_ORDER
    table = ResultTable(
        ["model", "dataset"]
        + [f"{p} intensity" for p in PLATFORMS]
        + [f"{p} bound" for p in PLATFORMS],
        title="Roofline boundedness (arithmetic intensity vs machine balance)",
    )
    data: Dict[str, Dict[str, Dict[str, Dict[str, float]]]] = {}
    for model_name in MODEL_ORDER:
        data[model_name] = {}
        for dataset in datasets:
            num_pairs, batch_size = workload_size(quick, dataset)
            traces = list(
                workload_traces(model_name, dataset, num_pairs, batch_size, seed)
            )
            row_reports = {}
            for platform in PLATFORMS:
                simulator = REGISTRY.build(platform)
                result = simulator.simulate_batches(traces)
                row_reports[platform] = roofline_report(
                    result, simulator.config
                )
            table.add_row(
                model_name,
                dataset,
                *[row_reports[p]["arithmetic_intensity"] for p in PLATFORMS],
                *[
                    "compute" if row_reports[p]["bound"] > 0 else "memory"
                    for p in PLATFORMS
                ],
            )
            data[model_name][dataset] = row_reports
    return ExperimentResult(
        "roofline",
        "Which roof binds each workload on each accelerator",
        table,
        data,
    )
