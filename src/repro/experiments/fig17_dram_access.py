"""Fig. 17: DRAM accesses normalized to HyGCN.

The paper reports CEGMA moving 59% / 61% less data than HyGCN /
AWB-GCN on average, with the largest reductions for GMN-Li (its
matching results stay on-chip) and for the large REDDIT datasets.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..analysis.metrics import ResultTable, normalize_to
from .common import (
    DATASET_ORDER,
    MODEL_ORDER,
    ExperimentResult,
    workload_results,
    workload_size,
)

__all__ = ["run", "PLATFORMS"]

PLATFORMS = ("HyGCN", "AWB-GCN", "CEGMA")


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    table = ResultTable(
        ["model", "dataset"] + [f"{p} (norm.)" for p in PLATFORMS],
        title="DRAM accesses normalized to HyGCN (Fig. 17)",
    )
    data: Dict[str, Dict[str, Dict[str, float]]] = {}
    cegma_ratios = []
    for model_name in MODEL_ORDER:
        data[model_name] = {}
        for dataset in DATASET_ORDER:
            num_pairs, batch_size = workload_size(quick, dataset)
            results = workload_results(
                model_name, dataset, PLATFORMS, num_pairs, batch_size, seed
            )
            normalized = normalize_to(
                {p: results[p].dram_bytes for p in PLATFORMS}, "HyGCN"
            )
            table.add_row(
                model_name, dataset, *[normalized[p] for p in PLATFORMS]
            )
            data[model_name][dataset] = normalized
            cegma_ratios.append(normalized["CEGMA"])

    mean_ratio = float(np.mean(cegma_ratios))
    table.add_row("MEAN", "CEGMA/HyGCN", "", "", mean_ratio)
    return ExperimentResult(
        "fig17",
        "Normalized DRAM accesses (paper: CEGMA mean ~0.41 of HyGCN)",
        table,
        {"normalized": data, "cegma_mean": mean_ratio},
    )
