"""Future-work extension: approximate (SimHash) matching filtering.

Measures the trade the paper's exact EMF declines to make: merging
*near*-duplicate nodes removes more matchings but perturbs similarity
results. For each signature width we report the remaining workload and
the score deviation of an EMF-filtered GraphSim whose filter is
replaced by the approximate one.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..analysis.metrics import ResultTable
from ..emf.approximate import approximate_matching_filter, e2lsh_matching_filter
from ..emf.filter import MatchingPlan, elastic_matching_filter
from ..models import similarity_matrix
from .common import ExperimentResult, workload_size, workload_traces

__all__ = ["run", "BUCKET_WIDTHS"]

BUCKET_WIDTHS = (0.001, 0.01, 0.1)
MODEL = "GraphSim"
DATASET = "GITHUB"


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    num_pairs, batch_size = workload_size(quick, DATASET)
    layers = [
        layer
        for batch in workload_traces(MODEL, DATASET, num_pairs, batch_size, seed)
        for trace in batch.pair_traces
        for layer in trace.layers
        if layer.has_matching
    ]

    exact_remaining = []
    for layer in layers:
        plan = MatchingPlan(
            elastic_matching_filter(layer.target_features),
            elastic_matching_filter(layer.query_features),
        )
        exact_remaining.append(plan.remaining_fraction)

    table = ResultTable(
        ["filter", "remaining matching %", "max similarity deviation"],
        title=f"Approximate EMF trade-off ({MODEL} on {DATASET})",
    )
    table.add_row("exact (paper)", 100 * float(np.mean(exact_remaining)), 0.0)
    data: Dict[str, Dict[str, float]] = {
        "exact": {
            "remaining": float(np.mean(exact_remaining)),
            "deviation": 0.0,
        }
    }
    def evaluate(label, make_filter):
        remaining = []
        deviation = 0.0
        for layer in layers:
            plan = MatchingPlan(
                make_filter(layer.target_features),
                make_filter(layer.query_features),
            )
            remaining.append(plan.remaining_fraction)
            full = similarity_matrix(
                layer.target_features, layer.query_features, "euclidean"
            )
            rebuilt = plan.broadcast(plan.unique_similarity(full))
            deviation = max(deviation, float(np.abs(full - rebuilt).max()))
        table.add_row(label, 100 * float(np.mean(remaining)), deviation)
        data[label] = {
            "remaining": float(np.mean(remaining)),
            "deviation": deviation,
        }

    # SimHash: the wrong family for direction-collapsed GNN features —
    # it over-merges regardless of width (kept as the negative result).
    evaluate(
        "simhash-32",
        lambda f: approximate_matching_filter(f, 32, seed),
    )
    # E2LSH: distance-sensitive; bucket width sweeps the trade-off.
    for width in BUCKET_WIDTHS:
        evaluate(
            f"e2lsh-w{width}",
            lambda f, w=width: e2lsh_matching_filter(f, 8, w, seed),
        )

    return ExperimentResult(
        "future_approximate_emf",
        "Near-duplicate merging removes more matchings at bounded "
        "similarity deviation",
        table,
        data,
    )
