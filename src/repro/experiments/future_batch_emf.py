"""Future-work extension: cross-pair (batch-scoped) EMF headroom.

The paper's EMF deduplicates within each graph. Batches carry more
redundancy (positive/negative counterparts of the same originals,
repeated motifs across graphs); a filter memoizing cross-pair feature
combinations could skip those matchings too. This experiment measures
how much the paper's design leaves on the table per dataset.
"""

from __future__ import annotations

from typing import Dict

from ..analysis.metrics import ResultTable
from ..emf.batch import cross_pair_headroom
from .common import DATASET_ORDER, ExperimentResult, workload_size, workload_traces

__all__ = ["run"]

MODEL = "GraphSim"


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    table = ResultTable(
        [
            "dataset",
            "paper EMF remaining %",
            "batch EMF remaining %",
            "extra removable %",
            "relative gain %",
        ],
        title=f"Cross-pair EMF headroom ({MODEL})",
    )
    data: Dict[str, Dict[str, float]] = {}
    for dataset in DATASET_ORDER:
        num_pairs, batch_size = workload_size(quick, dataset)
        traces = [
            trace
            for batch in workload_traces(
                MODEL, dataset, num_pairs, batch_size, seed
            )
            for trace in batch.pair_traces
        ]
        headroom = cross_pair_headroom(traces)
        relative = (
            headroom["headroom"] / headroom["paper_emf_remaining"]
            if headroom["paper_emf_remaining"]
            else 0.0
        )
        table.add_row(
            dataset,
            100 * headroom["paper_emf_remaining"],
            100 * headroom["batch_emf_remaining"],
            100 * headroom["headroom"],
            100 * relative,
        )
        data[dataset] = dict(headroom, relative_gain=relative)

    return ExperimentResult(
        "future_batch_emf",
        "Batch-scoped filtering could remove a further slice of the "
        "matchings the per-pair EMF keeps",
        table,
        data,
    )
