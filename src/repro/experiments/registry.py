"""Experiment registry: every evaluation figure/table, by identifier."""

from __future__ import annotations

from typing import Callable, Dict

from . import (
    ablation_bandwidth,
    ablation_batch_size,
    ablation_feature_dim,
    ablation_buffer_sweep,
    accuracy_preservation,
    ablation_quantization,
    aoe_precision,
    dataset_profile,
    fig02_latency_scaling,
    fig03_flops_breakdown,
    fig04_reuse_distance,
    fig07_redundancy_ratio,
    fig08_window_schemes,
    fig16_speedup,
    fig17_dram_access,
    fig18_unique_matching,
    fig19_energy,
    fig20_reuse_distance_cegma,
    fig21_ablation,
    fig23_emf_overhead,
    fig24_throughput,
    fig25_large_graphs,
    fig26_emf_matrix,
    future_approximate_emf,
    future_batch_emf,
    roofline_analysis,
    seed_robustness,
    sensitivity,
    serving,
    summary,
    table2_datasets,
    table3_area,
)
from .common import ExperimentResult

__all__ = ["EXPERIMENTS", "run_experiment"]

EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "accuracy": accuracy_preservation.run,
    "aoe_precision": aoe_precision.run,
    "ablation_quantization": ablation_quantization.run,
    "ablation_buffer": ablation_buffer_sweep.run,
    "ablation_batch": ablation_batch_size.run,
    "ablation_feature_dim": ablation_feature_dim.run,
    "ablation_bandwidth": ablation_bandwidth.run,
    "dataset_profile": dataset_profile.run,
    "fig02": fig02_latency_scaling.run,
    "fig03": fig03_flops_breakdown.run,
    "fig04": fig04_reuse_distance.run,
    "fig07": fig07_redundancy_ratio.run,
    "fig08": fig08_window_schemes.run,  # also covers Fig. 12
    "fig16": fig16_speedup.run,
    "fig17": fig17_dram_access.run,
    "fig18": fig18_unique_matching.run,
    "fig19": fig19_energy.run,
    "fig20": fig20_reuse_distance_cegma.run,
    "fig21": fig21_ablation.run,  # also covers Fig. 22
    "fig23": fig23_emf_overhead.run,
    "fig24": fig24_throughput.run,
    "fig25": fig25_large_graphs.run,
    "fig26": fig26_emf_matrix.run,
    "table2": table2_datasets.run,
    "table3": table3_area.run,
    "summary": summary.run,
    "roofline": roofline_analysis.run,
    "future_batch_emf": future_batch_emf.run,
    "future_approximate_emf": future_approximate_emf.run,
    "sensitivity": sensitivity.run,
    "seed_robustness": seed_robustness.run,
    "serving": serving.run,
}


def run_experiment(
    name: str, quick: bool = True, seed: int = 0
) -> ExperimentResult:
    """Run one experiment by identifier (e.g. ``"fig16"``)."""
    from ..obs.tracing import span

    if name not in EXPERIMENTS:
        raise KeyError(f"unknown experiment {name!r}; known: {sorted(EXPERIMENTS)}")
    with span("experiment", experiment=name, quick=quick, seed=seed):
        return EXPERIMENTS[name](quick=quick, seed=seed)
