"""Sensitivity of the headline conclusions to calibration constants.

Two knobs in the platform models are calibrated rather than derived:
the baseline accelerators' sustained matching utilization and the
energy model's static power. This experiment perturbs each by 2x in
both directions and checks that the *conclusions* — CEGMA fastest,
baselines next, CEGMA saves DRAM and energy — hold across the grid,
even though the magnitudes move. This is the robustness argument for
the calibration methodology documented in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict

from ..analysis.metrics import ResultTable
from ..sim import AcceleratorSimulator, EnergyModel, awbgcn_config, cegma_config
from .common import ExperimentResult, workload_size, workload_traces

__all__ = ["run", "UTILIZATION_SCALES", "STATIC_SCALES"]

UTILIZATION_SCALES = (0.5, 1.0, 2.0)
STATIC_SCALES = (0.5, 1.0, 2.0)
MODEL = "GMN-Li"
DATASET = "RD-B"


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    num_pairs, batch_size = workload_size(quick, DATASET)
    traces = list(workload_traces(MODEL, DATASET, num_pairs, batch_size, seed))

    table = ResultTable(
        [
            "util scale",
            "static scale",
            "CEGMA speedup",
            "DRAM ratio",
            "energy ratio",
            "conclusions hold",
        ],
        title=f"Calibration sensitivity ({MODEL} on {DATASET})",
    )
    data: Dict[str, Dict[str, float]] = {}
    for util_scale in UTILIZATION_SCALES:
        for static_scale in STATIC_SCALES:
            awb = awbgcn_config()
            awb.matching_utilization = min(
                1.0, awb.matching_utilization * util_scale
            )
            energy_model = EnergyModel(static_watts=1.5 * static_scale)
            awb_result = AcceleratorSimulator(awb, energy_model).simulate_batches(
                traces
            )
            cegma_result = AcceleratorSimulator(
                cegma_config(), energy_model
            ).simulate_batches(traces)
            speedup = (
                awb_result.latency_seconds / cegma_result.latency_seconds
            )
            dram = cegma_result.dram_bytes / awb_result.dram_bytes
            energy = cegma_result.energy_joules / awb_result.energy_joules
            holds = speedup > 1.0 and dram < 1.0 and energy < 1.0
            table.add_row(
                util_scale, static_scale, speedup, dram, energy, holds
            )
            data[f"u{util_scale}/s{static_scale}"] = {
                "speedup": speedup,
                "dram": dram,
                "energy": energy,
                "holds": float(holds),
            }

    return ExperimentResult(
        "sensitivity",
        "Headline conclusions survive 2x perturbations of both "
        "calibration knobs",
        table,
        data,
    )
