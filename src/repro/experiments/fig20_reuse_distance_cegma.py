"""Fig. 20: node reuse distances under CEGMA's coordinated execution.

Same workload as Fig. 4 (GraphSim, 128 KB buffers); CEGMA's fused,
pair-coherent schedule collapses reuse distances to window scales —
the paper's RD-B example moves from 0.02% of reuses within 2^8 nodes to
90.3%.
"""

from __future__ import annotations

from typing import Dict

from ..analysis.metrics import ResultTable
from ..analysis.reuse import fraction_within, profile_reuse, reuse_distance_cdf
from ..graphs.datasets import load_dataset
from .common import ExperimentResult
from .fig04_reuse_distance import BUFFER_NODES, FIG4_DATASETS, NUM_LAYERS

__all__ = ["run"]


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    batch = 32  # the batch size is load-bearing for the reuse regime
    table = ResultTable(
        [
            "dataset",
            "baseline hit rate",
            "CEGMA hit rate",
            "CEGMA reuses<=2^8",
            "CEGMA reuses<=2^9",
        ],
        title="CEGMA node reuse-distance CDF (Fig. 20)",
    )
    data: Dict[str, Dict] = {}
    for dataset in FIG4_DATASETS:
        pairs = load_dataset(dataset, seed=seed, num_pairs=batch)
        baseline = profile_reuse(
            pairs, capacity=BUFFER_NODES, num_layers=NUM_LAYERS, cegma=False
        )
        cegma = profile_reuse(
            pairs, capacity=BUFFER_NODES, num_layers=NUM_LAYERS, cegma=True
        )
        thresholds, cdf = reuse_distance_cdf(cegma)
        row = {
            "baseline_hit": fraction_within(baseline, BUFFER_NODES),
            "cegma_hit": fraction_within(cegma, BUFFER_NODES),
            "cegma_within_2_8": float(cdf[8]),
            "cegma_within_2_9": float(cdf[9]),
            "cdf": cdf.tolist(),
            "thresholds": thresholds.tolist(),
        }
        table.add_row(
            dataset,
            row["baseline_hit"],
            row["cegma_hit"],
            row["cegma_within_2_8"],
            row["cegma_within_2_9"],
        )
        data[dataset] = row

    return ExperimentResult(
        "fig20",
        "Reuse distances under CEGMA vs baseline (GraphSim)",
        table,
        data,
    )
