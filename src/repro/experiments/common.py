"""Shared infrastructure for the experiment runners.

Each experiment module exposes ``run(quick=True, seed=0)`` returning an
:class:`ExperimentResult`. ``quick`` mode uses few graph pairs per
workload so the whole harness completes in minutes; full mode uses the
Table II test-set sizes (hours of pure-Python simulation).

Workload traces are memoized per process: several figures share the same
(model, dataset) workloads, and pytest-benchmark re-invokes runners.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, List, Sequence, Tuple

from ..analysis.metrics import ResultTable
from ..graphs.datasets import load_dataset
from ..models import build_model
from ..sim.engine import PlatformResult
from ..trace.profiler import BatchTrace, profile_batches
from ..core.api import simulate_traces

__all__ = [
    "ExperimentResult",
    "MODEL_ORDER",
    "DATASET_ORDER",
    "QUICK_PAIRS",
    "QUICK_BATCH",
    "workload_traces",
    "workload_results",
]

MODEL_ORDER = ("GMN-Li", "GraphSim", "SimGNN")
DATASET_ORDER = ("AIDS", "COLLAB", "GITHUB", "RD-B", "RD-5K", "RD-12K")

QUICK_PAIRS = 4
QUICK_BATCH = 4
FULL_BATCH = 32


class ExperimentResult:
    """Outcome of one experiment: a printable table plus raw data."""

    __slots__ = ("name", "description", "table", "data")

    def __init__(
        self,
        name: str,
        description: str,
        table: ResultTable,
        data: Dict,
    ) -> None:
        self.name = name
        self.description = description
        self.table = table
        self.data = data

    def render(self) -> str:
        return f"== {self.name}: {self.description} ==\n{self.table.render()}"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ExperimentResult({self.name!r})"


@lru_cache(maxsize=64)
def workload_traces(
    model_name: str,
    dataset_name: str,
    num_pairs: int,
    batch_size: int,
    seed: int,
) -> Tuple[BatchTrace, ...]:
    """Profile (and memoize) one model-dataset workload."""
    pairs = load_dataset(dataset_name, seed=seed, num_pairs=num_pairs)
    model = build_model(
        model_name, input_dim=pairs[0].target.feature_dim, seed=seed
    )
    return tuple(profile_batches(model, pairs, batch_size=batch_size))


@lru_cache(maxsize=256)
def workload_results(
    model_name: str,
    dataset_name: str,
    platforms: Tuple[str, ...],
    num_pairs: int,
    batch_size: int,
    seed: int,
) -> Dict[str, PlatformResult]:
    """Simulate (and memoize) one workload on the given platforms."""
    traces = workload_traces(
        model_name, dataset_name, num_pairs, batch_size, seed
    )
    return simulate_traces(traces, platforms)


def workload_size(quick: bool) -> Tuple[int, int]:
    """(num_pairs, batch_size) for the requested fidelity."""
    if quick:
        return QUICK_PAIRS, QUICK_BATCH
    return 64, FULL_BATCH
